package secmediation_test

import (
	"fmt"
	"log"
	"time"

	secmediation "github.com/secmediation/secmediation"
)

// ExampleNetwork_Query runs one secure join end-to-end: certification
// authority, credentialed client, two datasources, untrusted mediator.
func ExampleNetwork_Query() {
	ca, err := secmediation.NewAuthority("DemoCA")
	if err != nil {
		log.Fatal(err)
	}
	client, err := secmediation.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	cred, err := ca.Issue(secmediation.PublicKeyOf(client),
		[]secmediation.Property{{Name: "role", Value: "analyst"}}, time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	client.Credentials = secmediation.Credentials{cred}

	orders, err := secmediation.FromTuples(
		secmediation.MustSchema("Orders",
			secmediation.Column{Name: "cust", Kind: secmediation.KindInt},
			secmediation.Column{Name: "item", Kind: secmediation.KindString}),
		secmediation.Tuple{secmediation.Int(1), secmediation.Str("book")},
		secmediation.Tuple{secmediation.Int(2), secmediation.Str("lamp")})
	if err != nil {
		log.Fatal(err)
	}
	customers, err := secmediation.FromTuples(
		secmediation.MustSchema("Customers",
			secmediation.Column{Name: "cust", Kind: secmediation.KindInt},
			secmediation.Column{Name: "city", Kind: secmediation.KindString}),
		secmediation.Tuple{secmediation.Int(2), secmediation.Str("berlin")},
		secmediation.Tuple{secmediation.Int(3), secmediation.Str("essen")})
	if err != nil {
		log.Fatal(err)
	}

	net, err := secmediation.NewNetwork(client, &secmediation.Mediator{},
		secmediation.NewSource("Shop", map[string]*secmediation.Relation{"Orders": orders},
			[]*secmediation.Policy{secmediation.RequireProperty("Orders", "role", "analyst")}, ca),
		secmediation.NewSource("CRM", map[string]*secmediation.Relation{"Customers": customers},
			[]*secmediation.Policy{secmediation.RequireProperty("Customers", "role", "analyst")}, ca))
	if err != nil {
		log.Fatal(err)
	}
	// The commutative protocol: the mediator joins ciphertexts and the
	// client receives exactly the matching tuples.
	res, err := net.Query(
		"SELECT item, city FROM Orders JOIN Customers ON Orders.cust = Customers.cust",
		secmediation.Commutative, secmediation.Params{})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range res.Sort().Tuples() {
		fmt.Println(t[0], t[1])
	}
	// Output:
	// lamp berlin
}

// ExampleParseWhere shows stating a row-level policy filter in SQL.
func ExampleParseWhere() {
	pred, err := secmediation.ParseWhere("SELECT * FROM R WHERE sensitive = FALSE")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pred)
	// Output:
	// sensitive = false
}
