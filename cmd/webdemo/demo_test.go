package main

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

var (
	demoOnce sync.Once
	shared   *demo
)

func sharedDemo(t *testing.T) *demo {
	t.Helper()
	demoOnce.Do(func() {
		var err error
		shared, err = newDemo()
		if err != nil {
			panic(err)
		}
	})
	return shared
}

func TestIndexPage(t *testing.T) {
	srv := httptest.NewServer(sharedDemo(t).handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET / = %d", resp.StatusCode)
	}
	body := readAll(t, resp)
	for _, want := range []string{"Secure Mediation", "commutative", defaultSQL} {
		if !strings.Contains(body, want) {
			t.Errorf("index page missing %q", want)
		}
	}
	// Unknown paths 404.
	r2, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", r2.StatusCode)
	}
}

func TestQueryEndpointAllProtocols(t *testing.T) {
	srv := httptest.NewServer(sharedDemo(t).handler())
	defer srv.Close()
	for _, proto := range []string{"plaintext", "das", "commutative", "pm"} {
		resp, err := http.PostForm(srv.URL+"/query", url.Values{
			"sql":      {defaultSQL},
			"protocol": {proto},
		})
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", proto, resp.StatusCode)
		}
		// The join matches customers 1, 2 (two orders) and 5 → 4 tuples.
		if !strings.Contains(body, "Global result (4 tuples") {
			t.Errorf("%s: result table missing or wrong size:\n%s", proto, snippet(body))
		}
		if !strings.Contains(body, "mediator observed") {
			t.Errorf("%s: leakage table missing", proto)
		}
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	srv := httptest.NewServer(sharedDemo(t).handler())
	defer srv.Close()
	// Bad SQL surfaces as a rendered error, not a 500.
	resp, err := http.PostForm(srv.URL+"/query", url.Values{
		"sql": {"not sql"}, "protocol": {"commutative"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "class=\"err\"") {
		t.Errorf("bad SQL: status %d, err block present: %v", resp.StatusCode, strings.Contains(body, "err"))
	}
	// Unknown protocol.
	resp2, err := http.PostForm(srv.URL+"/query", url.Values{
		"sql": {defaultSQL}, "protocol": {"quantum"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body2 := readAll(t, resp2)
	resp2.Body.Close()
	if !strings.Contains(body2, "unknown protocol") {
		t.Error("unknown protocol not reported")
	}
	// GET on /query redirects home.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp3, err := client.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusSeeOther {
		t.Errorf("GET /query = %d, want 303", resp3.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func snippet(s string) string {
	if len(s) > 400 {
		return s[:400]
	}
	return s
}
