package main

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/mediation"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/telemetry"

	"crypto/rsa"
)

// demo owns the in-process federation the web front end queries.
type demo struct {
	client *mediation.Client
	ca     *credential.Authority
	s1, s2 *mediation.Source
	// telemetry, when non-nil, accumulates spans and metrics across every
	// query the demo runs and is exported on /metrics and /trace.
	telemetry *telemetry.Registry
}

// newDemo builds the CA, the credentialed client, and two datasources with
// a small order/customer dataset.
func newDemo() (*demo, error) {
	ca, err := credential.NewAuthority("WebDemoCA")
	if err != nil {
		return nil, err
	}
	client, err := mediation.NewClient()
	if err != nil {
		return nil, err
	}
	cred, err := ca.Issue(&client.PrivateKey.PublicKey,
		[]credential.Property{{Name: "role", Value: "analyst"}}, 24*time.Hour)
	if err != nil {
		return nil, err
	}
	client.Credentials = credential.Set{cred}

	orders := relation.MustSchema("Orders",
		relation.Column{Name: "cust", Kind: relation.KindInt},
		relation.Column{Name: "item", Kind: relation.KindString},
		relation.Column{Name: "qty", Kind: relation.KindInt})
	customers := relation.MustSchema("Customers",
		relation.Column{Name: "cust", Kind: relation.KindInt},
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "city", Kind: relation.KindString})
	ordersRel := relation.MustFromTuples(orders,
		relation.Tuple{relation.Int(1), relation.String_("book"), relation.Int(2)},
		relation.Tuple{relation.Int(2), relation.String_("lamp"), relation.Int(1)},
		relation.Tuple{relation.Int(2), relation.String_("pen"), relation.Int(10)},
		relation.Tuple{relation.Int(4), relation.String_("desk"), relation.Int(1)},
		relation.Tuple{relation.Int(5), relation.String_("chair"), relation.Int(4)})
	customersRel := relation.MustFromTuples(customers,
		relation.Tuple{relation.Int(1), relation.String_("ada"), relation.String_("dortmund")},
		relation.Tuple{relation.Int(2), relation.String_("bob"), relation.String_("berlin")},
		relation.Tuple{relation.Int(3), relation.String_("cyd"), relation.String_("essen")},
		relation.Tuple{relation.Int(5), relation.String_("eve"), relation.String_("hagen")})

	policy := func(rel string) *credential.Policy {
		return &credential.Policy{Relation: rel,
			Require: []credential.Requirement{{Property: credential.Property{Name: "role", Value: "analyst"}}}}
	}
	d := &demo{
		client: client, ca: ca,
		s1: &mediation.Source{Name: "ShopDB", Catalog: algebra.MapCatalog{"Orders": ordersRel},
			Policies: map[string]*credential.Policy{"Orders": policy("Orders")}, TrustedCAs: []*rsa.PublicKey{ca.PublicKey()}},
		s2: &mediation.Source{Name: "CRM", Catalog: algebra.MapCatalog{"Customers": customersRel},
			Policies: map[string]*credential.Policy{"Customers": policy("Customers")}, TrustedCAs: []*rsa.PublicKey{ca.PublicKey()}},
	}
	return d, nil
}

// runQuery executes one query on a fresh instrumented network.
func (d *demo) runQuery(sql string, proto mediation.Protocol) (*relation.Relation, *leakage.Ledger, time.Duration, error) {
	ledger := leakage.NewLedger()
	d.client.Ledger = ledger
	d.s1.Ledger, d.s2.Ledger = ledger, ledger
	net, err := mediation.NewNetwork(d.client, &mediation.Mediator{Ledger: ledger}, d.s1, d.s2)
	if err != nil {
		return nil, nil, 0, err
	}
	net.SetTelemetry(d.telemetry)
	params := mediation.Params{Partitions: 4, Strategy: das.EquiDepth,
		GroupBits: 1536, PaillierBits: 1024, PayloadMode: mediation.PayloadHybrid,
		Timeout: 30 * time.Second}
	start := time.Now()
	res, err := net.Query(sql, proto, params)
	return res, ledger, time.Since(start), err
}

var protocols = map[string]mediation.Protocol{
	"plaintext":   mediation.ProtocolPlaintext,
	"mobilecode":  mediation.ProtocolMobileCode,
	"das":         mediation.ProtocolDAS,
	"commutative": mediation.ProtocolCommutative,
	"pm":          mediation.ProtocolPM,
}

const defaultSQL = "SELECT name, city, item, qty FROM Orders JOIN Customers ON Orders.cust = Customers.cust"

var pageTemplate = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>Secure Mediation Web Demo</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 60em; }
 table { border-collapse: collapse; margin: 1em 0; }
 td, th { border: 1px solid #999; padding: 0.3em 0.8em; }
 textarea { width: 100%; }
 .err { color: #b00; }
</style></head><body>
<h1>Secure Mediation of Join Queries by Processing Ciphertexts</h1>
<p>Two datasources (ShopDB: Orders, CRM: Customers), an untrusted mediator,
and a credentialed client — pick a delivery protocol and run a JOIN over
ciphertexts.</p>
<form method="POST" action="/query">
<textarea name="sql" rows="2">{{.SQL}}</textarea><br>
<select name="protocol">
{{range .Protocols}}<option value="{{.}}" {{if eq . $.Selected}}selected{{end}}>{{.}}</option>{{end}}
</select>
<input type="submit" value="Run query">
</form>
{{if .Error}}<p class="err">{{.Error}}</p>{{end}}
{{if .Rows}}
<h2>Global result ({{len .Rows}} tuples, {{.Elapsed}})</h2>
<table><tr>{{range .Header}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}</table>
<h2>What the untrusted mediator observed</h2>
<table><tr><th>item</th><th>value</th></tr>
{{range .Leaks}}<tr><td>{{.Item}}</td><td>{{.Value}}</td></tr>{{end}}</table>
{{end}}
</body></html>`))

type leakRow struct {
	Item  string
	Value int64
}

type pageData struct {
	SQL       string
	Protocols []string
	Selected  string
	Error     string
	Header    []string
	Rows      [][]string
	Elapsed   string
	Leaks     []leakRow
}

// handler builds the HTTP mux. When the demo carries a telemetry
// registry, the observability endpoints (/metrics, /trace, /snapshot)
// are mounted next to the query form.
func (d *demo) handler() http.Handler {
	mux := http.NewServeMux()
	if d.telemetry.Enabled() {
		tel := telemetry.Handler(d.telemetry)
		mux.Handle("/metrics", tel)
		mux.Handle("/trace", tel)
		mux.Handle("/snapshot", tel)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		d.render(w, pageData{SQL: defaultSQL, Selected: "commutative"})
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Redirect(w, r, "/", http.StatusSeeOther)
			return
		}
		sql := r.FormValue("sql")
		protoName := r.FormValue("protocol")
		data := pageData{SQL: sql, Selected: protoName}
		proto, ok := protocols[protoName]
		if !ok {
			data.Error = fmt.Sprintf("unknown protocol %q", protoName)
			d.render(w, data)
			return
		}
		res, ledger, elapsed, err := d.runQuery(sql, proto)
		if err != nil {
			data.Error = err.Error()
			d.render(w, data)
			return
		}
		data.Elapsed = elapsed.Round(time.Millisecond).String()
		for _, c := range res.Schema().Columns {
			data.Header = append(data.Header, c.Name)
		}
		for _, t := range res.Sort().Tuples() {
			row := make([]string, len(t))
			for i, v := range t {
				row[i] = v.String()
			}
			data.Rows = append(data.Rows, row)
		}
		items := ledger.ObservedItems(leakage.PartyMediator)
		keys := make([]string, 0, len(items))
		for k := range items {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			data.Leaks = append(data.Leaks, leakRow{Item: k, Value: items[k]})
		}
		d.render(w, data)
	})
	return mux
}

func (d *demo) render(w http.ResponseWriter, data pageData) {
	data.Protocols = []string{"plaintext", "mobilecode", "das", "commutative", "pm"}
	if data.Selected == "" {
		data.Selected = "commutative"
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTemplate.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
