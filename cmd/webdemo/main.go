// Command webdemo reproduces the paper's closing remark — "a prototypical
// web based system for commutative encryption has thus been implemented at
// our department" — as a small HTTP front end: it assembles an in-process
// demo federation (CA, credentialed client, two datasources, untrusted
// mediator) and serves a form that runs any of the delivery protocols
// against it, rendering the global result next to everything the mediator
// could observe.
//
//	webdemo -listen :8080 [-telemetry]
package main

import (
	"flag"
	"log"
	"net/http"

	"github.com/secmediation/secmediation/internal/telemetry"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	withTelemetry := flag.Bool("telemetry", false, "mount /metrics, /trace and /snapshot on the demo port")
	flag.Parse()
	demo, err := newDemo()
	if err != nil {
		log.Fatalf("webdemo: %v", err)
	}
	if *withTelemetry {
		demo.telemetry = telemetry.NewRegistry()
		log.Printf("webdemo: telemetry at http://localhost%s/metrics", *listen)
	}
	log.Printf("webdemo: serving on %s", *listen)
	log.Fatal(http.ListenAndServe(*listen, demo.handler()))
}
