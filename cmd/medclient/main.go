// Command medclient is the querying client of the MMM system: it manages
// the client key pair, attaches credentials to global queries, and runs
// the client side of the delivery-phase protocols against a mediator.
//
// Usage:
//
//	medclient keygen -key client-key.pem -pub client-pub.pem
//	medclient query -mediator 127.0.0.1:7100 -key client-key.pem \
//	    -cred cred.json \
//	    -sql "SELECT * FROM Orders JOIN Customers ON Orders.id = Customers.id" \
//	    -protocol commutative
package main

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/keyio"
	"github.com/secmediation/secmediation/internal/mediation"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/resilience"
	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/transport"
)

// Exit codes: 0 success, 1 terminal failure (protocol violation, policy
// denial, bad flags), 3 retries exhausted on transient faults. Scripts
// can tell "retry the whole run later" (3) from "this query can never
// succeed" (1).
const (
	exitTerminal  = 1
	exitExhausted = 3
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = runKeygen(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "medclient:", err)
		if errors.Is(err, resilience.ErrRetriesExhausted) {
			os.Exit(exitExhausted)
		}
		os.Exit(exitTerminal)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: medclient keygen|query [flags]")
	os.Exit(2)
}

func runKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	keyPath := fs.String("key", "client-key.pem", "output path for the client private key")
	pubPath := fs.String("pub", "client-pub.pem", "output path for the client public key")
	if err := fs.Parse(args); err != nil {
		return err
	}
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		return err
	}
	if err := keyio.WritePrivateKeyFile(*keyPath, key); err != nil {
		return err
	}
	if err := keyio.WritePublicKeyFile(*pubPath, &key.PublicKey); err != nil {
		return err
	}
	fmt.Printf("client key written to %s, public key to %s\n", *keyPath, *pubPath)
	fmt.Println("have a certification authority issue credentials for the public key (mmmca issue)")
	return nil
}

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	mediatorAddr := fs.String("mediator", "127.0.0.1:7100", "mediator address")
	keyPath := fs.String("key", "client-key.pem", "client private key")
	sql := fs.String("sql", "", "global SQL query (two-relation JOIN)")
	protoName := fs.String("protocol", "commutative", "delivery protocol: plaintext|mobilecode|das|commutative|pm")
	partitions := fs.Int("partitions", 16, "DAS partitions per index table")
	strategy := fs.String("strategy", "equi-depth", "DAS strategy: equi-width|equi-depth|hash-buckets")
	groupBits := fs.Int("groupbits", 2048, "commutative safe-prime group size (1536|2048|3072)")
	keyMode := fs.String("keymode", "short", "commutative exponent policy: short|full|ct (ct = constant-time ladder)")
	idMode := fs.Bool("idmode", false, "commutative footnote-1 ID mode")
	paillierBits := fs.Int("paillier", 2048, "PM Paillier modulus size")
	payload := fs.String("payload", "inline", "PM payload mode: inline|hybrid")
	buckets := fs.Int("buckets", 0, "PM FNP bucket count (0 = single polynomial)")
	workers := fs.Int("workers", 0, "crypto worker pool size per party (0 = all cores, 1 = sequential)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-operation send/receive deadline for every party (0 disables)")
	retries := fs.Int("retries", 4, "attempts per query: transient faults (dial failure, timeout, overload, drain, link death) are retried with backoff; protocol errors are not")
	retryBudget := fs.Duration("retry-budget", 0, "total elapsed-time budget across a query's attempts (0 = bounded by -retries only)")
	concurrent := fs.Int("concurrent", 1, "run the query this many times concurrently over one multiplexed link")
	csvOut := fs.String("csv", "", "write the result as CSV to this file instead of stdout")
	var credPaths stringList
	fs.Var(&credPaths, "cred", "credential JSON file (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sql == "" {
		return fmt.Errorf("-sql is required")
	}
	key, err := keyio.ReadPrivateKeyFile(*keyPath)
	if err != nil {
		return err
	}
	client := &mediation.Client{PrivateKey: key}
	for _, path := range credPaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var c credential.Credential
		if err := json.Unmarshal(data, &c); err != nil {
			return fmt.Errorf("credential %s: %w", path, err)
		}
		client.Credentials = append(client.Credentials, &c)
	}

	proto, err := parseProtocol(*protoName)
	if err != nil {
		return err
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	kmode, err := parseKeyMode(*keyMode)
	if err != nil {
		return err
	}
	params := mediation.Params{
		Partitions:   *partitions,
		Strategy:     strat,
		GroupBits:    *groupBits,
		KeyMode:      kmode,
		IDMode:       *idMode,
		PaillierBits: *paillierBits,
		Buckets:      *buckets,
		Workers:      *workers,
		Timeout:      *timeout,
	}
	if *payload == "hybrid" {
		params.PayloadMode = mediation.PayloadHybrid
	} else if *payload != "inline" {
		return fmt.Errorf("unknown payload mode %q", *payload)
	}

	// All protocol sessions run as virtual links over one physical
	// connection per mediator address; the pool redials a dead link on
	// the next attempt and its breaker fast-fails while the mediator
	// stays down.
	pool := &session.Pool{
		Dial: func(addr string) (transport.Conn, error) {
			return transport.DialRetry(addr, transport.RetryPolicy{Attempts: 2})
		},
		Governor: resilience.NewBreakerSet(resilience.BreakerConfig{}),
	}
	defer pool.Close()
	pol := resilience.Policy{MaxAttempts: *retries, Budget: *retryBudget}
	// runOne executes one logical query under the retry orchestrator:
	// every attempt is a fresh session carrying the query/attempt tags,
	// so sources discard partial state of attempts we abandoned.
	runOne := func() (*relation.Relation, resilience.Result, error) {
		var res *relation.Relation
		r, err := resilience.Do(pol, func(a resilience.Attempt) error {
			st, err := pool.Open(*mediatorAddr)
			if err != nil {
				return err
			}
			defer st.Close()
			if *timeout > 0 {
				st.SetTimeout(*timeout)
			}
			p := params
			p.QueryID, p.Attempt = a.QueryID, a.N
			out, err := client.Query(st, *sql, proto, p)
			if err != nil {
				return err
			}
			res = out
			return nil
		})
		return res, r, err
	}
	var res *relation.Relation
	if *concurrent <= 1 {
		var r resilience.Result
		res, r, err = runOne()
		if err != nil {
			return err
		}
		if r.Recovered {
			fmt.Fprintf(os.Stderr, "medclient: query %s recovered on attempt %d\n", r.QueryID, r.Attempts)
		}
	} else {
		res, err = runConcurrent(*concurrent, runOne)
		if err != nil {
			return err
		}
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		return relation.WriteCSV(res, f)
	}
	fmt.Print(res.Sort().String())
	return nil
}

// runConcurrent runs n overlapping copies of the query, each under its
// own retry orchestration, and aggregates per-query outcomes (attempt
// counts, recoveries, failures) instead of dying on the first fault.
// The run succeeds — returning the first result; all queries compute
// the same join — only when every query does. A failed run's error
// keeps ErrRetriesExhausted on the chain only when no query failed
// terminally, so the exit code reports the severest outcome.
func runConcurrent(n int, runOne func() (*relation.Relation, resilience.Result, error)) (*relation.Relation, error) {
	type outcome struct {
		res *relation.Relation
		r   resilience.Result
		err error
		d   time.Duration
	}
	start := time.Now()
	outcomes := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			s := time.Now()
			res, r, err := runOne()
			outcomes <- outcome{res: res, r: r, err: err, d: time.Since(s)}
		}()
	}
	var res *relation.Relation
	var terminalErr, exhaustedErr error
	completed, recovered, attempts := 0, 0, 0
	for i := 0; i < n; i++ {
		o := <-outcomes
		attempts += o.r.Attempts
		if o.err != nil {
			if errors.Is(o.err, resilience.ErrRetriesExhausted) {
				if exhaustedErr == nil {
					exhaustedErr = o.err
				}
			} else if terminalErr == nil {
				terminalErr = o.err
			}
			fmt.Fprintf(os.Stderr, "medclient: query %s failed after %d attempts in %v: %v\n",
				o.r.QueryID, o.r.Attempts, o.d.Round(time.Millisecond), o.err)
			continue
		}
		completed++
		if o.r.Recovered {
			recovered++
			fmt.Fprintf(os.Stderr, "medclient: query %s recovered on attempt %d\n", o.r.QueryID, o.r.Attempts)
		}
		if res == nil {
			res = o.res
		}
	}
	fmt.Fprintf(os.Stderr, "medclient: %d/%d queries completed (%d recovered, %d attempts total) in %v\n",
		completed, n, recovered, attempts, time.Since(start).Round(time.Millisecond))
	if terminalErr != nil {
		return nil, terminalErr
	}
	if exhaustedErr != nil {
		return nil, exhaustedErr
	}
	return res, nil
}

func parseProtocol(name string) (mediation.Protocol, error) {
	switch strings.ToLower(name) {
	case "plaintext", "pt":
		return mediation.ProtocolPlaintext, nil
	case "mobilecode", "mc", "mobile-code":
		return mediation.ProtocolMobileCode, nil
	case "das":
		return mediation.ProtocolDAS, nil
	case "commutative", "comm":
		return mediation.ProtocolCommutative, nil
	case "pm", "private-matching":
		return mediation.ProtocolPM, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", name)
	}
}

func parseKeyMode(name string) (mediation.CommKeyMode, error) {
	switch strings.ToLower(name) {
	case "short":
		return mediation.KeyShortExponent, nil
	case "full":
		return mediation.KeyFullExponent, nil
	case "ct", "constant-time":
		return mediation.KeyConstantTime, nil
	default:
		return 0, fmt.Errorf("unknown key mode %q (use short, full or ct)", name)
	}
}

func parseStrategy(name string) (das.Strategy, error) {
	switch strings.ToLower(name) {
	case "equi-width":
		return das.EquiWidth, nil
	case "equi-depth":
		return das.EquiDepth, nil
	case "hash-buckets":
		return das.HashBuckets, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}
