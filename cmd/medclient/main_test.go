package main

import (
	"testing"

	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/mediation"
)

func TestParseProtocol(t *testing.T) {
	cases := map[string]mediation.Protocol{
		"plaintext": mediation.ProtocolPlaintext, "pt": mediation.ProtocolPlaintext,
		"mobilecode": mediation.ProtocolMobileCode, "mc": mediation.ProtocolMobileCode,
		"das":         mediation.ProtocolDAS,
		"commutative": mediation.ProtocolCommutative, "COMM": mediation.ProtocolCommutative,
		"pm": mediation.ProtocolPM, "private-matching": mediation.ProtocolPM,
	}
	for in, want := range cases {
		got, err := parseProtocol(in)
		if err != nil || got != want {
			t.Errorf("parseProtocol(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseProtocol("quantum"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]das.Strategy{
		"equi-width": das.EquiWidth, "Equi-Depth": das.EquiDepth, "hash-buckets": das.HashBuckets,
	}
	for in, want := range cases {
		got, err := parseStrategy(in)
		if err != nil || got != want {
			t.Errorf("parseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseStrategy("random"); err == nil {
		t.Error("unknown strategy accepted")
	}
}
