// Command seclint runs the crypto-invariant static-analysis suite
// (internal/seclint) over module packages and gates the build on the
// result.
//
// Usage:
//
//	seclint [-json] [-sarif] [-allow file] [-list] [patterns...]
//
// Patterns default to ./... (every package under the module root,
// excluding testdata). A pattern "dir/..." analyzes the subtree; a bare
// directory analyzes that one package — including testdata fixtures,
// which is how the driver is exercised in its own tests.
//
// Exit status: 0 when no findings, 1 when findings were reported,
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/secmediation/secmediation/internal/seclint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("seclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	allowFile := fs.String("allow", "", "allowlist file (default: seclint.allow at the module root, if present)")
	list := fs.Bool("list", false, "list analyzers and exit")
	prune := fs.Bool("prune", false, "rewrite the allowlist dropping entries that suppressed nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range seclint.All {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "seclint: %v\n", err)
		return 2
	}
	loader, err := seclint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "seclint: %v\n", err)
		return 2
	}

	var allow *seclint.Allowlist
	switch {
	case *allowFile != "":
		allow, err = seclint.ParseAllowlist(*allowFile)
	default:
		def := filepath.Join(root, "seclint.allow")
		if _, statErr := os.Stat(def); statErr == nil {
			allow, err = seclint.ParseAllowlist(def)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "seclint: %v\n", err)
		return 2
	}

	dirs, err := expandPatterns(root, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "seclint: %v\n", err)
		return 2
	}

	runner := &seclint.Runner{Loader: loader, Analyzers: seclint.All, Allow: allow}
	findings, err := runner.RunDirs(dirs)
	if err != nil {
		fmt.Fprintf(stderr, "seclint: %v\n", err)
		return 2
	}

	if *prune && allow != nil {
		stale, err := allow.Prune()
		if err != nil {
			fmt.Fprintf(stderr, "seclint: pruning %s: %v\n", allow.Path, err)
			return 2
		}
		if len(stale) > 0 {
			// The stale-entry findings are resolved by the rewrite.
			kept := findings[:0]
			for _, f := range findings {
				if f.Analyzer != "allowlist" {
					kept = append(kept, f)
				}
			}
			findings = kept
			fmt.Fprintf(stderr, "seclint: pruned %d stale allowlist entr%s from %s\n",
				len(stale), map[bool]string{true: "y", false: "ies"}[len(stale) == 1], allow.Path)
		}
	}

	switch {
	case *sarifOut:
		if err := seclint.WriteSARIF(stdout, findings, seclint.All); err != nil {
			fmt.Fprintf(stderr, "seclint: %v\n", err)
			return 2
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []seclint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "seclint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(stderr, "seclint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves command-line patterns to package directories.
// "./..." and "dir/..." walk subtrees (skipping testdata); a bare
// directory is taken verbatim, so fixtures can be targeted explicitly.
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(ds ...string) {
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base := root
			if rest != "." && rest != "" {
				base = filepath.Join(root, filepath.FromSlash(rest))
			}
			sub, err := seclint.WalkPackageDirs(base)
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %w", pat, err)
			}
			add(sub...)
			continue
		}
		dir := filepath.Join(root, filepath.FromSlash(pat))
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a package directory under the module root", pat)
		}
		add(dir)
	}
	return dirs, nil
}
