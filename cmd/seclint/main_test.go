package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/secmediation/secmediation/internal/seclint"
)

// emptyAllow returns an allowlist file with no entries, so fixture runs
// are not affected by the repository's real seclint.allow.
func emptyAllow(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "empty.allow")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunFixtureExitsNonZero drives the binary entry point over a
// fixture with known findings: exit code 1, the finding printed.
func TestRunFixtureExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-allow", emptyAllow(t), "internal/seclint/testdata/src/weakrand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "[weakrand] math/rand imported") {
		t.Errorf("stdout missing weakrand finding:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Errorf("stderr missing summary: %q", errb.String())
	}
}

// TestRunJSON checks the machine-readable mode round-trips through
// encoding/json with the documented field names.
func TestRunJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-allow", emptyAllow(t), "internal/seclint/testdata/src/weakrand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	var findings []seclint.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, out.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "weakrand" || f.Line == 0 || !strings.HasSuffix(f.File, "weakrand.go") {
		t.Errorf("unexpected finding: %+v", f)
	}
}

// TestRunRepoTreeClean is the gate the Makefile relies on: the real
// tree (default ./... patterns with the repository allowlist) must
// produce zero findings.
func TestRunRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var out, errb bytes.Buffer
	code := run(nil, &out, &errb)
	if code != 0 {
		t.Fatalf("seclint on the repository tree: exit %d\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output on clean tree: %s", out.String())
	}
}

// TestRunList covers the analyzer listing used in docs.
func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, name := range []string{"weakrand", "subtlecmp", "secretfmt", "errdrop", "rawexp", "rawrecv"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestRunBadPattern checks usage errors exit 2.
func TestRunBadPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
