package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/secmediation/secmediation/internal/seclint"
)

// emptyAllow returns an allowlist file with no entries, so fixture runs
// are not affected by the repository's real seclint.allow.
func emptyAllow(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "empty.allow")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunFixtureExitsNonZero drives the binary entry point over a
// fixture with known findings: exit code 1, the finding printed.
func TestRunFixtureExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-allow", emptyAllow(t), "internal/seclint/testdata/src/weakrand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "[weakrand] math/rand imported") {
		t.Errorf("stdout missing weakrand finding:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Errorf("stderr missing summary: %q", errb.String())
	}
}

// TestRunJSON checks the machine-readable mode round-trips through
// encoding/json with the documented field names.
func TestRunJSON(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-allow", emptyAllow(t), "internal/seclint/testdata/src/weakrand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	var findings []seclint.Finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, out.String())
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "weakrand" || f.Line == 0 || !strings.HasSuffix(f.File, "weakrand.go") {
		t.Errorf("unexpected finding: %+v", f)
	}
}

// TestRunSARIF checks the -sarif mode emits a schema-conformant
// SARIF 2.1.0 log whose results resolve rule indices, and that the
// exit code still gates the build.
func TestRunSARIF(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-sarif", "-allow", emptyAllow(t), "internal/seclint/testdata/src/weakrand"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not a SARIF log: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected log shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "seclint" || len(r.Tool.Driver.Rules) != len(seclint.All) {
		t.Errorf("driver %q with %d rules, want seclint with %d",
			r.Tool.Driver.Name, len(r.Tool.Driver.Rules), len(seclint.All))
	}
	if len(r.Results) != 1 {
		t.Fatalf("got %d results, want 1: %s", len(r.Results), out.String())
	}
	res := r.Results[0]
	if res.RuleID != "weakrand" || res.Level != "error" || !strings.Contains(res.Message.Text, "math/rand") {
		t.Errorf("unexpected result: %+v", res)
	}
	if res.RuleIndex < 0 || res.RuleIndex >= len(r.Tool.Driver.Rules) ||
		r.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
		t.Errorf("ruleIndex %d does not resolve to %q", res.RuleIndex, res.RuleID)
	}
	loc := res.Locations[0].PhysicalLocation
	if !strings.HasSuffix(loc.ArtifactLocation.URI, "weakrand.go") || loc.Region.StartLine == 0 {
		t.Errorf("unexpected location: %+v", loc)
	}
}

// TestRunRepoTreeClean is the gate the Makefile relies on: the real
// tree (default ./... patterns with the repository allowlist) must
// produce zero findings.
func TestRunRepoTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	var out, errb bytes.Buffer
	code := run(nil, &out, &errb)
	if code != 0 {
		t.Fatalf("seclint on the repository tree: exit %d\n%s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output on clean tree: %s", out.String())
	}
}

// TestRunPlaintaintFixture drives the whole-program mode through the
// binary entry point: the leaky fake mediator must fail the run, and
// the printed findings must carry full call paths.
func TestRunPlaintaintFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-allow", emptyAllow(t), "internal/seclint/testdata/src/plaintaint"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "[plaintaint]") {
		t.Errorf("stdout missing plaintaint finding:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "[path plaintaint.(*Mediator).HandleSession -> ") {
		t.Errorf("stdout missing a full taint trace:\n%s", out.String())
	}
}

// TestRunPrune checks -prune rewrites the allowlist in place: the used
// entry and comments survive, the stale entry is dropped, its
// unused-entry finding is resolved by the rewrite, and the run is
// clean.
func TestRunPrune(t *testing.T) {
	allow := filepath.Join(t.TempDir(), "seclint.allow")
	content := `# audited exceptions
weakrand internal/seclint/testdata/src/weakrand/... -- fixture exercises the analyzer
subtlecmp cmd/nowhere/*.go -- stale entry that matches nothing
`
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-prune", "-allow", allow, "internal/seclint/testdata/src/weakrand"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "pruned 1 stale allowlist entry") {
		t.Errorf("stderr missing prune summary: %q", errb.String())
	}
	rewritten, err := os.ReadFile(allow)
	if err != nil {
		t.Fatal(err)
	}
	got := string(rewritten)
	if strings.Contains(got, "subtlecmp") {
		t.Errorf("stale entry survived pruning:\n%s", got)
	}
	if !strings.Contains(got, "# audited exceptions") || !strings.Contains(got, "weakrand internal/seclint") {
		t.Errorf("pruning dropped lines it must keep:\n%s", got)
	}
	// A second prune run must be a no-op on an already-clean file.
	var out2, errb2 bytes.Buffer
	if code := run([]string{"-prune", "-allow", allow, "internal/seclint/testdata/src/weakrand"}, &out2, &errb2); code != 0 {
		t.Fatalf("second -prune run: exit %d\n%s", code, errb2.String())
	}
	after, err := os.ReadFile(allow)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != got {
		t.Errorf("idempotent prune rewrote the file:\nbefore: %q\nafter: %q", got, string(after))
	}
}

// TestRunList covers the analyzer listing used in docs.
func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d", code)
	}
	for _, name := range []string{"weakrand", "subtlecmp", "secretfmt", "errdrop", "rawexp", "rawrecv", "plaintaint", "keyscope", "cttaint", "conccheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestRunBadPattern checks usage errors exit 2.
func TestRunBadPattern(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
