package main

import (
	"crypto/rand"
	"crypto/rsa"
	"os"
	"path/filepath"
	"testing"

	"github.com/secmediation/secmediation/internal/keyio"
)

func writeFixtures(t *testing.T) (dir, caPub, csv string) {
	t.Helper()
	dir = t.TempDir()
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	caPub = filepath.Join(dir, "ca-pub.pem")
	if err := keyio.WritePublicKeyFile(caPub, &key.PublicKey); err != nil {
		t.Fatal(err)
	}
	csv = filepath.Join(dir, "r.csv")
	if err := os.WriteFile(csv, []byte("id:INT,name:TEXT\n1,a\n2,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, caPub, csv
}

func TestBuildSource(t *testing.T) {
	_, caPub, csv := writeFixtures(t)
	src, err := buildSource("S1",
		stringList{caPub},
		stringList{"Orders=" + csv},
		stringList{"Orders:role=analyst", "Orders:org=acme"})
	if err != nil {
		t.Fatal(err)
	}
	if src.Name != "S1" || len(src.TrustedCAs) != 1 {
		t.Errorf("source: %+v", src)
	}
	r, err := src.Catalog.Lookup("Orders")
	if err != nil || r.Len() != 2 {
		t.Errorf("catalog: %v %v", r, err)
	}
	pol := src.Policies["Orders"]
	if pol == nil || len(pol.Require) != 2 {
		t.Errorf("policy: %+v", pol)
	}
}

func TestBuildSourceErrors(t *testing.T) {
	_, caPub, csv := writeFixtures(t)
	cases := []struct {
		name            string
		cas, rels, reqs stringList
	}{
		{"no CA", nil, stringList{"R=" + csv}, nil},
		{"no relation", stringList{caPub}, nil, nil},
		{"bad relation spec", stringList{caPub}, stringList{"nospec"}, nil},
		{"missing csv", stringList{caPub}, stringList{"R=/does/not/exist.csv"}, nil},
		{"bad require spec", stringList{caPub}, stringList{"R=" + csv}, stringList{"garbage"}},
		{"require missing =", stringList{caPub}, stringList{"R=" + csv}, stringList{"R:noval"}},
		{"require unknown rel", stringList{caPub}, stringList{"R=" + csv}, stringList{"X:a=b"}},
		{"bad ca path", stringList{"/does/not/exist.pem"}, stringList{"R=" + csv}, nil},
	}
	for _, tc := range cases {
		if _, err := buildSource("S", tc.cas, tc.rels, tc.reqs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestStringListFlag(t *testing.T) {
	var s stringList
	if err := s.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("b"); err != nil {
		t.Fatal(err)
	}
	if s.String() != "a,b" || len(s) != 2 {
		t.Errorf("stringList: %v", s)
	}
}
