// Command datasource runs one MMM datasource: it loads relations from CSV
// files, enforces credential-based access policies, and serves the
// delivery-phase protocols over TCP (one session per connection).
//
// Usage:
//
//	datasource -name S1 -listen :7101 \
//	    -ca ca-pub.pem \
//	    -relation Orders=orders.csv \
//	    -require "Orders:role=analyst"
//
// CSV files use the header format "col:TYPE,col:TYPE,..." (see
// relation.ReadCSV).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/keyio"
	"github.com/secmediation/secmediation/internal/mediation"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// stringList collects repeatable flags.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	name := flag.String("name", "S1", "datasource name")
	listen := flag.String("listen", ":7101", "listen address")
	var cas, rels, requires stringList
	flag.Var(&cas, "ca", "trusted CA public key PEM (repeatable)")
	flag.Var(&rels, "relation", "relation as name=path.csv (repeatable)")
	flag.Var(&requires, "require", "policy as relation:prop=value (repeatable; multiple for one relation AND together)")
	telemetryAddr := flag.String("telemetry", "", "serve /metrics, /trace and /snapshot on this address (empty disables)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-operation deadline on accepted links before the partial query arrives (0 disables)")
	maxMsg := flag.Int64("maxmsg", 0, "inbound message size limit in bytes (0 = default 256 MiB)")
	maxSessions := flag.Int("max-sessions", 64, "max concurrent protocol sessions (0 = unlimited)")
	maxWaiting := flag.Int("max-waiting", 64, "sessions allowed to queue for a slot before overload rejects")
	drain := flag.Duration("drain", 20*time.Second, "on SIGTERM/SIGINT, let in-flight sessions finish for up to this long before forcing links closed")
	flag.Parse()

	src, err := buildSource(*name, cas, rels, requires)
	if err != nil {
		log.Fatalf("datasource: %v", err)
	}
	if *telemetryAddr != "" {
		src.Telemetry = telemetry.NewRegistry()
		telemetry.Serve(*telemetryAddr, src.Telemetry)
		log.Printf("telemetry endpoints at http://%s/metrics", *telemetryAddr)
	}
	l, err := transport.Listen(*listen)
	if err != nil {
		log.Fatalf("datasource: %v", err)
	}
	l.MaxMessage = *maxMsg
	log.Printf("datasource %s serving %d relation(s) at %s", *name, len(src.Catalog), l.Addr())
	srv := &session.Server{
		Handler: func(conn transport.Conn) error {
			// Bound the wait for the partial query itself; once it arrives,
			// its Params.Timeout (the client's choice) re-arms the link.
			conn.SetTimeout(*timeout)
			return src.Serve(conn)
		},
		Gate:           session.NewGate(*maxSessions, *maxWaiting, src.Telemetry),
		Telemetry:      src.Telemetry,
		Logf:           log.Printf,
		RetryAfterHint: 500 * time.Millisecond,
	}
	// SIGTERM/SIGINT starts a graceful drain: close the listener (Serve
	// returns), then let in-flight sessions finish before closing links.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("datasource: received %v, draining (deadline %v)", s, *drain)
		l.Close()
	}()
	if err := srv.Serve(session.AcceptTimeout(l, *timeout)); err != nil {
		log.Fatalf("datasource: serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("datasource: drain deadline exceeded, %d session(s) forced closed: %v", srv.InFlight(), err)
	}
	log.Printf("datasource: drained cleanly")
}

func buildSource(name string, cas, rels, requires stringList) (*mediation.Source, error) {
	src := &mediation.Source{
		Name:     name,
		Catalog:  algebra.MapCatalog{},
		Policies: map[string]*credential.Policy{},
	}
	for _, path := range cas {
		key, err := keyio.ReadPublicKeyFile(path)
		if err != nil {
			return nil, err
		}
		src.TrustedCAs = append(src.TrustedCAs, key)
	}
	if len(src.TrustedCAs) == 0 {
		return nil, fmt.Errorf("at least one -ca is required")
	}
	for _, spec := range rels {
		relName, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("-relation %q: want name=path.csv", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		r, err := relation.ReadCSV(relName, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		src.Catalog[relName] = r
		// Policy defaults to "no requirements" until -require adds some;
		// relations without any policy entry would be unreachable.
		if _, ok := src.Policies[relName]; !ok {
			src.Policies[relName] = &credential.Policy{Relation: relName}
		}
		log.Printf("loaded %s: %s (%d tuples)", relName, r.Schema(), r.Len())
	}
	if len(src.Catalog) == 0 {
		return nil, fmt.Errorf("at least one -relation is required")
	}
	for _, spec := range requires {
		relName, prop, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, fmt.Errorf("-require %q: want relation:prop=value", spec)
		}
		pname, pvalue, ok := strings.Cut(prop, "=")
		if !ok {
			return nil, fmt.Errorf("-require %q: want relation:prop=value", spec)
		}
		pol, ok := src.Policies[relName]
		if !ok {
			return nil, fmt.Errorf("-require %q: unknown relation %q", spec, relName)
		}
		pol.Require = append(pol.Require, credential.Requirement{
			Property: credential.Property{Name: pname, Value: pvalue},
		})
	}
	return src, nil
}
