// Command mmmca is the certification authority of the preparatory phase:
// it generates a CA signing key and issues property credentials binding a
// client's public encryption key to attested properties.
//
// Usage:
//
//	mmmca init -name FederationCA -key ca-key.pem -pub ca-pub.pem
//	mmmca issue -name FederationCA -key ca-key.pem \
//	      -client-pub client-pub.pem -prop role=analyst -prop org=acme \
//	      -validity 24h -out cred.json
package main

import (
	"crypto/rand"
	"crypto/rsa"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/keyio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "init":
		err = runInit(os.Args[2:])
	case "issue":
		err = runIssue(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmmca:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mmmca init|issue [flags]")
	os.Exit(2)
}

func runInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	keyPath := fs.String("key", "ca-key.pem", "output path for the CA private key")
	pubPath := fs.String("pub", "ca-pub.pem", "output path for the CA public key")
	if err := fs.Parse(args); err != nil {
		return err
	}
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		return err
	}
	if err := keyio.WritePrivateKeyFile(*keyPath, key); err != nil {
		return err
	}
	if err := keyio.WritePublicKeyFile(*pubPath, &key.PublicKey); err != nil {
		return err
	}
	fmt.Printf("CA key written to %s, verification key to %s\n", *keyPath, *pubPath)
	return nil
}

// propList collects repeatable -prop name=value flags.
type propList []credential.Property

func (p *propList) String() string { return fmt.Sprint(*p) }

func (p *propList) Set(s string) error {
	name, value, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("property %q: want name=value", s)
	}
	*p = append(*p, credential.Property{Name: name, Value: value})
	return nil
}

func runIssue(args []string) error {
	fs := flag.NewFlagSet("issue", flag.ExitOnError)
	name := fs.String("name", "MMM-CA", "certification authority name")
	keyPath := fs.String("key", "ca-key.pem", "CA private key (from mmmca init)")
	clientPub := fs.String("client-pub", "", "client public key PEM (from medclient keygen)")
	validity := fs.Duration("validity", 24*time.Hour, "credential validity")
	out := fs.String("out", "cred.json", "output credential file")
	var props propList
	fs.Var(&props, "prop", "attested property name=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clientPub == "" {
		return fmt.Errorf("-client-pub is required")
	}
	if len(props) == 0 {
		return fmt.Errorf("at least one -prop is required")
	}
	caKey, err := keyio.ReadPrivateKeyFile(*keyPath)
	if err != nil {
		return err
	}
	clientKey, err := keyio.ReadPublicKeyFile(*clientPub)
	if err != nil {
		return err
	}
	ca := credential.NewAuthorityWithKey(*name, caKey)
	cred, err := ca.Issue(clientKey, props, *validity)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(cred, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("credential with %d properties written to %s (valid until %v)\n",
		len(cred.Properties), *out, cred.NotAfter)
	return nil
}
