package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/keyio"
)

func TestInitAndIssue(t *testing.T) {
	dir := t.TempDir()
	caKey := filepath.Join(dir, "ca-key.pem")
	caPub := filepath.Join(dir, "ca-pub.pem")
	if err := runInit([]string{"-key", caKey, "-pub", caPub}); err != nil {
		t.Fatal(err)
	}
	// A client key pair to certify.
	clientKey := filepath.Join(dir, "client-key.pem")
	clientPub := filepath.Join(dir, "client-pub.pem")
	if err := runInit([]string{"-key", clientKey, "-pub", clientPub}); err != nil {
		t.Fatal(err)
	}
	credPath := filepath.Join(dir, "cred.json")
	err := runIssue([]string{
		"-name", "TestCA", "-key", caKey, "-client-pub", clientPub,
		"-prop", "role=analyst", "-prop", "org=acme",
		"-validity", "1h", "-out", credPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(credPath)
	if err != nil {
		t.Fatal(err)
	}
	var cred credential.Credential
	if err := json.Unmarshal(data, &cred); err != nil {
		t.Fatal(err)
	}
	caVerify, err := keyio.ReadPublicKeyFile(caPub)
	if err != nil {
		t.Fatal(err)
	}
	if err := cred.Verify(caVerify, time.Now()); err != nil {
		t.Errorf("issued credential does not verify: %v", err)
	}
	if !cred.HasProperty("role", "analyst") || !cred.HasProperty("org", "acme") {
		t.Errorf("credential properties: %v", cred.Properties)
	}
}

func TestIssueValidation(t *testing.T) {
	dir := t.TempDir()
	caKey := filepath.Join(dir, "ca-key.pem")
	if err := runInit([]string{"-key", caKey, "-pub", filepath.Join(dir, "p.pem")}); err != nil {
		t.Fatal(err)
	}
	if err := runIssue([]string{"-key", caKey}); err == nil {
		t.Error("issue without -client-pub accepted")
	}
	if err := runIssue([]string{"-key", caKey, "-client-pub", filepath.Join(dir, "p.pem")}); err == nil {
		t.Error("issue without properties accepted")
	}
	if err := runIssue([]string{"-key", "/missing", "-client-pub", filepath.Join(dir, "p.pem"), "-prop", "a=b"}); err == nil {
		t.Error("issue with missing CA key accepted")
	}
}

func TestPropListFlag(t *testing.T) {
	var p propList
	if err := p.Set("role=analyst"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("novalue"); err == nil {
		t.Error("malformed property accepted")
	}
	if err := p.Set("=x"); err == nil {
		t.Error("empty name accepted")
	}
	if len(p) != 1 || p[0].Name != "role" {
		t.Errorf("propList: %v", p)
	}
	_ = p.String()
}
