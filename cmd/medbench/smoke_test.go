package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchSmoke is the `make bench-smoke` entry point: a tiny-row run of
// every medbench table, asserting that the machine-readable reports carry
// the full schema — in particular the cores/gomaxprocs runner fields and
// the commutative-engine entry this schema version introduced. It guards
// the BENCH artifact contract, not performance numbers.
func TestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is a full (if tiny) protocol sweep; skipped with -short")
	}
	h, err := newHarness(12, 6, 0.5, 0, 1536, 1024)
	if err != nil {
		t.Fatal(err)
	}

	// The five paper tables print only; they smoke the protocol sweep.
	for name, f := range map[string]func() error{
		"table1": h.table1, "table2": h.table2, "table3": h.table3,
		"table4": h.table4, "table5": h.table5,
	} {
		if err := f(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	dir := t.TempDir()
	readJSON := func(path string, v any) {
		t.Helper()
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(blob, v); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}

	parallelPath := filepath.Join(dir, "parallel.json")
	if err := h.tableParallel(parallelPath); err != nil {
		t.Fatal(err)
	}
	var par parallelReport
	readJSON(parallelPath, &par)
	if par.Cores < 1 || par.GOMAXPROCS < 1 {
		t.Errorf("parallel report runner fields: cores=%d gomaxprocs=%d, want both >= 1", par.Cores, par.GOMAXPROCS)
	}
	if par.GOOS == "" || par.GOARCH == "" {
		t.Error("parallel report missing goos/goarch")
	}
	if len(par.Protocols) == 0 {
		t.Error("parallel report has no protocol runs")
	}
	for _, p := range par.Protocols {
		if p.WallNs <= 0 || p.Workers < 1 || p.Protocol == "" {
			t.Errorf("malformed protocol run %+v", p)
		}
	}
	if par.Paillier.Speedup <= 0 || par.Paillier.TextbookNsPerOp <= 0 {
		t.Errorf("malformed paillier entry %+v", par.Paillier)
	}
	eng := par.Engine
	if eng.GroupBits != 1536 || eng.Values <= 0 {
		t.Errorf("malformed engine entry %+v", eng)
	}
	if eng.FullNsPerOp <= 0 || eng.ShortNsPerOp <= 0 || eng.Speedup <= 0 {
		t.Errorf("engine entry missing per-op times: %+v", eng)
	}
	if eng.ShortExpBits >= eng.FullExpBits {
		t.Errorf("engine entry: short exponent (%d bits) not shorter than full (%d bits)", eng.ShortExpBits, eng.FullExpBits)
	}
	if eng.QRTestJacobiNs <= 0 || eng.QRTestSpeedup <= 0 {
		t.Errorf("engine entry missing QR-test times: %+v", eng)
	}
	if eng.CTLadderNsPerOp <= 0 || eng.CTLadderOverhead <= 0 {
		t.Errorf("engine entry missing constant-time ladder times: %+v", eng)
	}

	phasesPath := filepath.Join(dir, "phases.json")
	if err := h.tablePhases(phasesPath); err != nil {
		t.Fatal(err)
	}
	var ph phasesReport
	readJSON(phasesPath, &ph)
	if ph.Cores < 1 || ph.GOMAXPROCS < 1 {
		t.Errorf("phases report runner fields: cores=%d gomaxprocs=%d, want both >= 1", ph.Cores, ph.GOMAXPROCS)
	}
	if len(ph.Protocols) == 0 {
		t.Error("phases report has no protocols")
	}
	if ph.LintNs <= 0 {
		t.Errorf("phases report lint_ns = %d, want > 0 (full seclint run wall time)", ph.LintNs)
	}
	// The join protocols take the unchecked encrypt paths by design
	// (oracle-hashed inputs, own ciphertexts), so commutative.qrtest
	// stays 0 here — but commutative.exp must track the 2(n+m) ladder
	// count exactly, which is what the op-counter fix pinned down.
	var sawExp bool
	for _, p := range ph.Protocols {
		if p.WallNs <= 0 || p.Protocol == "" {
			t.Errorf("malformed phases protocol %+v", p)
		}
		if p.Protocol == "commutative-encryption" {
			sawExp = p.Ops["commutative.exp"] > 0
			if want := int64(2 * (6 + 6)); p.Ops["commutative.exp"] != want {
				t.Errorf("commutative.exp = %d, want exactly %d (= 2(n+m))", p.Ops["commutative.exp"], want)
			}
		}
	}
	if !sawExp {
		t.Error("commutative protocol reported no commutative.exp ops")
	}

	largePath := filepath.Join(dir, "large.json")
	if err := tableLarge(0.0002, 1536, 1024, largePath); err != nil {
		t.Fatal(err)
	}
	var lg largeReport
	readJSON(largePath, &lg)
	if lg.Cores < 1 || lg.GOMAXPROCS < 1 {
		t.Errorf("large report runner fields: cores=%d gomaxprocs=%d, want both >= 1", lg.Cores, lg.GOMAXPROCS)
	}
	if lg.Customers <= 0 || lg.Orders != 10*lg.Customers || lg.JoinSize <= 0 {
		t.Errorf("large report workload shape: %+v", lg)
	}
	if len(lg.Protocols) != len(secureProtocols) {
		t.Errorf("large report covers %d protocols, want %d", len(lg.Protocols), len(secureProtocols))
	}
	for _, p := range lg.Protocols {
		if p.WallNs <= 0 || p.ResultTuples <= 0 {
			t.Errorf("malformed large protocol run %+v", p)
		}
	}

	// The sessions table is also the acceptance gate for the session
	// layer: its largest mux arm drives 64 overlapping protocol runs
	// through one mediator over a single multiplexed TCP link, and the
	// overload arm must produce typed admission rejects.
	sessionsPath := filepath.Join(dir, "sessions.json")
	if err := h.tableSessions(sessionsPath); err != nil {
		t.Fatal(err)
	}
	var se sessionsReport
	readJSON(sessionsPath, &se)
	if se.Cores < 1 || se.GOMAXPROCS < 1 {
		t.Errorf("sessions report runner fields: cores=%d gomaxprocs=%d, want both >= 1", se.Cores, se.GOMAXPROCS)
	}
	if se.Protocol == "" {
		t.Error("sessions report missing protocol")
	}
	var sawMux64 bool
	for _, r := range se.Runs {
		if r.WallNs <= 0 || r.QueriesPerSec <= 0 || r.Clients < 1 {
			t.Errorf("malformed sessions run %+v", r)
		}
		switch r.Mode {
		case "mux":
			if r.TCPDials != 1 {
				t.Errorf("mux arm with %d clients used %d TCP dials, want 1", r.Clients, r.TCPDials)
			}
			if r.Clients == 64 {
				sawMux64 = true
			}
		case "dial":
			if r.TCPDials != int64(r.Clients) {
				t.Errorf("dial arm with %d clients used %d TCP dials, want %d", r.Clients, r.TCPDials, r.Clients)
			}
		default:
			t.Errorf("unknown sessions mode %q", r.Mode)
		}
	}
	if !sawMux64 {
		t.Error("sessions report has no 64-client mux arm (the overlapping-runs acceptance case)")
	}
	ov := se.Overload
	if ov.Completed < 1 || ov.Rejected < 1 || ov.Completed+ov.Rejected != ov.Clients {
		t.Errorf("overload arm %+v: want >=1 completed, >=1 rejected, completed+rejected == clients", ov)
	}
	if ov.ServerRejects < int64(ov.Rejected) {
		t.Errorf("overload arm: server counted %d rejects, client saw %d", ov.ServerRejects, ov.Rejected)
	}
}
