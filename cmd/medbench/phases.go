package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/secmediation/secmediation/internal/mediation"
	"github.com/secmediation/secmediation/internal/seclint"
	"github.com/secmediation/secmediation/internal/telemetry"
)

// phaseCell is one (party, phase) aggregate of a protocol run.
type phaseCell struct {
	Party   string `json:"party"`
	Phase   string `json:"phase"`
	TotalNs int64  `json:"total_ns"`
	Spans   int    `json:"spans"`
}

// protocolPhases is the per-protocol slice of the phases report.
type protocolPhases struct {
	Protocol string           `json:"protocol"`
	WallNs   int64            `json:"wall_ns"`
	Phases   []phaseCell      `json:"phases"`
	Ops      map[string]int64 `json:"crypto_ops,omitempty"`
}

// phasesReport is the BENCH_phases.json schema, shared with the -json
// stdout mode.
type phasesReport struct {
	Cores      int              `json:"cores"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Rows       int              `json:"rows_per_relation"`
	Domain     int              `json:"active_domain"`
	// LintNs is the wall time of one full in-process seclint run (all
	// package-mode and whole-program analyzers over every module
	// package, allowlist-gated) — what the `make lint` build gate costs
	// next to the protocol phases it guards.
	LintNs    int64            `json:"lint_ns"`
	Protocols []protocolPhases `json:"protocols"`
}

// phaseParties and phaseOrder fix the table layout; phases a run emits
// beyond the taxonomy are appended in first-seen order.
var (
	phaseParties = []string{"client", "mediator", "source:S1", "source:S2"}
	phaseOrder   = []string{
		telemetry.PhaseQuerying,
		telemetry.PhaseTranslate,
		telemetry.PhaseSourceEncrypt,
		telemetry.PhaseCrossEncrypt,
		telemetry.PhaseMatch,
		telemetry.PhasePostFilter,
	}
)

// tablePhases runs all five protocols with a shared-registry telemetry
// run each and prints the per-phase × per-party cost table; the
// machine-readable report goes to jsonPath ("-" prints JSON instead of
// the table, "" skips the file).
func (h *harness) tablePhases(jsonPath string) error {
	report := phasesReport{Cores: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Rows: h.spec.Rows1, Domain: h.spec.Domain1}
	protos := append([]mediation.Protocol{mediation.ProtocolPlaintext, mediation.ProtocolMobileCode}, secureProtocols...)
	for _, proto := range protos {
		reg := telemetry.NewRegistry()
		start := time.Now()
		if _, err := h.runWith(proto, h.params(), reg); err != nil {
			return err
		}
		wall := time.Since(start)
		pp := protocolPhases{Protocol: proto.String(), WallNs: wall.Nanoseconds(), Ops: reg.OpDeltas()}
		for _, phase := range phasesSeen(reg) {
			for _, party := range phaseParties {
				total, n := reg.PhaseTotal(party, phase)
				if n == 0 {
					continue
				}
				pp.Phases = append(pp.Phases, phaseCell{Party: party, Phase: phase,
					TotalNs: total.Nanoseconds(), Spans: n})
			}
		}
		report.Protocols = append(report.Protocols, pp)
	}
	// The lint row needs the module source tree; a built binary run
	// outside a checkout (no go.mod above the working directory) skips
	// it rather than losing the protocol phases, leaving lint_ns = 0.
	if _, rootErr := findModuleRoot(); rootErr == nil {
		lintNs, err := lintWallNs()
		if err != nil {
			return fmt.Errorf("timing seclint run: %w", err)
		}
		report.LintNs = lintNs
	}
	if jsonPath != "-" {
		fmt.Println("Per-phase × per-party cost breakdown (measured)")
		printPhases(report)
		if report.LintNs > 0 {
			fmt.Printf("seclint full-module run (the make lint gate): %s\n\n",
				time.Duration(report.LintNs).Round(time.Millisecond))
		} else {
			fmt.Println("seclint full-module run: skipped (no module checkout above the working directory)")
			fmt.Println()
		}
	}
	return writeReport(jsonPath, report)
}

// lintWallNs times one full in-process seclint run: loader
// construction, whole-module type-check, every package-mode and
// whole-program analyzer, allowlist filtering. Findings do not fail
// the benchmark — `make lint` is the gate; this row only prices it.
func lintWallNs() (int64, error) {
	root, err := findModuleRoot()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	loader, err := seclint.NewLoader(root)
	if err != nil {
		return 0, err
	}
	var allow *seclint.Allowlist
	if def := filepath.Join(root, "seclint.allow"); fileExists(def) {
		if allow, err = seclint.ParseAllowlist(def); err != nil {
			return 0, err
		}
	}
	dirs, err := seclint.WalkPackageDirs(root)
	if err != nil {
		return 0, err
	}
	runner := &seclint.Runner{Loader: loader, Analyzers: seclint.All, Allow: allow}
	if _, err := runner.RunDirs(dirs); err != nil {
		return 0, err
	}
	return time.Since(start).Nanoseconds(), nil
}

// findModuleRoot walks up from the working directory to the go.mod
// root, so the lint row works both from the repo root and from the
// package directory (how TestBenchSmoke runs).
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if fileExists(filepath.Join(dir, "go.mod")) {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// phasesSeen returns the taxonomy phases plus any extra span names the
// run produced (session roots excluded), in stable order.
func phasesSeen(reg *telemetry.Registry) []string {
	out := append([]string(nil), phaseOrder...)
	known := map[string]bool{"session": true}
	for _, p := range out {
		known[p] = true
	}
	for _, sp := range reg.Spans() {
		if !known[sp.Name] {
			known[sp.Name] = true
			out = append(out, sp.Name)
		}
	}
	return out
}

// printPhases renders the report: one party-columned matrix per
// protocol, plus its crypto-operation deltas.
func printPhases(report phasesReport) {
	for _, pp := range report.Protocols {
		fmt.Printf("%s (wall %s)\n", pp.Protocol,
			time.Duration(pp.WallNs).Round(time.Millisecond))
		cells := map[[2]string]phaseCell{}
		var phases []string
		seen := map[string]bool{}
		for _, c := range pp.Phases {
			cells[[2]string{c.Party, c.Phase}] = c
			if !seen[c.Phase] {
				seen[c.Phase] = true
				phases = append(phases, c.Phase)
			}
		}
		if len(phases) == 0 {
			fmt.Println("  (no phases recorded)")
			continue
		}
		rows := [][]string{append([]string{"phase"}, phaseParties...)}
		for _, phase := range phases {
			row := []string{phase}
			for _, party := range phaseParties {
				c, ok := cells[[2]string{party, phase}]
				if !ok {
					row = append(row, "-")
					continue
				}
				cell := time.Duration(c.TotalNs).Round(time.Microsecond).String()
				if c.Spans > 1 {
					cell += fmt.Sprintf(" (%d spans)", c.Spans)
				}
				row = append(row, cell)
			}
			rows = append(rows, row)
		}
		printAligned(rows)
		if len(pp.Ops) > 0 {
			line := "crypto ops:"
			for _, name := range sortedKeys(pp.Ops) {
				line += fmt.Sprintf(" %s=%d", name, pp.Ops[name])
			}
			fmt.Println(line)
			fmt.Println()
		}
	}
}
