package main

import (
	"context"
	"crypto/rsa"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/mediation"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/resilience"
	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
	"github.com/secmediation/secmediation/internal/workload/insecurerand"
)

// The chaos soak drives the full recovery stack end to end: a live TCP
// deployment with a restartable datasource, retry-orchestrated clients,
// per-peer circuit breakers on the mediator's source pool, seeded link
// faults, an admission-overload arm and a graceful-drain arm. Its
// invariant is the resilience contract of docs/RESILIENCE.md: every
// query ends in the correct join or a typed error — never a hang, never
// a wrong answer — and the world heals (breakers re-close, no goroutine
// leaks) once the faults stop.

// soakOpenTimeout is the breaker open→half-open timeout used throughout
// the soak: short enough that recovery fits a test run, long enough
// that fast-fails are observable.
const soakOpenTimeout = 150 * time.Millisecond

// soakTimeout is the per-operation protocol deadline; dropped messages
// convert to retryable timeouts after this long.
const soakTimeout = time.Second

// soakRestart records the deterministic kill/restart arm: S1 is down
// for the first two attempts (tripping the mediator's breaker), back up
// for the third (the half-open probe), so the query MUST recover and
// the breaker MUST walk closed→open→half-open→closed.
type soakRestart struct {
	Attempts    int      `json:"attempts"`
	Recovered   bool     `json:"recovered"`
	Transitions []string `json:"breaker_transitions"`
}

// soakSteady records the rolling-fault arm: N workers looping queries
// under seeded per-query fault plans while S1 is periodically killed
// and restarted.
type soakSteady struct {
	Clients         int `json:"clients"`
	Queries         int `json:"queries"`
	Succeeded       int `json:"succeeded"`
	Recovered       int `json:"recovered"`
	Exhausted       int `json:"exhausted"`
	Terminal        int `json:"terminal"`
	FaultsScheduled int `json:"faults_scheduled"`
	SourceRestarts  int `json:"source_restarts"`
}

// soakOverloadArm records the admission arm: more concurrent queries
// than gate slots, every reject carrying a retry-after hint, and the
// orchestrator converging all of them to success.
type soakOverloadArm struct {
	Slots         int   `json:"slots"`
	Clients       int   `json:"clients"`
	Succeeded     int   `json:"succeeded"`
	Recovered     int   `json:"recovered"`
	ServerRejects int64 `json:"server_rejects"`
}

// soakDrainArm records the graceful-drain arm: one session in flight
// when Shutdown begins, which must complete, while a new open on the
// same live link is rejected with ErrDraining.
type soakDrainArm struct {
	InFlight         int   `json:"in_flight"`
	Completed        int64 `json:"completed"`
	RejectedDraining int64 `json:"rejected_draining"`
	SessionsDrained  int64 `json:"sessions_drained"`
	DrainedClean     bool  `json:"drained_clean"`
}

// soakReport is the BENCH_soak.json schema.
type soakReport struct {
	Cores            int             `json:"cores"`
	GOMAXPROCS       int             `json:"gomaxprocs"`
	GOOS             string          `json:"goos"`
	GOARCH           string          `json:"goarch"`
	Seed             uint64          `json:"seed"`
	Protocol         string          `json:"protocol"`
	DurationNs       int64           `json:"duration_ns"`
	Restart          soakRestart     `json:"restart"`
	Steady           soakSteady      `json:"steady"`
	Overload         soakOverloadArm `json:"overload"`
	Drain            soakDrainArm    `json:"drain"`
	RetriesAttempted int64           `json:"retries_attempted"`
	QueriesRecovered int64           `json:"queries_recovered"`
	BreakerReclosed  bool            `json:"breaker_reclosed"`
	GoroutineLeaks   int             `json:"goroutine_leaks"`
	Violations       []string        `json:"violations,omitempty"`
}

// soakWorld is the chaos deployment: a steady S2, a restartable S1 on a
// fixed address, and a mediator whose source pool is governed by
// per-peer circuit breakers.
type soakWorld struct {
	addr        string // mediator
	addr1       string // S1, fixed across restarts
	addr2       string // S2
	reg         *telemetry.Registry
	medSrv      *session.Server
	closeMed    func() error // idempotent: stop accepting new mediator links
	stopS1      func()       // kill S1 and cut its live links
	startS1     func() error // bring S1 back on addr1
	transitions func() []string
	shutdown    func() error
}

// breakerState reads a peer's breaker gauge from the mediator's
// registry (absent gauge = never tripped = closed).
func (w *soakWorld) breakerState(peer string) resilience.State {
	return resilience.State(w.reg.Gauge("breaker_state", "peer", peer).Value())
}

// startSoakWorld deploys the soak topology. slots/waiting/hint shape
// the mediator's admission gate; a non-nil hold parks every mediator
// session after its protocol completes (the drain arm's in-flight
// lever).
func (h *harness) startSoakWorld(slots, waiting int, hint time.Duration, hold <-chan struct{}) (*soakWorld, error) {
	reg := telemetry.NewRegistry()
	r1, r2, err := h.spec.Generate()
	if err != nil {
		return nil, err
	}
	policy := func(rel string) *credential.Policy {
		return &credential.Policy{Relation: rel,
			Require: []credential.Requirement{{Property: credential.Property{Name: "role", Value: "analyst"}}}}
	}
	w := &soakWorld{reg: reg}
	var tmu sync.Mutex
	var trans []string
	w.transitions = func() []string {
		tmu.Lock()
		defer tmu.Unlock()
		return append([]string(nil), trans...)
	}

	var closers []func() error
	serve := func(srv *session.Server, listen string) (string, error) {
		l, err := transport.Listen(listen)
		if err != nil {
			return "", err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		closers = append(closers, func() error {
			if err := l.Close(); err != nil {
				return err
			}
			return <-done
		})
		return l.Addr(), nil
	}

	// S2: a steady source for the lifetime of the world.
	src2 := &mediation.Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
		Policies: map[string]*credential.Policy{"R2": policy("R2")}, TrustedCAs: []*rsa.PublicKey{h.ca.PublicKey()}}
	addr2, err := serve(&session.Server{Handler: func(conn transport.Conn) error {
		conn.SetTimeout(30 * time.Second)
		return src2.Serve(conn)
	}}, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	w.addr2 = addr2

	// S1: restartable. One Source instance persists across restarts (so
	// its stale-attempt registry survives a crash of the serving layer);
	// each restart builds a fresh session.Server on the same address.
	src1 := &mediation.Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
		Policies: map[string]*credential.Policy{"R1": policy("R1")}, TrustedCAs: []*rsa.PublicKey{h.ca.PublicKey()}}
	var s1mu sync.Mutex
	var s1srv *session.Server
	var s1l *transport.Listener
	var s1done chan error
	w.startS1 = func() error {
		listen := w.addr1
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		var l *transport.Listener
		var err error
		// The fixed port was just freed by stopS1; absorb a racing rebind.
		for i := 0; i < 50; i++ {
			if l, err = transport.Listen(listen); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("restarting S1: %w", err)
		}
		srv := &session.Server{Handler: func(conn transport.Conn) error {
			conn.SetTimeout(30 * time.Second)
			return src1.Serve(conn)
		}}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		s1mu.Lock()
		s1srv, s1l, s1done = srv, l, done
		s1mu.Unlock()
		// Only the initial start (before the mediator exists) learns the
		// kernel-assigned port; restarts rebind the same fixed address, so
		// never writing it again keeps the field readable without a lock
		// from the mediator's route and breaker-label closures.
		if w.addr1 == "" {
			w.addr1 = l.Addr()
		}
		return nil
	}
	w.stopS1 = func() {
		s1mu.Lock()
		srv, l, done := s1srv, s1l, s1done
		s1srv, s1l, s1done = nil, nil, nil
		s1mu.Unlock()
		if srv == nil {
			return
		}
		l.Close()
		<-done
		// An already-expired context forces live links closed now: a
		// crash, not a drain.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = srv.Shutdown(ctx)
	}
	if err := w.startS1(); err != nil {
		return nil, err
	}

	// Mediator: its source pool is governed by per-peer breakers whose
	// transitions the soak records (labeled S1/S2, not by port).
	record := func(peer string, from, to resilience.State) {
		name := peer
		switch peer {
		case w.addr1:
			name = "S1"
		case addr2:
			name = "S2"
		}
		tmu.Lock()
		trans = append(trans, name+":"+from.String()+">"+to.String())
		tmu.Unlock()
	}
	pool := &session.Pool{
		Dial: transport.Dial,
		Governor: resilience.NewBreakerSet(resilience.BreakerConfig{
			Window: 8, FailureRate: 0.5, MinSamples: 2,
			OpenTimeout: soakOpenTimeout, Telemetry: reg, OnTransition: record,
		}),
		Telemetry: reg,
	}
	med := &mediation.Mediator{
		Schemas:   map[string]relation.Schema{"R1": r1.Schema(), "R2": r2.Schema()},
		Telemetry: reg,
		Routes: map[string]mediation.Dialer{
			"R1": func() (transport.Conn, error) { return pool.Open(w.addr1) },
			"R2": func() (transport.Conn, error) { return pool.Open(addr2) },
		},
	}
	w.medSrv = &session.Server{
		Handler: func(conn transport.Conn) error {
			conn.SetTimeout(30 * time.Second)
			err := med.HandleSession(conn)
			if hold != nil {
				<-hold
			}
			return err
		},
		Gate:           session.NewGate(slots, waiting, reg),
		Telemetry:      reg,
		RetryAfterHint: hint,
	}
	if w.addr, err = serve(w.medSrv, "127.0.0.1:0"); err != nil {
		w.stopS1()
		return nil, err
	}
	medCloser := closers[len(closers)-1]
	var medOnce sync.Once
	var medErr error
	w.closeMed = func() error {
		medOnce.Do(func() { medErr = medCloser() })
		return medErr
	}
	w.shutdown = func() error {
		first := pool.Close()
		if err := w.closeMed(); err != nil && first == nil {
			first = err
		}
		// closers[0] is S2; the mediator closer is consumed above.
		for _, c := range closers[:len(closers)-1] {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		w.stopS1()
		return first
	}
	return w, nil
}

// soakQuery runs one orchestrated query against the world: each attempt
// is a fresh virtual session tagged with the query/attempt IDs, with an
// optional fault plan injected on the first attempt only (so recovery
// is observable rather than re-faulted).
func (h *harness) soakQuery(pool *session.Pool, addr string, params mediation.Params,
	pol resilience.Policy, plan *transport.FaultPlan) (resilience.Result, error) {
	var got *relation.Relation
	r, err := resilience.Do(pol, func(a resilience.Attempt) error {
		st, err := pool.Open(addr)
		if err != nil {
			return err
		}
		defer st.Close()
		var conn transport.Conn = st
		if a.N == 1 && plan != nil {
			conn = transport.WrapFault(st, plan)
		}
		conn.SetTimeout(params.Timeout)
		p := params
		p.QueryID, p.Attempt = a.QueryID, a.N
		out, err := h.client.Query(conn, sessionsSQL, mediation.ProtocolDAS, p)
		if err != nil {
			return err
		}
		got = out
		return nil
	})
	if err != nil {
		return r, err
	}
	if got.Len() != h.joinSize {
		return r, fmt.Errorf("soak query produced %d tuples, want %d", got.Len(), h.joinSize)
	}
	return r, nil
}

// typedOutcome reports whether a failed query ended in the contract's
// typed vocabulary: retries exhausted, an attributed protocol error, or
// one of the typed transport/session/resilience sentinels.
func typedOutcome(err error) bool {
	var perr *mediation.ProtocolError
	return errors.Is(err, resilience.ErrRetriesExhausted) ||
		errors.As(err, &perr) ||
		errors.Is(err, resilience.ErrCircuitOpen) ||
		errors.Is(err, session.ErrOverloaded) ||
		errors.Is(err, session.ErrDraining) ||
		errors.Is(err, session.ErrMuxClosed) ||
		errors.Is(err, transport.ErrTimeout)
}

// runRestartArm kills S1, lets two attempts fail (tripping the
// mediator's S1 breaker at MinSamples=2), restarts S1 during the second
// backoff and waits out the open timeout, so the third attempt is the
// half-open probe and the query recovers deterministically.
func (h *harness) runRestartArm(w *soakWorld, params mediation.Params, seed uint64) (soakRestart, error) {
	pool := &session.Pool{Dial: transport.Dial,
		Governor: resilience.NewBreakerSet(resilience.BreakerConfig{OpenTimeout: soakOpenTimeout})}
	defer pool.Close()
	// Warm up: one clean query proves the world and caches the links
	// whose death the arm then exercises.
	if _, err := h.soakQuery(pool, w.addr, params,
		resilience.Policy{MaxAttempts: 2, Telemetry: w.reg}, nil); err != nil {
		return soakRestart{}, fmt.Errorf("soak warm-up: %w", err)
	}
	w.stopS1()
	var restartErr error
	sleeps := 0
	pol := resilience.Policy{
		MaxAttempts: 4, BaseDelay: 20 * time.Millisecond, Seed: seed, Telemetry: w.reg,
		Sleep: func(d time.Duration) {
			sleeps++
			if sleeps == 2 {
				// Two recorded dial failures have tripped the breaker.
				// Resurrect S1 and let the open timeout elapse so the
				// next attempt is the half-open probe.
				restartErr = w.startS1()
				time.Sleep(soakOpenTimeout + 100*time.Millisecond)
				return
			}
			time.Sleep(d)
		},
	}
	r, err := h.soakQuery(pool, w.addr, params, pol, nil)
	if restartErr != nil {
		return soakRestart{}, restartErr
	}
	if err != nil {
		return soakRestart{}, fmt.Errorf("restart arm query: %w", err)
	}
	return soakRestart{Attempts: r.Attempts, Recovered: r.Recovered, Transitions: w.transitions()}, nil
}

// runSteadyArm rolls seeded faults over clients concurrent query
// streams for the soak duration while S1 is periodically killed and
// restarted, asserting the typed-outcome invariant on every query.
func (h *harness) runSteadyArm(w *soakWorld, clients int, duration time.Duration,
	params mediation.Params, seed uint64) (soakSteady, []string) {
	arm := soakSteady{Clients: clients}
	var violations []string
	pool := &session.Pool{Dial: transport.Dial,
		Governor: resilience.NewBreakerSet(resilience.BreakerConfig{OpenTimeout: soakOpenTimeout})}
	defer pool.Close()

	// Periodic S1 kill/restart, serialized with the arm's end so the
	// world is whole when the re-close check runs.
	stop := make(chan struct{})
	restarts := make(chan int, 1)
	go func() {
		n := 0
		period := duration / 3
		if period < 300*time.Millisecond {
			period = 300 * time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-stop:
				restarts <- n
				return
			case <-t.C:
				w.stopS1()
				time.Sleep(80 * time.Millisecond)
				if err := w.startS1(); err != nil {
					restarts <- n
					return
				}
				n++
			}
		}
	}()

	classes := []transport.FaultClass{
		transport.FaultDrop, transport.FaultDelay, transport.FaultDuplicate,
		transport.FaultCorrupt, transport.FaultTruncate, transport.FaultClose,
	}
	deadline := time.Now().Add(duration)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := insecurerand.New(int64(seed) + int64(c)*7919)
			for time.Now().Before(deadline) {
				// ~40% of queries get one seeded fault on their first
				// attempt, split between the send and recv sides.
				var plan *transport.FaultPlan
				if rng.Intn(100) < 40 {
					plan = &transport.FaultPlan{
						Class: classes[rng.Intn(len(classes))],
						Seed:  uint64(rng.Int63()), Telemetry: w.reg,
						SendOp: -1, RecvOp: rng.Intn(3),
					}
					if rng.Intn(2) == 0 {
						plan.SendOp, plan.RecvOp = plan.RecvOp, -1
					}
				}
				pol := resilience.Policy{MaxAttempts: 3, BaseDelay: 15 * time.Millisecond,
					Seed: uint64(rng.Int63()) | 1, Telemetry: w.reg}
				r, err := h.soakQuery(pool, w.addr, params, pol, plan)
				mu.Lock()
				arm.Queries++
				if plan != nil {
					arm.FaultsScheduled++
				}
				switch {
				case err == nil:
					arm.Succeeded++
					if r.Recovered {
						arm.Recovered++
					}
				case errors.Is(err, resilience.ErrRetriesExhausted):
					arm.Exhausted++
				case typedOutcome(err):
					arm.Terminal++
				default:
					violations = append(violations, fmt.Sprintf("steady arm: untyped failure: %v", err))
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	arm.SourceRestarts = <-restarts

	// The faults have stopped and S1 is up: the world must heal. Clean
	// queries feed the half-open probes until both breakers sit closed.
	for i := 0; i < 60; i++ {
		if w.breakerState(w.addr1) == resilience.StateClosed && w.breakerState(w.addr2) == resilience.StateClosed {
			break
		}
		_, _ = h.soakQuery(pool, w.addr, params, resilience.Policy{MaxAttempts: 2, Telemetry: w.reg}, nil)
		time.Sleep(50 * time.Millisecond)
	}
	return arm, violations
}

// runOverloadSoakArm floods a 2-slot gate with concurrent orchestrated
// queries; every reject carries a retry-after hint and every query must
// converge to success.
func (h *harness) runOverloadSoakArm(params mediation.Params, seed uint64) (soakOverloadArm, []string, error) {
	const slots, clients = 2, 12
	arm := soakOverloadArm{Slots: slots, Clients: clients}
	var violations []string
	w, err := h.startSoakWorld(slots, 0, 25*time.Millisecond, nil)
	if err != nil {
		return arm, nil, err
	}
	pool := &session.Pool{Dial: transport.Dial,
		Governor: resilience.NewBreakerSet(resilience.BreakerConfig{OpenTimeout: soakOpenTimeout})}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			pol := resilience.Policy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond,
				Seed: seed + uint64(c) + 1, Telemetry: w.reg}
			r, err := h.soakQuery(pool, w.addr, params, pol, nil)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				violations = append(violations, fmt.Sprintf("overload arm query %d: %v", c, err))
				return
			}
			arm.Succeeded++
			if r.Recovered {
				arm.Recovered++
			}
		}(c)
	}
	wg.Wait()
	arm.ServerRejects = w.reg.Counter("sessions_rejected").Value()
	if err := pool.Close(); err != nil && len(violations) == 0 {
		violations = append(violations, fmt.Sprintf("overload arm pool close: %v", err))
	}
	return arm, violations, w.shutdown()
}

// runDrainSoakArm verifies graceful drain on a live deployment: with
// one session still in flight, Shutdown must wait for it, a new session
// on the same link must be rejected with ErrDraining, and releasing the
// in-flight session must complete the drain cleanly.
func (h *harness) runDrainSoakArm(params mediation.Params) (soakDrainArm, []string, error) {
	arm := soakDrainArm{}
	var violations []string
	hold := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(hold)
		}
	}
	w, err := h.startSoakWorld(0, 0, 0, hold)
	if err != nil {
		return arm, nil, err
	}
	pool := &session.Pool{Dial: transport.Dial}
	// The query completes client-side; its mediator session then parks
	// on hold — a deterministic in-flight session.
	if _, err := h.soakQuery(pool, w.addr, params, resilience.Policy{MaxAttempts: 1}, nil); err != nil {
		release()
		return arm, nil, errors.Join(fmt.Errorf("drain arm setup query: %w", err), pool.Close(), w.shutdown())
	}
	arm.InFlight = w.medSrv.InFlight()
	if err := w.closeMed(); err != nil {
		violations = append(violations, fmt.Sprintf("drain arm: closing mediator listener: %v", err))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.medSrv.Shutdown(ctx) }()
	for !w.medSrv.Draining() {
		time.Sleep(time.Millisecond)
	}
	// A new session over the still-open physical link: typed reject.
	if _, err := h.soakQuery(pool, w.addr, params, resilience.Policy{MaxAttempts: 1}, nil); !errors.Is(err, session.ErrDraining) {
		violations = append(violations, fmt.Sprintf("drain arm: new session got %v, want ErrDraining", err))
	}
	select {
	case err := <-done:
		violations = append(violations, fmt.Sprintf("drain arm: Shutdown returned %v before the in-flight session finished", err))
	default:
	}
	release()
	if err := <-done; err == nil {
		arm.DrainedClean = true
	} else {
		violations = append(violations, fmt.Sprintf("drain arm: Shutdown: %v", err))
	}
	arm.Completed = w.reg.Counter("sessions_completed").Value()
	arm.RejectedDraining = w.reg.Counter("sessions_rejected_draining").Value()
	arm.SessionsDrained = w.reg.Counter("sessions_drained").Value()
	if err := pool.Close(); err != nil && len(violations) == 0 {
		violations = append(violations, fmt.Sprintf("drain arm pool close: %v", err))
	}
	return arm, violations, w.shutdown()
}

// tableSoak runs the full chaos soak and writes BENCH_soak.json. It
// returns an error when any resilience invariant is violated, so `make
// soak` is a gate, not just a report.
func (h *harness) tableSoak(clients int, duration time.Duration, seed uint64, jsonPath string) error {
	cores := runtime.NumCPU()
	maxprocs := runtime.GOMAXPROCS(0)
	fmt.Printf("Chaos soak — %d query streams × %v of seeded faults and source restarts (runner: %d core(s), GOMAXPROCS=%d, seed %d)\n",
		clients, duration, cores, maxprocs, seed)
	h.client.Ledger = nil
	params := h.params()
	params.Timeout = soakTimeout

	snap := testutil.Snapshot()
	report := soakReport{Cores: cores, GOMAXPROCS: maxprocs,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Seed: seed, Protocol: mediation.ProtocolDAS.String(), DurationNs: duration.Nanoseconds()}
	var violations []string

	w, err := h.startSoakWorld(0, 0, 0, nil)
	if err != nil {
		return err
	}
	if report.Restart, err = h.runRestartArm(w, params, seed); err != nil {
		return errors.Join(err, w.shutdown())
	}
	var steadyViolations []string
	report.Steady, steadyViolations = h.runSteadyArm(w, clients, duration, params, seed)
	violations = append(violations, steadyViolations...)
	report.BreakerReclosed = w.breakerState(w.addr1) == resilience.StateClosed &&
		w.breakerState(w.addr2) == resilience.StateClosed
	report.RetriesAttempted = w.reg.Counter("retries_attempted").Value()
	report.QueriesRecovered = w.reg.Counter("queries_recovered").Value()
	if err := w.shutdown(); err != nil {
		violations = append(violations, fmt.Sprintf("world shutdown: %v", err))
	}

	var armViolations []string
	if report.Overload, armViolations, err = h.runOverloadSoakArm(params, seed); err != nil {
		return err
	}
	violations = append(violations, armViolations...)
	if report.Drain, armViolations, err = h.runDrainSoakArm(params); err != nil {
		return err
	}
	violations = append(violations, armViolations...)

	// Everything is torn down: no goroutine born during the soak may
	// survive it.
	lc := &leakCounter{}
	testutil.CheckGoroutines(lc, snap)
	report.GoroutineLeaks = lc.n
	violations = append(violations, lc.msgs...)
	violations = append(violations, checkSoakInvariants(&report)...)
	report.Violations = violations

	rows := [][]string{{"arm", "queries", "succeeded", "recovered", "notes"}}
	rows = append(rows, []string{"restart", "1", "1", fmt.Sprint(boolInt(report.Restart.Recovered)),
		fmt.Sprintf("%d attempts, breaker %v", report.Restart.Attempts, report.Restart.Transitions)})
	rows = append(rows, []string{"steady", fmt.Sprint(report.Steady.Queries), fmt.Sprint(report.Steady.Succeeded),
		fmt.Sprint(report.Steady.Recovered),
		fmt.Sprintf("%d faulted, %d restarts, %d exhausted, %d terminal", report.Steady.FaultsScheduled,
			report.Steady.SourceRestarts, report.Steady.Exhausted, report.Steady.Terminal)})
	rows = append(rows, []string{"overload", fmt.Sprint(report.Overload.Clients), fmt.Sprint(report.Overload.Succeeded),
		fmt.Sprint(report.Overload.Recovered),
		fmt.Sprintf("%d slots, %d server rejects (hinted)", report.Overload.Slots, report.Overload.ServerRejects)})
	rows = append(rows, []string{"drain", "2", "1", "0",
		fmt.Sprintf("in-flight %d completed, %d rejected draining, clean=%v",
			report.Drain.InFlight, report.Drain.RejectedDraining, report.Drain.DrainedClean)})
	printAligned(rows)
	fmt.Printf("totals: %d retries attempted, %d queries recovered, breakers re-closed=%v, goroutine leaks=%d\n\n",
		report.RetriesAttempted, report.QueriesRecovered, report.BreakerReclosed, report.GoroutineLeaks)

	if err := writeReport(jsonPath, report); err != nil {
		return err
	}
	if len(violations) > 0 {
		return fmt.Errorf("soak: %d invariant violation(s):\n  %s", len(violations), joinLines(violations))
	}
	return nil
}

// checkSoakInvariants enforces the acceptance contract on the final
// report; each failed check is one violation line.
func checkSoakInvariants(r *soakReport) []string {
	var v []string
	if !r.Restart.Recovered || r.Restart.Attempts < 2 {
		v = append(v, fmt.Sprintf("restart arm did not recover (attempts=%d)", r.Restart.Attempts))
	}
	for _, want := range []string{"S1:closed>open", "S1:open>half-open", "S1:half-open>closed"} {
		found := false
		for _, tr := range r.Restart.Transitions {
			if tr == want {
				found = true
				break
			}
		}
		if !found {
			v = append(v, fmt.Sprintf("breaker transition %q missing (got %v)", want, r.Restart.Transitions))
		}
	}
	if r.QueriesRecovered < 1 {
		v = append(v, "no query recovered across the soak")
	}
	if !r.BreakerReclosed {
		v = append(v, "a breaker did not re-close after the faults stopped")
	}
	if r.Steady.Queries < 1 || r.Steady.Succeeded < 1 {
		v = append(v, fmt.Sprintf("steady arm ran %d queries, %d succeeded", r.Steady.Queries, r.Steady.Succeeded))
	}
	if r.Overload.Succeeded != r.Overload.Clients {
		v = append(v, fmt.Sprintf("overload arm: %d/%d queries converged", r.Overload.Succeeded, r.Overload.Clients))
	}
	if r.Overload.ServerRejects < 1 {
		v = append(v, "overload arm produced no hinted rejects")
	}
	if r.Drain.InFlight != 1 || !r.Drain.DrainedClean || r.Drain.RejectedDraining < 1 || r.Drain.SessionsDrained < 1 {
		v = append(v, fmt.Sprintf("drain arm: in-flight=%d clean=%v rejected=%d drained=%d",
			r.Drain.InFlight, r.Drain.DrainedClean, r.Drain.RejectedDraining, r.Drain.SessionsDrained))
	}
	if r.GoroutineLeaks > 0 {
		v = append(v, fmt.Sprintf("%d goroutine leak report(s)", r.GoroutineLeaks))
	}
	return v
}

// leakCounter adapts testutil.CheckGoroutines to a non-test binary.
type leakCounter struct {
	n    int
	msgs []string
}

func (l *leakCounter) Helper() {}

func (l *leakCounter) Errorf(format string, args ...any) {
	l.n++
	l.msgs = append(l.msgs, fmt.Sprintf(format, args...))
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
