package main

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"github.com/secmediation/secmediation/internal/crypto/commutative"
	"github.com/secmediation/secmediation/internal/crypto/groups"
)

// commutativeEngineRun is the before/after measurement of the fast-
// exponentiation engine on the commutative protocol's single-thread
// cross-encryption path: full-length exponents (the scheme exactly as
// Agrawal et al. state it, the pre-engine baseline) against the
// short-exponent window-scheduled keys GenerateKey now produces, plus
// the QR membership test (Euler-criterion exponentiation vs the Jacobi
// symbol that replaced it).
type commutativeEngineRun struct {
	GroupBits      int     `json:"group_bits"`
	Values         int     `json:"values"`
	FullExpBits    int     `json:"full_exponent_bits"`
	ShortExpBits   int     `json:"short_exponent_bits"`
	FullNsPerOp    int64   `json:"full_exponent_ns_per_op"`
	ShortNsPerOp   int64   `json:"short_exponent_ns_per_op"`
	Speedup        float64 `json:"speedup"`
	QRTestEulerNs  int64   `json:"qrtest_euler_ns_per_op"`
	QRTestJacobiNs int64   `json:"qrtest_jacobi_ns_per_op"`
	QRTestSpeedup  float64 `json:"qrtest_speedup"`
	// The constant-time ladder (GenerateKeyConstantTime) against the
	// calibrated short-exponent engine on the same path: the price of
	// a secret-independent execution trajectory (docs/SECURITY.md).
	CTLadderNsPerOp  int64   `json:"ct_ladder_ns_per_op"`
	CTLadderOverhead float64 `json:"ct_ladder_overhead"`
}

// benchGroup resolves the -groupbits flag to its RFC 3526 group.
func benchGroup(bits int) (*groups.Group, error) {
	switch bits {
	case 1536:
		return groups.MODP1536(), nil
	case 2048:
		return groups.MODP2048(), nil
	case 3072:
		return groups.MODP3072(), nil
	default:
		return nil, fmt.Errorf("unsupported group size %d (use 1536, 2048 or 3072)", bits)
	}
}

// measureCommutativeEngine times single-thread batch re-encryption of
// `values` group elements — the protocol's cross-encryption inner loop —
// under a full-exponent key and a short-exponent key of the given group.
func measureCommutativeEngine(groupBits, values int) (commutativeEngineRun, error) {
	g, err := benchGroup(groupBits)
	if err != nil {
		return commutativeEngineRun{}, err
	}
	full, err := commutative.GenerateKeyFullExponent(g, rand.Reader)
	if err != nil {
		return commutativeEngineRun{}, err
	}
	short, err := commutative.GenerateKey(g, rand.Reader)
	if err != nil {
		return commutativeEngineRun{}, err
	}
	ct, err := commutative.GenerateKeyConstantTime(g, rand.Reader)
	if err != nil {
		return commutativeEngineRun{}, err
	}
	xs := make([]*big.Int, values)
	for i := range xs {
		if xs[i], err = g.RandomElement(rand.Reader); err != nil {
			return commutativeEngineRun{}, err
		}
	}
	crossWall := func(k *commutative.Key) (int64, error) {
		// One warm-up op so the engine's backend calibration is not billed.
		if _, err := k.ReEncrypt(xs[0]); err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := k.ReEncryptBatch(xs, 1); err != nil {
			return 0, err
		}
		return time.Since(start).Nanoseconds() / int64(values), nil
	}
	fullNs, err := crossWall(full)
	if err != nil {
		return commutativeEngineRun{}, err
	}
	shortNs, err := crossWall(short)
	if err != nil {
		return commutativeEngineRun{}, err
	}
	ctNs, err := crossWall(ct)
	if err != nil {
		return commutativeEngineRun{}, err
	}

	// Membership test: the Euler-criterion exponentiation x^q mod p that
	// Encrypt/Decrypt used to pay, vs the group's Jacobi-symbol test.
	start := time.Now()
	for _, x := range xs {
		if new(big.Int).Exp(x, g.Q, g.P).Cmp(big.NewInt(1)) != 0 {
			return commutativeEngineRun{}, fmt.Errorf("euler test rejected a group element")
		}
	}
	eulerNs := time.Since(start).Nanoseconds() / int64(values)
	start = time.Now()
	for _, x := range xs {
		if !g.IsQuadraticResidue(x) {
			return commutativeEngineRun{}, fmt.Errorf("jacobi test rejected a group element")
		}
	}
	jacobiNs := time.Since(start).Nanoseconds() / int64(values)

	return commutativeEngineRun{
		GroupBits:      groupBits,
		Values:         values,
		FullExpBits:    g.Q.BitLen(),
		ShortExpBits:   g.ShortExponentBits(),
		FullNsPerOp:    fullNs,
		ShortNsPerOp:   shortNs,
		Speedup:        float64(fullNs) / float64(shortNs),
		QRTestEulerNs:  eulerNs,
		QRTestJacobiNs: jacobiNs,
		QRTestSpeedup:  float64(eulerNs) / float64(jacobiNs),

		CTLadderNsPerOp:  ctNs,
		CTLadderOverhead: float64(ctNs) / float64(shortNs),
	}, nil
}
