package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestSoakShort is the `make soak-short` entry point: a compressed run
// of the full chaos soak (restart, steady, overload and drain arms) on
// a tiny workload, asserting the BENCH_soak.json schema and the
// resilience acceptance contract — the restart-arm query recovers
// through the breaker's closed→open→half-open→closed walk, the drain
// arm completes its in-flight session while rejecting new ones with a
// typed error, and no goroutine survives the soak. tableSoak itself
// returns an error on any invariant violation, so the schema checks
// here guard the report shape on top of the behavioral gate.
func TestSoakShort(t *testing.T) {
	if testing.Short() {
		t.Skip("the soak drives live TCP deployments through fault schedules; skipped with -short")
	}
	h, err := newHarness(12, 6, 0.5, 0, 1536, 1024)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "soak.json")
	if err := h.tableSoak(4, 1500*time.Millisecond, 20070415, path); err != nil {
		t.Fatalf("soak invariants: %v", err)
	}

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r soakReport
	if err := json.Unmarshal(blob, &r); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if r.Cores < 1 || r.GOMAXPROCS < 1 || r.GOOS == "" || r.GOARCH == "" {
		t.Errorf("soak report runner fields: %+v", r)
	}
	if r.Seed != 20070415 || r.Protocol == "" || r.DurationNs <= 0 {
		t.Errorf("soak report run fields: seed=%d protocol=%q duration=%d", r.Seed, r.Protocol, r.DurationNs)
	}
	if !r.Restart.Recovered || r.Restart.Attempts < 2 {
		t.Errorf("restart arm did not record a recovery: %+v", r.Restart)
	}
	for _, want := range []string{"S1:closed>open", "S1:open>half-open", "S1:half-open>closed"} {
		found := false
		for _, tr := range r.Restart.Transitions {
			if tr == want {
				found = true
			}
		}
		if !found {
			t.Errorf("restart arm transitions %v missing %q", r.Restart.Transitions, want)
		}
	}
	if r.Steady.Queries < 1 || r.Steady.Succeeded < 1 || r.Steady.Clients != 4 {
		t.Errorf("steady arm shape: %+v", r.Steady)
	}
	if got := r.Steady.Succeeded + r.Steady.Exhausted + r.Steady.Terminal; got != r.Steady.Queries {
		t.Errorf("steady arm outcomes: %d succeeded + %d exhausted + %d terminal != %d queries",
			r.Steady.Succeeded, r.Steady.Exhausted, r.Steady.Terminal, r.Steady.Queries)
	}
	if r.Overload.Succeeded != r.Overload.Clients || r.Overload.ServerRejects < 1 {
		t.Errorf("overload arm: %+v", r.Overload)
	}
	if r.Drain.InFlight != 1 || !r.Drain.DrainedClean || r.Drain.RejectedDraining < 1 || r.Drain.SessionsDrained < 1 {
		t.Errorf("drain arm: %+v", r.Drain)
	}
	if r.QueriesRecovered < 1 || r.RetriesAttempted < 1 {
		t.Errorf("soak totals: recovered=%d retries=%d, want both >= 1", r.QueriesRecovered, r.RetriesAttempted)
	}
	if !r.BreakerReclosed {
		t.Error("breakers did not re-close after the faults stopped")
	}
	if r.GoroutineLeaks != 0 {
		t.Errorf("%d goroutine leaks", r.GoroutineLeaks)
	}
	if len(r.Violations) != 0 {
		t.Errorf("violations in report: %v", r.Violations)
	}
}
