package main

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/mediation"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

const sessionsSQL = "SELECT * FROM R1 JOIN R2 ON R1.id = R2.id"

// sessionsRun is one (clients, link mode) throughput measurement.
type sessionsRun struct {
	Clients       int     `json:"clients"`
	Mode          string  `json:"mode"` // "mux" (one shared link) or "dial" (one TCP dial per query)
	TCPDials      int64   `json:"tcp_dials"`
	WallNs        int64   `json:"wall_ns"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	SpeedupVsDial float64 `json:"speedup_vs_dial,omitempty"` // mux rows only
}

// sessionsOverload records the admission-control arm: more concurrent
// sessions than gate slots, overflow refused with ErrOverloaded.
type sessionsOverload struct {
	Slots         int   `json:"slots"`
	Clients       int   `json:"clients"`
	Completed     int   `json:"completed"`
	Rejected      int   `json:"rejected"`
	ServerRejects int64 `json:"server_rejects"` // mediator's sessions_rejected counter
}

// sessionsReport is the BENCH_sessions.json schema.
type sessionsReport struct {
	Cores      int              `json:"cores"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Rows       int              `json:"rows_per_relation"`
	Domain     int              `json:"active_domain"`
	Protocol   string           `json:"protocol"`
	Runs       []sessionsRun    `json:"runs"`
	Overload   sessionsOverload `json:"overload"`
}

// sessionWorld is a live TCP deployment: two sources and a mediator
// behind session.Servers, the mediator holding one pooled multiplexed
// link per source.
type sessionWorld struct {
	addr     string
	reg      *telemetry.Registry
	shutdown func() error
}

// startSessionWorld deploys the topology on loopback listeners. slots
// and waiting configure the mediator's admission gate (0 slots =
// unlimited).
func (h *harness) startSessionWorld(slots, waiting int) (*sessionWorld, error) {
	reg := telemetry.NewRegistry()
	r1, r2, err := h.spec.Generate()
	if err != nil {
		return nil, err
	}
	policy := func(rel string) *credential.Policy {
		return &credential.Policy{Relation: rel,
			Require: []credential.Requirement{{Property: credential.Property{Name: "role", Value: "analyst"}}}}
	}
	var closers []func() error
	serve := func(srv *session.Server) (string, error) {
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return "", err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		closers = append(closers, func() error {
			if err := l.Close(); err != nil {
				return err
			}
			return <-done
		})
		return l.Addr(), nil
	}
	startSource := func(src *mediation.Source) (string, error) {
		return serve(&session.Server{Handler: func(conn transport.Conn) error {
			conn.SetTimeout(30 * time.Second)
			return src.Serve(conn)
		}})
	}
	addr1, err := startSource(&mediation.Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
		Policies: map[string]*credential.Policy{"R1": policy("R1")}, TrustedCAs: []*rsa.PublicKey{h.ca.PublicKey()}})
	if err != nil {
		return nil, err
	}
	addr2, err := startSource(&mediation.Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
		Policies: map[string]*credential.Policy{"R2": policy("R2")}, TrustedCAs: []*rsa.PublicKey{h.ca.PublicKey()}})
	if err != nil {
		return nil, err
	}
	pool := &session.Pool{Dial: transport.Dial, Telemetry: reg}
	med := &mediation.Mediator{
		Schemas:   map[string]relation.Schema{"R1": r1.Schema(), "R2": r2.Schema()},
		Telemetry: reg,
		Routes: map[string]mediation.Dialer{
			"R1": func() (transport.Conn, error) { return pool.Open(addr1) },
			"R2": func() (transport.Conn, error) { return pool.Open(addr2) },
		},
	}
	addr, err := serve(&session.Server{
		Handler: func(conn transport.Conn) error {
			conn.SetTimeout(30 * time.Second)
			return med.HandleSession(conn)
		},
		Gate:      session.NewGate(slots, waiting, reg),
		Telemetry: reg,
	})
	if err != nil {
		return nil, err
	}
	shutdown := func() error {
		var first error
		if err := pool.Close(); err != nil {
			first = err
		}
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return &sessionWorld{addr: addr, reg: reg, shutdown: shutdown}, nil
}

// tableSessions measures concurrent-clients throughput of the session
// layer: N overlapping DAS queries over one multiplexed link versus one
// TCP dial per query, plus the admission-control overload arm, and
// writes BENCH_sessions.json (skipped when jsonPath is empty).
func (h *harness) tableSessions(jsonPath string) error {
	cores := runtime.NumCPU()
	maxprocs := runtime.GOMAXPROCS(0)
	fmt.Printf("Session layer — overlapping queries over one multiplexed link vs dial-per-query (runner: %d core(s), GOMAXPROCS=%d)\n",
		cores, maxprocs)

	// Concurrent leakage accounting would interleave across sessions;
	// throughput runs measure the protocols, not the ledger.
	h.client.Ledger = nil
	params := h.params()
	params.Timeout = 30 * time.Second

	world, err := h.startSessionWorld(0, 0)
	if err != nil {
		return err
	}
	report := sessionsReport{Cores: cores, GOMAXPROCS: maxprocs,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Rows: h.spec.Rows1, Domain: h.spec.Domain1,
		Protocol: mediation.ProtocolDAS.String()}

	rows := [][]string{{"clients", "mode", "tcp dials", "wall", "queries/s", "speedup vs dial"}}
	for _, clients := range []int{1, 4, 16, 64} {
		var dialWall time.Duration
		for _, mode := range []string{"dial", "mux"} {
			before := world.reg.Counter("links_accepted").Value()
			var wall time.Duration
			var err error
			if mode == "dial" {
				wall, err = h.runDialArm(world.addr, clients, params)
				dialWall = wall
			} else {
				wall, err = h.runMuxArm(world.addr, clients, params)
			}
			if err != nil {
				if serr := world.shutdown(); serr != nil {
					return errors.Join(err, serr)
				}
				return err
			}
			run := sessionsRun{
				Clients:       clients,
				Mode:          mode,
				TCPDials:      world.reg.Counter("links_accepted").Value() - before,
				WallNs:        wall.Nanoseconds(),
				QueriesPerSec: float64(clients) / wall.Seconds(),
			}
			speedup := ""
			if mode == "mux" {
				run.SpeedupVsDial = float64(dialWall) / float64(wall)
				speedup = fmt.Sprintf("%.2fx", run.SpeedupVsDial)
			}
			report.Runs = append(report.Runs, run)
			rows = append(rows, []string{fmt.Sprint(clients), mode,
				fmt.Sprint(run.TCPDials), wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%.1f", run.QueriesPerSec), speedup})
		}
	}
	printAligned(rows)
	if err := world.shutdown(); err != nil {
		return err
	}

	over, err := h.runOverloadArm(2, 16, params)
	if err != nil {
		return err
	}
	report.Overload = over
	fmt.Printf("admission control: %d slots, %d concurrent sessions -> %d completed, %d rejected with ErrOverloaded (server counted %d)\n\n",
		over.Slots, over.Clients, over.Completed, over.Rejected, over.ServerRejects)

	return writeReport(jsonPath, report)
}

// runMuxArm runs n overlapping queries as virtual sessions over ONE
// physical link and returns the wall time for the whole batch.
func (h *harness) runMuxArm(addr string, n int, params mediation.Params) (time.Duration, error) {
	conn, err := transport.Dial(addr)
	if err != nil {
		return 0, err
	}
	mux := session.NewMux(conn, session.Config{})
	defer mux.Close()
	start := time.Now()
	err = h.forEachSession(n, func() error {
		st, err := mux.Open()
		if err != nil {
			return err
		}
		defer st.Close()
		st.SetTimeout(params.Timeout)
		return h.checkQuery(st, params)
	})
	return time.Since(start), err
}

// runDialArm runs n overlapping queries, each over its own fresh TCP
// dial — the pre-session-layer deployment shape.
func (h *harness) runDialArm(addr string, n int, params mediation.Params) (time.Duration, error) {
	start := time.Now()
	err := h.forEachSession(n, func() error {
		conn, err := transport.Dial(addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		conn.SetTimeout(params.Timeout)
		return h.checkQuery(conn, params)
	})
	return time.Since(start), err
}

// forEachSession runs fn n times concurrently and returns the first
// error.
func (h *harness) forEachSession(n int, fn func() error) error {
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- fn()
		}()
	}
	wg.Wait()
	// Drain by count rather than close+range: every worker has sent
	// exactly one result by now, and leaving the channel open keeps the
	// send/close race impossible by construction (conccheck-clean).
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// checkQuery runs one DAS query on the given link and validates the
// join size, so the throughput numbers only ever count correct runs.
func (h *harness) checkQuery(conn transport.Conn, params mediation.Params) error {
	got, err := h.client.Query(conn, sessionsSQL, mediation.ProtocolDAS, params)
	if err != nil {
		return err
	}
	if got.Len() != h.joinSize {
		return fmt.Errorf("session produced %d tuples, want %d", got.Len(), h.joinSize)
	}
	return nil
}

// runOverloadArm saturates a slots-sized admission gate with clients
// concurrent sessions over one link: all session opens land before any
// query runs, so exactly the overflow is refused with ErrOverloaded.
func (h *harness) runOverloadArm(slots, clients int, params mediation.Params) (sessionsOverload, error) {
	world, err := h.startSessionWorld(slots, 0)
	if err != nil {
		return sessionsOverload{}, err
	}
	over := sessionsOverload{Slots: slots, Clients: clients}
	conn, err := transport.Dial(world.addr)
	if err != nil {
		return over, errors.Join(err, world.shutdown())
	}
	mux := session.NewMux(conn, session.Config{})

	// Open every stream before querying: the mediator's gate decides
	// admission as the open frames arrive, while every admitted handler
	// still waits for its request.
	streams := make([]*session.Stream, clients)
	for i := range streams {
		if streams[i], err = mux.Open(); err != nil {
			return over, errors.Join(err, world.shutdown())
		}
	}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for _, st := range streams {
		wg.Add(1)
		go func(st *session.Stream) {
			defer wg.Done()
			defer st.Close()
			st.SetTimeout(params.Timeout)
			err := h.checkQuery(st, params)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				over.Completed++
			case errors.Is(err, session.ErrOverloaded):
				over.Rejected++
			case firstErr == nil:
				firstErr = err
			}
		}(st)
	}
	wg.Wait()
	over.ServerRejects = world.reg.Counter("sessions_rejected").Value()
	if err := mux.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := world.shutdown(); err != nil && firstErr == nil {
		firstErr = err
	}
	return over, firstErr
}
