// Command medbench regenerates the paper's evaluation artifacts from live
// protocol runs:
//
//	medbench -table 1    Table 1  — extra information disclosed to client and mediator
//	medbench -table 2    Table 2  — applied cryptographic primitives
//	medbench -table 3    Section 6 cost matrix (per-party compute, traffic, interactions)
//	medbench -table 4    DAS partitioning trade-off (superset size vs partition count)
//	medbench -table 5    extension ablations (selection pushdown, footnote modes, FNP buckets)
//	medbench -table parallel  worker-pool + fixed-base + fast-exponentiation speedup
//	                          summary (writes BENCH_parallel.json)
//	medbench -table phases    per-phase × per-party cost breakdown from telemetry spans
//	                          (writes BENCH_phases.json)
//	medbench -table large     TPC-H-shaped orders⋈customer workload at -scale
//	                          (writes BENCH_large.json)
//	medbench -table sessions  session-layer concurrent-clients throughput:
//	                          overlapping queries over one multiplexed TCP
//	                          link vs dial-per-query, plus the admission
//	                          overload arm (writes BENCH_sessions.json)
//	medbench -table soak      query-lifecycle fault-recovery soak: retry
//	                          orchestration + circuit breakers + graceful
//	                          drain under seeded link faults and source
//	                          kill/restart; fails on any invariant
//	                          violation (writes BENCH_soak.json)
//	medbench -table all  everything except large (which sizes itself by -scale,
//	                     not the -rows/-domain toy knobs), sessions and soak
//	                     (which measure the deployment transport and its
//	                     fault recovery, not the paper's evaluation
//	                     artifacts)
//
// Workload knobs: -rows, -domain, -overlap, -groupbits, -paillier; the
// large table is sized by -scale alone (scale 1 = 150k customer / 1.5M
// orders rows, the realistic setting of arXiv 2103.05792).
// -json overrides the output path of the machine-readable summaries;
// "-" prints the JSON to stdout instead of the human table, "" keeps the
// per-table default (BENCH_parallel.json / BENCH_phases.json).
// Every number is measured from an instrumented in-process run of the real
// protocols; nothing is hard-coded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1|2|3|4|5|parallel|phases|large|sessions|soak|all")
	rows := flag.Int("rows", 200, "tuples per relation")
	domain := flag.Int("domain", 50, "active-domain size of the join attribute")
	overlap := flag.Float64("overlap", 0.5, "fraction of shared join values")
	skew := flag.Float64("skew", 0, "Zipf skew of join-key multiplicities (0 = uniform)")
	groupBits := flag.Int("groupbits", 1536, "commutative group size")
	paillierBits := flag.Int("paillier", 1024, "Paillier modulus size")
	scale := flag.Float64("scale", 0.01, "TPC-H scale factor for -table large (1 = 150k/1.5M rows)")
	jsonOut := flag.String("json", "", `machine-readable output path ("" = per-table default, "-" = stdout JSON only)`)
	soakClients := flag.Int("soak-clients", 8, "concurrent query streams in the -table soak steady arm")
	soakDuration := flag.Duration("soak-duration", 10*time.Second, "length of the -table soak steady arm")
	soakSeed := flag.Uint64("soak-seed", 20070415, "seed of the -table soak fault schedule")
	flag.Parse()

	if *table == "large" {
		// The large table owns its workload shape; skip the toy harness.
		if err := tableLarge(*scale, *groupBits, *paillierBits, orDefault(*jsonOut, "BENCH_large.json")); err != nil {
			log.Fatalf("medbench: %v", err)
		}
		return
	}

	h, err := newHarness(*rows, *domain, *overlap, *skew, *groupBits, *paillierBits)
	if err != nil {
		log.Fatalf("medbench: %v", err)
	}
	fmt.Printf("workload: |R1|=|R2|=%d, |domactive|=%d, overlap=%.0f%%, join size=%d\n",
		*rows, *domain, *overlap*100, h.joinSize)
	fmt.Printf("parameters: commutative group %d bit, Paillier %d bit\n\n", *groupBits, *paillierBits)

	start := time.Now()
	switch *table {
	case "1":
		err = h.table1()
	case "2":
		err = h.table2()
	case "3":
		err = h.table3()
	case "4":
		err = h.table4()
	case "5":
		err = h.table5()
	case "parallel":
		err = h.tableParallel(orDefault(*jsonOut, "BENCH_parallel.json"))
	case "phases":
		err = h.tablePhases(orDefault(*jsonOut, "BENCH_phases.json"))
	case "sessions":
		err = h.tableSessions(orDefault(*jsonOut, "BENCH_sessions.json"))
	case "soak":
		err = h.tableSoak(*soakClients, *soakDuration, *soakSeed, orDefault(*jsonOut, "BENCH_soak.json"))
	case "all":
		parallelTable := func() error { return h.tableParallel(orDefault(*jsonOut, "BENCH_parallel.json")) }
		phasesTable := func() error { return h.tablePhases(orDefault(*jsonOut, "BENCH_phases.json")) }
		for _, f := range []func() error{h.table1, h.table2, h.table3, h.table4, h.table5, parallelTable, phasesTable} {
			if err = f(); err != nil {
				break
			}
		}
	default:
		err = fmt.Errorf("unknown table %q", *table)
	}
	if err != nil {
		log.Fatalf("medbench: %v", err)
	}
	fmt.Printf("total measurement time: %v\n", time.Since(start).Round(time.Millisecond))
}

// printAligned renders rows as an aligned table.
func printAligned(rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprint(os.Stdout, b.String())
	fmt.Println()
}

// orDefault resolves the -json flag against a table's default path.
func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// writeReport writes a machine-readable summary as indented JSON: to
// stdout when path is "-", to the named file otherwise ("" skips).
func writeReport(path string, v any) error {
	if path == "" {
		return nil
	}
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
