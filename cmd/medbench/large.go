package main

import (
	"fmt"
	"runtime"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/workload"
)

// largeProtocolRun is one secure protocol's end-to-end measurement on the
// TPC-H-shaped workload.
type largeProtocolRun struct {
	Protocol     string           `json:"protocol"`
	WallNs       int64            `json:"wall_ns"`
	ResultTuples int              `json:"result_tuples"`
	Ops          map[string]int64 `json:"crypto_ops,omitempty"`
}

// largeReport is the BENCH_large.json schema.
type largeReport struct {
	Cores          int               `json:"cores"`
	GOMAXPROCS     int               `json:"gomaxprocs"`
	GOOS           string            `json:"goos"`
	GOARCH         string            `json:"goarch"`
	Scale          float64           `json:"scale"`
	Customers      int               `json:"customers"`
	Orders         int               `json:"orders"`
	CustomerDomain int               `json:"customer_active_domain"`
	OrderDomain    int               `json:"order_active_domain"`
	JoinSize       int               `json:"join_size"`
	GroupBits      int               `json:"group_bits"`
	PaillierBits   int               `json:"paillier_bits"`
	Buckets        int               `json:"pm_buckets"`
	Protocols      []largeProtocolRun `json:"protocols"`
}

// tableLarge runs the secure protocols on a TPC-H-shaped orders⋈customer
// workload: |customer| = 150000·scale with every customer key active,
// |orders| = 10·|customer| over ⌊2/3·|customer|⌋ distinct customers (the
// TPC-H ratio of customers with open orders), overlap 1 — every order
// joins. scale = 1 is the paper-realistic 150k/1.5M-row setting; the
// default is far smaller so the table finishes in minutes on one core,
// but the shape (many rows per join key, asymmetric domains, batch-path
// saturation) is the same. Writes BENCH_large.json.
func tableLarge(scale float64, groupBits, paillierBits int, jsonPath string) error {
	if scale <= 0 {
		return fmt.Errorf("large: scale must be positive")
	}
	customers := int(150000 * scale)
	if customers < 30 {
		customers = 30
	}
	orders := 10 * customers
	orderDomain := customers * 2 / 3
	// FNP bucketing keeps the PM oblivious evaluations low-degree; sized
	// for a max bucket load around 8 before padding.
	buckets := orderDomain / 8
	if buckets < 1 {
		buckets = 1
	}

	h, err := newHarness(customers, customers, 1, 0, groupBits, paillierBits)
	if err != nil {
		return err
	}
	// Reshape into orders⋈customer: R1 = customer (every key active
	// exactly once, Rows1 = Domain1), R2 = orders (10 rows per customer
	// on 2/3 of the customer keys, all shared).
	h.spec = workload.JoinSpec{
		Rows1: customers, Domain1: customers,
		Rows2: orders, Domain2: orderDomain,
		Overlap: 1, Skew: 0, Seed: 19920817,
	}
	r1, r2, err := h.spec.Generate()
	if err != nil {
		return err
	}
	if h.joinSize, err = workload.ExpectedJoinSize(r1, r2); err != nil {
		return err
	}

	report := largeReport{
		Cores: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Scale: scale, Customers: customers, Orders: orders,
		CustomerDomain: customers, OrderDomain: orderDomain,
		JoinSize: h.joinSize, GroupBits: groupBits, PaillierBits: paillierBits,
		Buckets: buckets,
	}
	fmt.Printf("TPC-H-shaped workload: |customer|=%d, |orders|=%d (scale %g), join size=%d\n",
		customers, orders, scale, h.joinSize)
	rows := [][]string{{"protocol", "wall", "result tuples", "crypto ops"}}
	for _, proto := range secureProtocols {
		params := h.params()
		params.Buckets = buckets
		reg := telemetry.NewRegistry()
		start := time.Now()
		if _, err := h.runWith(proto, params, reg); err != nil {
			return err
		}
		wall := time.Since(start)
		run := largeProtocolRun{
			Protocol: proto.String(), WallNs: wall.Nanoseconds(),
			ResultTuples: h.joinSize, Ops: reg.OpDeltas(),
		}
		report.Protocols = append(report.Protocols, run)
		ops := ""
		for i, name := range sortedKeys(run.Ops) {
			if i > 0 {
				ops += " "
			}
			ops += fmt.Sprintf("%s=%d", name, run.Ops[name])
		}
		rows = append(rows, []string{proto.String(), wall.Round(time.Millisecond).String(),
			fmt.Sprint(h.joinSize), ops})
	}
	printAligned(rows)
	return writeReport(jsonPath, report)
}
