package main

import (
	"crypto/rsa"
	"fmt"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/mediation"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/workload"
)

// harness owns the measurement world: CA, client, workload parameters.
type harness struct {
	ca           *credential.Authority
	client       *mediation.Client
	spec         workload.JoinSpec
	groupBits    int
	paillierBits int
	joinSize     int
}

func newHarness(rows, domain int, overlap, skew float64, groupBits, paillierBits int) (*harness, error) {
	ca, err := credential.NewAuthority("BenchCA")
	if err != nil {
		return nil, err
	}
	client, err := mediation.NewClient()
	if err != nil {
		return nil, err
	}
	cred, err := ca.Issue(&client.PrivateKey.PublicKey,
		[]credential.Property{{Name: "role", Value: "analyst"}}, 24*time.Hour)
	if err != nil {
		return nil, err
	}
	client.Credentials = credential.Set{cred}
	h := &harness{
		ca: ca, client: client,
		spec: workload.JoinSpec{Rows1: rows, Rows2: rows, Domain1: domain, Domain2: domain,
			Overlap: overlap, Skew: skew, Seed: 20070415},
		groupBits: groupBits, paillierBits: paillierBits,
	}
	r1, r2, err := h.spec.Generate()
	if err != nil {
		return nil, err
	}
	h.joinSize, err = workload.ExpectedJoinSize(r1, r2)
	if err != nil {
		return nil, err
	}
	return h, nil
}

func (h *harness) params() mediation.Params {
	// Hybrid PM payloads: skewed workloads produce tuple sets beyond the
	// inline plaintext capacity (table 5 compares the two modes anyway).
	return mediation.Params{Partitions: 8, Strategy: das.EquiDepth,
		GroupBits: h.groupBits, PaillierBits: h.paillierBits,
		PayloadMode: mediation.PayloadHybrid}
}

// run executes one instrumented query and returns the ledger.
func (h *harness) run(proto mediation.Protocol, params mediation.Params) (*leakage.Ledger, error) {
	return h.runWith(proto, params, nil)
}

// runWith executes one query with an optional telemetry registry shared
// by all four parties (nil runs without telemetry, as before).
func (h *harness) runWith(proto mediation.Protocol, params mediation.Params, reg *telemetry.Registry) (*leakage.Ledger, error) {
	ledger := leakage.NewLedger()
	r1, r2, err := h.spec.Generate()
	if err != nil {
		return nil, err
	}
	policy := func(rel string) *credential.Policy {
		return &credential.Policy{Relation: rel,
			Require: []credential.Requirement{{Property: credential.Property{Name: "role", Value: "analyst"}}}}
	}
	s1 := &mediation.Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
		Policies:   map[string]*credential.Policy{"R1": policy("R1")},
		TrustedCAs: []*rsa.PublicKey{h.ca.PublicKey()}, Ledger: ledger}
	s2 := &mediation.Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
		Policies:   map[string]*credential.Policy{"R2": policy("R2")},
		TrustedCAs: []*rsa.PublicKey{h.ca.PublicKey()}, Ledger: ledger}
	h.client.Ledger = ledger
	n, err := mediation.NewNetwork(h.client, &mediation.Mediator{Ledger: ledger}, s1, s2)
	if err != nil {
		return nil, err
	}
	if reg != nil {
		n.SetTelemetry(reg)
		defer n.SetTelemetry(nil) // h.client is shared across runs
	}
	got, err := n.Query("SELECT * FROM R1 JOIN R2 ON R1.id = R2.id", proto, params)
	if err != nil {
		return nil, err
	}
	if got.Len() != h.joinSize {
		return nil, fmt.Errorf("%v produced %d tuples, want %d", proto, got.Len(), h.joinSize)
	}
	return ledger, nil
}

var secureProtocols = []mediation.Protocol{
	mediation.ProtocolDAS, mediation.ProtocolCommutative, mediation.ProtocolPM,
}

// table1 reproduces Table 1: extra information disclosed to client and
// mediator, as recorded by the instrumented parties.
func (h *harness) table1() error {
	fmt.Println("Table 1 — extra information disclosed to client and mediator")
	rows := [][]string{{"protocol", "client learns", "mediator learns"}}
	for _, proto := range secureProtocols {
		ledger, err := h.run(proto, h.params())
		if err != nil {
			return err
		}
		rows = append(rows, []string{proto.String(),
			describe(ledger.ObservedItems(leakage.PartyClient)),
			describe(ledger.ObservedItems(leakage.PartyMediator))})
	}
	printAligned(rows)
	return nil
}

// describe renders the leakage items of one party, skipping the traffic
// and timing bookkeeping entries.
func describe(items map[string]int64) string {
	skip := map[string]bool{
		"bytes-sent": true, "bytes-received": true, "interactions-with-mediator": true,
		"bytes-to-client": true, "bytes-from-client": true, "bytes-to-sources": true,
		"bytes-from-sources": true, "msgs-with-client": true, "msgs-with-sources": true,
		"compute-ns": true, "false-positives-discarded": true,
	}
	var parts []string
	for _, k := range sortedKeys(items) {
		if skip[k] {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%d", k, items[k]))
	}
	if len(parts) == 0 {
		return "(nothing beyond the protocol transcript)"
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// table2 reproduces Table 2: the cryptographic primitives each protocol
// applies, from the instrumented primitive counters.
func (h *harness) table2() error {
	fmt.Println("Table 2 — applied cryptographic primitives")
	rows := [][]string{{"protocol", "primitives (beyond credentials + hybrid encryption)"}}
	core := map[string]bool{"hybrid-encryption": true, "hybrid-decryption": true}
	for _, proto := range secureProtocols {
		ledger, err := h.run(proto, h.params())
		if err != nil {
			return err
		}
		var prims []string
		for _, p := range ledger.AllPrimitives() {
			if core[p] {
				continue
			}
			prims = append(prims, p)
		}
		line := ""
		for i, p := range prims {
			if i > 0 {
				line += ", "
			}
			line += p
		}
		rows = append(rows, []string{proto.String(), line})
	}
	printAligned(rows)
	return nil
}

// table3 is the Section 6 cost matrix: per-party compute time, traffic and
// interaction counts, plus what the client has to post-process.
func (h *harness) table3() error {
	fmt.Println("Section 6 — cost matrix (measured)")
	rows := [][]string{{"protocol", "wall", "client compute", "mediator compute",
		"sources compute", "client<->mediator msgs", "bytes to client", "client receives"}}
	protos := append([]mediation.Protocol{mediation.ProtocolPlaintext, mediation.ProtocolMobileCode}, secureProtocols...)
	for _, proto := range protos {
		start := time.Now()
		ledger, err := h.run(proto, h.params())
		if err != nil {
			return err
		}
		wall := time.Since(start)
		clientNs, _ := ledger.Observed(leakage.PartyClient, "compute-ns")
		medNs, _ := ledger.Observed(leakage.PartyMediator, "compute-ns")
		s1Ns, _ := ledger.Observed(leakage.PartySource("S1"), "compute-ns")
		s2Ns, _ := ledger.Observed(leakage.PartySource("S2"), "compute-ns")
		msgs, _ := ledger.Observed(leakage.PartyClient, "interactions-with-mediator")
		bytesToClient, _ := ledger.Observed(leakage.PartyClient, "bytes-received")
		receives := "exact result"
		if superset, ok := ledger.Observed(leakage.PartyClient, "superset-size"); ok {
			receives = fmt.Sprintf("superset (%d pairs for %d result tuples)", superset, h.joinSize)
		}
		if enc, ok := ledger.Observed(leakage.PartyClient, "encrypted-values-received"); ok {
			receives = fmt.Sprintf("n+m=%d encrypted values, opens matches only", enc)
		}
		if tuples, ok := ledger.Observed(leakage.PartyClient, "tuples-received"); ok {
			receives = fmt.Sprintf("both partial results (%d tuples)", tuples)
		}
		rows = append(rows, []string{
			proto.String(),
			time.Duration(wall).Round(time.Millisecond).String(),
			time.Duration(clientNs).Round(time.Microsecond).String(),
			time.Duration(medNs).Round(time.Microsecond).String(),
			time.Duration(s1Ns + s2Ns).Round(time.Microsecond).String(),
			fmt.Sprint(msgs),
			fmt.Sprint(bytesToClient),
			receives,
		})
	}
	printAligned(rows)
	return nil
}

// table4 is the DAS partitioning trade-off: superset size and client
// post-processing as the partition count varies.
func (h *harness) table4() error {
	fmt.Println("DAS partitioning trade-off (paper §6 bullet 1; refs [15],[8])")
	rows := [][]string{{"partitions", "superset |RC|", "false positives", "exact join", "client compute"}}
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		params := h.params()
		params.Partitions = k
		ledger, err := h.run(mediation.ProtocolDAS, params)
		if err != nil {
			return err
		}
		superset, _ := ledger.Observed(leakage.PartyClient, "superset-size")
		fp, _ := ledger.Observed(leakage.PartyClient, "false-positives-discarded")
		clientNs, _ := ledger.Observed(leakage.PartyClient, "compute-ns")
		rows = append(rows, []string{
			fmt.Sprint(k), fmt.Sprint(superset), fmt.Sprint(fp), fmt.Sprint(h.joinSize),
			time.Duration(clientNs).Round(time.Microsecond).String(),
		})
	}
	printAligned(rows)
	return nil
}

// table5 measures the extension ablations: selection pushdown, the
// footnote-1/2 transport optimizations, and FNP bucketing.
func (h *harness) table5() error {
	fmt.Println("Extension ablations (measured)")
	rows := [][]string{{"variant", "wall", "bytes to client", "client receives / note"}}

	sql := "SELECT * FROM R1 JOIN R2 ON R1.id = R2.id WHERE R1.id < 3"
	runVariant := func(name string, proto mediation.Protocol, params mediation.Params, query string) error {
		ledger := leakage.NewLedger()
		r1, r2, err := h.spec.Generate()
		if err != nil {
			return err
		}
		policy := func(rel string) *credential.Policy {
			return &credential.Policy{Relation: rel,
				Require: []credential.Requirement{{Property: credential.Property{Name: "role", Value: "analyst"}}}}
		}
		s1 := &mediation.Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
			Policies:   map[string]*credential.Policy{"R1": policy("R1")},
			TrustedCAs: []*rsa.PublicKey{h.ca.PublicKey()}, Ledger: ledger}
		s2 := &mediation.Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
			Policies:   map[string]*credential.Policy{"R2": policy("R2")},
			TrustedCAs: []*rsa.PublicKey{h.ca.PublicKey()}, Ledger: ledger}
		h.client.Ledger = ledger
		n, err := mediation.NewNetwork(h.client, &mediation.Mediator{Ledger: ledger}, s1, s2)
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := n.Query(query, proto, params); err != nil {
			return err
		}
		wall := time.Since(start)
		bytesToClient, _ := ledger.Observed(leakage.PartyClient, "bytes-received")
		note := "exact result"
		if superset, ok := ledger.Observed(leakage.PartyClient, "superset-size"); ok {
			note = fmt.Sprintf("superset of %d pairs", superset)
		}
		rows = append(rows, []string{name, wall.Round(time.Millisecond).String(),
			fmt.Sprint(bytesToClient), note})
		return nil
	}

	base := h.params()
	base.Partitions = 32
	if err := runVariant("das (no pushdown)", mediation.ProtocolDAS, base, sql); err != nil {
		return err
	}
	push := base
	push.Pushdown = true
	if err := runVariant("das + selection pushdown", mediation.ProtocolDAS, push, sql); err != nil {
		return err
	}
	comm := h.params()
	if err := runVariant("commutative (payloads circulate)", mediation.ProtocolCommutative, comm, sql); err != nil {
		return err
	}
	commID := comm
	commID.IDMode = true
	if err := runVariant("commutative + footnote-1 ID mode", mediation.ProtocolCommutative, commID, sql); err != nil {
		return err
	}
	pmInline := h.params()
	pmInline.PayloadMode = mediation.PayloadInline
	if err := runVariant("pm (inline payloads)", mediation.ProtocolPM, pmInline, sql); err != nil {
		return err
	}
	pmHybrid := pmInline
	pmHybrid.PayloadMode = mediation.PayloadHybrid
	if err := runVariant("pm + footnote-2 hybrid payloads", mediation.ProtocolPM, pmHybrid, sql); err != nil {
		return err
	}
	pmBuckets := pmHybrid
	pmBuckets.Buckets = 8
	if err := runVariant("pm + FNP buckets (b=8)", mediation.ProtocolPM, pmBuckets, sql); err != nil {
		return err
	}
	printAligned(rows)
	return nil
}
