package main

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"runtime"
	"time"

	"github.com/secmediation/secmediation/internal/crypto/paillier"
	"github.com/secmediation/secmediation/internal/mediation"
)

// parallelProtocolRun is one (protocol, workers) measurement.
type parallelProtocolRun struct {
	Protocol string  `json:"protocol"`
	Workers  int     `json:"workers"`
	WallNs   int64   `json:"wall_ns"`
	Speedup  float64 `json:"speedup_vs_sequential"`
}

// parallelPaillierRun is the fixed-base precomputation measurement — the
// part of the execution layer whose speedup is core-count independent.
type parallelPaillierRun struct {
	Bits            int     `json:"bits"`
	TextbookNsPerOp int64   `json:"textbook_ns_per_op"`
	FixedBaseNsOp   int64   `json:"fixed_base_ns_per_op"`
	PrecomputeNs    int64   `json:"precompute_ns"`
	Speedup         float64 `json:"speedup"`
}

// parallelReport is the BENCH_parallel.json schema. Cores records the
// runner honestly: worker-pool speedups only manifest with Cores > 1,
// while the Paillier fixed-base speedup holds on any runner.
type parallelReport struct {
	Cores     int                   `json:"cores"`
	GOOS      string                `json:"goos"`
	GOARCH    string                `json:"goarch"`
	Rows      int                   `json:"rows_per_relation"`
	Domain    int                   `json:"active_domain"`
	Protocols []parallelProtocolRun `json:"protocols"`
	Paillier  parallelPaillierRun   `json:"paillier_fixed_base"`
}

// tableParallel measures the parallel crypto execution layer: each
// ciphertext protocol end-to-end at Workers 1 / 2 / NumCPU, plus the
// Paillier fixed-base randomizer precomputation, and writes the summary to
// jsonPath (skipped when empty).
func (h *harness) tableParallel(jsonPath string) error {
	cores := runtime.NumCPU()
	fmt.Printf("Parallel execution layer (runner: %d core(s), %s/%s)\n", cores, runtime.GOOS, runtime.GOARCH)

	workerCounts := []int{1, 2}
	if cores > 2 {
		workerCounts = append(workerCounts, cores)
	}
	report := parallelReport{Cores: cores, GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Rows: h.spec.Rows1, Domain: h.spec.Domain1}

	rows := [][]string{{"protocol", "workers", "wall", "speedup vs workers=1"}}
	for _, proto := range secureProtocols {
		var seq time.Duration
		for _, workers := range workerCounts {
			params := h.params()
			params.Workers = workers
			// Median of three runs; end-to-end walls are noisy at this scale.
			wall, err := h.medianWall(proto, params, 3)
			if err != nil {
				return err
			}
			if workers == 1 {
				seq = wall
			}
			speedup := float64(seq) / float64(wall)
			report.Protocols = append(report.Protocols, parallelProtocolRun{
				Protocol: proto.String(), Workers: workers,
				WallNs: wall.Nanoseconds(), Speedup: speedup,
			})
			rows = append(rows, []string{proto.String(), fmt.Sprint(workers),
				wall.Round(time.Millisecond).String(), fmt.Sprintf("%.2fx", speedup)})
		}
	}
	printAligned(rows)

	pail, err := measurePaillierFixedBase(h.paillierBits)
	if err != nil {
		return err
	}
	report.Paillier = pail
	fmt.Printf("paillier %d-bit encryption: textbook %s/op, fixed-base %s/op (%.1fx; table build %s)\n\n",
		pail.Bits,
		time.Duration(pail.TextbookNsPerOp).Round(time.Microsecond),
		time.Duration(pail.FixedBaseNsOp).Round(time.Microsecond),
		pail.Speedup,
		time.Duration(pail.PrecomputeNs).Round(time.Millisecond))

	return writeReport(jsonPath, report)
}

// medianWall runs the query n times and returns the median wall time.
func (h *harness) medianWall(proto mediation.Protocol, params mediation.Params, n int) (time.Duration, error) {
	walls := make([]time.Duration, n)
	for i := range walls {
		start := time.Now()
		if _, err := h.run(proto, params); err != nil {
			return 0, err
		}
		walls[i] = time.Since(start)
	}
	for i := range walls { // insertion sort; n is tiny
		for j := i; j > 0 && walls[j] < walls[j-1]; j-- {
			walls[j], walls[j-1] = walls[j-1], walls[j]
		}
	}
	return walls[n/2], nil
}

// measurePaillierFixedBase times textbook vs fixed-base encryption on a
// fresh key of the given size.
func measurePaillierFixedBase(bits int) (parallelPaillierRun, error) {
	key, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return parallelPaillierRun{}, err
	}
	const ops = 24
	m := big.NewInt(424242)

	textbook := &paillier.PublicKey{N: key.N, NSquared: key.NSquared}
	start := time.Now()
	for i := 0; i < ops; i++ {
		// Fresh key per op so the warmup counter never builds the table.
		pk := &paillier.PublicKey{N: key.N, NSquared: key.NSquared}
		if _, err := pk.Encrypt(rand.Reader, m); err != nil {
			return parallelPaillierRun{}, err
		}
	}
	textbookNs := time.Since(start).Nanoseconds() / ops

	start = time.Now()
	if err := textbook.Precompute(rand.Reader); err != nil {
		return parallelPaillierRun{}, err
	}
	precomputeNs := time.Since(start).Nanoseconds()
	start = time.Now()
	for i := 0; i < ops; i++ {
		if _, err := textbook.Encrypt(rand.Reader, m); err != nil {
			return parallelPaillierRun{}, err
		}
	}
	fixedNs := time.Since(start).Nanoseconds() / ops

	return parallelPaillierRun{
		Bits:            bits,
		TextbookNsPerOp: textbookNs,
		FixedBaseNsOp:   fixedNs,
		PrecomputeNs:    precomputeNs,
		Speedup:         float64(textbookNs) / float64(fixedNs),
	}, nil
}
