package main

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"runtime"
	"time"

	"github.com/secmediation/secmediation/internal/crypto/paillier"
	"github.com/secmediation/secmediation/internal/mediation"
)

// parallelProtocolRun is one (protocol, workers) measurement.
type parallelProtocolRun struct {
	Protocol string  `json:"protocol"`
	Workers  int     `json:"workers"`
	WallNs   int64   `json:"wall_ns"`
	Speedup  float64 `json:"speedup_vs_sequential"`
}

// parallelPaillierRun is the fixed-base precomputation measurement — the
// part of the execution layer whose speedup is core-count independent.
type parallelPaillierRun struct {
	Bits            int     `json:"bits"`
	TextbookNsPerOp int64   `json:"textbook_ns_per_op"`
	FixedBaseNsOp   int64   `json:"fixed_base_ns_per_op"`
	PrecomputeNs    int64   `json:"precompute_ns"`
	Speedup         float64 `json:"speedup"`
}

// parallelReport is the BENCH_parallel.json schema. Cores and GOMAXPROCS
// record the runner honestly (both, separately: NumCPU is the hardware,
// GOMAXPROCS what the scheduler may actually use): worker-pool speedups
// only manifest when their minimum exceeds 1, while the Paillier
// fixed-base and commutative-engine speedups hold on any runner.
type parallelReport struct {
	Cores      int                   `json:"cores"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	GOOS       string                `json:"goos"`
	GOARCH     string                `json:"goarch"`
	Rows       int                   `json:"rows_per_relation"`
	Domain     int                   `json:"active_domain"`
	Protocols  []parallelProtocolRun `json:"protocols"`
	Paillier   parallelPaillierRun   `json:"paillier_fixed_base"`
	Engine     commutativeEngineRun  `json:"commutative_engine"`
}

// tableParallel measures the parallel crypto execution layer: each
// ciphertext protocol end-to-end at Workers 1 / 2 / NumCPU, the
// Paillier fixed-base randomizer precomputation, and the commutative
// fast-exponentiation engine before/after, and writes the summary to
// jsonPath (skipped when empty).
func (h *harness) tableParallel(jsonPath string) error {
	cores := runtime.NumCPU()
	maxprocs := runtime.GOMAXPROCS(0)
	fmt.Printf("Parallel execution layer (runner: %d core(s), GOMAXPROCS=%d, %s/%s)\n",
		cores, maxprocs, runtime.GOOS, runtime.GOARCH)
	if effective := min(cores, maxprocs); effective == 1 {
		fmt.Println()
		fmt.Println("  ********************************************************************")
		fmt.Println("  *  WARNING: effective cores == 1 on this runner.                   *")
		fmt.Println("  *  Worker-pool speedups CANNOT manifest here: every speedup-vs-    *")
		fmt.Println("  *  sequential figure below will read ~1.0x regardless of pool      *")
		fmt.Println("  *  size. Re-run on a multi-core machine to validate scaling; the   *")
		fmt.Println("  *  per-op speedups (paillier_fixed_base, commutative_engine) are   *")
		fmt.Println("  *  core-count independent and remain meaningful.                   *")
		fmt.Println("  ********************************************************************")
		fmt.Println()
	}

	workerCounts := []int{1, 2}
	if cores > 2 {
		workerCounts = append(workerCounts, cores)
	}
	report := parallelReport{Cores: cores, GOMAXPROCS: maxprocs,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Rows: h.spec.Rows1, Domain: h.spec.Domain1}

	rows := [][]string{{"protocol", "workers", "wall", "speedup vs workers=1"}}
	for _, proto := range secureProtocols {
		var seq time.Duration
		for _, workers := range workerCounts {
			params := h.params()
			params.Workers = workers
			// Median of three runs; end-to-end walls are noisy at this scale.
			wall, err := h.medianWall(proto, params, 3)
			if err != nil {
				return err
			}
			if workers == 1 {
				seq = wall
			}
			speedup := float64(seq) / float64(wall)
			report.Protocols = append(report.Protocols, parallelProtocolRun{
				Protocol: proto.String(), Workers: workers,
				WallNs: wall.Nanoseconds(), Speedup: speedup,
			})
			rows = append(rows, []string{proto.String(), fmt.Sprint(workers),
				wall.Round(time.Millisecond).String(), fmt.Sprintf("%.2fx", speedup)})
		}
	}
	printAligned(rows)

	pail, err := measurePaillierFixedBase(h.paillierBits)
	if err != nil {
		return err
	}
	report.Paillier = pail
	fmt.Printf("paillier %d-bit encryption: textbook %s/op, fixed-base %s/op (%.1fx; table build %s)\n\n",
		pail.Bits,
		time.Duration(pail.TextbookNsPerOp).Round(time.Microsecond),
		time.Duration(pail.FixedBaseNsOp).Round(time.Microsecond),
		pail.Speedup,
		time.Duration(pail.PrecomputeNs).Round(time.Millisecond))

	// Single-thread cross-encryption at the paper's workload size: the
	// per-op engine speedup the worker pool then multiplies.
	values := h.spec.Domain1 + h.spec.Domain2
	if values > 256 {
		values = 256
	}
	eng, err := measureCommutativeEngine(h.groupBits, values)
	if err != nil {
		return err
	}
	report.Engine = eng
	fmt.Printf("commutative %d-bit cross-encryption (single thread, %d values): full %d-bit exponents %s/op, short %d-bit exponents %s/op (%.1fx)\n",
		eng.GroupBits, eng.Values,
		eng.FullExpBits, time.Duration(eng.FullNsPerOp).Round(time.Microsecond),
		eng.ShortExpBits, time.Duration(eng.ShortNsPerOp).Round(time.Microsecond),
		eng.Speedup)
	fmt.Printf("commutative QR membership test: euler %s/op, jacobi %s/op (%.1fx)\n",
		time.Duration(eng.QRTestEulerNs).Round(time.Microsecond),
		time.Duration(eng.QRTestJacobiNs).Round(time.Microsecond),
		eng.QRTestSpeedup)
	fmt.Printf("constant-time ladder (same short exponents, fixed-window): %s/op (%.2fx the calibrated engine)\n\n",
		time.Duration(eng.CTLadderNsPerOp).Round(time.Microsecond),
		eng.CTLadderOverhead)

	return writeReport(jsonPath, report)
}

// medianWall runs the query n times and returns the median wall time.
func (h *harness) medianWall(proto mediation.Protocol, params mediation.Params, n int) (time.Duration, error) {
	walls := make([]time.Duration, n)
	for i := range walls {
		start := time.Now()
		if _, err := h.run(proto, params); err != nil {
			return 0, err
		}
		walls[i] = time.Since(start)
	}
	for i := range walls { // insertion sort; n is tiny
		for j := i; j > 0 && walls[j] < walls[j-1]; j-- {
			walls[j], walls[j-1] = walls[j-1], walls[j]
		}
	}
	return walls[n/2], nil
}

// measurePaillierFixedBase times textbook vs fixed-base encryption on a
// fresh key of the given size.
func measurePaillierFixedBase(bits int) (parallelPaillierRun, error) {
	key, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return parallelPaillierRun{}, err
	}
	const ops = 24
	m := big.NewInt(424242)

	textbook := &paillier.PublicKey{N: key.N, NSquared: key.NSquared}
	start := time.Now()
	for i := 0; i < ops; i++ {
		// Fresh key per op so the warmup counter never builds the table.
		pk := &paillier.PublicKey{N: key.N, NSquared: key.NSquared}
		if _, err := pk.Encrypt(rand.Reader, m); err != nil {
			return parallelPaillierRun{}, err
		}
	}
	textbookNs := time.Since(start).Nanoseconds() / ops

	start = time.Now()
	if err := textbook.Precompute(rand.Reader); err != nil {
		return parallelPaillierRun{}, err
	}
	precomputeNs := time.Since(start).Nanoseconds()
	start = time.Now()
	for i := 0; i < ops; i++ {
		if _, err := textbook.Encrypt(rand.Reader, m); err != nil {
			return parallelPaillierRun{}, err
		}
	}
	fixedNs := time.Since(start).Nanoseconds() / ops

	return parallelPaillierRun{
		Bits:            bits,
		TextbookNsPerOp: textbookNs,
		FixedBaseNsOp:   fixedNs,
		PrecomputeNs:    precomputeNs,
		Speedup:         float64(textbookNs) / float64(fixedNs),
	}, nil
}
