// Command mediator runs the MMM mediator: it accepts client sessions over
// TCP, decomposes global JOIN queries against its configured global schema
// (the "embedding"), dials the owning datasources, and executes the
// mediator side of the selected delivery-phase protocol — over ciphertexts
// only.
//
// Usage:
//
//	mediator -listen :7100 \
//	    -route "Orders=127.0.0.1:7101;id:INT,item:TEXT" \
//	    -route "Customers=127.0.0.1:7102;id:INT,city:TEXT" \
//	    -hint "Orders=role" -hint "Customers=role"
//
// Each -route names a relation, the address of its datasource, and the
// relation's schema as a comma-separated "col:TYPE" list.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/secmediation/secmediation/internal/mediation"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/resilience"
	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// dialSource opens one link to a datasource; main swaps in a retrying
// dialer once the flags are parsed.
var dialSource = transport.Dial

func main() {
	listen := flag.String("listen", ":7100", "listen address")
	var routes, hints stringList
	flag.Var(&routes, "route", `relation route as "Rel=host:port;col:TYPE,col:TYPE" (repeatable)`)
	flag.Var(&hints, "hint", "credential hint as Rel=propertyName (repeatable)")
	telemetryAddr := flag.String("telemetry", "", "serve /metrics, /trace and /snapshot on this address (empty disables)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-operation deadline on accepted client links before the request arrives (0 disables)")
	maxMsg := flag.Int64("maxmsg", 0, "inbound message size limit in bytes (0 = default 256 MiB)")
	retries := flag.Int("retries", 5, "dial attempts per datasource link (backoff between attempts)")
	maxSessions := flag.Int("max-sessions", 64, "max concurrent protocol sessions (0 = unlimited)")
	maxWaiting := flag.Int("max-waiting", 64, "sessions allowed to queue for a slot before overload rejects")
	drain := flag.Duration("drain", 20*time.Second, "on SIGTERM/SIGINT, let in-flight sessions finish for up to this long before forcing links closed")
	flag.Parse()

	med, err := buildMediator(routes, hints)
	if err != nil {
		log.Fatalf("mediator: %v", err)
	}
	if *telemetryAddr != "" {
		med.Telemetry = telemetry.NewRegistry()
		telemetry.Serve(*telemetryAddr, med.Telemetry)
		log.Printf("telemetry endpoints at http://%s/metrics", *telemetryAddr)
	}
	// One persistent multiplexed link per datasource: every session dials
	// through the pool, so overlapping queries share physical links
	// instead of paying a TCP dial each.
	// A per-peer circuit breaker governs the pool's dials: while one
	// datasource stays down, sessions needing it fast-fail with
	// resilience.ErrCircuitOpen instead of burning a dial timeout each,
	// and sessions on healthy sources are unaffected.
	pol := transport.RetryPolicy{Attempts: *retries, Telemetry: med.Telemetry}
	pool := &session.Pool{
		Dial:      func(addr string) (transport.Conn, error) { return transport.DialRetry(addr, pol) },
		Governor:  resilience.NewBreakerSet(resilience.BreakerConfig{Telemetry: med.Telemetry}),
		Telemetry: med.Telemetry,
	}
	defer pool.Close()
	dialSource = func(addr string) (transport.Conn, error) {
		st, err := pool.Open(addr)
		if err != nil {
			return nil, err
		}
		return st, nil
	}
	l, err := transport.Listen(*listen)
	if err != nil {
		log.Fatalf("mediator: %v", err)
	}
	l.MaxMessage = *maxMsg
	log.Printf("mediator serving %d relation route(s) at %s", len(med.Routes), l.Addr())
	srv := &session.Server{
		Handler: func(conn transport.Conn) error {
			// Bound the wait for the request itself; once it arrives, its
			// Params.Timeout (the client's choice) re-arms the link.
			conn.SetTimeout(*timeout)
			return med.HandleSession(conn)
		},
		Gate:           session.NewGate(*maxSessions, *maxWaiting, med.Telemetry),
		Telemetry:      med.Telemetry,
		Logf:           log.Printf,
		RetryAfterHint: 500 * time.Millisecond,
	}
	// SIGTERM/SIGINT starts a graceful drain: close the listener (Serve
	// returns), then let in-flight sessions finish before closing links.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("mediator: received %v, draining (deadline %v)", s, *drain)
		l.Close()
	}()
	if err := srv.Serve(session.AcceptTimeout(l, *timeout)); err != nil {
		log.Fatalf("mediator: serve: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("mediator: drain deadline exceeded, %d session(s) forced closed: %v", srv.InFlight(), err)
	}
	log.Printf("mediator: drained cleanly")
}

func buildMediator(routes, hints stringList) (*mediation.Mediator, error) {
	med := &mediation.Mediator{
		Schemas:   map[string]relation.Schema{},
		Routes:    map[string]mediation.Dialer{},
		CredHints: map[string][]string{},
	}
	for _, spec := range routes {
		relName, rest, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("-route %q: want Rel=addr;schema", spec)
		}
		addr, schemaSpec, ok := strings.Cut(rest, ";")
		if !ok {
			return nil, fmt.Errorf("-route %q: want Rel=addr;schema", spec)
		}
		schema, err := parseSchema(relName, schemaSpec)
		if err != nil {
			return nil, fmt.Errorf("-route %q: %w", spec, err)
		}
		med.Schemas[relName] = schema
		target := addr
		med.Routes[relName] = func() (transport.Conn, error) { return dialSource(target) }
	}
	if len(med.Routes) == 0 {
		return nil, fmt.Errorf("at least one -route is required")
	}
	for _, spec := range hints {
		relName, prop, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("-hint %q: want Rel=property", spec)
		}
		med.CredHints[relName] = append(med.CredHints[relName], prop)
	}
	return med, nil
}

func parseSchema(relName, spec string) (relation.Schema, error) {
	var cols []relation.Column
	for _, field := range strings.Split(spec, ",") {
		name, typ, ok := strings.Cut(strings.TrimSpace(field), ":")
		if !ok {
			return relation.Schema{}, fmt.Errorf("schema field %q: want col:TYPE", field)
		}
		kind, err := relation.ParseKind(typ)
		if err != nil {
			return relation.Schema{}, err
		}
		cols = append(cols, relation.Column{Name: name, Kind: kind})
	}
	return relation.NewSchema(relName, cols...)
}
