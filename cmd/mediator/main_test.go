package main

import (
	"testing"

	"github.com/secmediation/secmediation/internal/relation"
)

func TestBuildMediator(t *testing.T) {
	med, err := buildMediator(
		stringList{
			"Orders=127.0.0.1:7101;id:INT,item:TEXT",
			"Customers=127.0.0.1:7102;id:INT,city:TEXT",
		},
		stringList{"Orders=role", "Customers=role", "Customers=org"})
	if err != nil {
		t.Fatal(err)
	}
	if len(med.Routes) != 2 || len(med.Schemas) != 2 {
		t.Errorf("mediator: %d routes, %d schemas", len(med.Routes), len(med.Schemas))
	}
	s := med.Schemas["Orders"]
	if s.Arity() != 2 || s.Columns[0].Kind != relation.KindInt {
		t.Errorf("schema: %v", s)
	}
	if len(med.CredHints["Customers"]) != 2 {
		t.Errorf("hints: %v", med.CredHints)
	}
}

func TestBuildMediatorErrors(t *testing.T) {
	cases := []struct {
		name          string
		routes, hints stringList
	}{
		{"no routes", nil, nil},
		{"missing =", stringList{"garbage"}, nil},
		{"missing schema", stringList{"R=addr-only"}, nil},
		{"bad schema field", stringList{"R=addr;nocolon"}, nil},
		{"bad type", stringList{"R=addr;id:BLOB"}, nil},
		{"dup column", stringList{"R=addr;id:INT,id:INT"}, nil},
		{"bad hint", stringList{"R=addr;id:INT"}, stringList{"nohint"}},
	}
	for _, tc := range cases {
		if _, err := buildMediator(tc.routes, tc.hints); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestParseSchema(t *testing.T) {
	s, err := parseSchema("R", "a:INT, b:TEXT, c:FLOAT, d:BOOL")
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 4 || s.Relation != "R" {
		t.Errorf("schema: %v", s)
	}
}
