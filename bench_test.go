// Benchmarks reproducing every table and figure of the paper's evaluation
// plus the Section 6 cost discussion; see DESIGN.md ("Experiment index")
// for the mapping experiment-id → benchmark. cmd/medbench prints the
// corresponding tables; these benches expose the same measurements to
// `go test -bench`.
package secmediation

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"math/big"
	"runtime"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/crypto/ecelgamal"
	"github.com/secmediation/secmediation/internal/crypto/paillier"
	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/mediation"
	"github.com/secmediation/secmediation/internal/pm"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/workload"
)

// benchWorld caches the expensive fixtures (client RSA key, CA) across
// benchmarks.
var benchWorld struct {
	ca     *credential.Authority
	client *mediation.Client
}

func benchClient(b *testing.B) (*credential.Authority, *mediation.Client) {
	b.Helper()
	if benchWorld.client == nil {
		ca, err := credential.NewAuthority("BenchCA")
		if err != nil {
			b.Fatal(err)
		}
		client, err := mediation.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		cred, err := ca.Issue(&client.PrivateKey.PublicKey,
			[]credential.Property{{Name: "role", Value: "analyst"}}, 24*time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		client.Credentials = credential.Set{cred}
		benchWorld.ca = ca
		benchWorld.client = client
	}
	return benchWorld.ca, benchWorld.client
}

// benchNetwork assembles a two-source network over a synthetic workload.
func benchNetwork(b *testing.B, spec workload.JoinSpec, ledger *leakage.Ledger) *mediation.Network {
	b.Helper()
	ca, client := benchClient(b)
	r1, r2, err := spec.Generate()
	if err != nil {
		b.Fatal(err)
	}
	policy := func(rel string) *credential.Policy {
		return &credential.Policy{Relation: rel,
			Require: []credential.Requirement{{Property: credential.Property{Name: "role", Value: "analyst"}}}}
	}
	s1 := &mediation.Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
		Policies:   map[string]*credential.Policy{"R1": policy("R1")},
		TrustedCAs: []*rsa.PublicKey{ca.PublicKey()}, Ledger: ledger}
	s2 := &mediation.Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
		Policies:   map[string]*credential.Policy{"R2": policy("R2")},
		TrustedCAs: []*rsa.PublicKey{ca.PublicKey()}, Ledger: ledger}
	client.Ledger = ledger
	n, err := mediation.NewNetwork(client, &mediation.Mediator{Ledger: ledger}, s1, s2)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

const benchSQL = "SELECT * FROM R1 JOIN R2 ON R1.id = R2.id"

func benchSpec() workload.JoinSpec {
	return workload.JoinSpec{Rows1: 128, Rows2: 128, Domain1: 32, Domain2: 32, Overlap: 0.5, Seed: 7}
}

func benchParams() mediation.Params {
	return mediation.Params{Partitions: 8, Strategy: das.EquiDepth, GroupBits: 1536, PaillierBits: 1024}
}

func runProtocol(b *testing.B, proto mediation.Protocol, params mediation.Params) {
	b.Helper()
	n := benchNetwork(b, benchSpec(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Query(benchSQL, proto, params); err != nil {
			b.Fatal(err)
		}
	}
}

// fig1: the basic mediated system of Figure 1 (plaintext baseline).
func BenchmarkFig1BasicMediation(b *testing.B) {
	runProtocol(b, mediation.ProtocolPlaintext, benchParams())
}

// fig2: the credential-based data flow of Figure 2 — credential issuance,
// verification and policy checking.
func BenchmarkFig2CredentialFlow(b *testing.B) {
	ca, client := benchClient(b)
	pol := &credential.Policy{Relation: "R",
		Require: []credential.Requirement{{Property: credential.Property{Name: "role", Value: "analyst"}}}}
	b.Run("issue", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ca.Issue(&client.PrivateKey.PublicKey,
				[]credential.Property{{Name: "role", Value: "analyst"}}, time.Hour); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("verify-and-decide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := pol.Check(client.Credentials, []*rsa.PublicKey{ca.PublicKey()}, time.Now())
			if !d.Granted {
				b.Fatal("denied")
			}
		}
	})
}

// mobile-code baseline of Section 1 (prior MMM solution).
func BenchmarkBaselineMobileCode(b *testing.B) {
	runProtocol(b, mediation.ProtocolMobileCode, benchParams())
}

// listing2: end-to-end DAS delivery phase, client setting.
func BenchmarkListing2DAS(b *testing.B) {
	runProtocol(b, mediation.ProtocolDAS, benchParams())
}

// listing3: end-to-end commutative-encryption delivery phase.
func BenchmarkListing3Commutative(b *testing.B) {
	runProtocol(b, mediation.ProtocolCommutative, benchParams())
}

// listing4: end-to-end private-matching delivery phase.
func BenchmarkListing4PM(b *testing.B) {
	runProtocol(b, mediation.ProtocolPM, benchParams())
}

// parallel-workers: the worker-pooled crypto execution layer — every
// ciphertext protocol end-to-end at Workers 1 (the listings' sequential
// execution), 2, and all cores. On a multi-core runner the hot loops
// (hash+encrypt+seal, re-encryption, oblivious evaluation, result
// decryption) scale with the pool; on a single core the variants bound the
// pool's overhead instead.
func BenchmarkParallelWorkers(b *testing.B) {
	workerCounts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		workerCounts = append(workerCounts, n)
	}
	for _, proto := range []mediation.Protocol{mediation.ProtocolDAS, mediation.ProtocolCommutative, mediation.ProtocolPM} {
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", proto, workers), func(b *testing.B) {
				params := benchParams()
				params.Workers = workers
				n := benchNetwork(b, benchSpec(), nil)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := n.Query(benchSQL, proto, params); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// sec6-cost: end-to-end protocol comparison across active-domain sizes —
// the shape behind the paper's conclusion that the commutative protocol is
// the most efficient of the three and PM's polynomial evaluation is
// "quite expensive".
func BenchmarkSec6DomainScaling(b *testing.B) {
	for _, domain := range []int{8, 16, 32, 64} {
		spec := workload.JoinSpec{Rows1: 2 * domain, Rows2: 2 * domain,
			Domain1: domain, Domain2: domain, Overlap: 0.5, Seed: 11}
		for _, proto := range []mediation.Protocol{mediation.ProtocolDAS, mediation.ProtocolCommutative, mediation.ProtocolPM} {
			b.Run(fmt.Sprintf("%s/domain=%d", proto, domain), func(b *testing.B) {
				n := benchNetwork(b, spec, nil)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := n.Query(benchSQL, proto, benchParams()); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// das-partitioning: the paper's granularity trade-off — finer partitioning
// shrinks the superset (less client post-processing) at the price of finer
// inference exposure. The bench reports the superset size as a metric.
func BenchmarkDASPartitionSweep(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("partitions=%d", k), func(b *testing.B) {
			params := benchParams()
			params.Partitions = k
			ledger := leakage.NewLedger()
			n := benchNetwork(b, benchSpec(), ledger)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.Query(benchSQL, mediation.ProtocolDAS, params); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if superset, ok := ledger.Observed(leakage.PartyClient, "superset-size"); ok {
				b.ReportMetric(float64(superset), "superset-tuples")
			}
		})
	}
}

// footnote1: commutative protocol with mediator-retained tuple sets
// (fixed-length IDs circulate instead of payloads).
func BenchmarkFootnote1IDMode(b *testing.B) {
	params := benchParams()
	params.IDMode = true
	runProtocol(b, mediation.ProtocolCommutative, params)
}

// footnote2: PM protocol with hybrid payloads (session key + ID inside the
// polynomial, tuple sets out of band).
func BenchmarkFootnote2HybridPayload(b *testing.B) {
	params := benchParams()
	params.PayloadMode = mediation.PayloadHybrid
	runProtocol(b, mediation.ProtocolPM, params)
}

// FNP bucketing ablation: PM evaluation cost with and without buckets.
func BenchmarkPMBucketing(b *testing.B) {
	for _, buckets := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("buckets=%d", buckets), func(b *testing.B) {
			params := benchParams()
			params.Buckets = buckets
			params.PayloadMode = mediation.PayloadHybrid
			runProtocol(b, mediation.ProtocolPM, params)
		})
	}
}

// ext-multiattr: multi-attribute join extension (Section 8).
func BenchmarkExtMultiAttr(b *testing.B) {
	ca, client := benchClient(b)
	s1 := relation.MustSchema("E1",
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "dept", Kind: relation.KindString})
	s2 := relation.MustSchema("E2",
		relation.Column{Name: "id", Kind: relation.KindInt},
		relation.Column{Name: "dept", Kind: relation.KindString})
	e1, e2 := relation.New(s1), relation.New(s2)
	for i := 0; i < 64; i++ {
		e1.MustAppend(relation.Tuple{relation.Int(int64(i % 16)), relation.String_(fmt.Sprintf("d%d", i%4))})
		e2.MustAppend(relation.Tuple{relation.Int(int64(i % 16)), relation.String_(fmt.Sprintf("d%d", i%3))})
	}
	policy := func(rel string) *credential.Policy {
		return &credential.Policy{Relation: rel,
			Require: []credential.Requirement{{Property: credential.Property{Name: "role", Value: "analyst"}}}}
	}
	src1 := &mediation.Source{Name: "S1", Catalog: algebra.MapCatalog{"E1": e1},
		Policies: map[string]*credential.Policy{"E1": policy("E1")}, TrustedCAs: []*rsa.PublicKey{ca.PublicKey()}}
	src2 := &mediation.Source{Name: "S2", Catalog: algebra.MapCatalog{"E2": e2},
		Policies: map[string]*credential.Policy{"E2": policy("E2")}, TrustedCAs: []*rsa.PublicKey{ca.PublicKey()}}
	n, err := mediation.NewNetwork(client, &mediation.Mediator{}, src1, src2)
	if err != nil {
		b.Fatal(err)
	}
	sql := "SELECT * FROM E1 JOIN E2 ON E1.id = E2.id AND E1.dept = E2.dept"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Query(sql, mediation.ProtocolCommutative, benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// ext-hierarchy: successive joins through a materialized view.
func BenchmarkExtHierarchy(b *testing.B) {
	ca, client := benchClient(b)
	n := benchNetwork(b, benchSpec(), nil)
	first, err := n.Query("SELECT * FROM R1 NATURAL JOIN R2", mediation.ProtocolCommutative, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	view, err := mediation.MaterializeView(first, "V")
	if err != nil {
		b.Fatal(err)
	}
	r3 := relation.New(relation.MustSchema("R3", relation.Column{Name: "id", Kind: relation.KindInt}, relation.Column{Name: "tag", Kind: relation.KindString}))
	for i := 0; i < 32; i++ {
		r3.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.String_("t")})
	}
	policy := func(rel string) *credential.Policy {
		return &credential.Policy{Relation: rel,
			Require: []credential.Requirement{{Property: credential.Property{Name: "role", Value: "analyst"}}}}
	}
	delegate := &mediation.Source{Name: "Delegate", Catalog: algebra.MapCatalog{"V": view},
		Policies: map[string]*credential.Policy{"V": policy("V")}, TrustedCAs: []*rsa.PublicKey{ca.PublicKey()}}
	s3 := &mediation.Source{Name: "S3", Catalog: algebra.MapCatalog{"R3": r3},
		Policies: map[string]*credential.Policy{"R3": policy("R3")}, TrustedCAs: []*rsa.PublicKey{ca.PublicKey()}}
	n2, err := mediation.NewNetwork(client, &mediation.Mediator{}, delegate, s3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n2.Query("SELECT * FROM V NATURAL JOIN R3", mediation.ProtocolCommutative, benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}

// ablation-homo: Paillier vs exponential EC-ElGamal as the additively
// homomorphic scheme (the paper names both as suitable).
func BenchmarkAblationHomomorphic(b *testing.B) {
	pk, err := paillier.GenerateKey(rand.Reader, 1024)
	if err != nil {
		b.Fatal(err)
	}
	ek, err := ecelgamal.GenerateKey(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := ecelgamal.NewDecrypter(ek, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("paillier/encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pk.EncryptInt64(rand.Reader, int64(i%1000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	cp, _ := pk.EncryptInt64(rand.Reader, 123)
	b.Run("paillier/add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pk.Add(cp, cp)
		}
	})
	b.Run("paillier/mulconst", func(b *testing.B) {
		g := big.NewInt(99991)
		for i := 0; i < b.N; i++ {
			pk.MulConst(cp, g)
		}
	})
	b.Run("paillier/decrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pk.Decrypt(cp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ecelgamal/encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ek.Encrypt(rand.Reader, int64(i%1000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	ce, _ := ek.Encrypt(rand.Reader, 123)
	b.Run("ecelgamal/add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ek.Add(ce, ce)
		}
	})
	b.Run("ecelgamal/mulconst", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ek.MulConst(ce, 99991)
		}
	})
	b.Run("ecelgamal/decrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dec.Decrypt(ce); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// PM polynomial primitives: building, encrypting and obliviously
// evaluating the active-domain polynomial, isolating the Θ(n·m) cost the
// paper calls "quite expensive".
func BenchmarkPMPolynomial(b *testing.B) {
	pk, err := paillier.GenerateKey(rand.Reader, 1024)
	if err != nil {
		b.Fatal(err)
	}
	for _, degree := range []int{8, 32, 128} {
		roots := make([]*big.Int, degree)
		for i := range roots {
			roots[i] = pm.RootOfValue(relation.Int(int64(i)))
		}
		poly, err := pm.FromRoots(roots, pk.N)
		if err != nil {
			b.Fatal(err)
		}
		enc, err := poly.Encrypt(&pk.PublicKey, 1)
		if err != nil {
			b.Fatal(err)
		}
		x := pm.RootOfValue(relation.Int(3))
		b.Run(fmt.Sprintf("eval/degree=%d", degree), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := enc.EvalEncrypted(&pk.PublicKey, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ext-pushdown: the DAS selection-pushdown extension — same query with and
// without mediator-side index filters.
func BenchmarkExtSelectionPushdown(b *testing.B) {
	sql := "SELECT * FROM R1 JOIN R2 ON R1.id = R2.id WHERE R1.id < 8"
	for _, push := range []bool{false, true} {
		b.Run(fmt.Sprintf("pushdown=%v", push), func(b *testing.B) {
			params := benchParams()
			params.Partitions = 32
			params.Pushdown = push
			ledger := leakage.NewLedger()
			n := benchNetwork(b, benchSpec(), ledger)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.Query(sql, mediation.ProtocolDAS, params); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if superset, ok := ledger.Observed(leakage.PartyClient, "superset-size"); ok {
				b.ReportMetric(float64(superset), "superset-tuples")
			}
		})
	}
}

// ext-aggregation: mediator-side homomorphic SUM over an encrypted column.
func BenchmarkExtAggregation(b *testing.B) {
	n := benchNetwork(b, benchSpec(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Query("SELECT SUM(id) FROM R1", mediation.ProtocolPM, benchParams()); err != nil {
			b.Fatal(err)
		}
	}
}
