package secmediation_test

import (
	"strings"
	"testing"
	"time"

	secmediation "github.com/secmediation/secmediation"
)

// buildWorld assembles the quickstart topology through the public API only.
func buildWorld(t testing.TB) (*secmediation.Network, *secmediation.Relation, *secmediation.Relation) {
	t.Helper()
	ca, err := secmediation.NewAuthority("DemoCA")
	if err != nil {
		t.Fatal(err)
	}
	client, err := secmediation.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.Issue(secmediation.PublicKeyOf(client),
		[]secmediation.Property{{Name: "role", Value: "analyst"}}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	client.Credentials = secmediation.Credentials{cred}

	patients := secmediation.MustSchema("Patients",
		secmediation.Column{Name: "pid", Kind: secmediation.KindInt},
		secmediation.Column{Name: "name", Kind: secmediation.KindString})
	claims := secmediation.MustSchema("Claims",
		secmediation.Column{Name: "pid", Kind: secmediation.KindInt},
		secmediation.Column{Name: "amount", Kind: secmediation.KindFloat})
	r1, err := secmediation.FromTuples(patients,
		secmediation.Tuple{secmediation.Int(1), secmediation.Str("ada")},
		secmediation.Tuple{secmediation.Int(2), secmediation.Str("bob")},
		secmediation.Tuple{secmediation.Int(3), secmediation.Str("cyd")})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := secmediation.FromTuples(claims,
		secmediation.Tuple{secmediation.Int(2), secmediation.Float(120.5)},
		secmediation.Tuple{secmediation.Int(3), secmediation.Float(7.25)},
		secmediation.Tuple{secmediation.Int(4), secmediation.Float(99)})
	if err != nil {
		t.Fatal(err)
	}
	s1 := secmediation.NewSource("Hospital", map[string]*secmediation.Relation{"Patients": r1},
		[]*secmediation.Policy{secmediation.RequireProperty("Patients", "role", "analyst")}, ca)
	s2 := secmediation.NewSource("Insurer", map[string]*secmediation.Relation{"Claims": r2},
		[]*secmediation.Policy{secmediation.RequireProperty("Claims", "role", "analyst")}, ca)
	net, err := secmediation.NewNetwork(client, &secmediation.Mediator{}, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	return net, r1, r2
}

func TestPublicAPIQuickstart(t *testing.T) {
	net, _, _ := buildWorld(t)
	params := secmediation.Params{GroupBits: 1536, PaillierBits: 1024, Partitions: 2}
	for _, proto := range []secmediation.Protocol{secmediation.Plaintext, secmediation.MobileCode, secmediation.DAS, secmediation.Commutative, secmediation.PM} {
		got, err := net.Query("SELECT * FROM Patients JOIN Claims ON Patients.pid = Claims.pid", proto, params)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if got.Len() != 2 {
			t.Errorf("%v: join size %d, want 2\n%v", proto, got.Len(), got)
		}
	}
}

func TestPublicAPILedgerAndWorkload(t *testing.T) {
	spec := secmediation.JoinSpec{Rows1: 30, Rows2: 30, Domain1: 10, Domain2: 10, Overlap: 0.5, Seed: 1}
	r1, r2, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 30 || r2.Len() != 30 {
		t.Errorf("workload rows %d/%d", r1.Len(), r2.Len())
	}
	ledger := secmediation.NewLedger()
	ledger.Observe("mediator", "|R1|", int64(r1.Len()))
	if v, ok := ledger.Observed("mediator", "|R1|"); !ok || v != 30 {
		t.Error("ledger roundtrip failed")
	}
}

func TestPublicAPIHierarchy(t *testing.T) {
	net, _, _ := buildWorld(t)
	first, err := net.Query("SELECT * FROM Patients NATURAL JOIN Claims", secmediation.Commutative,
		secmediation.Params{GroupBits: 1536})
	if err != nil {
		t.Fatal(err)
	}
	view, err := secmediation.MaterializeView(first, "V")
	if err != nil {
		t.Fatal(err)
	}
	if view.Schema().Relation != "V" || view.Len() != first.Len() {
		t.Errorf("view: %v", view.Schema())
	}
}

func TestPublicAPIAggregation(t *testing.T) {
	net, _, _ := buildWorld(t)
	res, err := net.Query("SELECT SUM(amount) FROM Claims", secmediation.PM,
		secmediation.Params{PaillierBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Tuple(0)[0].AsFloat()
	want := 120.5 + 7.25 + 99
	if got < want-1e-6 || got > want+1e-6 {
		t.Errorf("SUM(amount) = %v, want %v", got, want)
	}
	cnt, err := net.Query("SELECT COUNT(*) FROM Patients", secmediation.PM,
		secmediation.Params{PaillierBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Tuple(0)[0].AsInt() != 3 {
		t.Errorf("COUNT = %v", cnt.Tuple(0)[0])
	}
}

func TestPublicAPIPushdownParam(t *testing.T) {
	net, _, _ := buildWorld(t)
	params := secmediation.Params{Partitions: 8, Pushdown: true, GroupBits: 1536, PaillierBits: 1024}
	res, err := net.Query(
		"SELECT * FROM Patients JOIN Claims ON Patients.pid = Claims.pid WHERE Patients.pid >= 3",
		secmediation.DAS, params)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("pushdown query = %d tuples, want 1\n%v", res.Len(), res)
	}
}

func TestPublicAPIDistinctAndWhere(t *testing.T) {
	net, _, _ := buildWorld(t)
	res, err := net.Query(
		"SELECT DISTINCT name FROM Patients JOIN Claims ON Patients.pid = Claims.pid WHERE amount > 5.0",
		secmediation.Commutative, secmediation.Params{GroupBits: 1536})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // bob and cyd
		t.Errorf("distinct names = %d, want 2\n%v", res.Len(), res)
	}
}

func TestPublicAPIParseWhere(t *testing.T) {
	e, err := secmediation.ParseWhere("SELECT * FROM R WHERE x >= 10")
	if err != nil || e == nil {
		t.Fatalf("ParseWhere: %v", err)
	}
	schema := secmediation.MustSchema("R", secmediation.Column{Name: "x", Kind: secmediation.KindInt})
	k, err := e.Check(schema)
	if err != nil || k != secmediation.KindBool {
		t.Errorf("predicate check: %v %v", k, err)
	}
	if _, err := secmediation.ParseWhere("garbage"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPublicAPICSVRoundtrip(t *testing.T) {
	schema := secmediation.MustSchema("T",
		secmediation.Column{Name: "a", Kind: secmediation.KindInt},
		secmediation.Column{Name: "b", Kind: secmediation.KindString})
	r, err := secmediation.FromTuples(schema,
		secmediation.Tuple{secmediation.Int(1), secmediation.Str("x")})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := secmediation.WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := secmediation.ReadCSV("T", strings.NewReader(buf.String()))
	if err != nil || !back.EqualMultiset(r) {
		t.Errorf("facade CSV roundtrip: %v", err)
	}
}

func TestPublicAPIWorkloadSpec(t *testing.T) {
	spec := secmediation.JoinSpec{Rows1: 10, Rows2: 10, Domain1: 5, Domain2: 5, Overlap: 1, Seed: 3}
	r1, r2, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 10 || r2.Len() != 10 {
		t.Error("workload generation via facade failed")
	}
}
