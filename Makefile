GO ?= go

.PHONY: all vet build test race bench parallel-report

all: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel execution layer's safety gate: the mediation protocols and
# the worker pool under the race detector.
race:
	$(GO) test -race ./internal/mediation/... ./internal/parallel/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Regenerates BENCH_parallel.json (worker-pool + fixed-base speedups).
parallel-report:
	$(GO) run ./cmd/medbench -table parallel
