GO ?= go

.PHONY: all ci vet lint lint-json lint-sarif lint-golden build test test-short race chaos soak soak-short bench bench-smoke parallel-report telemetry-report large-report sessions-report

all: vet lint build test race

# The aggregate pre-merge gate: everything `all` runs, ordered so the
# cheap fast-failing steps (build, vet, lint — including the
# whole-program plaintaint/keyscope/cttaint/conccheck analysis) come before the
# test suites, plus a -short -race pass over the full module, the
# tiny-row medbench sweep that guards the BENCH JSON schema, and the
# compressed chaos soak that gates the query-lifecycle recovery
# contract.
ci: build vet lint test race test-short bench-smoke soak-short

vet:
	$(GO) vet ./...

# Crypto-invariant static analysis (cmd/seclint): the package-mode
# analyzers (weakrand, subtlecmp, secretfmt, errdrop, rawexp, rawrecv)
# over every module package, then the whole-program analyzers
# (plaintaint, keyscope, cttaint, conccheck) over the combined call
# graph, gated on the audited exceptions in seclint.allow. Non-zero
# exit on any finding.
lint:
	$(GO) run ./cmd/seclint

# Machine-readable findings for tooling; same gate, JSON array output.
lint-json:
	$(GO) run ./cmd/seclint -json

# SARIF 2.1.0 log for code-scanning dashboards; same gate.
lint-sarif:
	$(GO) run ./cmd/seclint -sarif

# Fails if any analyzer's rendered messages drift from the pinned
# goldens under internal/seclint/testdata/golden/ — wording changes
# must be deliberate (regenerate with `go test ./internal/seclint/
# -run TestGoldenMessages -update` and review the diff).
lint-golden:
	$(GO) test -count=1 -run TestGoldenMessages ./internal/seclint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast race-checked sweep over the whole module (skips the expensive
# whole-module type-checking tests, which `test` already runs).
test-short:
	$(GO) test -short -race ./...

# The concurrency safety gate: the full module under the race detector
# — the mediation protocols, the session mux (including the
# >=32-interleaved-sessions stress test), the worker pool, the
# resilience orchestration and every other package; nothing
# concurrency-relevant can sit outside the sweep.
race:
	$(GO) test -race ./...

# The resilience gate (docs/RESILIENCE.md): every protocol under every
# fault class on the fixed seed — including per-session faults on a
# shared multiplexed link — the mid-protocol crash matrix and the
# timeout-attribution tests, race-checked and leak-checked. Override the
# fault schedule with CHAOS_SEED=<uint64> to explore other positions.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestSourceCrash|TestSilent|TestMediatorCrash' ./internal/mediation
	$(GO) test -race -count=1 ./internal/session

# The query-lifecycle recovery gate (docs/RESILIENCE.md): the full chaos
# soak — retry orchestration, per-peer circuit breakers, admission
# overload and graceful drain on a live TCP deployment under seeded
# faults and source kill/restart. Fails on any invariant violation and
# regenerates BENCH_soak.json. `soak-short` is the compressed variant
# wired into `ci`.
soak:
	$(GO) run ./cmd/medbench -table soak

soak-short:
	$(GO) test -count=1 -run TestSoakShort ./cmd/medbench

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Tiny-row run of every medbench table, asserting the BENCH JSON schema
# (cores/gomaxprocs runner fields, commutative_engine entry, large-table
# shape). Guards the artifact contract, not performance numbers.
bench-smoke:
	$(GO) test -count=1 -run TestBenchSmoke ./cmd/medbench

# Regenerates BENCH_parallel.json (worker-pool + fixed-base speedups).
parallel-report:
	$(GO) run ./cmd/medbench -table parallel

# Regenerates BENCH_phases.json (per-phase × per-party cost breakdown
# from telemetry spans) and prints the human-readable table.
telemetry-report:
	$(GO) run ./cmd/medbench -table phases

# Regenerates BENCH_large.json: the TPC-H-shaped orders⋈customer workload
# through every secure protocol. SCALE=1 is the realistic 150k/1.5M-row
# setting; the default keeps the run in minutes on one core.
SCALE ?= 0.01
large-report:
	$(GO) run ./cmd/medbench -table large -scale $(SCALE)

# Regenerates BENCH_sessions.json: concurrent-clients throughput of the
# session layer (overlapping queries over one multiplexed TCP link vs
# dial-per-query, plus the admission-control overload arm).
sessions-report:
	$(GO) run ./cmd/medbench -table sessions
