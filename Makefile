GO ?= go

.PHONY: all vet lint lint-json build test race bench parallel-report

all: vet lint build test race

vet:
	$(GO) vet ./...

# Crypto-invariant static analysis (cmd/seclint): weakrand, subtlecmp,
# secretfmt, errdrop, rawexp over every module package, gated on the
# audited exceptions in seclint.allow. Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/seclint

# Machine-readable findings for tooling; same gate, JSON array output.
lint-json:
	$(GO) run ./cmd/seclint -json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel execution layer's safety gate: the mediation protocols and
# the worker pool under the race detector.
race:
	$(GO) test -race ./internal/mediation/... ./internal/parallel/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Regenerates BENCH_parallel.json (worker-pool + fixed-base speedups).
parallel-report:
	$(GO) run ./cmd/medbench -table parallel
