GO ?= go

.PHONY: all vet lint lint-json build test race bench parallel-report telemetry-report

all: vet lint build test race

vet:
	$(GO) vet ./...

# Crypto-invariant static analysis (cmd/seclint): weakrand, subtlecmp,
# secretfmt, errdrop, rawexp over every module package, gated on the
# audited exceptions in seclint.allow. Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/seclint

# Machine-readable findings for tooling; same gate, JSON array output.
lint-json:
	$(GO) run ./cmd/seclint -json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency safety gate: the mediation protocols, the worker pool,
# the telemetry registry and the transport stats under the race detector.
race:
	$(GO) test -race ./internal/mediation/... ./internal/parallel/... ./internal/telemetry/... ./internal/transport/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Regenerates BENCH_parallel.json (worker-pool + fixed-base speedups).
parallel-report:
	$(GO) run ./cmd/medbench -table parallel

# Regenerates BENCH_phases.json (per-phase × per-party cost breakdown
# from telemetry spans) and prints the human-readable table.
telemetry-report:
	$(GO) run ./cmd/medbench -table phases
