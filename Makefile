GO ?= go

.PHONY: all vet lint lint-json build test race chaos bench parallel-report telemetry-report

all: vet lint build test race

vet:
	$(GO) vet ./...

# Crypto-invariant static analysis (cmd/seclint): weakrand, subtlecmp,
# secretfmt, errdrop, rawexp, rawrecv over every module package, gated
# on the audited exceptions in seclint.allow. Non-zero exit on any
# finding.
lint:
	$(GO) run ./cmd/seclint

# Machine-readable findings for tooling; same gate, JSON array output.
lint-json:
	$(GO) run ./cmd/seclint -json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency safety gate: the mediation protocols, the worker pool,
# the telemetry registry, the transport layer and the leak-check helpers
# under the race detector.
race:
	$(GO) test -race ./internal/mediation/... ./internal/parallel/... ./internal/telemetry/... ./internal/transport/... ./internal/testutil/...

# The resilience gate (docs/RESILIENCE.md): every protocol under every
# fault class on the fixed seed, the mid-protocol crash matrix and the
# timeout-attribution tests, race-checked and leak-checked. Override the
# fault schedule with CHAOS_SEED=<uint64> to explore other positions.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestSourceCrash|TestSilent|TestMediatorCrash' ./internal/mediation

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Regenerates BENCH_parallel.json (worker-pool + fixed-base speedups).
parallel-report:
	$(GO) run ./cmd/medbench -table parallel

# Regenerates BENCH_phases.json (per-phase × per-party cost breakdown
# from telemetry spans) and prints the human-readable table.
telemetry-report:
	$(GO) run ./cmd/medbench -table phases
