// Package secmediation is a from-scratch implementation of the secure
// mediated information system of Biskup, Tsatedem and Wiese, "Secure
// Mediation of Join Queries by Processing Ciphertexts" (ICDE Workshops
// 2007): a credential-based client/mediator/datasource architecture in
// which an untrusted mediator computes equi-JOIN queries over encrypted
// partial results without ever seeing plaintext data.
//
// # Architecture
//
// A Client issues a global SQL query together with a set of credentials
// (properties bound to its public encryption key by a certification
// Authority). The Mediator decomposes the query into partial queries,
// selects credential subsets, localizes the owning Sources, and then runs
// one of three delivery-phase protocols over ciphertexts:
//
//   - DAS (Hacıgümüş et al.): bucketized index values accompany row-wise
//     hybrid-encrypted tuples; the client translates the query into a
//     coarse server query the mediator evaluates, and post-filters the
//     decrypted superset.
//   - Commutative (Agrawal et al.): both sources encrypt hashed join
//     values under commuting keys; the mediator matches doubly-encrypted
//     values and returns exactly the matching encrypted tuple sets.
//   - PM (Freedman et al.): sources exchange homomorphically encrypted
//     polynomials whose roots are their join values and return masked
//     evaluations; the client can open only the matching ones.
//
// Two baselines complete the picture: a plaintext trusted mediator and
// the prior "mobile code" MMM solution (client-side join after
// decryption).
//
// # Quick start
//
//	client, _ := secmediation.NewClient()
//	ca, _ := secmediation.NewAuthority("DemoCA")
//	cred, _ := ca.Issue(client.PublicKey(), []secmediation.Property{{Name: "role", Value: "analyst"}}, time.Hour)
//	client.Credentials = secmediation.Credentials{cred}
//
//	src1 := secmediation.NewSource("S1", r1, secmediation.RequireProperty("R1", "role", "analyst"), ca)
//	src2 := secmediation.NewSource("S2", r2, secmediation.RequireProperty("R2", "role", "analyst"), ca)
//	net, _ := secmediation.NewNetwork(client, &secmediation.Mediator{}, src1, src2)
//	result, _ := net.Query("SELECT * FROM R1 JOIN R2 ON R1.id = R2.id",
//	    secmediation.Commutative, secmediation.Params{})
//
// See examples/ for runnable end-to-end scenarios and DESIGN.md for the
// complete system inventory and experiment index.
package secmediation
