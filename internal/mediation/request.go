package mediation

import (
	"fmt"
	"strings"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/crypto/paillier"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
)

// Request is the client's global query message (Listing 1, step 1): the
// SQL text, the credential set CR, and the chosen delivery protocol. For
// the PM protocol the client's homomorphic public key rides along, which
// models the paper's "this key is distributed with the client's
// credentials".
type Request struct {
	SQL         string
	Credentials credential.Set
	Protocol    Protocol
	Params      Params
	// HomomorphicKey is the client's Paillier public key (PM only).
	HomomorphicKey *paillier.PublicKey
}

// PartialQuery is the mediator's message to a datasource (Listing 1,
// step 3): the partial query q_i, the credential subset CR_i, and the join
// attribute set A_i, plus everything the delivery phase needs.
type PartialQuery struct {
	// SessionID is a fresh mediator-chosen identifier; it doubles as the
	// oracle domain-separation label in the commutative protocol (both
	// sources must share it).
	SessionID string
	// Query is q_i, e.g. "SELECT * FROM R1".
	Query string
	// Relation is the queried relation's name.
	Relation string
	// JoinCols is A_i: the join attribute names, source-local.
	JoinCols []string
	// FilterCols are additional attributes to index for selection
	// pushdown (DAS extension); empty otherwise.
	FilterCols []string
	// Credentials is CR_i.
	Credentials credential.Set
	// Protocol and Params mirror the client's request.
	Protocol Protocol
	Params   Params
	// HomomorphicKey is forwarded for the PM protocol.
	HomomorphicKey *paillier.PublicKey
	// Aggregate is set for aggregation partial queries (the extension of
	// internal/mediation/aggproto.go).
	Aggregate *sqlparse.AggregateSpec
	// Union marks a union partial query: the source ships its sealed rows
	// (mobile-code wire format) and no join attributes are involved.
	Union bool
}

// PartialAck is a datasource's authorization answer (Listing 1, step 4).
// It carries the relation schema — schema metadata is part of the
// mediator's global embedding, not a secret — but never any cardinality.
type PartialAck struct {
	Granted bool
	Reason  string
	Schema  relation.Schema
}

// decomposition is the mediator's view of a parsed JOIN query.
type decomposition struct {
	query      *sqlparse.Query
	rel1, rel2 string
	// joinCols1/joinCols2 are source-local join attribute lists (parallel).
	joinCols1, joinCols2 []string
	schema1, schema2     relation.Schema
}

// decompose implements Listing 1 step 2: parse the global query, check it
// is a two-relation JOIN, resolve the join attribute sets A_1 and A_2
// against the mediator's global schema (the "embedding"), and derive the
// partial queries.
func decompose(sql string, schemas map[string]relation.Schema) (*decomposition, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if q.Right == "" {
		return nil, fmt.Errorf("mediation: query is not a JOIN of two relations: %s", sql)
	}
	if len(q.MoreJoins) > 0 {
		return nil, fmt.Errorf("mediation: chained joins must run as successive joins (Network.Query); the delivery protocols join two relations at a time")
	}
	s1, ok := schemas[q.Left]
	if !ok {
		return nil, fmt.Errorf("mediation: unknown relation %q (not in global schema)", q.Left)
	}
	s2, ok := schemas[q.Right]
	if !ok {
		return nil, fmt.Errorf("mediation: unknown relation %q (not in global schema)", q.Right)
	}
	d := &decomposition{query: q, rel1: q.Left, rel2: q.Right, schema1: s1, schema2: s2}
	if q.Natural {
		for _, c := range s1.Columns {
			if s2.IndexOf(c.Name) >= 0 {
				d.joinCols1 = append(d.joinCols1, c.Name)
				d.joinCols2 = append(d.joinCols2, c.Name)
			}
		}
		if len(d.joinCols1) == 0 {
			return nil, fmt.Errorf("mediation: NATURAL JOIN of %s and %s shares no columns", q.Left, q.Right)
		}
	} else {
		for i := range q.JoinLeft {
			c1 := localColumn(q.JoinLeft[i], q.Left)
			c2 := localColumn(q.JoinRight[i], q.Right)
			k1, err := s1.KindOf(c1)
			if err != nil {
				return nil, fmt.Errorf("mediation: %s has no join column %q", q.Left, c1)
			}
			k2, err := s2.KindOf(c2)
			if err != nil {
				return nil, fmt.Errorf("mediation: %s has no join column %q", q.Right, c2)
			}
			if k1 != k2 {
				return nil, fmt.Errorf("mediation: join column kinds differ: %s.%s is %v, %s.%s is %v", q.Left, c1, k1, q.Right, c2, k2)
			}
			d.joinCols1 = append(d.joinCols1, c1)
			d.joinCols2 = append(d.joinCols2, c2)
		}
	}
	return d, nil
}

// localColumn strips a relation qualifier.
func localColumn(name, rel string) string {
	if strings.HasPrefix(name, rel+".") {
		return name[len(rel)+1:]
	}
	return name
}

// partialSQL renders q_i. The paper fixes partial queries to "select *".
func (d *decomposition) partialSQL(rel string) string {
	return "SELECT * FROM " + rel
}

// postProcess applies, at the client, the global query's remaining
// operations to the joined relation: natural-join column dedup, the WHERE
// predicate, and the projection list. The joined relation carries both
// join columns (qualified on collision), as all three protocols produce.
func postProcess(q *sqlparse.Query, joined *relation.Relation, schema2 relation.Schema, joinCols2 []string) (*relation.Relation, error) {
	out := joined
	var err error
	if q.Natural {
		// Drop the duplicated right-side join columns, as NaturalJoin does.
		var keep []string
		for _, c := range out.Schema().Columns {
			drop := false
			for _, jc := range joinCols2 {
				if c.Name == schema2.Relation+"."+jc {
					drop = true
					break
				}
			}
			if !drop {
				keep = append(keep, c.Name)
			}
		}
		out, err = algebra.Project(out, keep...)
		if err != nil {
			return nil, err
		}
		// Restore unqualified names where unambiguous, matching
		// algebra.NaturalJoin's schema.
		out, err = algebra.UnqualifyUnique(out)
		if err != nil {
			return nil, err
		}
	}
	if q.Where != nil {
		out, err = algebra.Select(out, q.Where)
		if err != nil {
			return nil, err
		}
	}
	if q.Columns != nil {
		out, err = algebra.Project(out, q.Columns...)
		if err != nil {
			return nil, err
		}
	}
	if q.Distinct {
		out = algebra.Distinct(out)
	}
	return out, nil
}

// wireRelation is the gob-friendly form of a relation (for the plaintext
// baseline and test fixtures; the secure protocols never send one).
type wireRelation struct {
	Schema relation.Schema
	Tuples []relation.Tuple
}

// toWire serializes plaintext tuples; a mediator that calls it is
// holding a plaintext relation.
//
// seclint:source plaintext tuple serialization
func toWire(r *relation.Relation) wireRelation {
	return wireRelation{Schema: r.Schema(), Tuples: r.Tuples()}
}

// fromWire materializes plaintext tuples from their wire form.
//
// seclint:source plaintext tuples materialized from the wire
func fromWire(w wireRelation) (*relation.Relation, error) {
	return relation.FromTuples(w.Schema, w.Tuples...)
}
