package mediation

import (
	"fmt"
	"strings"
	"sync"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// Network wires a client, a mediator and a set of sources into one
// process, connected by in-memory links. Each Query spawns the mediator
// session and the source handlers as goroutines, exactly mirroring the
// distributed message flow (the TCP deployment in cmd/ uses the same
// party code over transport.Dial).
type Network struct {
	Client   *Client
	Mediator *Mediator
	Sources  []*Source

	mu         sync.Mutex
	sourceErrs []error
}

// NewNetwork builds a network. The mediator's Routes and (if unset)
// Schemas are derived from the sources' catalogs: each catalog relation is
// routed to a dialer that spawns a fresh Serve goroutine per session.
func NewNetwork(client *Client, mediator *Mediator, sources ...*Source) (*Network, error) {
	n := &Network{Client: client, Mediator: mediator, Sources: sources}
	if mediator.Routes == nil {
		mediator.Routes = make(map[string]Dialer)
	}
	if mediator.Schemas == nil {
		mediator.Schemas = make(map[string]relation.Schema)
	}
	for _, src := range sources {
		src := src
		for name, rel := range src.Catalog {
			if _, dup := mediator.Routes[name]; dup {
				return nil, fmt.Errorf("mediation: relation %q served by two sources", name)
			}
			mediator.Routes[name] = func() (transport.Conn, error) {
				a, b := transport.Pair()
				go func() {
					err := src.Serve(b)
					if cerr := b.Close(); err == nil {
						err = cerr
					}
					if err != nil {
						n.mu.Lock()
						n.sourceErrs = append(n.sourceErrs, err)
						n.mu.Unlock()
					}
				}()
				return a, nil
			}
			if _, ok := mediator.Schemas[name]; !ok {
				mediator.Schemas[name] = rel.Schema()
			}
		}
	}
	return n, nil
}

// Query runs one global query through the in-memory network. Chained-join
// queries ("A JOIN B ... JOIN C ...") execute as successive two-party
// joins via materialized delegate views (paper §8).
func (n *Network) Query(sql string, proto Protocol, params Params) (*relation.Relation, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if len(q.MoreJoins) > 0 && q.Aggregate == nil {
		return n.queryChain(q, proto, params)
	}
	return n.runSession(sql, proto, params)
}

// runSession executes one client/mediator session.
func (n *Network) runSession(sql string, proto Protocol, params Params) (*relation.Relation, error) {
	clientSide, mediatorSide := transport.Pair()
	done := make(chan error, 1)
	go func() {
		done <- closeJoin(mediatorSide, n.Mediator.HandleSession(mediatorSide))
	}()
	res, err := n.Client.Query(clientSide, sql, proto, params)
	err = closeJoin(clientSide, err)
	medErr := <-done
	if err != nil {
		return nil, err
	}
	if medErr != nil {
		return nil, fmt.Errorf("mediation: mediator failed after client success: %w", medErr)
	}
	return res, nil
}

// closeJoin closes c and folds the close error into the protocol
// result: a failed Close after a successful protocol run can mean lost
// frames on a real transport and must not vanish silently.
func closeJoin(c transport.Conn, err error) error {
	cerr := c.Close()
	if err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("mediation: closing session connection: %w", cerr)
	}
	return nil
}

// SetTelemetry points every party of the network at one registry, so a
// run produces a single cross-party span tree (registries are process-
// local and never cross transport links; in-process all parties can
// share one). Pass nil to disable.
func (n *Network) SetTelemetry(reg *telemetry.Registry) {
	n.Client.Telemetry = reg
	n.Mediator.Telemetry = reg
	for _, src := range n.Sources {
		src.Telemetry = reg
	}
}

// SourceErrors drains errors raised by source handler goroutines; useful
// in tests asserting clean protocol shutdown.
func (n *Network) SourceErrors() []error {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.sourceErrs
	n.sourceErrs = nil
	return out
}

// MaterializeView prepares a query result for re-registration as a
// relation at a (delegate) source — the mediator-hierarchy scenario where
// one mediator acts as a datasource for another (paper Section 8). Column
// names are sanitized ("R1.id" → "R1_id") so the view is queryable.
func MaterializeView(r *relation.Relation, name string) (*relation.Relation, error) {
	cols := make([]relation.Column, len(r.Schema().Columns))
	for i, c := range r.Schema().Columns {
		cols[i] = relation.Column{Name: strings.ReplaceAll(c.Name, ".", "_"), Kind: c.Kind}
	}
	schema, err := relation.NewSchema(name, cols...)
	if err != nil {
		return nil, err
	}
	return relation.FromTuples(schema, r.Tuples()...)
}

// Intersect runs Client.Intersect through the in-memory network.
func (n *Network) Intersect(rel1, rel2 string, params Params) (*relation.Relation, error) {
	clientSide, mediatorSide := transport.Pair()
	done := make(chan error, 1)
	go func() {
		done <- closeJoin(mediatorSide, n.Mediator.HandleSession(mediatorSide))
	}()
	res, err := n.Client.Intersect(clientSide, rel1, rel2, params)
	err = closeJoin(clientSide, err)
	medErr := <-done
	if err != nil {
		return nil, err
	}
	if medErr != nil {
		return nil, fmt.Errorf("mediation: mediator failed after client success: %w", medErr)
	}
	return res, nil
}

// queryChain executes a chained-join query ("A JOIN B ... JOIN C ...") as
// successive two-party joins — the paper's Section 8 scenario, automated:
// each intermediate result is materialized as a view at a delegate source
// (the lower mediator acting as a datasource) and joined with the next
// relation through a fresh mediation session. The original query's WHERE,
// projection and DISTINCT apply to the final join, client-side.
func (n *Network) queryChain(q *sqlparse.Query, proto Protocol, params Params) (*relation.Relation, error) {
	firstQ := &sqlparse.Query{Left: q.Left, Right: q.Right, Natural: q.Natural,
		JoinLeft: q.JoinLeft, JoinRight: q.JoinRight}
	cur, err := n.runSession(firstQ.String(), proto, params)
	if err != nil {
		return nil, err
	}
	for i, step := range q.MoreJoins {
		viewName := fmt.Sprintf("__view_%d", i+1)
		if _, clash := n.Mediator.Schemas[viewName]; clash {
			return nil, fmt.Errorf("mediation: view name %s collides with a real relation", viewName)
		}
		view, err := relation.FromTuples(cur.Schema().Rename(viewName), cur.Tuples()...)
		if err != nil {
			return nil, err
		}
		owner, err := n.sourceOf(step.Relation)
		if err != nil {
			return nil, err
		}
		delegate := &Source{
			Name:    "delegate:" + viewName,
			Catalog: algebra.MapCatalog{viewName: view},
			// The delegate holds the client's own intermediate result; any
			// verifiable credential of the querying client unlocks it.
			Policies:   map[string]*credential.Policy{viewName: {Relation: viewName}},
			TrustedCAs: owner.TrustedCAs,
			Ledger:     n.Mediator.Ledger,
		}
		sub, err := NewNetwork(n.Client, &Mediator{Ledger: n.Mediator.Ledger}, delegate, owner)
		if err != nil {
			return nil, err
		}
		stepSQL, err := chainStepSQL(viewName, view.Schema(), step)
		if err != nil {
			return nil, err
		}
		cur, err = sub.runSession(stepSQL, proto, params)
		if err != nil {
			return nil, err
		}
	}
	// Apply the original query's unary operations to the final join.
	if q.Where != nil {
		cur, err = algebra.Select(cur, q.Where)
		if err != nil {
			return nil, err
		}
	}
	if q.Columns != nil {
		cur, err = algebra.Project(cur, q.Columns...)
		if err != nil {
			return nil, err
		}
	}
	if q.Distinct {
		cur = algebra.Distinct(cur)
	}
	return cur, nil
}

// sourceOf finds the source serving a relation.
func (n *Network) sourceOf(rel string) (*Source, error) {
	for _, src := range n.Sources {
		if _, ok := src.Catalog[rel]; ok {
			return src, nil
		}
	}
	return nil, fmt.Errorf("mediation: no source serves relation %q", rel)
}

// chainStepSQL renders the two-relation SQL for one chain step, resolving
// which side of each ON pair lives in the accumulated view.
func chainStepSQL(viewName string, viewSchema relation.Schema, step sqlparse.JoinStep) (string, error) {
	if step.Natural {
		return "SELECT * FROM " + viewName + " NATURAL JOIN " + step.Relation, nil
	}
	var b strings.Builder
	b.WriteString("SELECT * FROM ")
	b.WriteString(viewName)
	b.WriteString(" JOIN ")
	b.WriteString(step.Relation)
	b.WriteString(" ON ")
	for i := range step.OnLeft {
		l, r := step.OnLeft[i], step.OnRight[i]
		if viewSchema.IndexOf(l) < 0 {
			if viewSchema.IndexOf(r) < 0 {
				return "", fmt.Errorf("mediation: join condition %s = %s references no view column", l, r)
			}
			l, r = r, l
		}
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(l)
		b.WriteString(" = ")
		b.WriteString(r)
	}
	return b.String(), nil
}
