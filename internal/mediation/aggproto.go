package mediation

import (
	"crypto/rand"
	"fmt"
	"math"
	"math/big"

	"github.com/secmediation/secmediation/internal/crypto/paillier"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
	"github.com/secmediation/secmediation/internal/transport"
)

// The aggregation extension: mediator-side SUM/COUNT/AVG over Paillier
// ciphertexts, inspired by the aggregation-over-encrypted-data line of
// work the paper's Section 7 discusses ([14],[9] — whose custom scheme was
// broken by Mykletun/Tsudik; we use the provably additive Paillier scheme
// instead). The source encrypts the aggregated column value-wise under the
// client's homomorphic key; the untrusted mediator folds the ciphertexts
// into E(Σ) without learning any value; the client decrypts one number.
// The mediator learns only the row count (which COUNT reveals by design).

// aggScale is the fixed-point scale for FLOAT aggregation.
const aggScale = 1_000_000

const (
	msgAggPartial = "agg.partial"
	msgAggResult  = "agg.result"
)

// aggPartial is the source's message: the encrypted column.
type aggPartial struct {
	Count  int64
	Values []*paillier.Ciphertext // empty for COUNT
	Kind   relation.Kind          // the aggregated column's kind
}

// aggResult is the mediator's message to the client.
type aggResult struct {
	Func   string
	Column string
	Count  int64
	ESum   *paillier.Ciphertext // nil for COUNT
	Kind   relation.Kind
}

// serveAggregate implements the source's side: execute the (filtered)
// partial query, then encrypt the aggregated column value-wise.
func (s *Source) serveAggregate(conn transport.Conn, pq *PartialQuery, rel *relation.Relation, watch *stopwatch) error {
	if pq.HomomorphicKey == nil || pq.HomomorphicKey.N == nil {
		return fmt.Errorf("agg: request carries no homomorphic client key")
	}
	pk := derivePaillierKey(pq.HomomorphicKey)
	spec := pq.Aggregate
	if spec == nil {
		return fmt.Errorf("agg: partial query carries no aggregate spec")
	}
	out := aggPartial{Count: int64(rel.Len())}
	err := watch.track(func() error {
		if spec.Func == "COUNT" {
			return nil // the cardinality is the whole answer
		}
		ci := rel.Schema().IndexOf(spec.Column)
		if ci < 0 {
			return fmt.Errorf("agg: relation %s has no column %q", pq.Relation, spec.Column)
		}
		kind := rel.Schema().Columns[ci].Kind
		if kind != relation.KindInt && kind != relation.KindFloat {
			return fmt.Errorf("agg: cannot aggregate %v column %q", kind, spec.Column)
		}
		out.Kind = kind
		for _, t := range rel.Tuples() {
			v, err := fixedPoint(t[ci])
			if err != nil {
				return err
			}
			ct, err := pk.EncryptSigned(rand.Reader, big.NewInt(v))
			if err != nil {
				return err
			}
			out.Values = append(out.Values, ct)
		}
		s.Ledger.UsePrimitive(s.party(), "homomorphic-encryption", int64(len(out.Values)))
		return nil
	})
	if err != nil {
		return err
	}
	return sendMsg(conn, "mediator", msgAggPartial, out)
}

// fixedPoint encodes an INT or FLOAT value as a scaled integer.
func fixedPoint(v relation.Value) (int64, error) {
	switch v.Kind() {
	case relation.KindInt:
		return v.AsInt(), nil
	case relation.KindFloat:
		f := v.AsFloat()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("agg: cannot aggregate %v", f)
		}
		scaled := math.Round(f * aggScale)
		if scaled > math.MaxInt64/2 || scaled < math.MinInt64/2 {
			return 0, fmt.Errorf("agg: value %v overflows the fixed-point range", f)
		}
		return int64(scaled), nil
	default:
		return 0, fmt.Errorf("agg: unsupported kind %v", v.Kind())
	}
}

// handleAggregate is the mediator's side: localize the source, forward the
// partial query, fold the encrypted column into E(Σ) and report the count.
// seclint:entry mediator
func (m *Mediator) handleAggregate(client transport.Conn, req *Request, q *sqlparse.Query) error {
	if q.Right != "" {
		return fmt.Errorf("mediation: aggregates over joins are not supported")
	}
	if req.HomomorphicKey == nil {
		return fmt.Errorf("mediation: aggregate request carries no homomorphic key")
	}
	if _, ok := m.Schemas[q.Left]; !ok {
		return fmt.Errorf("mediation: unknown relation %q (not in global schema)", q.Left)
	}
	dial, ok := m.Routes[q.Left]
	if !ok {
		return fmt.Errorf("mediation: no source for relation %q", q.Left)
	}
	conn, err := dial()
	if err != nil {
		return &ProtocolError{Party: "source:" + q.Left, Err: fmt.Errorf("dialing: %w", err)}
	}
	defer conn.Close()
	if req.Params.Timeout > 0 {
		conn.SetTimeout(req.Params.Timeout)
	}
	session, err := newSessionID()
	if err != nil {
		return err
	}
	// The partial query keeps the WHERE clause: the source owns the
	// plaintext and applies it before encryption.
	partial := *q
	partial.Aggregate = nil
	pq := PartialQuery{
		SessionID: session, Query: partial.String(), Relation: q.Left,
		Credentials: m.selectCredentials(q.Left, req.Credentials),
		Protocol:    req.Protocol, Params: req.Params,
		HomomorphicKey: req.HomomorphicKey, Aggregate: q.Aggregate,
	}
	if err := sendMsg(conn, "source:"+q.Left, msgPartialQuery, pq); err != nil {
		return err
	}
	var ack PartialAck
	if err := recvInto(conn, "source:"+q.Left, msgPartialAck, &ack); err != nil {
		return err
	}
	if !ack.Granted {
		return fmt.Errorf("mediation: access to %s denied: %s", q.Left, ack.Reason)
	}
	var part aggPartial
	if err := recvInto(conn, "source:"+q.Left, msgAggPartial, &part); err != nil {
		return err
	}
	// The mediator learns only the row count.
	m.Ledger.Observe(leakage.PartyMediator, "|R|", part.Count)

	res := aggResult{Func: q.Aggregate.Func, Column: q.Aggregate.Column, Count: part.Count, Kind: part.Kind}
	watch := newStopwatch(m.Ledger, leakage.PartyMediator)
	err = watch.track(func() error {
		if q.Aggregate.Func == "COUNT" {
			return nil
		}
		pk := derivePaillierKey(req.HomomorphicKey)
		acc, err := pk.Encrypt(rand.Reader, new(big.Int))
		if err != nil {
			return err
		}
		for _, c := range part.Values {
			acc = pk.Add(acc, c)
		}
		m.Ledger.UsePrimitive(leakage.PartyMediator, "homomorphic-addition", int64(len(part.Values)))
		res.ESum = acc
		return nil
	})
	if err != nil {
		return err
	}
	return sendMsg(client, "client", msgAggResult, res)
}

// runAggregate is the client's side: decrypt E(Σ) and assemble the
// one-row result relation.
func (c *Client) runAggregate(conn transport.Conn, q *sqlparse.Query, params Params) (*relation.Relation, error) {
	var res aggResult
	if err := recvInto(conn, "mediator", msgAggResult, &res); err != nil {
		return nil, err
	}
	name := res.Func + "(" + res.Column + ")"
	if res.Func == "COUNT" {
		schema, err := relation.NewSchema("", relation.Column{Name: name, Kind: relation.KindInt})
		if err != nil {
			return nil, err
		}
		return relation.FromTuples(schema, relation.Tuple{relation.Int(res.Count)})
	}
	hk, err := c.HomomorphicKey(params.PaillierBits)
	if err != nil {
		return nil, err
	}
	if res.ESum == nil {
		return nil, fmt.Errorf("mediation: aggregate result carries no sum")
	}
	sum, err := hk.DecryptSigned(res.ESum)
	if err != nil {
		return nil, err
	}
	c.Ledger.UsePrimitive(leakage.PartyClient, "homomorphic-decryption", 1)
	if !sum.IsInt64() {
		return nil, fmt.Errorf("mediation: aggregate sum overflows int64")
	}
	var out relation.Value
	switch {
	case res.Func == "AVG":
		if res.Count == 0 {
			return nil, fmt.Errorf("mediation: AVG over empty relation")
		}
		f := float64(sum.Int64()) / float64(res.Count)
		if res.Kind == relation.KindFloat {
			f /= aggScale
		}
		out = relation.Float(f)
	case res.Kind == relation.KindFloat:
		out = relation.Float(float64(sum.Int64()) / aggScale)
	default:
		out = relation.Int(sum.Int64())
	}
	schema, err := relation.NewSchema("", relation.Column{Name: name, Kind: out.Kind()})
	if err != nil {
		return nil, err
	}
	return relation.FromTuples(schema, relation.Tuple{out})
}

// derivePaillierKey completes a transported public key (NSquared is
// derived locally, not trusted from the wire).
func derivePaillierKey(pk *paillier.PublicKey) *paillier.PublicKey {
	return &paillier.PublicKey{N: pk.N, NSquared: new(big.Int).Mul(pk.N, pk.N)}
}
