package mediation

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	rel "github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// The chaos suite (`make chaos`) runs every protocol under every fault
// class on a fixed seed and asserts the resilience contract: a faulted run
// either produces the correct join or fails with a clean *ProtocolError,
// always within the deadline, never leaking a goroutine.

// chaosSeedDefault pins the fault schedule (which operations fault, which
// byte a corruption flips) so the suite is reproducible run-over-run.
const chaosSeedDefault = 20070415

// chaosTimeout is the per-operation deadline every party arms during a
// chaos run; a silent link is detected within it.
const chaosTimeout = 2 * time.Second

// chaosSeed returns the fixed schedule seed, overridable with CHAOS_SEED
// to explore different fault positions.
func chaosSeed(t testing.TB) uint64 {
	t.Helper()
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return chaosSeedDefault
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEED=%q: %v", s, err)
	}
	return v
}

// faultRoute wraps the mediator's dialer for one relation so every link it
// opens to that source runs through a fault injector with the given plan.
func faultRoute(n *Network, relName string, plan *transport.FaultPlan) {
	orig := n.Mediator.Routes[relName]
	n.Mediator.Routes[relName] = func() (transport.Conn, error) {
		c, err := orig()
		if err != nil {
			return nil, err
		}
		return transport.WrapFault(c, plan), nil
	}
}

// chaosProtocols is the full protocol matrix.
var chaosProtocols = []Protocol{
	ProtocolPlaintext, ProtocolMobileCode, ProtocolDAS, ProtocolCommutative, ProtocolPM,
}

// TestChaosMatrix injects each fault class into the mediator↔source-of-R1
// link of each protocol. The faulted operations (send op 1, recv op 1 on
// the mediator side) land mid-protocol: after the partial-query/ack
// handshake, inside the delivery phase.
func TestChaosMatrix(t *testing.T) {
	seed := chaosSeed(t)
	want := expectedJoin(t)
	classes := []transport.FaultClass{
		transport.FaultDrop, transport.FaultDelay, transport.FaultDuplicate,
		transport.FaultCorrupt, transport.FaultTruncate, transport.FaultClose,
	}
	for _, proto := range chaosProtocols {
		for _, class := range classes {
			proto, class := proto, class
			t.Run(fmt.Sprintf("%s/%s", proto, class), func(t *testing.T) {
				snap := testutil.Snapshot()
				n := newTestNetwork(t, nil)
				faultRoute(n, "R1", &transport.FaultPlan{
					Class: class, SendOp: 1, RecvOp: 1,
					Seed: seed ^ uint64(proto)<<8 ^ uint64(class),
				})
				params := fastParams()
				params.Timeout = chaosTimeout

				var res *rel.Relation
				err := testutil.WithinDeadline(t, 2*chaosTimeout, func() error {
					var qerr error
					res, qerr = n.Query(fixtureSQL, proto, params)
					return qerr
				})
				if err != nil {
					var pe *ProtocolError
					if !errors.As(err, &pe) {
						t.Fatalf("chaos error is not a *ProtocolError: %v", err)
					}
				}
				switch class {
				case transport.FaultDelay:
					// A slow link is not a fault: the run must succeed.
					if err != nil {
						t.Fatalf("delayed run failed: %v", err)
					}
					if !res.EqualMultiset(want) {
						t.Errorf("delayed run returned a wrong join")
					}
				case transport.FaultDrop, transport.FaultTruncate, transport.FaultClose:
					// A lost message, a cut body or a dead link cannot
					// produce the join; the run must abort cleanly.
					if err == nil {
						t.Fatalf("%s fault went unnoticed", class)
					}
				case transport.FaultDuplicate:
					// A replay either desyncs the protocol (clean abort) or
					// goes unread; a successful run must still be correct.
					if err == nil && !res.EqualMultiset(want) {
						t.Errorf("run with duplicated message returned a wrong join")
					}
				case transport.FaultCorrupt:
					// Detection is protocol-dependent: ciphertext protocols
					// reject (AEAD/decode) or drop the corrupted match —
					// they never fabricate tuples. Plaintext carries no
					// integrity at all (that is its point of comparison),
					// so only clean termination is required there.
					if err == nil && proto != ProtocolPlaintext && res.Len() > want.Len() {
						t.Errorf("corrupted run fabricated tuples: %d > %d", res.Len(), want.Len())
					}
				}
				n.SourceErrors() // drain; faulted runs may log source aborts
				testutil.CheckGoroutines(t, snap)
			})
		}
	}
}

// TestChaosClientLink faults the client↔mediator link for a sample of
// protocols: the client must abort with a typed error and the mediator
// must unwind (not hang waiting for a client that gave up).
func TestChaosClientLink(t *testing.T) {
	seed := chaosSeed(t)
	cases := []struct {
		proto  Protocol
		class  transport.FaultClass
		recvOp int // DAS clients receive two messages; comm/PM only one
	}{
		{ProtocolDAS, transport.FaultClose, 1},
		{ProtocolCommutative, transport.FaultDrop, 0},
		{ProtocolPM, transport.FaultTruncate, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/%s", tc.proto, tc.class), func(t *testing.T) {
			snap := testutil.Snapshot()
			n := newTestNetwork(t, nil)
			clientSide, mediatorSide := transport.Pair()
			done := make(chan struct{})
			go func() {
				defer close(done)
				_ = n.Mediator.HandleSession(mediatorSide)
				mediatorSide.Close()
			}()
			wrapped := transport.WrapFault(clientSide, &transport.FaultPlan{
				Class: tc.class, SendOp: -1, RecvOp: tc.recvOp, Seed: seed,
			})
			params := fastParams()
			params.Timeout = chaosTimeout
			err := testutil.WithinDeadline(t, 2*chaosTimeout, func() error {
				_, qerr := n.Client.Query(wrapped, fixtureSQL, tc.proto, params)
				return qerr
			})
			clientSide.Close()
			<-done
			if err == nil {
				t.Fatal("fault on the client link went unnoticed")
			}
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Errorf("untyped client-link error: %v", err)
			}
			n.SourceErrors()
			testutil.CheckGoroutines(t, snap)
		})
	}
}
