package mediation

import (
	"crypto/rsa"
	"math"
	"testing"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/leakage"
	rel "github.com/secmediation/secmediation/internal/relation"
)

func aggNetwork(t testing.TB, ledger *leakage.Ledger) *Network {
	t.Helper()
	f := getFixture(t)
	schema := rel.MustSchema("Claims",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "amount", Kind: rel.KindFloat},
		rel.Column{Name: "units", Kind: rel.KindInt},
		rel.Column{Name: "payer", Kind: rel.KindString})
	claims := rel.MustFromTuples(schema,
		rel.Tuple{rel.Int(1), rel.Float(10.5), rel.Int(3), rel.String_("a")},
		rel.Tuple{rel.Int(2), rel.Float(-2.25), rel.Int(4), rel.String_("b")},
		rel.Tuple{rel.Int(3), rel.Float(100), rel.Int(-1), rel.String_("a")},
		rel.Tuple{rel.Int(4), rel.Float(0.125), rel.Int(10), rel.String_("c")},
	)
	src := &Source{Name: "Insurer", Catalog: algebra.MapCatalog{"Claims": claims},
		Policies:   map[string]*credential.Policy{"Claims": policyFor("Claims")},
		TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}, Ledger: ledger}
	f.client.Ledger = ledger
	n, err := NewNetwork(f.client, &Mediator{Ledger: ledger}, src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func oneValue(t *testing.T, n *Network, sql string) rel.Value {
	t.Helper()
	res, err := n.Query(sql, ProtocolPM, fastParams())
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if res.Len() != 1 || res.Schema().Arity() != 1 {
		t.Fatalf("%s: result shape %dx%d", sql, res.Len(), res.Schema().Arity())
	}
	return res.Tuple(0)[0]
}

func TestAggregateSumFloat(t *testing.T) {
	n := aggNetwork(t, nil)
	got := oneValue(t, n, "SELECT SUM(amount) FROM Claims")
	want := 10.5 - 2.25 + 100 + 0.125
	if math.Abs(got.AsFloat()-want) > 1e-6 {
		t.Errorf("SUM(amount) = %v, want %v", got, want)
	}
}

func TestAggregateSumIntWithNegatives(t *testing.T) {
	n := aggNetwork(t, nil)
	got := oneValue(t, n, "SELECT SUM(units) FROM Claims")
	if got.AsInt() != 16 {
		t.Errorf("SUM(units) = %v, want 16", got)
	}
}

func TestAggregateCountAndAvg(t *testing.T) {
	n := aggNetwork(t, nil)
	if got := oneValue(t, n, "SELECT COUNT(*) FROM Claims"); got.AsInt() != 4 {
		t.Errorf("COUNT(*) = %v", got)
	}
	got := oneValue(t, n, "SELECT AVG(units) FROM Claims")
	if math.Abs(got.AsFloat()-4.0) > 1e-9 {
		t.Errorf("AVG(units) = %v, want 4", got)
	}
	gotF := oneValue(t, n, "SELECT AVG(amount) FROM Claims")
	want := (10.5 - 2.25 + 100 + 0.125) / 4
	if math.Abs(gotF.AsFloat()-want) > 1e-6 {
		t.Errorf("AVG(amount) = %v, want %v", gotF, want)
	}
}

func TestAggregateWithWhere(t *testing.T) {
	n := aggNetwork(t, nil)
	got := oneValue(t, n, "SELECT SUM(units) FROM Claims WHERE payer = 'a'")
	if got.AsInt() != 2 {
		t.Errorf("filtered SUM = %v, want 2", got)
	}
	if got := oneValue(t, n, "SELECT COUNT(*) FROM Claims WHERE units > 3"); got.AsInt() != 2 {
		t.Errorf("filtered COUNT = %v, want 2", got)
	}
}

// The mediator folds ciphertexts without decrypting: it learns only the
// row count and applies only homomorphic additions.
func TestAggregateMediatorLeakage(t *testing.T) {
	ledger := leakage.NewLedger()
	n := aggNetwork(t, ledger)
	if got := oneValue(t, n, "SELECT SUM(units) FROM Claims"); got.AsInt() != 16 {
		t.Fatalf("SUM = %v", got)
	}
	if v, ok := ledger.Observed(leakage.PartyMediator, "|R|"); !ok || v != 4 {
		t.Errorf("mediator |R| = %d,%v", v, ok)
	}
	if c := ledger.PrimitiveCount(leakage.PartyMediator, "homomorphic-addition"); c != 4 {
		t.Errorf("mediator additions = %d, want 4", c)
	}
	if c := ledger.PrimitiveCount(leakage.PartySource("Insurer"), "homomorphic-encryption"); c != 4 {
		t.Errorf("source encryptions = %d, want 4", c)
	}
	// The mediator must never apply a decryption primitive.
	for _, p := range ledger.Primitives(leakage.PartyMediator) {
		if p == "homomorphic-decryption" {
			t.Error("mediator decrypted")
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	n := aggNetwork(t, nil)
	cases := []string{
		"SELECT SUM(payer) FROM Claims",   // TEXT column
		"SELECT SUM(ghost) FROM Claims",   // unknown column
		"SELECT SUM(amount) FROM Unknown", // unknown relation
	}
	for _, sql := range cases {
		if _, err := n.Query(sql, ProtocolPM, fastParams()); err == nil {
			t.Errorf("%s succeeded", sql)
		}
	}
}

func TestFixedPoint(t *testing.T) {
	if v, err := fixedPoint(rel.Int(-7)); err != nil || v != -7 {
		t.Errorf("fixedPoint(INT): %d, %v", v, err)
	}
	if v, err := fixedPoint(rel.Float(1.5)); err != nil || v != 1500000 {
		t.Errorf("fixedPoint(FLOAT): %d, %v", v, err)
	}
	if _, err := fixedPoint(rel.Float(math.NaN())); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := fixedPoint(rel.Float(math.Inf(1))); err == nil {
		t.Error("Inf accepted")
	}
	if _, err := fixedPoint(rel.Float(1e300)); err == nil {
		t.Error("overflowing float accepted")
	}
	if _, err := fixedPoint(rel.Bool(true)); err == nil {
		t.Error("BOOL accepted")
	}
}
