package mediation

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"

	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// Dialer opens a fresh link to a datasource for one session. Calling a
// Dialer crosses a party boundary: whatever runs behind it (the
// source's Serve loop) executes at the source, not at the mediator, so
// the taint analysis correctly stops at the call.
//
// seclint:boundary source
type Dialer func() (transport.Conn, error)

// Mediator is the untrusted middle party of Figure 2: it localizes
// datasources, decomposes global queries, forwards credential subsets, and
// runs the mediator side of each delivery-phase protocol — over
// ciphertexts only.
type Mediator struct {
	// Schemas is the mediator's homogeneous global schema (the paper's
	// "embedding"): relation name → schema.
	Schemas map[string]relation.Schema
	// Routes localizes relations: relation name → dialer to the owning
	// source.
	Routes map[string]Dialer
	// CredHints optionally names, per relation, the credential property
	// names the owning source's policy needs; the mediator forwards only
	// matching credentials (Listing 1, step 2: "selects appropriate
	// subsets CR_i"). Relations without hints receive the full set.
	CredHints map[string][]string
	// Ledger optionally records leakage, primitive usage and traffic.
	Ledger *leakage.Ledger
	// Telemetry optionally records phase spans and traffic metrics for
	// this party.
	Telemetry *telemetry.Registry
}

// HandleSession serves one client session end-to-end. It is the
// combination of the request phase (Listing 1) and the mediator role of
// the selected delivery phase (Listings 2–4). Everything reachable from
// here runs at the untrusted mediator and is held to the
// ciphertext-only invariant by the plaintaint/keyscope analyzers.
//
// seclint:entry mediator
func (m *Mediator) HandleSession(client transport.Conn) error {
	err := m.handleSession(client)
	if err != nil {
		err = attribute(leakage.PartyMediator, "", err)
		countTimeout(m.Telemetry, leakage.PartyMediator, err)
		sendError(client, leakage.PartyMediator, err)
	}
	return err
}

func (m *Mediator) handleSession(client transport.Conn) error {
	var req Request
	if err := recvInto(client, "client", msgRequest, &req); err != nil {
		return err
	}
	req.Params = req.Params.withDefaults()
	// Arm the client link with the request's per-operation deadline; the
	// source links are armed right after dialing.
	if req.Params.Timeout > 0 {
		client.SetTimeout(req.Params.Timeout)
	}

	// Aggregation and union queries take their own paths (aggproto.go,
	// unionproto.go).
	if q, err := sqlparse.Parse(req.SQL); err == nil {
		if q.Aggregate != nil {
			return m.handleAggregate(client, &req, q)
		}
		if q.UnionWith != "" {
			return m.handleUnion(client, &req, q)
		}
	}

	root := m.Telemetry.Tracer(leakage.PartyMediator).Start("session")
	root.Annotate("protocol", req.Protocol.String())
	annotateSession(root, client)
	defer root.End()

	// Listing 1, steps 2–3 are the querying phase: decompose, localize,
	// ship partial queries, collect authorization acks. The span is ended
	// exactly once — at the phase boundary, or at whatever earlier point
	// an error aborts the session.
	querying := root.Start(telemetry.PhaseQuerying)
	queryingEnded := false
	endQuerying := func() {
		if !queryingEnded {
			queryingEnded = true
			querying.End()
		}
	}
	defer endQuerying()

	// Listing 1, step 2: decompose and localize.
	d, err := decompose(req.SQL, m.Schemas)
	if err != nil {
		return err
	}
	dial1, ok := m.Routes[d.rel1]
	if !ok {
		return fmt.Errorf("mediation: no source for relation %q", d.rel1)
	}
	dial2, ok := m.Routes[d.rel2]
	if !ok {
		return fmt.Errorf("mediation: no source for relation %q", d.rel2)
	}
	conn1, err := dial1()
	if err != nil {
		return &ProtocolError{Party: "source:" + d.rel1, Err: fmt.Errorf("dialing: %w", err)}
	}
	defer conn1.Close()
	conn2, err := dial2()
	if err != nil {
		return &ProtocolError{Party: "source:" + d.rel2, Err: fmt.Errorf("dialing: %w", err)}
	}
	defer conn2.Close()
	if req.Params.Timeout > 0 {
		conn1.SetTimeout(req.Params.Timeout)
		conn2.SetTimeout(req.Params.Timeout)
	}

	session, err := newSessionID()
	if err != nil {
		return err
	}

	// Listing 1, step 3: partial queries with credential subsets and join
	// attribute sets.
	pq1 := PartialQuery{
		SessionID: session, Query: d.partialSQL(d.rel1), Relation: d.rel1,
		JoinCols: d.joinCols1, Credentials: m.selectCredentials(d.rel1, req.Credentials),
		Protocol: req.Protocol, Params: req.Params, HomomorphicKey: req.HomomorphicKey,
	}
	pq2 := PartialQuery{
		SessionID: session, Query: d.partialSQL(d.rel2), Relation: d.rel2,
		JoinCols: d.joinCols2, Credentials: m.selectCredentials(d.rel2, req.Credentials),
		Protocol: req.Protocol, Params: req.Params, HomomorphicKey: req.HomomorphicKey,
	}
	if req.Protocol == ProtocolDAS && req.Params.Pushdown {
		// Selection-pushdown extension: ask the sources to index the
		// pushable WHERE columns as well.
		pq1.FilterCols = filterColumns(extractPushdown(d.query.Where, m.Schemas[d.rel1]), d.joinCols1)
		pq2.FilterCols = filterColumns(extractPushdown(d.query.Where, m.Schemas[d.rel2]), d.joinCols2)
	}
	if err := sendMsg(conn1, "source:"+d.rel1, msgPartialQuery, pq1); err != nil {
		abortLinks(err, conn2)
		return err
	}
	if err := sendMsg(conn2, "source:"+d.rel2, msgPartialQuery, pq2); err != nil {
		abortLinks(err, conn1)
		return err
	}
	var ack1, ack2 PartialAck
	if err := recvInto(conn1, "source:"+d.rel1, msgPartialAck, &ack1); err != nil {
		abortLinks(err, conn2)
		return err
	}
	if err := recvInto(conn2, "source:"+d.rel2, msgPartialAck, &ack2); err != nil {
		abortLinks(err, conn1)
		return err
	}
	if !ack1.Granted {
		return fmt.Errorf("mediation: access to %s denied: %s", d.rel1, ack1.Reason)
	}
	if !ack2.Granted {
		return fmt.Errorf("mediation: access to %s denied: %s", d.rel2, ack2.Reason)
	}
	d.schema1, d.schema2 = ack1.Schema, ack2.Schema
	endQuerying()

	watch := newStopwatch(m.Ledger, leakage.PartyMediator)
	watch.attach(root)
	switch req.Protocol {
	case ProtocolPlaintext:
		err = m.mediatePlaintext(client, conn1, conn2, d, watch)
	case ProtocolMobileCode:
		err = m.mediateMobileCode(client, conn1, conn2, d)
	case ProtocolDAS:
		err = m.mediateDAS(client, conn1, conn2, d, watch)
	case ProtocolCommutative:
		err = m.mediateCommutative(client, conn1, conn2, d, req.Params, watch)
	case ProtocolPM:
		err = m.mediatePM(client, conn1, conn2, d, req.Params, watch)
	default:
		err = fmt.Errorf("mediation: unknown protocol %d", req.Protocol)
	}
	if err != nil {
		// Unblock sources that may still be waiting mid-protocol.
		abortLinks(err, conn1, conn2)
		return err
	}
	m.recordTraffic(client, conn1, conn2)
	trafficGauges(m.Telemetry, leakage.PartyMediator, "client", client.Stats())
	trafficGauges(m.Telemetry, leakage.PartyMediator, "source:"+d.rel1, conn1.Stats())
	trafficGauges(m.Telemetry, leakage.PartyMediator, "source:"+d.rel2, conn2.Stats())
	return nil
}

// selectCredentials picks CR_i for a relation per the configured hints.
func (m *Mediator) selectCredentials(rel string, all credential.Set) credential.Set {
	hints, ok := m.CredHints[rel]
	if !ok || len(hints) == 0 {
		return all
	}
	seen := map[*credential.Credential]bool{}
	var out credential.Set
	for _, h := range hints {
		for _, c := range all.WithProperty(h) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

func (m *Mediator) recordTraffic(client, s1, s2 transport.Conn) {
	if m.Ledger == nil {
		return
	}
	m.Ledger.Observe(leakage.PartyMediator, "bytes-to-client", client.Stats().BytesSent())
	m.Ledger.Observe(leakage.PartyMediator, "bytes-from-client", client.Stats().BytesRecv())
	m.Ledger.Observe(leakage.PartyMediator, "bytes-to-sources", s1.Stats().BytesSent()+s2.Stats().BytesSent())
	m.Ledger.Observe(leakage.PartyMediator, "bytes-from-sources", s1.Stats().BytesRecv()+s2.Stats().BytesRecv())
	m.Ledger.Observe(leakage.PartyMediator, "msgs-with-client", client.Stats().MsgsSent()+client.Stats().MsgsRecv())
	m.Ledger.Observe(leakage.PartyMediator, "msgs-with-sources",
		s1.Stats().MsgsSent()+s1.Stats().MsgsRecv()+s2.Stats().MsgsSent()+s2.Stats().MsgsRecv())
}

func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("mediation: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}
