package mediation

import (
	"errors"
	"strings"
	"testing"

	"github.com/secmediation/secmediation/internal/transport"
)

// failCloseConn wraps a Conn with an injectable Close error — the
// in-memory pair's Close never fails, so the close-error path of
// closeJoin is only reachable through a stub.
type failCloseConn struct {
	transport.Conn
	closeErr error
	closes   int
}

func (c *failCloseConn) Close() error {
	c.closes++
	return c.closeErr
}

func TestCloseJoin(t *testing.T) {
	a, b := transport.Pair()
	defer b.Close()

	boom := errors.New("boom")
	c := &failCloseConn{Conn: a, closeErr: boom}

	// A close failure after a successful protocol run must surface.
	err := closeJoin(c, nil)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("closeJoin(nil protocol error) = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "closing session connection") {
		t.Errorf("close error not labeled: %v", err)
	}

	// The protocol error takes precedence over the close error.
	perr := errors.New("protocol failed")
	if err := closeJoin(c, perr); err != perr {
		t.Errorf("closeJoin(protocol error) = %v, want the protocol error", err)
	}
	if c.closes != 2 {
		t.Errorf("Close called %d times, want 2 (closed on every path)", c.closes)
	}

	// Clean close, clean protocol: nil.
	c.closeErr = nil
	if err := closeJoin(c, nil); err != nil {
		t.Errorf("closeJoin clean = %v, want nil", err)
	}
}
