package mediation

import (
	"crypto/rsa"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	rel "github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// These tests deploy the full multi-tenant topology the commands run:
// sources and mediator behind session.Servers, the mediator keeping one
// persistent multiplexed link per source through a session.Pool, and a
// client driving many overlapping protocol runs over one multiplexed
// TCP link — the ISSUE 8 acceptance setup.

// serveSession runs a session.Server on an ephemeral TCP listener and
// returns its address; cleanup closes the listener and waits for the
// serve loop.
func serveSession(t *testing.T, srv *session.Server) string {
	t.Helper()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := l.Close(); err != nil {
			t.Logf("listener close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return l.Addr()
}

// sessionTopology starts two sources and a mediator, all multiplexed,
// and returns the mediator address. gate and block customize the
// mediator's admission control and handler entry (block, when non-nil,
// parks every session until the channel closes — AFTER its gate slot is
// claimed).
func sessionTopology(t *testing.T, gate *session.Gate, reg *telemetry.Registry, block chan struct{}) string {
	t.Helper()
	f := getFixture(t)
	r1, r2 := testRelations(t)
	startSource := func(src *Source) string {
		return serveSession(t, &session.Server{
			Handler: func(conn transport.Conn) error {
				conn.SetTimeout(30 * time.Second)
				return src.Serve(conn)
			},
			Logf: t.Logf,
		})
	}
	addr1 := startSource(&Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
		Policies: map[string]*credential.Policy{"R1": policyFor("R1")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}})
	addr2 := startSource(&Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
		Policies: map[string]*credential.Policy{"R2": policyFor("R2")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}})

	// The pool keeps one persistent multiplexed link per source; every
	// mediator session opens a virtual link over it.
	pool := &session.Pool{Dial: transport.Dial, Telemetry: reg}
	t.Cleanup(func() {
		if err := pool.Close(); err != nil {
			t.Logf("pool close: %v", err)
		}
	})
	med := &Mediator{
		Schemas:   map[string]rel.Schema{"R1": r1.Schema(), "R2": r2.Schema()},
		Telemetry: reg,
		Routes: map[string]Dialer{
			"R1": func() (transport.Conn, error) { return pool.Open(addr1) },
			"R2": func() (transport.Conn, error) { return pool.Open(addr2) },
		},
	}
	return serveSession(t, &session.Server{
		Handler: func(conn transport.Conn) error {
			if block != nil {
				<-block
			}
			conn.SetTimeout(30 * time.Second)
			return med.HandleSession(conn)
		},
		Gate:      gate,
		Telemetry: reg,
		Logf:      t.Logf,
	})
}

// TestSessionTCPOverlappingRuns completes 64 overlapping protocol runs
// from concurrent clients through a single mediator process, one
// multiplexed TCP link per peer pair.
func TestSessionTCPOverlappingRuns(t *testing.T) {
	const runs = 64
	// Registered before the topology so it runs after every server and
	// pool cleanup has unwound.
	snap := testutil.Snapshot()
	t.Cleanup(func() { testutil.CheckGoroutines(t, snap) })
	reg := telemetry.NewRegistry()
	f := getFixture(t)
	want := expectedJoin(t)
	addr := sessionTopology(t, session.NewGate(runs, runs, reg), reg, nil)

	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mux := session.NewMux(conn, session.Config{})
	params := fastParams()
	params.Timeout = 30 * time.Second

	var wg sync.WaitGroup
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := mux.Open()
			if err != nil {
				errs <- err
				return
			}
			res, err := f.client.Query(st, fixtureSQL, ProtocolDAS, params)
			if cerr := st.Close(); err == nil && cerr != nil {
				err = cerr
			}
			if err != nil {
				errs <- err
				return
			}
			if !res.EqualMultiset(want) {
				errs <- errors.New("wrong join")
			}
		}()
	}
	wg.Wait()
	close(errs)
	failed := 0
	for err := range errs {
		failed++
		t.Errorf("overlapping run: %v", err)
	}
	if failed > 0 {
		t.Fatalf("%d/%d overlapping runs failed", failed, runs)
	}
	if got := reg.Counter("sessions_completed").Value(); got < runs {
		t.Errorf("mediator completed %d sessions, want >= %d", got, runs)
	}
	// One multiplexed link per source, not one per query.
	if got := reg.Counter("pool_links_dialed").Value(); got != 2 {
		t.Errorf("pool dialed %d links, want 2 (one per source)", got)
	}
	if err := mux.Close(); err != nil {
		t.Logf("mux close: %v", err)
	}
}

// TestSessionTCPOverload saturates a one-slot mediator gate and checks
// the typed ErrOverloaded reject reaches a concurrent client while the
// admitted session completes.
func TestSessionTCPOverload(t *testing.T) {
	snap := testutil.Snapshot()
	t.Cleanup(func() { testutil.CheckGoroutines(t, snap) })
	reg := telemetry.NewRegistry()
	f := getFixture(t)
	want := expectedJoin(t)
	block := make(chan struct{})
	addr := sessionTopology(t, session.NewGate(1, 0, reg), reg, block)

	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mux := session.NewMux(conn, session.Config{})
	defer func() {
		if err := mux.Close(); err != nil {
			t.Logf("mux close: %v", err)
		}
	}()
	params := fastParams()
	params.Timeout = 30 * time.Second

	// Session 1 claims the only slot and parks in the handler.
	first, err := mux.Open()
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan error, 1)
	go func() {
		res, err := f.client.Query(first, fixtureSQL, ProtocolCommutative, params)
		if err == nil && !res.EqualMultiset(want) {
			err = errors.New("wrong join")
		}
		firstDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for reg.Gauge("sessions_active").Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first session never claimed the gate slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Session 2 is refused with the typed overload error.
	second, err := mux.Open()
	if err != nil {
		t.Fatal(err)
	}
	_, qerr := f.client.Query(second, fixtureSQL, ProtocolCommutative, params)
	if !errors.Is(qerr, session.ErrOverloaded) {
		t.Fatalf("saturated query error = %v, want ErrOverloaded in the chain", qerr)
	}
	if err := second.Close(); err != nil {
		t.Logf("second close: %v", err)
	}
	if got := reg.Counter("sessions_rejected").Value(); got < 1 {
		t.Errorf("sessions_rejected = %d, want >= 1", got)
	}

	// Releasing the handler lets the admitted session finish normally.
	close(block)
	if err := <-firstDone; err != nil {
		t.Fatalf("admitted session: %v", err)
	}
	if err := first.Close(); err != nil {
		t.Logf("first close: %v", err)
	}
}
