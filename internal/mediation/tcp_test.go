package mediation

import (
	"crypto/rsa"
	"testing"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	rel "github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/transport"
)

// TestTCPDeployment runs the full credential-based mediation over real TCP
// sockets: two source listeners, a mediator listener, and a client dialing
// in — the distributed topology of Figure 2.
func TestTCPDeployment(t *testing.T) {
	f := getFixture(t)
	r1, r2 := testRelations(t)

	// Sources listen and serve one session per accepted connection.
	startSource := func(src *Source) *transport.Listener {
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				go func() {
					defer conn.Close()
					_ = src.Serve(conn)
				}()
			}
		}()
		t.Cleanup(func() { l.Close() })
		return l
	}
	l1 := startSource(&Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
		Policies: map[string]*credential.Policy{"R1": policyFor("R1")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}})
	l2 := startSource(&Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
		Policies: map[string]*credential.Policy{"R2": policyFor("R2")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}})

	med := &Mediator{
		Schemas: map[string]rel.Schema{"R1": r1.Schema(), "R2": r2.Schema()},
		Routes: map[string]Dialer{
			"R1": func() (transport.Conn, error) { return transport.Dial(l1.Addr()) },
			"R2": func() (transport.Conn, error) { return transport.Dial(l2.Addr()) },
		},
	}
	lm, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lm.Close() })
	go func() {
		for {
			conn, err := lm.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				_ = med.HandleSession(conn)
			}()
		}
	}()

	want := expectedJoin(t)
	for _, proto := range []Protocol{ProtocolDAS, ProtocolCommutative, ProtocolPM} {
		conn, err := transport.Dial(lm.Addr())
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.client.Query(conn, fixtureSQL, proto, fastParams())
		conn.Close()
		if err != nil {
			t.Fatalf("%v over TCP: %v", proto, err)
		}
		if !got.EqualMultiset(want) {
			t.Errorf("%v over TCP mismatch:\n%v", proto, got)
		}
	}
}
