package mediation

import (
	"testing"

	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/telemetry"
)

// wantPhases lists, per protocol, which (party, phase) pairs a run must
// produce — the measured analogue of the paper's per-phase cost matrix.
var wantPhases = map[Protocol][][2]string{
	ProtocolPlaintext: {
		{leakage.PartyMediator, telemetry.PhaseQuerying},
		{leakage.PartyMediator, telemetry.PhaseMatch},
	},
	ProtocolMobileCode: {
		{leakage.PartyMediator, telemetry.PhaseQuerying},
		{"source:S1", telemetry.PhaseSourceEncrypt},
		{"source:S2", telemetry.PhaseSourceEncrypt},
		{leakage.PartyClient, telemetry.PhasePostFilter},
	},
	ProtocolDAS: {
		{leakage.PartyMediator, telemetry.PhaseQuerying},
		{"source:S1", telemetry.PhaseSourceEncrypt},
		{"source:S2", telemetry.PhaseSourceEncrypt},
		{leakage.PartyClient, telemetry.PhaseTranslate},
		{leakage.PartyMediator, telemetry.PhaseMatch},
		{leakage.PartyClient, telemetry.PhasePostFilter},
	},
	ProtocolCommutative: {
		{leakage.PartyMediator, telemetry.PhaseQuerying},
		{"source:S1", telemetry.PhaseSourceEncrypt},
		{"source:S2", telemetry.PhaseSourceEncrypt},
		{"source:S1", telemetry.PhaseCrossEncrypt},
		{"source:S2", telemetry.PhaseCrossEncrypt},
		{leakage.PartyMediator, telemetry.PhaseMatch},
		{leakage.PartyClient, telemetry.PhasePostFilter},
	},
	ProtocolPM: {
		{leakage.PartyMediator, telemetry.PhaseQuerying},
		{"source:S1", telemetry.PhaseSourceEncrypt},
		{"source:S2", telemetry.PhaseSourceEncrypt},
		{"source:S1", telemetry.PhaseCrossEncrypt},
		{"source:S2", telemetry.PhaseCrossEncrypt},
		{leakage.PartyClient, telemetry.PhasePostFilter},
	},
}

// Every protocol must emit its slice of the shared phase taxonomy, with
// phases nested under per-party session roots.
func TestProtocolSpanTrees(t *testing.T) {
	for proto, want := range wantPhases {
		proto, want := proto, want
		t.Run(proto.String(), func(t *testing.T) {
			n := newTestNetwork(t, nil)
			reg := telemetry.NewRegistry()
			n.SetTelemetry(reg)
			defer n.SetTelemetry(nil)
			if _, err := n.Query(fixtureSQL, proto, fastParams()); err != nil {
				t.Fatal(err)
			}
			for _, pp := range want {
				if _, cnt := reg.PhaseTotal(pp[0], pp[1]); cnt == 0 {
					t.Errorf("no %q span for party %q", pp[1], pp[0])
				}
			}
			// Every phase span nests under a session root of its party.
			roots := map[int64]string{}
			for _, sp := range reg.Spans() {
				if sp.Name == "session" {
					if sp.Parent != 0 {
						t.Errorf("session span %d has parent %d", sp.ID, sp.Parent)
					}
					roots[sp.ID] = sp.Party
				}
			}
			for _, sp := range reg.Spans() {
				if sp.Name == "session" {
					continue
				}
				if party, ok := roots[sp.Parent]; !ok || party != sp.Party {
					t.Errorf("span %s (party %s) not nested under its party's session root", sp.Name, sp.Party)
				}
				if sp.DurNs < 0 {
					t.Errorf("span %s has negative duration %d", sp.Name, sp.DurNs)
				}
			}
			// The secure protocols must show crypto work in the op deltas.
			if proto == ProtocolCommutative || proto == ProtocolPM || proto == ProtocolDAS {
				if len(reg.OpDeltas()) == 0 {
					t.Errorf("%s run recorded no crypto op deltas", proto)
				}
			}
			// Traffic gauges cover all four parties.
			snap := reg.Snapshot()
			parties := map[string]bool{}
			for _, g := range snap.Gauges {
				for i := 0; i+1 < len(g.Labels); i += 2 {
					if g.Labels[i] == "party" {
						parties[g.Labels[i+1]] = true
					}
				}
			}
			for _, p := range []string{"client", "mediator", "source:S1", "source:S2"} {
				if !parties[p] {
					t.Errorf("no traffic gauges for party %q", p)
				}
			}
		})
	}
}

// A query with no registry anywhere must behave exactly as before the
// telemetry subsystem existed.
func TestQueryWithoutTelemetry(t *testing.T) {
	n := newTestNetwork(t, nil)
	n.SetTelemetry(nil)
	res, err := n.Query(fixtureSQL, ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != expectedJoin(t).Len() {
		t.Errorf("result rows = %d", res.Len())
	}
}

// Params.Telemetry is a per-query override at the client; it must not
// survive the gob hop to mediator or sources (their own fields govern).
func TestParamsTelemetryOverride(t *testing.T) {
	n := newTestNetwork(t, nil)
	n.SetTelemetry(nil)
	reg := telemetry.NewRegistry()
	params := fastParams()
	params.Telemetry = reg
	if _, err := n.Query(fixtureSQL, ProtocolCommutative, params); err != nil {
		t.Fatal(err)
	}
	if _, cnt := reg.PhaseTotal(leakage.PartyClient, telemetry.PhasePostFilter); cnt == 0 {
		t.Error("client did not record into the per-query registry")
	}
	// The registry is gob-inert, so the mediator (reached only over the
	// transport link) cannot have recorded into it.
	if _, cnt := reg.PhaseTotal(leakage.PartyMediator, telemetry.PhaseMatch); cnt != 0 {
		t.Error("mediator spans appeared in the client-side registry despite the gob boundary")
	}
}
