package mediation

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
)

// randIndexSource yields uniform random indices from a buffered CSPRNG
// stream. The previous per-swap rand.Int path allocated a big.Int, a
// one-shot byte slice and a syscall-sized read per swap; on large active
// domains the shuffle showed up next to the exponentiations in profiles.
// Buffering crypto/rand through bufio amortizes the syscalls and the
// masked rejection sampling below needs no heap allocation at all.
type randIndexSource struct {
	br *bufio.Reader
}

func newRandIndexSource() *randIndexSource {
	return &randIndexSource{br: bufio.NewReaderSize(rand.Reader, 4096)}
}

// intn returns a uniform int in [0, n). n must be in [1, 2^31].
func (r *randIndexSource) intn(n int) (int, error) {
	if n <= 0 || n > 1<<31 {
		return 0, fmt.Errorf("mediation: shuffle bound %d out of range", n)
	}
	if n == 1 {
		return 0, nil
	}
	// Rejection-sample a masked uint32: mask is the smallest all-ones
	// value ≥ n-1, so each draw accepts with probability > 1/2.
	mask := uint32(1)<<bits.Len32(uint32(n-1)) - 1
	var buf [4]byte
	for {
		if _, err := io.ReadFull(r.br, buf[:]); err != nil {
			return 0, fmt.Errorf("mediation: shuffle randomness: %w", err)
		}
		v := binary.BigEndian.Uint32(buf[:]) & mask
		if int(v) < n {
			return int(v), nil
		}
	}
}

// shuffleSlice applies a cryptographic Fisher–Yates shuffle, realizing
// the paper's "arbitrarily ordered set of messages" for any message
// slice (commutative items, PM evaluations).
func shuffleSlice[T any](items []T) error {
	src := newRandIndexSource()
	for i := len(items) - 1; i > 0; i-- {
		j, err := src.intn(i + 1)
		if err != nil {
			return err
		}
		items[i], items[j] = items[j], items[i]
	}
	return nil
}
