package mediation

import (
	"fmt"
	"sync"
	"testing"

	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/leakage"
	rel "github.com/secmediation/secmediation/internal/relation"
)

// workerParams is fastParams with the crypto worker pool sized explicitly.
func workerParams(workers int) Params {
	p := fastParams()
	p.Workers = workers
	return p
}

// TestProtocolsConcurrentSessionsWithWorkers drives every ciphertext
// protocol with a multi-goroutine worker pool while several sessions are
// in flight at once — the worst case the parallel execution layer must
// survive (pool goroutines inside each party × concurrent sessions ×
// shared client and ledger). Run under -race this is the layer's central
// safety check.
func TestProtocolsConcurrentSessionsWithWorkers(t *testing.T) {
	want := expectedJoin(t)
	protos := []Protocol{ProtocolDAS, ProtocolCommutative, ProtocolPM}
	const sessionsPerProto = 2

	// Networks are assembled sequentially (newTestNetwork reassigns the
	// shared fixture client's ledger); only the sessions themselves race.
	ledger := leakage.NewLedger()
	type job struct {
		proto Protocol
		net   *Network
	}
	var jobs []job
	for _, proto := range protos {
		for s := 0; s < sessionsPerProto; s++ {
			jobs = append(jobs, job{proto: proto, net: newTestNetwork(t, ledger)})
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := j.net.Query(fixtureSQL, j.proto, workerParams(4))
			if err != nil {
				errs <- fmt.Errorf("%s: %w", j.proto, err)
				return
			}
			if !got.EqualMultiset(want) {
				errs <- fmt.Errorf("%s: result mismatch under concurrency", j.proto)
			}
			if srcErrs := j.net.SourceErrors(); len(srcErrs) != 0 {
				errs <- fmt.Errorf("%s: source errors: %v", j.proto, srcErrs)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestWorkerCountDoesNotChangeResults asserts the determinism contract of
// the execution layer: Workers: 1 (the listings' sequential execution) and
// Workers: 8 produce identical global results for every protocol. Results
// are compared as multisets because the protocols shuffle their message
// sets — positions are randomized even sequentially — while the set of
// result tuples is fixed by the query alone.
func TestWorkerCountDoesNotChangeResults(t *testing.T) {
	for _, proto := range []Protocol{ProtocolDAS, ProtocolCommutative, ProtocolPM} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			var results []*rel.Relation
			for _, workers := range []int{1, 8} {
				n := newTestNetwork(t, nil)
				got, err := n.Query(fixtureSQL, proto, workerParams(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if errs := n.SourceErrors(); len(errs) != 0 {
					t.Fatalf("workers=%d: source errors: %v", workers, errs)
				}
				results = append(results, got)
			}
			if !results[0].EqualMultiset(results[1]) {
				t.Errorf("Workers:1 and Workers:8 disagree:\n%v\nvs\n%v", results[0], results[1])
			}
		})
	}
}

// TestCommutativeIntersectionWorkerIndependence pins the standalone
// intersection operation to the same contract.
func TestCommutativeIntersectionWorkerIndependence(t *testing.T) {
	g, err := groups.GenerateSafePrime(256, cryptoRand())
	if err != nil {
		t.Fatal(err)
	}
	recv := []rel.Value{rel.Int(10), rel.Int(20), rel.Int(30), rel.String_("x")}
	send := []rel.Value{rel.Int(20), rel.Int(30), rel.Int(40), rel.String_("x")}
	var lens []int
	for _, workers := range []int{1, 4} {
		got, err := CommutativeIntersection(g, "sess-w", recv, send, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		lens = append(lens, len(got))
	}
	if lens[0] != 3 || lens[1] != 3 {
		t.Errorf("intersection sizes %v, want {3, 3}", lens)
	}
}
