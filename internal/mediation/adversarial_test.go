package mediation

import (
	"strings"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/transport"
)

// tamperConn is a man-in-the-middle wrapper: it mutates the body of every
// received message whose type matches, modeling a mediator (or network
// adversary) that deviates from the semi-honest model by modifying
// ciphertext material.
type tamperConn struct {
	transport.Conn
	typePrefix string
	mutate     func([]byte)
}

func (c *tamperConn) Recv() (transport.Message, error) {
	m, err := c.Conn.Recv()
	if err != nil {
		return m, err
	}
	if strings.HasPrefix(m.Type, c.typePrefix) && len(m.Body) > 0 {
		body := append([]byte(nil), m.Body...)
		c.mutate(body)
		m.Body = body
	}
	return m, nil
}

func (c *tamperConn) Expect(typ string) (transport.Message, error) {
	m, err := c.Recv()
	if err != nil {
		return m, err
	}
	if m.Type != typ {
		return transport.Message{}, errTypeMismatch
	}
	return m, nil
}

var errTypeMismatch = &tamperError{"type mismatch"}

type tamperError struct{ s string }

func (e *tamperError) Error() string { return e.s }

// queryThroughTamperer runs one query with the client's inbound messages
// of the given type corrupted.
func queryThroughTamperer(t *testing.T, proto Protocol, typePrefix string, mutate func([]byte)) error {
	t.Helper()
	n := newTestNetwork(t, nil)
	clientSide, mediatorSide := transport.Pair()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = n.Mediator.HandleSession(mediatorSide)
		mediatorSide.Close()
	}()
	wrapped := &tamperConn{Conn: clientSide, typePrefix: typePrefix, mutate: mutate}
	_, err := n.Client.Query(wrapped, fixtureSQL, proto, fastParams())
	// Close before waiting: an early client abort must unblock a mediator
	// still awaiting client messages.
	clientSide.Close()
	<-done
	return err
}

// flipLastByte corrupts the tail of a message body — in every protocol
// result the tail lands inside ciphertext or integrity-protected material.
func flipLastByte(b []byte) { b[len(b)-1] ^= 0xFF }

// Tampered protocol results must fail loudly at the client (AEAD or
// decode), never silently return wrong data.
func TestTamperedResultsAreRejected(t *testing.T) {
	cases := []struct {
		proto  Protocol
		prefix string
	}{
		{ProtocolMobileCode, "mc.result"},
		{ProtocolDAS, "das.result"},
		{ProtocolCommutative, "comm.result"},
	}
	for _, tc := range cases {
		err := queryThroughTamperer(t, tc.proto, tc.prefix, flipLastByte)
		if err == nil {
			t.Errorf("%v: tampered %s accepted", tc.proto, tc.prefix)
		}
	}
}

// Tampering with the DAS index tables must be detected when the client
// opens them (they are sealed with AEAD under the session key).
func TestTamperedIndexTablesRejected(t *testing.T) {
	err := queryThroughTamperer(t, ProtocolDAS, "das.index-tables", flipLastByte)
	if err == nil {
		t.Error("tampered index tables accepted")
	}
}

// A PM evaluation corrupted by the mediator decrypts to garbage; the
// codec's integrity tag rejects it, so the corresponding match silently
// disappears rather than producing a wrong tuple. This is the documented
// semi-honest limitation: corruption is equivalent to withholding.
func TestTamperedPMEvaluationDropsMatchOnly(t *testing.T) {
	n := newTestNetwork(t, nil)
	clientSide, mediatorSide := transport.Pair()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = n.Mediator.HandleSession(mediatorSide)
		mediatorSide.Close()
	}()
	// Corrupting the whole gob body breaks decoding → hard failure, which
	// is also acceptable; both outcomes must avoid wrong results.
	wrapped := &tamperConn{Conn: clientSide, typePrefix: "pm.result", mutate: flipLastByte}
	res, err := n.Client.Query(wrapped, fixtureSQL, ProtocolPM, fastParams())
	clientSide.Close()
	<-done
	if err == nil {
		// If decoding survived, the result must be a subset of the truth.
		want := expectedJoin(t)
		if res.Len() > want.Len() {
			t.Errorf("tampered PM result has %d tuples, truth has %d", res.Len(), want.Len())
		}
	}
}

// A wholly fabricated message type must abort the protocol.
func TestUnexpectedMessageTypeAborts(t *testing.T) {
	n := newTestNetwork(t, nil)
	clientSide, mediatorSide := transport.Pair()
	defer clientSide.Close()
	go func() {
		// A rogue "mediator" that answers with junk.
		if _, err := mediatorSide.Recv(); err == nil {
			_ = mediatorSide.Send(transport.Message{Type: "rogue.garbage", Body: []byte{1, 2, 3}})
		}
		mediatorSide.Close()
	}()
	if _, err := n.Client.Query(clientSide, fixtureSQL, ProtocolCommutative, fastParams()); err == nil {
		t.Error("rogue message type accepted")
	}
}

// An expired credential must be rejected by the sources even though its
// signature is valid.
func TestExpiredCredentialDenied(t *testing.T) {
	f := getFixture(t)
	n := newTestNetwork(t, nil)
	// Shift every source's clock far into the future.
	for _, src := range n.Sources {
		src.Now = func() time.Time { return time.Now().AddDate(1, 0, 0) }
	}
	_, err := n.Query(fixtureSQL, ProtocolCommutative, fastParams())
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Errorf("expired credential error = %v", err)
	}
	_ = f
}
