package mediation

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"sync"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/crypto/paillier"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// Client is the querying party: it holds the private decryption key whose
// public half is bound into its credentials, issues global queries, and
// performs the client side of each delivery phase (decryption, the DAS
// query translation, PM matching, result assembly).
type Client struct {
	// PrivateKey is the hybrid-encryption private key matching the public
	// key in the credentials.
	PrivateKey *rsa.PrivateKey
	// Credentials is the credential set CR attached to queries.
	Credentials credential.Set
	// Ledger optionally records leakage and primitive usage.
	Ledger *leakage.Ledger
	// Telemetry optionally records phase spans and traffic metrics for
	// this party. Params.Telemetry overrides it per query.
	Telemetry *telemetry.Registry

	// homKey caches the Paillier key pair for PM queries; homMu guards it
	// so concurrent sessions share one key generation.
	homMu  sync.Mutex
	homKey *paillier.PrivateKey
}

// NewClient creates a client with a fresh hybrid key pair. Callers
// typically then have a CA issue credentials for
// &client.PrivateKey.PublicKey.
func NewClient() (*Client, error) {
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		return nil, fmt.Errorf("mediation: client key: %w", err)
	}
	return &Client{PrivateKey: key}, nil
}

// HomomorphicKey returns (generating on first use) the client's Paillier
// key pair for the PM protocol.
func (c *Client) HomomorphicKey(bits int) (*paillier.PrivateKey, error) {
	c.homMu.Lock()
	defer c.homMu.Unlock()
	if c.homKey == nil || c.homKey.N.BitLen() != bits {
		k, err := paillier.GenerateKey(rand.Reader, bits)
		if err != nil {
			return nil, err
		}
		c.homKey = k
	}
	return c.homKey, nil
}

// Query runs one global query through the mediator reachable over conn and
// returns the global result. This drives Listing 1 step 1 plus the client
// side of the selected delivery phase.
// Query failures during the delivery phase surface as *ProtocolError
// values attributing the abort to the party (and, when known, the phase)
// where it originated — "mediator unreachable" and "source 2 died during
// cross.encrypt" are distinguishable with errors.As. Local errors before
// the request leaves (bad SQL, key generation) stay untyped.
func (c *Client) Query(conn transport.Conn, sql string, proto Protocol, params Params) (*relation.Relation, error) {
	params = params.withDefaults()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if params.Timeout > 0 {
		conn.SetTimeout(params.Timeout)
	}
	req := Request{SQL: sql, Credentials: c.Credentials, Protocol: proto, Params: params}
	if proto == ProtocolPM || q.Aggregate != nil {
		hk, err := c.HomomorphicKey(params.PaillierBits)
		if err != nil {
			return nil, err
		}
		req.HomomorphicKey = &hk.PublicKey
	}
	if err := sendMsg(conn, "mediator", msgRequest, req); err != nil {
		return nil, c.abort(conn, params, err)
	}
	if q.Aggregate != nil {
		res, err := c.runAggregate(conn, q, params)
		if err != nil {
			return nil, c.abort(conn, params, err)
		}
		return res, nil
	}
	if q.UnionWith != "" {
		res, err := c.runUnion(conn, q)
		if err != nil {
			return nil, c.abort(conn, params, err)
		}
		return res, nil
	}
	root := c.telemetry(params).Tracer(leakage.PartyClient).Start("session")
	root.Annotate("protocol", proto.String())
	annotateSession(root, conn)
	defer root.End()
	watch := newStopwatch(c.Ledger, leakage.PartyClient)
	watch.attach(root)
	var joined *relation.Relation
	var schema2 relation.Schema
	var joinCols2 []string
	switch proto {
	case ProtocolPlaintext:
		joined, schema2, joinCols2, err = c.runPlaintext(conn)
	case ProtocolMobileCode:
		joined, schema2, joinCols2, err = c.runMobileCode(conn, watch)
	case ProtocolDAS:
		joined, schema2, joinCols2, err = c.runDAS(conn, q, params, watch)
	case ProtocolCommutative:
		joined, schema2, joinCols2, err = c.runCommutative(conn, params, watch)
	case ProtocolPM:
		joined, schema2, joinCols2, err = c.runPM(conn, params, watch)
	default:
		err = fmt.Errorf("mediation: unknown protocol %d", proto)
	}
	if err != nil {
		return nil, c.abort(conn, params, err)
	}
	c.recordTraffic(conn, c.telemetry(params))
	return postProcess(q, joined, schema2, joinCols2)
}

// abort finalizes a failed delivery phase: the error is attributed (a
// *ProtocolError blamed on this client unless the chain already carries
// the origin), counted when it is a timeout, and best-effort reported to
// the mediator so the remaining parties unblock immediately.
func (c *Client) abort(conn transport.Conn, params Params, err error) error {
	err = attribute(leakage.PartyClient, "", err)
	countTimeout(c.telemetry(params), leakage.PartyClient, err)
	sendError(conn, leakage.PartyClient, err)
	return err
}

// telemetry resolves the registry for one query: the per-query override
// in params wins over the client's own.
func (c *Client) telemetry(params Params) *telemetry.Registry {
	if params.Telemetry.Enabled() {
		return params.Telemetry
	}
	return c.Telemetry
}

func (c *Client) recordTraffic(conn transport.Conn, reg *telemetry.Registry) {
	trafficGauges(reg, leakage.PartyClient, "mediator", conn.Stats())
	if c.Ledger == nil {
		return
	}
	c.Ledger.Observe(leakage.PartyClient, "bytes-sent", conn.Stats().BytesSent())
	c.Ledger.Observe(leakage.PartyClient, "bytes-received", conn.Stats().BytesRecv())
	c.Ledger.Observe(leakage.PartyClient, "interactions-with-mediator", conn.Stats().MsgsSent()+conn.Stats().MsgsRecv())
}

// Intersect computes the set intersection of two relations with identical
// schemas through the secure mediation machinery — the second operation of
// Agrawal et al.'s framework (paper Section 4). It reduces to a NATURAL
// JOIN over all columns (same-schema natural join = bag intersection)
// followed by duplicate elimination; with the commutative protocol the
// client receives exactly the common tuples.
func (c *Client) Intersect(conn transport.Conn, rel1, rel2 string, params Params) (*relation.Relation, error) {
	res, err := c.Query(conn, "SELECT * FROM "+rel1+" NATURAL JOIN "+rel2, ProtocolCommutative, params)
	if err != nil {
		return nil, err
	}
	return algebra.Distinct(res), nil
}
