package mediation

import (
	"encoding/binary"
	"fmt"
	"math/big"

	"github.com/secmediation/secmediation/internal/crypto/hybrid"
	"github.com/secmediation/secmediation/internal/crypto/paillier"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/parallel"
	"github.com/secmediation/secmediation/internal/pm"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// pmCoeffs is a source's Listing 4 step 2/3 message: the homomorphically
// encrypted coefficients of its active-domain polynomial (bucketed per the
// FNP optimization; one bucket means the paper's literal single
// polynomial).
type pmCoeffs struct {
	Session string
	Schema  relation.Schema
	Buckets pm.EncryptedBuckets
}

// pmCross forwards the opposite source's encrypted polynomial (step 4).
type pmCross struct {
	Buckets pm.EncryptedBuckets
}

// pmPayloadEntry carries one sealed tuple set in the footnote-2 hybrid
// mode, addressed by the ID packed inside the polynomial evaluation.
type pmPayloadEntry struct {
	ID     uint64
	Sealed []byte
}

// pmEvals is a source's step 5/6 message: the masked evaluations e_k, plus
// the payload table in hybrid mode.
type pmEvals struct {
	Evals []*paillier.Ciphertext
	Table []pmPayloadEntry
}

// pmResult is the mediator's step 7 message to the client: all n+m
// encrypted values (and payload tables).
type pmResult struct {
	Session              string
	Schema1, Schema2     relation.Schema
	JoinCols1, JoinCols2 []string
	Evals1, Evals2       []*paillier.Ciphertext
	Table1, Table2       []pmPayloadEntry
	Mode                 PayloadMode
}

// servePM implements a datasource's role in Listing 4: build the
// polynomial over the active domain of the join attributes, encrypt its
// coefficients with the client's homomorphic key, then obliviously
// evaluate the opposite source's polynomial at every own value, masked and
// carrying the tuple-set payload.
func (s *Source) servePM(conn transport.Conn, pq *PartialQuery, rel *relation.Relation, watch *stopwatch) error {
	if pq.HomomorphicKey == nil || pq.HomomorphicKey.N == nil {
		return fmt.Errorf("pm: request carries no homomorphic client key")
	}
	pk := derivePaillierKey(pq.HomomorphicKey)
	codec, err := pm.NewCodec(pk)
	if err != nil {
		return err
	}
	groupsByKey, err := rel.GroupByColumns(pq.JoinCols)
	if err != nil {
		return err
	}
	if len(groupsByKey) == 0 {
		return fmt.Errorf("pm: relation %s is empty", pq.Relation)
	}
	roots := make([]*big.Int, len(groupsByKey))
	for i, g := range groupsByKey {
		roots[i] = pm.RootOfBytes(relation.EncodeValues(g.Key, nil))
	}
	var coeffs pmCoeffs
	err = watch.phase(telemetry.PhaseSourceEncrypt, func() error {
		buckets, err := pm.BuildBuckets(roots, pq.Params.Buckets, pk.N)
		if err != nil {
			return err
		}
		enc, err := buckets.Encrypt(pk, pq.Params.Workers)
		if err != nil {
			return err
		}
		nCoeffs := int64(len(enc.Polys)) * int64(buckets.MaxDegree()+1)
		s.Ledger.UsePrimitive(s.party(), "homomorphic-encryption", nCoeffs)
		coeffs = pmCoeffs{Session: pq.SessionID, Schema: rel.Schema(), Buckets: *enc}
		return nil
	})
	if err != nil {
		return err
	}
	if err := sendMsg(conn, "mediator", msgPMCoeffs, coeffs); err != nil {
		return err
	}

	var cross pmCross
	if err := recvInto(conn, "mediator", msgPMCross, &cross); err != nil {
		return err
	}
	var evals pmEvals
	err = watch.phase(telemetry.PhaseCrossEncrypt, func() error {
		// Section 6: each source learns the opposite polynomial degree(s),
		// i.e. the opposite active-domain size.
		oppDegree := int64(0)
		for _, p := range cross.Buckets.Polys {
			oppDegree += int64(len(p.Coeffs) - 1)
		}
		s.Ledger.Observe(s.party(), "|domactive(opposite)|", oppDegree)

		// Stage 1 (sequential): assemble the packed plaintexts. The hybrid
		// payload table and its ID counter are shared state, and this stage
		// is cheap symmetric crypto only.
		aad := []byte("pm:" + pq.SessionID + ":" + rel.Schema().Relation)
		var nextID uint64
		packed := make([]*big.Int, len(groupsByKey))
		for i, g := range groupsByKey {
			tuplesBlob := relation.EncodeTupleSet(g.Tuples)
			var payload []byte
			switch pq.Params.PayloadMode {
			case PayloadInline:
				payload = tuplesBlob
			case PayloadHybrid:
				// Footnote 2: pack a fresh session key and an ID; ship the
				// sealed tuple set out of band.
				key, err := hybrid.NewSessionKey()
				if err != nil {
					return err
				}
				nextID++
				sealed, err := hybrid.SealWithKey(key, tuplesBlob, aad)
				if err != nil {
					return err
				}
				evals.Table = append(evals.Table, pmPayloadEntry{ID: nextID, Sealed: sealed.Marshal()})
				var idb [8]byte
				binary.BigEndian.PutUint64(idb[:], nextID)
				payload = append(key, idb[:]...)
				s.Ledger.UsePrimitive(s.party(), "hybrid-encryption", 1)
			default:
				return fmt.Errorf("pm: unknown payload mode %d", pq.Params.PayloadMode)
			}
			m, err := codec.Pack(roots[i], payload)
			if err != nil {
				return err
			}
			packed[i] = m
		}
		// Stage 2 (parallel): the oblivious evaluations — Θ(max-load)
		// homomorphic multiply-adds plus a masking and a re-randomization
		// exponentiation per value — dominate the sender's cost; fan them
		// out over the worker pool.
		evals.Evals, err = cross.Buckets.MaskedEvalBatch(pk, roots, packed, pq.Params.Workers)
		if err != nil {
			return err
		}
		s.Ledger.UsePrimitive(s.party(), "homomorphic-evaluation", int64(len(groupsByKey)))
		s.Ledger.UsePrimitive(s.party(), "random-masking", int64(len(groupsByKey)))
		// Shuffle the evaluations so positions carry no join-order signal.
		return shuffleSlice(evals.Evals)
	})
	if err != nil {
		return err
	}
	return sendMsg(conn, "mediator", msgPMEvals, evals)
}

// mediatePM implements the mediator's role: forward the encrypted
// coefficients to the opposite source (step 4) and ship the n+m encrypted
// evaluations to the client (step 7). The mediator never decrypts
// anything; it only observes polynomial degrees.
// seclint:entry mediator
func (m *Mediator) mediatePM(client, s1, s2 transport.Conn, d *decomposition, params Params, watch *stopwatch) error {
	var c1, c2 pmCoeffs
	if err := recvInto(s1, "source:"+d.rel1, msgPMCoeffs, &c1); err != nil {
		return err
	}
	if err := recvInto(s2, "source:"+d.rel2, msgPMCoeffs, &c2); err != nil {
		return err
	}
	// Table 1: the mediator learns the polynomial degrees, hence the
	// active-domain sizes.
	m.Ledger.Observe(leakage.PartyMediator, "|domactive(R1.Ajoin)|", totalDegree(&c1.Buckets))
	m.Ledger.Observe(leakage.PartyMediator, "|domactive(R2.Ajoin)|", totalDegree(&c2.Buckets))

	if err := sendMsg(s1, "source:"+d.rel1, msgPMCross, pmCross{Buckets: c2.Buckets}); err != nil {
		return err
	}
	if err := sendMsg(s2, "source:"+d.rel2, msgPMCross, pmCross{Buckets: c1.Buckets}); err != nil {
		return err
	}
	var e1, e2 pmEvals
	if err := recvInto(s1, "source:"+d.rel1, msgPMEvals, &e1); err != nil {
		return err
	}
	if err := recvInto(s2, "source:"+d.rel2, msgPMEvals, &e2); err != nil {
		return err
	}
	return sendMsg(client, "client", msgPMResult, pmResult{
		Session: c1.Session,
		Schema1: c1.Schema, Schema2: c2.Schema,
		JoinCols1: d.joinCols1, JoinCols2: d.joinCols2,
		Evals1: e1.Evals, Evals2: e2.Evals,
		Table1: e1.Table, Table2: e2.Table,
		Mode: params.PayloadMode,
	})
}

func totalDegree(b *pm.EncryptedBuckets) int64 {
	var total int64
	for _, p := range b.Polys {
		total += int64(len(p.Coeffs) - 1)
	}
	return total
}

// pmSide is one decrypted, matched side of the PM result: root → tuple set.
type pmSide map[string][]relation.Tuple

// runPM implements the client's step 8: decrypt all n+m values, keep those
// of the form (a ‖ payload), match equal roots across the two sides and
// cross-combine the tuple sets.
func (c *Client) runPM(conn transport.Conn, params Params, watch *stopwatch) (*relation.Relation, relation.Schema, []string, error) {
	var res pmResult
	if err := recvInto(conn, "mediator", msgPMResult, &res); err != nil {
		return nil, relation.Schema{}, nil, err
	}
	hk, err := c.HomomorphicKey(params.PaillierBits)
	if err != nil {
		return nil, relation.Schema{}, nil, err
	}
	codec, err := pm.NewCodec(&hk.PublicKey)
	if err != nil {
		return nil, relation.Schema{}, nil, err
	}
	var joined *relation.Relation
	err = watch.phase(telemetry.PhasePostFilter, func() error {
		// Table 1: the client receives encrypted values of both partial
		// results (n+m of them) but can open only the matching ones.
		c.Ledger.Observe(leakage.PartyClient, "encrypted-values-received", int64(len(res.Evals1)+len(res.Evals2)))
		c.Ledger.UsePrimitive(leakage.PartyClient, "homomorphic-decryption", int64(len(res.Evals1)+len(res.Evals2)))

		side1, err := c.openPMSide(hk, codec, res.Evals1, res.Table1, params, res.Session, res.Schema1)
		if err != nil {
			return err
		}
		side2, err := c.openPMSide(hk, codec, res.Evals2, res.Table2, params, res.Session, res.Schema2)
		if err != nil {
			return err
		}
		schema, err := res.Schema1.Concat(res.Schema2)
		if err != nil {
			return err
		}
		joined = relation.New(schema)
		for root, ts1 := range side1 {
			ts2, ok := side2[root]
			if !ok {
				continue
			}
			for _, t1 := range ts1 {
				for _, t2 := range ts2 {
					t := make(relation.Tuple, 0, len(t1)+len(t2))
					t = append(t, t1...)
					t = append(t, t2...)
					if err := joined.Append(t); err != nil {
						return err
					}
				}
			}
		}
		c.Ledger.Observe(leakage.PartyClient, "result-tuples", int64(joined.Len()))
		return nil
	})
	if err != nil {
		return nil, relation.Schema{}, nil, err
	}
	return joined, res.Schema2, res.JoinCols2, nil
}

// openPMSide decrypts one source's evaluations and returns the decodable
// (i.e. matching) entries keyed by root.
func (c *Client) openPMSide(hk *paillier.PrivateKey, codec *pm.Codec, evals []*paillier.Ciphertext, table []pmPayloadEntry, params Params, session string, schema relation.Schema) (pmSide, error) {
	mode := params.PayloadMode
	relName := schema.Relation
	byID := make(map[uint64][]byte, len(table))
	for _, e := range table {
		byID[e.ID] = e.Sealed
	}
	aad := []byte("pm:" + session + ":" + relName)
	// The Paillier decryptions (one n-bit exponentiation each) dwarf the
	// unpack/unseal work, so only they fan out over the worker pool; the
	// side map is then assembled sequentially.
	plains, err := parallel.Map(len(evals), params.Workers, func(i int) (*big.Int, error) {
		return hk.Decrypt(evals[i])
	})
	if err != nil {
		return nil, err
	}
	side := make(pmSide)
	for _, m := range plains {
		root, payload, ok := codec.Unpack(m)
		if !ok {
			continue // non-matching value: decrypts to randomness
		}
		var tuplesBlob []byte
		switch mode {
		case PayloadInline:
			tuplesBlob = payload
		case PayloadHybrid:
			if len(payload) != hybrid.SessionKeyLen+8 {
				return nil, fmt.Errorf("pm: hybrid payload has %d bytes, want %d", len(payload), hybrid.SessionKeyLen+8)
			}
			key := payload[:hybrid.SessionKeyLen]
			id := binary.BigEndian.Uint64(payload[hybrid.SessionKeyLen:])
			sealed, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("pm: payload table has no entry %d", id)
			}
			ct, err := hybrid.UnmarshalCiphertext(sealed)
			if err != nil {
				return nil, err
			}
			tuplesBlob, err = hybrid.OpenWithKey(key, ct, aad)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("pm: unknown payload mode %d", mode)
		}
		tuples, err := relation.DecodeTupleSet(schema, tuplesBlob)
		if err != nil {
			return nil, err
		}
		side[root.String()] = tuples
	}
	return side, nil
}
