package mediation

import (
	"crypto/rsa"
	"math/rand"
	"testing"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/workload"
)

// TestDifferentialRandomWorkloads is the end-to-end differential property:
// for randomized workloads (varying cardinalities, domain sizes, overlap
// and skew), every secure protocol must produce exactly the plaintext
// truth. This is the strongest single correctness check in the suite.
func TestDifferentialRandomWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	f := getFixture(t)
	rng := rand.New(rand.NewSource(20070415))
	for trial := 0; trial < 6; trial++ {
		spec := workload.JoinSpec{
			Rows1:   1 + rng.Intn(40),
			Rows2:   1 + rng.Intn(40),
			Domain1: 1 + rng.Intn(12),
			Domain2: 1 + rng.Intn(12),
			Overlap: float64(rng.Intn(101)) / 100,
			Skew:    float64(rng.Intn(2)), // 0 or 1
			Seed:    rng.Int63(),
		}
		r1, r2, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		want, err := algebra.EquiJoin(r1, r2, []string{"id"}, []string{"id"})
		if err != nil {
			t.Fatal(err)
		}
		s1 := &Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
			Policies: map[string]*credential.Policy{"R1": policyFor("R1")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
		s2 := &Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
			Policies: map[string]*credential.Policy{"R2": policyFor("R2")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
		n, err := NewNetwork(f.client, &Mediator{}, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		for _, proto := range []Protocol{ProtocolDAS, ProtocolCommutative, ProtocolPM} {
			params := fastParams()
			params.Partitions = 1 + rng.Intn(6)
			if proto == ProtocolPM {
				params.Buckets = 1 + rng.Intn(3)
				// Hybrid payloads: skewed workloads produce tuple sets far
				// beyond the inline plaintext capacity (footnote 2 exists
				// for exactly this).
				params.PayloadMode = PayloadHybrid
			}
			if proto == ProtocolCommutative && rng.Intn(2) == 1 {
				params.IDMode = true
			}
			got, err := n.Query(fixtureSQL, proto, params)
			if err != nil {
				t.Fatalf("trial %d %v (%+v): %v", trial, proto, spec, err)
			}
			if !got.EqualMultiset(want) {
				t.Fatalf("trial %d %v: %d tuples, want %d (spec %+v)",
					trial, proto, got.Len(), want.Len(), spec)
			}
		}
	}
}
