package mediation

import (
	"errors"
	"sync"
	"testing"

	rel "github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// Chaos under multiplexing: inject faults into ONE virtual session of a
// shared client↔mediator link and assert the failure-isolation
// contract — the faulted session aborts with a typed *ProtocolError (or
// completes, for benign faults) while sibling sessions on the same
// physical link produce the correct join, with no goroutine leaks.

// muxMediator serves HandleSession once per virtual session over one
// shared in-memory link and returns the client-side mux plus a shutdown
// function that waits for every session handler to unwind.
func muxMediator(n *Network) (*session.Mux, func()) {
	clientSide, mediatorSide := transport.Pair()
	cm := session.NewMux(clientSide, session.Config{})
	sm := session.NewMux(mediatorSide, session.Config{Server: true})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			st, err := sm.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer st.Close()
				_ = n.Mediator.HandleSession(st)
			}()
		}
	}()
	shutdown := func() {
		_ = cm.Close()
		_ = sm.Close()
		wg.Wait()
	}
	return cm, shutdown
}

// TestChaosMuxSessionIsolation runs one faulted session alongside clean
// siblings over a single multiplexed link, for each fault class the
// per-session injector can express.
func TestChaosMuxSessionIsolation(t *testing.T) {
	seed := chaosSeed(t)
	want := expectedJoin(t)
	classes := []transport.FaultClass{
		transport.FaultDrop, transport.FaultDelay,
		transport.FaultCorrupt, transport.FaultTruncate, transport.FaultClose,
	}
	const siblings = 3
	for _, class := range classes {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			snap := testutil.Snapshot()
			n := newTestNetwork(t, nil)
			cm, shutdown := muxMediator(n)
			params := fastParams()
			params.Timeout = chaosTimeout

			type result struct {
				faulted bool
				res     *rel.Relation
				err     error
			}
			results := make(chan result, siblings+1)
			var wg sync.WaitGroup
			runQuery := func(faulted bool) {
				defer wg.Done()
				st, err := cm.Open()
				if err != nil {
					results <- result{faulted: faulted, err: err}
					return
				}
				conn := transport.Conn(st)
				if faulted {
					// Wrap the virtual link, not the physical one: the
					// fault hits this session's frames only.
					conn = transport.WrapFault(st, &transport.FaultPlan{
						Class: class, SendOp: -1, RecvOp: 0,
						Seed: seed ^ uint64(class),
					})
				}
				res, err := n.Client.Query(conn, fixtureSQL, ProtocolDAS, params)
				if cerr := conn.Close(); err == nil && cerr != nil {
					err = cerr
				}
				results <- result{faulted: faulted, res: res, err: err}
			}
			wg.Add(siblings + 1)
			go runQuery(true)
			for i := 0; i < siblings; i++ {
				go runQuery(false)
			}
			if err := testutil.WithinDeadline(t, 4*chaosTimeout, func() error {
				wg.Wait()
				return nil
			}); err != nil {
				t.Fatalf("sessions did not settle: %v", err)
			}
			close(results)

			for r := range results {
				if !r.faulted {
					// The failure-isolation contract: siblings sharing the
					// link with the faulted session still succeed.
					if r.err != nil {
						t.Errorf("sibling session failed under %s fault: %v", class, r.err)
						continue
					}
					if !r.res.EqualMultiset(want) {
						t.Errorf("sibling session returned a wrong join under %s fault", class)
					}
					continue
				}
				switch class {
				case transport.FaultDelay:
					// A slow session is not a fault.
					if r.err != nil {
						t.Errorf("delayed session failed: %v", r.err)
					} else if !r.res.EqualMultiset(want) {
						t.Errorf("delayed session returned a wrong join")
					}
				default:
					// Drop, corrupt, truncate, close on the first
					// delivery-phase message cannot produce the join: the
					// session must abort with a typed error.
					if r.err == nil {
						t.Errorf("%s fault on the session went unnoticed", class)
						continue
					}
					var pe *ProtocolError
					if !errors.As(r.err, &pe) {
						t.Errorf("untyped %s fault error: %v", class, r.err)
					}
				}
			}
			shutdown()
			n.SourceErrors() // drain; faulted runs may log source aborts
			testutil.CheckGoroutines(t, snap)
		})
	}
}

// TestChaosMuxSequentialRecovery checks that a mux link survives serving
// a faulted session and then carries fresh, clean sessions: failure
// isolation must hold over time, not just concurrently.
func TestChaosMuxSequentialRecovery(t *testing.T) {
	seed := chaosSeed(t)
	want := expectedJoin(t)
	snap := testutil.Snapshot()
	n := newTestNetwork(t, nil)
	cm, shutdown := muxMediator(n)
	params := fastParams()
	params.Timeout = chaosTimeout

	// Round 1: a session whose first received message is dropped times
	// out with a typed error.
	st, err := cm.Open()
	if err != nil {
		t.Fatalf("open faulted session: %v", err)
	}
	faulted := transport.WrapFault(st, &transport.FaultPlan{
		Class: transport.FaultDrop, SendOp: -1, RecvOp: 0, Seed: seed,
	})
	qerr := testutil.WithinDeadline(t, 2*chaosTimeout, func() error {
		_, err := n.Client.Query(faulted, fixtureSQL, ProtocolCommutative, params)
		return err
	})
	if qerr == nil {
		t.Fatal("dropped message went unnoticed")
	}
	var pe *ProtocolError
	if !errors.As(qerr, &pe) {
		t.Fatalf("untyped drop error: %v", qerr)
	}
	if err := faulted.Close(); err != nil {
		t.Logf("closing faulted session: %v", err)
	}

	// Round 2: fresh sessions over the SAME link still work.
	for i := 0; i < 2; i++ {
		st, err := cm.Open()
		if err != nil {
			t.Fatalf("open clean session %d: %v", i, err)
		}
		res, err := n.Client.Query(st, fixtureSQL, ProtocolCommutative, params)
		if cerr := st.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("clean session %d after faulted one: %v", i, err)
		}
		if !res.EqualMultiset(want) {
			t.Fatalf("clean session %d returned a wrong join", i)
		}
	}
	shutdown()
	n.SourceErrors()
	testutil.CheckGoroutines(t, snap)
}

// TestChaosMuxLinkDeath checks the complementary contract: when the
// PHYSICAL link dies mid-protocol, every session on it aborts with a
// typed error within the deadline — nobody hangs.
func TestChaosMuxLinkDeath(t *testing.T) {
	want := expectedJoin(t)
	snap := testutil.Snapshot()
	n := newTestNetwork(t, nil)
	cm, shutdown := muxMediator(n)
	params := fastParams()
	params.Timeout = chaosTimeout

	// A completed session first, so the link is known-good.
	st, err := cm.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	res, err := n.Client.Query(st, fixtureSQL, ProtocolDAS, params)
	if cerr := st.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("warm-up session: %v", err)
	}
	if !res.EqualMultiset(want) {
		t.Fatal("warm-up session returned a wrong join")
	}

	// Open sessions, then kill the physical link under them.
	const victims = 3
	var wg sync.WaitGroup
	errs := make(chan error, victims)
	for i := 0; i < victims; i++ {
		stream, err := cm.Open()
		if err != nil {
			t.Fatalf("open victim %d: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := n.Client.Query(stream, fixtureSQL, ProtocolPM, params)
			errs <- err
		}()
	}
	shutdown() // closes both muxes: the shared link is gone
	if err := testutil.WithinDeadline(t, 2*chaosTimeout, func() error {
		wg.Wait()
		return nil
	}); err != nil {
		t.Fatalf("victim sessions did not settle: %v", err)
	}
	close(errs)
	for err := range errs {
		if err == nil {
			t.Error("session on a dead link reported success")
			continue
		}
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Errorf("untyped link-death error: %v", err)
		}
	}
	n.SourceErrors()
	testutil.CheckGoroutines(t, snap)
}
