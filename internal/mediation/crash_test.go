package mediation

import (
	"errors"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// Mid-protocol crash tests: a party dies at a round boundary and every
// survivor must surface a *ProtocolError attributing the failure to the
// dead party — within the deadline, leaking nothing.

// TestSourceCrashMidProtocol kills the mediator↔source-of-R1 link at a
// protocol-specific round boundary (the last recv the mediator performs on
// it), for every protocol. The client's error must blame source:R1 — the
// mediator relays the origin, it does not re-blame itself.
func TestSourceCrashMidProtocol(t *testing.T) {
	cases := []struct {
		proto  Protocol
		recvOp int // 0-based mediator-side recv index to die at
	}{
		{ProtocolPlaintext, 1},   // ack(0), partial result(1)
		{ProtocolMobileCode, 1},  // ack(0), encrypted partial(1)
		{ProtocolDAS, 1},         // ack(0), index tables(1)
		{ProtocolCommutative, 2}, // ack(0), offer(1), cross-back(2)
		{ProtocolPM, 2},          // ack(0), coeffs(1), evals(2)
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.proto.String(), func(t *testing.T) {
			snap := testutil.Snapshot()
			n := newTestNetwork(t, nil)
			faultRoute(n, "R1", &transport.FaultPlan{
				Class: transport.FaultClose, SendOp: -1, RecvOp: tc.recvOp,
			})
			params := fastParams()
			params.Timeout = chaosTimeout
			err := testutil.WithinDeadline(t, 2*chaosTimeout, func() error {
				_, qerr := n.Query(fixtureSQL, tc.proto, params)
				return qerr
			})
			if err == nil {
				t.Fatal("query succeeded despite the source link dying mid-protocol")
			}
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("crash error is not a *ProtocolError: %v", err)
			}
			if pe.Party != "source:R1" {
				t.Errorf("failure attributed to %q, want source:R1 (err: %v)", pe.Party, err)
			}
			n.SourceErrors()
			testutil.CheckGoroutines(t, snap)
		})
	}
}

// TestSilentSourceTimesOut replaces R1's source with one that accepts the
// link and then never answers. With the same per-operation deadline armed
// everywhere, the client's wait started first, so the client times out
// (blaming its own silent peer, the mediator) before the mediator's
// source:R1 attribution can reach it — the finer attribution lives in the
// mediator's own error and its timeout counter. (When a source dies on a
// LATER round, the mediator's earlier timeout does propagate; that path is
// TestSourceCrashMidProtocol.)
func TestSilentSourceTimesOut(t *testing.T) {
	snap := testutil.Snapshot()
	n := newTestNetwork(t, nil)
	reg := telemetry.NewRegistry()
	n.Mediator.Telemetry = reg
	n.Mediator.Routes["R1"] = func() (transport.Conn, error) {
		a, _ := transport.Pair() // nobody ever serves the far end
		return a, nil
	}
	params := fastParams()
	params.Timeout = chaosTimeout
	clientSide, mediatorSide := transport.Pair()
	medErrCh := make(chan error, 1)
	go func() {
		err := n.Mediator.HandleSession(mediatorSide)
		mediatorSide.Close()
		medErrCh <- err
	}()
	start := time.Now()
	err := testutil.WithinDeadline(t, 2*chaosTimeout, func() error {
		_, qerr := n.Client.Query(clientSide, fixtureSQL, ProtocolCommutative, params)
		return qerr
	})
	clientSide.Close()
	medErr := <-medErrCh
	if elapsed := time.Since(start); elapsed > 2*chaosTimeout {
		t.Errorf("abort took %v, want within 2× the %v deadline", elapsed, chaosTimeout)
	}
	var pe *ProtocolError
	if err == nil || !errors.As(err, &pe) {
		t.Fatalf("client error = %v, want a *ProtocolError", err)
	}
	if !errors.Is(err, transport.ErrTimeout) {
		t.Errorf("client error does not wrap transport.ErrTimeout: %v", err)
	}
	if medErr == nil || !errors.As(medErr, &pe) {
		t.Fatalf("mediator error = %v, want a *ProtocolError", medErr)
	}
	if pe.Party != "source:R1" {
		t.Errorf("mediator attributed the silence to %q, want source:R1 (err: %v)", pe.Party, medErr)
	}
	if !errors.Is(medErr, transport.ErrTimeout) {
		t.Errorf("mediator error does not wrap transport.ErrTimeout: %v", medErr)
	}
	if got := reg.Counter("mediation_timeouts", "party", "mediator").Value(); got < 1 {
		t.Errorf("mediation_timeouts{party=mediator} = %d, want >= 1", got)
	}
	testutil.CheckGoroutines(t, snap)
}

// TestSilentMediatorTimesOut is the client-side bound: a mediator that
// accepts the request and never answers must surface as a *ProtocolError
// blaming the mediator and wrapping transport.ErrTimeout — the error shape
// that distinguishes "mediator unreachable" from a source dying deeper in.
func TestSilentMediatorTimesOut(t *testing.T) {
	snap := testutil.Snapshot()
	n := newTestNetwork(t, nil)
	reg := telemetry.NewRegistry()
	clientSide, mediatorSide := transport.Pair()
	defer mediatorSide.Close() // accepted, never served
	params := fastParams()
	params.Timeout = time.Second
	params.Telemetry = reg
	err := testutil.WithinDeadline(t, 2*time.Second, func() error {
		_, qerr := n.Client.Query(clientSide, fixtureSQL, ProtocolPlaintext, params)
		return qerr
	})
	clientSide.Close()
	if err == nil {
		t.Fatal("query succeeded against a silent mediator")
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("timeout error is not a *ProtocolError: %v", err)
	}
	if pe.Party != "mediator" {
		t.Errorf("silence attributed to %q, want mediator (err: %v)", pe.Party, err)
	}
	if !errors.Is(err, transport.ErrTimeout) {
		t.Errorf("client timeout does not wrap transport.ErrTimeout: %v", err)
	}
	if got := reg.Counter("mediation_timeouts", "party", "client").Value(); got != 1 {
		t.Errorf("mediation_timeouts{party=client} = %d, want 1", got)
	}
	testutil.CheckGoroutines(t, snap)
}

// TestMediatorCrashMidProtocol kills the client↔mediator link after the
// first protocol message: the client must report the mediator dead.
func TestMediatorCrashMidProtocol(t *testing.T) {
	snap := testutil.Snapshot()
	n := newTestNetwork(t, nil)
	clientSide, mediatorSide := transport.Pair()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// A mediator that dies right after reading the request.
		_, _ = mediatorSide.Recv()
		mediatorSide.Close()
	}()
	params := fastParams()
	params.Timeout = chaosTimeout
	err := testutil.WithinDeadline(t, 2*chaosTimeout, func() error {
		_, qerr := n.Client.Query(clientSide, fixtureSQL, ProtocolDAS, params)
		return qerr
	})
	clientSide.Close()
	<-done
	if err == nil {
		t.Fatal("query succeeded despite the mediator dying")
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("crash error is not a *ProtocolError: %v", err)
	}
	if pe.Party != "mediator" {
		t.Errorf("failure attributed to %q, want mediator (err: %v)", pe.Party, err)
	}
	testutil.CheckGoroutines(t, snap)
}
