package mediation

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"math/big"

	"github.com/secmediation/secmediation/internal/crypto/commutative"
	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/crypto/hybrid"
	"github.com/secmediation/secmediation/internal/crypto/oracle"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/parallel"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// commItem is one message component ⟨f_e(h(a)), encrypt(Tup(a))⟩. In the
// footnote-1 ID mode the mediator strips Payload before forwarding and
// sets ID so the opposite source handles fixed-length items only.
type commItem struct {
	// Hash is f_e(h(a)) (after step 3) or f_e1(f_e2(h(a))) (after the
	// cross-encryption steps 5/6).
	Hash *big.Int
	// Payload is encrypt(Tup(a)) — the sealed, gob-encoded tuple set.
	Payload []byte
	// ID replaces Payload between mediator and opposite source in ID mode.
	ID uint64
}

// commOffer is a source's step 3 message M_i.
type commOffer struct {
	Session    string
	Schema     relation.Schema
	WrappedKey []byte
	Items      []commItem
}

// commCross carries the opposite source's items (step 4), and commCrossBack
// the re-encrypted ones (steps 5/6).
type commCross struct {
	Items []commItem
}

// commPair is one result message ⟨encrypt(Tup1(a)), encrypt(Tup2(a))⟩.
type commPair struct {
	T1, T2 []byte
}

// commResult is the mediator's step 7 message to the client.
type commResult struct {
	Session              string
	Schema1, Schema2     relation.Schema
	JoinCols1, JoinCols2 []string
	Wrapped1, Wrapped2   []byte
	Pairs                []commPair
}

// serveCommutative implements a datasource's role in Listing 3: generate a
// fresh commutative key, hash and encrypt every active-domain value of the
// join attributes (composite keys supported), encrypt the tuple sets for
// the client, ship the shuffled message set, then re-encrypt the opposite
// source's hash values when they come back through the mediator.
func (s *Source) serveCommutative(conn transport.Conn, pq *PartialQuery, rel *relation.Relation, clientKey *rsa.PublicKey, watch *stopwatch) error {
	group, err := pq.Params.commutativeGroup()
	if err != nil {
		return err
	}
	var offer commOffer
	var key *commutative.Key
	err = watch.phase(telemetry.PhaseSourceEncrypt, func() error {
		key, err = pq.Params.generateCommKey(group, rand.Reader)
		if err != nil {
			return err
		}
		orc := oracle.New(group, pq.SessionID)
		groupsByKey, err := rel.GroupByColumns(pq.JoinCols)
		if err != nil {
			return err
		}
		if len(groupsByKey) == 0 {
			return fmt.Errorf("comm: relation %s is empty", pq.Relation)
		}
		sess, err := hybrid.NewSession(clientKey)
		if err != nil {
			return err
		}
		offer = commOffer{Session: pq.SessionID, Schema: rel.Schema(), WrappedKey: sess.WrappedKey()}
		aad := []byte("comm:" + pq.SessionID + ":" + rel.Schema().Relation)
		// The per-value hash+encrypt+seal work is the protocol's dominant
		// cost (one modexp per active-domain value); fan it out over the
		// worker pool. Map preallocates the full item slice and writes by
		// index, so the transcript order is worker-count independent.
		// EncryptUnchecked is sound here: the oracle squares every hash
		// into QR(p) by construction.
		offer.Items, err = parallel.Map(len(groupsByKey), pq.Params.Workers, func(i int) (commItem, error) {
			g := groupsByKey[i]
			h := orc.HashBytes(relation.EncodeValues(g.Key, nil))
			c := key.EncryptUnchecked(h)
			sealed, err := sess.Seal(relation.EncodeTupleSet(g.Tuples), aad)
			if err != nil {
				return commItem{}, err
			}
			return commItem{Hash: c, Payload: sealed.Marshal()}, nil
		})
		if err != nil {
			return err
		}
		s.Ledger.UsePrimitive(s.party(), "ideal-hash", int64(len(offer.Items)))
		s.Ledger.UsePrimitive(s.party(), "commutative-encryption", int64(len(offer.Items)))
		s.Ledger.UsePrimitive(s.party(), "hybrid-encryption", int64(len(offer.Items)))
		// Step 3: "arbitrarily ordered" — shuffle so positions leak nothing.
		return shuffleItems(offer.Items)
	})
	if err != nil {
		return err
	}
	if err := sendMsg(conn, "mediator", msgCommOffer, offer); err != nil {
		return err
	}

	// Steps 4–6: re-encrypt the opposite source's hash values.
	var cross commCross
	if err := recvInto(conn, "mediator", msgCommCross, &cross); err != nil {
		return err
	}
	var back commCross
	err = watch.phase(telemetry.PhaseCrossEncrypt, func() error {
		// Both sources learn the opposite active-domain size (Section 6).
		s.Ledger.Observe(s.party(), "|domactive(opposite)|", int64(len(cross.Items)))
		// The second encryption layer is pure fixed-exponent modexp work —
		// exactly what the key's batch path exists for: one shared window
		// schedule across the pool, order preserved.
		hashes := make([]*big.Int, len(cross.Items))
		for i, it := range cross.Items {
			hashes[i] = it.Hash
		}
		doubled, err := key.ReEncryptBatch(hashes, pq.Params.Workers)
		if err != nil {
			return err
		}
		back.Items = make([]commItem, len(cross.Items))
		for i, it := range cross.Items {
			back.Items[i] = commItem{Hash: doubled[i], Payload: it.Payload, ID: it.ID}
		}
		s.Ledger.UsePrimitive(s.party(), "commutative-encryption", int64(len(cross.Items)))
		return shuffleItems(back.Items)
	})
	if err != nil {
		return err
	}
	return sendMsg(conn, "mediator", msgCommCrossBack, back)
}

// mediateCommutative implements the mediator's role: exchange the message
// sets between the sources (step 4; in ID mode retaining the encrypted
// tuple sets per footnote 1), then match doubly-encrypted hash values and
// assemble the result messages (step 7).
// seclint:entry mediator
func (m *Mediator) mediateCommutative(client, s1, s2 transport.Conn, d *decomposition, params Params, watch *stopwatch) error {
	var o1, o2 commOffer
	if err := recvInto(s1, "source:"+d.rel1, msgCommOffer, &o1); err != nil {
		return err
	}
	if err := recvInto(s2, "source:"+d.rel2, msgCommOffer, &o2); err != nil {
		return err
	}
	// Table 1: the mediator learns both active-domain sizes.
	m.Ledger.Observe(leakage.PartyMediator, "|domactive(R1.Ajoin)|", int64(len(o1.Items)))
	m.Ledger.Observe(leakage.PartyMediator, "|domactive(R2.Ajoin)|", int64(len(o2.Items)))

	// Step 4: forward each offer to the opposite source.
	var store1, store2 map[uint64][]byte
	cross1, cross2 := commCross{Items: o2.Items}, commCross{Items: o1.Items}
	if params.IDMode {
		// Footnote 1: keep the payloads here; circulate fixed-length IDs.
		store1, cross2.Items = stripPayloads(o1.Items)
		store2, cross1.Items = stripPayloads(o2.Items)
	}
	if err := sendMsg(s1, "source:"+d.rel1, msgCommCross, cross1); err != nil {
		return err
	}
	if err := sendMsg(s2, "source:"+d.rel2, msgCommCross, cross2); err != nil {
		return err
	}
	var b1, b2 commCross
	if err := recvInto(s1, "source:"+d.rel1, msgCommCrossBack, &b1); err != nil {
		return err
	}
	if err := recvInto(s2, "source:"+d.rel2, msgCommCrossBack, &b2); err != nil {
		return err
	}

	// Step 7: match identical first components. b2 carries R1's tuple
	// sets (S2 re-encrypted S1's hashes), b1 carries R2's.
	res := commResult{
		Session: o1.Session,
		Schema1: o1.Schema, Schema2: o2.Schema,
		JoinCols1: d.joinCols1, JoinCols2: d.joinCols2,
		Wrapped1: o1.WrappedKey, Wrapped2: o2.WrappedKey,
	}
	err := watch.phase(telemetry.PhaseMatch, func() error {
		// Rendering a 2048-bit hash to a map key is the mediator's only
		// per-item cost; fan the conversions out, then build and probe
		// the match map sequentially.
		keys2, err := parallel.Map(len(b2.Items), params.Workers, func(i int) (string, error) {
			return b2.Items[i].Hash.Text(16), nil
		})
		if err != nil {
			return err
		}
		keys1, err := parallel.Map(len(b1.Items), params.Workers, func(i int) (string, error) {
			return b1.Items[i].Hash.Text(16), nil
		})
		if err != nil {
			return err
		}
		tup1ByHash := make(map[string][]byte, len(b2.Items))
		for i, it := range b2.Items {
			payload := it.Payload
			if params.IDMode {
				var ok bool
				payload, ok = store1[it.ID]
				if !ok {
					return fmt.Errorf("comm: unknown ID %d from S2", it.ID)
				}
			}
			tup1ByHash[keys2[i]] = payload
		}
		for i, it := range b1.Items {
			t1, ok := tup1ByHash[keys1[i]]
			if !ok {
				continue
			}
			t2 := it.Payload
			if params.IDMode {
				t2, ok = store2[it.ID]
				if !ok {
					return fmt.Errorf("comm: unknown ID %d from S1", it.ID)
				}
			}
			res.Pairs = append(res.Pairs, commPair{T1: t1, T2: t2})
		}
		// Table 1: the mediator learns the intersection size, a lower
		// bound of the global result size.
		m.Ledger.Observe(leakage.PartyMediator, "|domactive(R1) ∩ domactive(R2)|", int64(len(res.Pairs)))
		return nil
	})
	if err != nil {
		return err
	}
	return sendMsg(client, "client", msgCommResult, res)
}

// runCommutative implements the client's step 8: decrypt the matched tuple
// sets and construct the result tuples (a cross product per matched join
// value).
func (c *Client) runCommutative(conn transport.Conn, params Params, watch *stopwatch) (*relation.Relation, relation.Schema, []string, error) {
	var res commResult
	if err := recvInto(conn, "mediator", msgCommResult, &res); err != nil {
		return nil, relation.Schema{}, nil, err
	}
	var joined *relation.Relation
	err := watch.phase(telemetry.PhasePostFilter, func() error {
		recv1, err := hybrid.NewReceiver(c.PrivateKey, res.Wrapped1)
		if err != nil {
			return err
		}
		recv2, err := hybrid.NewReceiver(c.PrivateKey, res.Wrapped2)
		if err != nil {
			return err
		}
		schema, err := res.Schema1.Concat(res.Schema2)
		if err != nil {
			return err
		}
		joined = relation.New(schema)
		aad1 := []byte("comm:" + res.Session + ":" + res.Schema1.Relation)
		aad2 := []byte("comm:" + res.Session + ":" + res.Schema2.Relation)
		// Open both tuple sets of every matched pair in parallel; the
		// cross products append into the shared relation sequentially in
		// pair order, keeping the result deterministic.
		type pairSets struct{ ts1, ts2 []relation.Tuple }
		opened, err := parallel.Map(len(res.Pairs), params.Workers, func(i int) (pairSets, error) {
			ts1, err := openTupleSet(recv1, res.Pairs[i].T1, aad1, res.Schema1)
			if err != nil {
				return pairSets{}, err
			}
			ts2, err := openTupleSet(recv2, res.Pairs[i].T2, aad2, res.Schema2)
			if err != nil {
				return pairSets{}, err
			}
			return pairSets{ts1: ts1, ts2: ts2}, nil
		})
		if err != nil {
			return err
		}
		for _, p := range opened {
			ts1, ts2 := p.ts1, p.ts2
			for _, t1 := range ts1 {
				for _, t2 := range ts2 {
					t := make(relation.Tuple, 0, len(t1)+len(t2))
					t = append(t, t1...)
					t = append(t, t2...)
					if err := joined.Append(t); err != nil {
						return err
					}
				}
			}
		}
		c.Ledger.UsePrimitive(leakage.PartyClient, "hybrid-decryption", int64(2*len(res.Pairs)))
		// Table 1: the client receives only the exact global result.
		c.Ledger.Observe(leakage.PartyClient, "result-tuples", int64(joined.Len()))
		return nil
	})
	if err != nil {
		return nil, relation.Schema{}, nil, err
	}
	return joined, res.Schema2, res.JoinCols2, nil
}

func openTupleSet(recv *hybrid.Receiver, blob, aad []byte, schema relation.Schema) ([]relation.Tuple, error) {
	ct, err := hybrid.UnmarshalCiphertext(blob)
	if err != nil {
		return nil, err
	}
	pt, err := recv.Open(ct, aad)
	if err != nil {
		return nil, err
	}
	return relation.DecodeTupleSet(schema, pt)
}

// stripPayloads implements footnote 1: replace payloads with fresh IDs and
// return the retention map.
func stripPayloads(items []commItem) (map[uint64][]byte, []commItem) {
	store := make(map[uint64][]byte, len(items))
	out := make([]commItem, len(items))
	var next uint64
	for i, it := range items {
		next++
		store[next] = it.Payload
		out[i] = commItem{Hash: it.Hash, ID: next}
	}
	return store, out
}

// shuffleItems applies a cryptographic Fisher-Yates shuffle, realizing the
// paper's "arbitrarily ordered set of messages" (see shuffle.go for the
// buffered randomness source).
func shuffleItems(items []commItem) error { return shuffleSlice(items) }

// CommutativeIntersection runs Agrawal et al.'s two-party intersection
// protocol shape directly (the operation the paper's Section 4 cites
// alongside the join): both parties hash and singly encrypt their value
// sets, cross-encrypt each other's, and the receiver learns exactly which
// of its values lie in the intersection — nothing else. Exposed for the
// ext-intersection experiment. workers sizes the worker pool for the two
// double-encryption loops (see parallel.Resolve).
func CommutativeIntersection(g *groups.Group, label string, receiver, sender []relation.Value, workers int) ([]relation.Value, error) {
	kR, err := commutative.GenerateKey(g, rand.Reader)
	if err != nil {
		return nil, err
	}
	kS, err := commutative.GenerateKey(g, rand.Reader)
	if err != nil {
		return nil, err
	}
	orc := oracle.New(g, label)
	// Each value costs two modexps (first layer + cross layer). The first
	// layer fans hash+encrypt out over the pool (oracle outputs are QR(p)
	// by construction, so it takes the unchecked path); the second layer
	// goes through the key's batch entry point, sharing one engine.
	double := func(vals []relation.Value, first, second *commutative.Key) ([]string, error) {
		layer1, err := parallel.Map(len(vals), workers, func(i int) (*big.Int, error) {
			return first.EncryptUnchecked(orc.HashValue(vals[i])), nil
		})
		if err != nil {
			return nil, err
		}
		layer2, err := second.ReEncryptBatch(layer1, workers)
		if err != nil {
			return nil, err
		}
		return parallel.Map(len(layer2), workers, func(i int) (string, error) {
			return layer2[i].Text(16), nil
		})
	}
	// Sender: f_s(h(u)) for its values, shared with receiver, who
	// re-encrypts to f_r(f_s(h(u))).
	senderKeys, err := double(sender, kS, kR)
	if err != nil {
		return nil, err
	}
	senderDouble := make(map[string]bool, len(senderKeys))
	for _, k := range senderKeys {
		senderDouble[k] = true
	}
	// Receiver: f_r(h(v)), sender re-encrypts to f_s(f_r(h(v))); the
	// receiver matches against the sender's doubly-encrypted set.
	receiverKeys, err := double(receiver, kR, kS)
	if err != nil {
		return nil, err
	}
	var out []relation.Value
	for i, v := range receiver {
		if senderDouble[receiverKeys[i]] {
			out = append(out, v)
		}
	}
	return out, nil
}
