package mediation

import (
	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/relation"
)

// The selection-pushdown extension for the DAS protocol: conjunctive
// "column op literal" conditions from the global WHERE clause are
// translated by the client (the query translator) into per-attribute
// allowed-index sets that the mediator applies to the encrypted relations
// before the index join. The mediator-side filter is a sound
// over-approximation — the client query q_C still applies the exact WHERE
// afterwards (postProcess) — so results are unchanged while the superset
// the client must decrypt shrinks.
//
// Enabling Params.Pushdown reveals strictly more to the mediator: it
// learns which encrypted rows fall into predicate-satisfying partitions.
// That is the same class of inference the paper's Section 6 partitioning
// discussion covers (refs [15],[8]); medbench quantifies the trade-off.

// pushCondition is one pushable conjunct: Column op Bound.
type pushCondition struct {
	Column string
	Op     algebra.CompareOp
	Bound  relation.Value
}

// extractPushdown collects the top-level AND conjuncts of the form
// "column op literal" (either operand order) whose column resolves in the
// given schema. Disjunctions and negations are left to client-side
// post-filtering — pushing them down is not sound conjunct-wise.
func extractPushdown(where algebra.Expr, schema relation.Schema) []pushCondition {
	var out []pushCondition
	var walk func(e algebra.Expr)
	walk = func(e algebra.Expr) {
		switch t := e.(type) {
		case algebra.And:
			walk(t.Left)
			walk(t.Right)
		case algebra.Compare:
			col, okc := t.Left.(algebra.ColumnRef)
			lit, okl := t.Right.(algebra.Literal)
			op := t.Op
			if !okc || !okl {
				// literal op column: flip the comparison.
				lit2, okl2 := t.Left.(algebra.Literal)
				col2, okc2 := t.Right.(algebra.ColumnRef)
				if !okl2 || !okc2 {
					return
				}
				col, lit = col2, lit2
				op = flipCompare(t.Op)
			}
			i := schema.IndexOf(col.Name)
			if i < 0 {
				return
			}
			if schema.Columns[i].Kind != lit.Value.Kind() {
				return
			}
			out = append(out, pushCondition{Column: schema.Columns[i].Name, Op: op, Bound: lit.Value})
		}
	}
	if where != nil {
		walk(where)
	}
	return out
}

func flipCompare(op algebra.CompareOp) algebra.CompareOp {
	switch op {
	case algebra.OpLt:
		return algebra.OpGt
	case algebra.OpLe:
		return algebra.OpGe
	case algebra.OpGt:
		return algebra.OpLt
	case algebra.OpGe:
		return algebra.OpLe
	default:
		return op // Eq and Ne are symmetric
	}
}

// filterColumns returns the distinct condition columns not already in the
// join column list — the extra attributes the source must index.
func filterColumns(conds []pushCondition, joinCols []string) []string {
	seen := map[string]bool{}
	for _, c := range joinCols {
		seen[c] = true
	}
	var out []string
	for _, c := range conds {
		if !seen[c.Column] {
			seen[c.Column] = true
			out = append(out, c.Column)
		}
	}
	return out
}
