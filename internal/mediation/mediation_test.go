package mediation

import (
	"crypto/rsa"
	"sync"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/leakage"
	rel "github.com/secmediation/secmediation/internal/relation"
)

// fixture holds a ready-made credential world shared across tests (key
// generation is the expensive part).
type fixture struct {
	ca     *credential.Authority
	client *Client
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(t testing.TB) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		ca, err := credential.NewAuthority("TestCA")
		if err != nil {
			panic(err)
		}
		client, err := NewClient()
		if err != nil {
			panic(err)
		}
		cred, err := ca.Issue(&client.PrivateKey.PublicKey,
			[]credential.Property{{Name: "role", Value: "analyst"}}, time.Hour)
		if err != nil {
			panic(err)
		}
		client.Credentials = credential.Set{cred}
		fix = &fixture{ca: ca, client: client}
	})
	return fix
}

func testRelations(t testing.TB) (*rel.Relation, *rel.Relation) {
	t.Helper()
	s1 := rel.MustSchema("R1",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "name", Kind: rel.KindString})
	s2 := rel.MustSchema("R2",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "city", Kind: rel.KindString})
	r1 := rel.MustFromTuples(s1,
		rel.Tuple{rel.Int(1), rel.String_("ada")},
		rel.Tuple{rel.Int(2), rel.String_("bob")},
		rel.Tuple{rel.Int(3), rel.String_("cyd")},
		rel.Tuple{rel.Int(3), rel.String_("cyd2")},
		rel.Tuple{rel.Int(7), rel.String_("gus")},
	)
	r2 := rel.MustFromTuples(s2,
		rel.Tuple{rel.Int(2), rel.String_("berlin")},
		rel.Tuple{rel.Int(3), rel.String_("dortmund")},
		rel.Tuple{rel.Int(3), rel.String_("essen")},
		rel.Tuple{rel.Int(9), rel.String_("hagen")},
	)
	return r1, r2
}

// policyFor grants role=analyst access to a relation.
func policyFor(relName string) *credential.Policy {
	return &credential.Policy{
		Relation: relName,
		Require:  []credential.Requirement{{Property: credential.Property{Name: "role", Value: "analyst"}}},
	}
}

// newTestNetwork assembles the standard two-source network.
func newTestNetwork(t testing.TB, ledger *leakage.Ledger) *Network {
	t.Helper()
	f := getFixture(t)
	r1, r2 := testRelations(t)
	s1 := &Source{
		Name:       "S1",
		Catalog:    algebra.MapCatalog{"R1": r1},
		Policies:   map[string]*credential.Policy{"R1": policyFor("R1")},
		TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()},
		Ledger:     ledger,
	}
	s2 := &Source{
		Name:       "S2",
		Catalog:    algebra.MapCatalog{"R2": r2},
		Policies:   map[string]*credential.Policy{"R2": policyFor("R2")},
		TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()},
		Ledger:     ledger,
	}
	med := &Mediator{Ledger: ledger}
	f.client.Ledger = ledger
	n, err := NewNetwork(f.client, med, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// expectedJoin is the plaintext truth for the standard fixture query.
func expectedJoin(t testing.TB) *rel.Relation {
	t.Helper()
	r1, r2 := testRelations(t)
	out, err := algebra.EquiJoin(r1, r2, []string{"id"}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

const fixtureSQL = "SELECT * FROM R1 JOIN R2 ON R1.id = R2.id"

// fastParams keeps cryptographic parameters small enough for unit tests
// while exercising the full protocol paths.
func fastParams() Params {
	return Params{Partitions: 3, Strategy: das.EquiDepth, GroupBits: 1536, PaillierBits: 1024}
}

// All five protocols must produce exactly the same global result.
func TestAllProtocolsAgree(t *testing.T) {
	want := expectedJoin(t)
	for _, proto := range []Protocol{ProtocolPlaintext, ProtocolMobileCode, ProtocolDAS, ProtocolCommutative, ProtocolPM} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			n := newTestNetwork(t, nil)
			got, err := n.Query(fixtureSQL, proto, fastParams())
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualMultiset(want) {
				t.Errorf("result mismatch:\n%v\nwant\n%v", got, want)
			}
			if errs := n.SourceErrors(); len(errs) != 0 {
				t.Errorf("source errors: %v", errs)
			}
		})
	}
}

func TestProtocolVariants(t *testing.T) {
	want := expectedJoin(t)
	cases := []struct {
		name   string
		proto  Protocol
		params Params
	}{
		{"das-equi-width", ProtocolDAS, Params{Partitions: 2, Strategy: das.EquiWidth, GroupBits: 1536, PaillierBits: 1024}},
		{"das-hash-buckets", ProtocolDAS, Params{Partitions: 4, Strategy: das.HashBuckets, GroupBits: 1536, PaillierBits: 1024}},
		{"das-one-partition", ProtocolDAS, Params{Partitions: 1, Strategy: das.EquiDepth, GroupBits: 1536, PaillierBits: 1024}},
		{"comm-id-mode", ProtocolCommutative, Params{GroupBits: 1536, IDMode: true, PaillierBits: 1024}},
		{"pm-hybrid-payload", ProtocolPM, Params{GroupBits: 1536, PaillierBits: 1024, PayloadMode: PayloadHybrid}},
		{"pm-bucketed", ProtocolPM, Params{GroupBits: 1536, PaillierBits: 1024, Buckets: 3}},
		{"pm-bucketed-hybrid", ProtocolPM, Params{GroupBits: 1536, PaillierBits: 1024, Buckets: 2, PayloadMode: PayloadHybrid}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			n := newTestNetwork(t, nil)
			got, err := n.Query(fixtureSQL, tc.proto, tc.params)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualMultiset(want) {
				t.Errorf("result mismatch:\n%v\nwant\n%v", got, want)
			}
		})
	}
}

// TestCommutativeKeyModes runs the commutative protocol end-to-end under
// every key-generation policy: the default short exponents, the
// full-length escape hatch (GenerateKeyFullExponent, which previously
// had no protocol-level coverage), and the constant-time ladder. All
// three must produce the exact join, and an unknown mode must abort
// rather than silently fall back.
func TestCommutativeKeyModes(t *testing.T) {
	want := expectedJoin(t)
	for _, mode := range []CommKeyMode{KeyShortExponent, KeyFullExponent, KeyConstantTime} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			n := newTestNetwork(t, nil)
			params := fastParams()
			params.KeyMode = mode
			got, err := n.Query(fixtureSQL, ProtocolCommutative, params)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualMultiset(want) {
				t.Errorf("result mismatch:\n%v\nwant\n%v", got, want)
			}
			if errs := n.SourceErrors(); len(errs) != 0 {
				t.Errorf("source errors: %v", errs)
			}
		})
	}
	if _, err := (Params{KeyMode: CommKeyMode(99)}).generateCommKey(nil, nil); err == nil {
		t.Error("unknown key mode: want error")
	}
	for mode, name := range map[CommKeyMode]string{
		KeyShortExponent: "short-exponent", KeyFullExponent: "full-exponent", KeyConstantTime: "constant-time",
	} {
		if mode.String() != name {
			t.Errorf("CommKeyMode(%d).String() = %q, want %q", int(mode), mode.String(), name)
		}
	}
}

func TestNaturalJoinQuery(t *testing.T) {
	r1, r2 := testRelations(t)
	want, err := algebra.NaturalJoin(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range []Protocol{ProtocolPlaintext, ProtocolCommutative, ProtocolDAS, ProtocolPM} {
		n := newTestNetwork(t, nil)
		got, err := n.Query("SELECT * FROM R1 NATURAL JOIN R2", proto, fastParams())
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !got.EqualMultiset(want) {
			t.Errorf("%v natural join mismatch:\n%v\nwant\n%v", proto, got, want)
		}
	}
}

func TestWhereAndProjectionPostProcessing(t *testing.T) {
	n := newTestNetwork(t, nil)
	got, err := n.Query("SELECT name, city FROM R1 JOIN R2 ON R1.id = R2.id WHERE city <> 'essen'", ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema().Arity() != 2 {
		t.Errorf("projection not applied: %v", got.Schema())
	}
	// Full join has 5 tuples (id2 ×1, id3 2×2); one 'essen' pair removes 2.
	if got.Len() != 3 {
		t.Errorf("WHERE not applied: %d tuples\n%v", got.Len(), got)
	}
}

func TestAccessDenied(t *testing.T) {
	f := getFixture(t)
	r1, r2 := testRelations(t)
	strictPolicy := &credential.Policy{
		Relation: "R1",
		Require:  []credential.Requirement{{Property: credential.Property{Name: "role", Value: "admin"}}},
	}
	s1 := &Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
		Policies: map[string]*credential.Policy{"R1": strictPolicy}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	s2 := &Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
		Policies: map[string]*credential.Policy{"R2": policyFor("R2")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	n, err := NewNetwork(f.client, &Mediator{}, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Query(fixtureSQL, ProtocolCommutative, fastParams()); err == nil {
		t.Fatal("query succeeded despite denial")
	}
}

func TestRowLevelFiltering(t *testing.T) {
	f := getFixture(t)
	r1, r2 := testRelations(t)
	// Analysts only see R1 rows with id < 3.
	filtered := policyFor("R1")
	filtered.Filters = []credential.RowFilter{{
		IfProperty: credential.Property{Name: "role", Value: "analyst"},
		Predicate:  algebra.Compare{Op: algebra.OpLt, Left: algebra.ColumnRef{Name: "id"}, Right: algebra.Literal{Value: rel.Int(3)}},
	}}
	s1 := &Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
		Policies: map[string]*credential.Policy{"R1": filtered}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	s2 := &Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
		Policies: map[string]*credential.Policy{"R2": policyFor("R2")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	n, err := NewNetwork(f.client, &Mediator{}, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Query(fixtureSQL, ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	// Only id=2 survives the filter and matches.
	if got.Len() != 1 {
		t.Errorf("row filter not enforced: %d tuples\n%v", got.Len(), got)
	}
}

func TestMultiAttributeJoin(t *testing.T) {
	f := getFixture(t)
	s1 := rel.MustSchema("E1",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "dept", Kind: rel.KindString},
		rel.Column{Name: "name", Kind: rel.KindString})
	s2 := rel.MustSchema("E2",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "dept", Kind: rel.KindString},
		rel.Column{Name: "city", Kind: rel.KindString})
	e1 := rel.MustFromTuples(s1,
		rel.Tuple{rel.Int(1), rel.String_("a"), rel.String_("n1")},
		rel.Tuple{rel.Int(1), rel.String_("b"), rel.String_("n2")},
		rel.Tuple{rel.Int(2), rel.String_("a"), rel.String_("n3")})
	e2 := rel.MustFromTuples(s2,
		rel.Tuple{rel.Int(1), rel.String_("a"), rel.String_("c1")},
		rel.Tuple{rel.Int(2), rel.String_("b"), rel.String_("c2")})
	want, err := algebra.EquiJoin(e1, e2, []string{"id", "dept"}, []string{"id", "dept"})
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT * FROM E1 JOIN E2 ON E1.id = E2.id AND E1.dept = E2.dept"
	for _, proto := range []Protocol{ProtocolCommutative, ProtocolPM, ProtocolDAS} {
		src1 := &Source{Name: "S1", Catalog: algebra.MapCatalog{"E1": e1},
			Policies: map[string]*credential.Policy{"E1": policyFor("E1")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
		src2 := &Source{Name: "S2", Catalog: algebra.MapCatalog{"E2": e2},
			Policies: map[string]*credential.Policy{"E2": policyFor("E2")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
		n, err := NewNetwork(f.client, &Mediator{}, src1, src2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := n.Query(sql, proto, fastParams())
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !got.EqualMultiset(want) {
			t.Errorf("%v multi-attribute mismatch:\n%v\nwant\n%v", proto, got, want)
		}
	}
}

// Table 1, mediator column: what each protocol's mediator observes.
func TestTable1MediatorLeakage(t *testing.T) {
	r1, r2 := testRelations(t)

	// DAS: |R1|, |R2| and |RC|.
	ledger := leakage.NewLedger()
	n := newTestNetwork(t, ledger)
	if _, err := n.Query(fixtureSQL, ProtocolDAS, fastParams()); err != nil {
		t.Fatal(err)
	}
	if v, ok := ledger.Observed(leakage.PartyMediator, "|R1|"); !ok || v != int64(r1.Len()) {
		t.Errorf("DAS mediator |R1| = %d,%v; want %d", v, ok, r1.Len())
	}
	if v, ok := ledger.Observed(leakage.PartyMediator, "|R2|"); !ok || v != int64(r2.Len()) {
		t.Errorf("DAS mediator |R2| = %d,%v; want %d", v, ok, r2.Len())
	}
	rc, ok := ledger.Observed(leakage.PartyMediator, "|RC|")
	if !ok || rc < int64(expectedJoin(t).Len()) {
		t.Errorf("DAS mediator |RC| = %d,%v; want ≥ join size", rc, ok)
	}
	// DAS mediator must NOT learn active-domain sizes.
	if _, ok := ledger.Observed(leakage.PartyMediator, "|domactive(R1.Ajoin)|"); ok {
		t.Error("DAS mediator learned active-domain size")
	}

	// Commutative: |domactive| and intersection size; NOT |Ri|.
	ledger = leakage.NewLedger()
	n = newTestNetwork(t, ledger)
	if _, err := n.Query(fixtureSQL, ProtocolCommutative, fastParams()); err != nil {
		t.Fatal(err)
	}
	d1, _ := r1.ActiveDomain("id")
	d2, _ := r2.ActiveDomain("id")
	if v, _ := ledger.Observed(leakage.PartyMediator, "|domactive(R1.Ajoin)|"); v != int64(len(d1)) {
		t.Errorf("comm mediator |dom1| = %d, want %d", v, len(d1))
	}
	if v, _ := ledger.Observed(leakage.PartyMediator, "|domactive(R2.Ajoin)|"); v != int64(len(d2)) {
		t.Errorf("comm mediator |dom2| = %d, want %d", v, len(d2))
	}
	if v, _ := ledger.Observed(leakage.PartyMediator, "|domactive(R1) ∩ domactive(R2)|"); v != 2 {
		t.Errorf("comm mediator intersection = %d, want 2 (ids 2 and 3)", v)
	}
	if _, ok := ledger.Observed(leakage.PartyMediator, "|R1|"); ok {
		t.Error("commutative mediator learned |R1|")
	}

	// PM: polynomial degrees = |domactive|.
	ledger = leakage.NewLedger()
	n = newTestNetwork(t, ledger)
	if _, err := n.Query(fixtureSQL, ProtocolPM, fastParams()); err != nil {
		t.Fatal(err)
	}
	if v, _ := ledger.Observed(leakage.PartyMediator, "|domactive(R1.Ajoin)|"); v != int64(len(d1)) {
		t.Errorf("pm mediator degree(P1) = %d, want %d", v, len(d1))
	}
	if _, ok := ledger.Observed(leakage.PartyMediator, "|R1|"); ok {
		t.Error("pm mediator learned |R1|")
	}
}

// Table 1, client column: superset for DAS, exact result for commutative,
// all encrypted values for PM.
func TestTable1ClientLeakage(t *testing.T) {
	joinSize := int64(expectedJoin(t).Len())

	ledger := leakage.NewLedger()
	n := newTestNetwork(t, ledger)
	if _, err := n.Query(fixtureSQL, ProtocolDAS, Params{Partitions: 1, Strategy: das.EquiDepth, GroupBits: 1536, PaillierBits: 1024}); err != nil {
		t.Fatal(err)
	}
	superset, _ := ledger.Observed(leakage.PartyClient, "superset-size")
	if superset < joinSize {
		t.Errorf("DAS superset %d < join %d", superset, joinSize)
	}
	// With a single partition the superset is the full cross product.
	r1, r2 := testRelations(t)
	if superset != int64(r1.Len()*r2.Len()) {
		t.Errorf("DAS 1-partition superset = %d, want %d", superset, r1.Len()*r2.Len())
	}

	ledger = leakage.NewLedger()
	n = newTestNetwork(t, ledger)
	if _, err := n.Query(fixtureSQL, ProtocolCommutative, fastParams()); err != nil {
		t.Fatal(err)
	}
	if v, _ := ledger.Observed(leakage.PartyClient, "result-tuples"); v != joinSize {
		t.Errorf("commutative client received %d tuples, want exactly %d", v, joinSize)
	}

	ledger = leakage.NewLedger()
	n = newTestNetwork(t, ledger)
	if _, err := n.Query(fixtureSQL, ProtocolPM, fastParams()); err != nil {
		t.Fatal(err)
	}
	d1, _ := r1.ActiveDomain("id")
	d2, _ := r2.ActiveDomain("id")
	if v, _ := ledger.Observed(leakage.PartyClient, "encrypted-values-received"); v != int64(len(d1)+len(d2)) {
		t.Errorf("pm client received %d encrypted values, want n+m = %d", v, len(d1)+len(d2))
	}
}

// Table 2: applied cryptographic primitives per protocol.
func TestTable2Primitives(t *testing.T) {
	check := func(proto Protocol, params Params, wantPresent, wantAbsent []string) {
		t.Helper()
		ledger := leakage.NewLedger()
		n := newTestNetwork(t, ledger)
		if _, err := n.Query(fixtureSQL, proto, params); err != nil {
			t.Fatal(err)
		}
		prims := map[string]bool{}
		for _, p := range ledger.AllPrimitives() {
			prims[p] = true
		}
		for _, p := range wantPresent {
			if !prims[p] {
				t.Errorf("%v: primitive %q not applied (have %v)", proto, p, ledger.AllPrimitives())
			}
		}
		for _, p := range wantAbsent {
			if prims[p] {
				t.Errorf("%v: primitive %q applied unexpectedly", proto, p)
			}
		}
	}
	check(ProtocolDAS, fastParams(),
		[]string{"collision-free-hash", "hybrid-encryption"},
		[]string{"commutative-encryption", "homomorphic-encryption"})
	check(ProtocolCommutative, fastParams(),
		[]string{"ideal-hash", "commutative-encryption", "hybrid-encryption"},
		[]string{"collision-free-hash", "homomorphic-encryption"})
	check(ProtocolPM, fastParams(),
		[]string{"homomorphic-encryption", "homomorphic-evaluation", "random-masking"},
		[]string{"commutative-encryption", "ideal-hash", "collision-free-hash"})
}

// The sources learn the opposite active-domain size in the commutative and
// PM protocols (Section 6).
func TestSourceLeakage(t *testing.T) {
	r1, r2 := testRelations(t)
	d1, _ := r1.ActiveDomain("id")
	d2, _ := r2.ActiveDomain("id")
	for _, proto := range []Protocol{ProtocolCommutative, ProtocolPM} {
		ledger := leakage.NewLedger()
		n := newTestNetwork(t, ledger)
		if _, err := n.Query(fixtureSQL, proto, fastParams()); err != nil {
			t.Fatal(err)
		}
		if v, _ := ledger.Observed(leakage.PartySource("S1"), "|domactive(opposite)|"); v != int64(len(d2)) {
			t.Errorf("%v: S1 sees opposite domain %d, want %d", proto, v, len(d2))
		}
		if v, _ := ledger.Observed(leakage.PartySource("S2"), "|domactive(opposite)|"); v != int64(len(d1)) {
			t.Errorf("%v: S2 sees opposite domain %d, want %d", proto, v, len(d1))
		}
	}
}

// Section 6: the DAS client interacts twice with the mediator (query +
// server-query), the other protocols once.
func TestClientInteractionCounts(t *testing.T) {
	counts := map[Protocol]int64{}
	for _, proto := range []Protocol{ProtocolDAS, ProtocolCommutative, ProtocolPM} {
		ledger := leakage.NewLedger()
		n := newTestNetwork(t, ledger)
		if _, err := n.Query(fixtureSQL, proto, fastParams()); err != nil {
			t.Fatal(err)
		}
		v, _ := ledger.Observed(leakage.PartyClient, "interactions-with-mediator")
		counts[proto] = v
	}
	// DAS: request + server query sent, index tables + result received = 4.
	if counts[ProtocolDAS] != 4 {
		t.Errorf("DAS client messages = %d, want 4", counts[ProtocolDAS])
	}
	// Others: request sent, result received = 2.
	if counts[ProtocolCommutative] != 2 || counts[ProtocolPM] != 2 {
		t.Errorf("comm/pm client messages = %d/%d, want 2/2", counts[ProtocolCommutative], counts[ProtocolPM])
	}
}

func TestCommutativeIntersectionOperation(t *testing.T) {
	g, err := groups.GenerateSafePrime(256, cryptoRand())
	if err != nil {
		t.Fatal(err)
	}
	recv := []rel.Value{rel.Int(1), rel.Int(2), rel.Int(3), rel.String_("x")}
	send := []rel.Value{rel.Int(2), rel.Int(3), rel.Int(9), rel.String_("x")}
	got, err := CommutativeIntersection(g, "sess", recv, send, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("intersection = %v, want {2, 3, x}", got)
	}
}

// Mediator hierarchy (Section 8): a join result materialized as a view can
// feed a successive join at a delegate source.
func TestHierarchySuccessiveJoins(t *testing.T) {
	f := getFixture(t)
	n := newTestNetwork(t, nil)
	first, err := n.Query("SELECT * FROM R1 NATURAL JOIN R2", ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	view, err := MaterializeView(first, "V")
	if err != nil {
		t.Fatal(err)
	}
	s3Schema := rel.MustSchema("R3",
		rel.Column{Name: "city", Kind: rel.KindString},
		rel.Column{Name: "country", Kind: rel.KindString})
	r3 := rel.MustFromTuples(s3Schema,
		rel.Tuple{rel.String_("berlin"), rel.String_("de")},
		rel.Tuple{rel.String_("dortmund"), rel.String_("de")},
		rel.Tuple{rel.String_("paris"), rel.String_("fr")})
	delegate := &Source{Name: "Delegate", Catalog: algebra.MapCatalog{"V": view},
		Policies: map[string]*credential.Policy{"V": policyFor("V")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	s3 := &Source{Name: "S3", Catalog: algebra.MapCatalog{"R3": r3},
		Policies: map[string]*credential.Policy{"R3": policyFor("R3")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	n2, err := NewNetwork(f.client, &Mediator{}, delegate, s3)
	if err != nil {
		t.Fatal(err)
	}
	second, err := n2.Query("SELECT * FROM V NATURAL JOIN R3", ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.NaturalJoin(view, r3)
	if err != nil {
		t.Fatal(err)
	}
	if !second.EqualMultiset(want) {
		t.Errorf("hierarchy join mismatch:\n%v\nwant\n%v", second, want)
	}
}

func TestDecomposeErrors(t *testing.T) {
	schemas := map[string]rel.Schema{
		"R1": rel.MustSchema("R1", rel.Column{Name: "id", Kind: rel.KindInt}),
		"R2": rel.MustSchema("R2", rel.Column{Name: "id", Kind: rel.KindInt}),
		"R3": rel.MustSchema("R3", rel.Column{Name: "x", Kind: rel.KindString}),
	}
	bad := []string{
		"SELECT * FROM R1",                          // not a join
		"SELECT * FROM RX JOIN R2 ON RX.id = R2.id", // unknown left
		"SELECT * FROM R1 JOIN RX ON R1.id = RX.id", // unknown right
		"SELECT * FROM R1 JOIN R2 ON R1.zz = R2.id", // unknown column
		"SELECT * FROM R1 JOIN R3 ON R1.id = R3.x",  // kind mismatch
		"SELECT * FROM R1 NATURAL JOIN R3",          // no shared columns
		"this is not sql",                           // parse error
	}
	for _, sql := range bad {
		if _, err := decompose(sql, schemas); err == nil {
			t.Errorf("decompose(%q) succeeded", sql)
		}
	}
	good, err := decompose("SELECT * FROM R1 JOIN R2 ON R1.id = R2.id", schemas)
	if err != nil {
		t.Fatal(err)
	}
	if good.rel1 != "R1" || good.joinCols1[0] != "id" {
		t.Errorf("decompose: %+v", good)
	}
}

func TestMediatorUnknownRelationRoute(t *testing.T) {
	f := getFixture(t)
	n, err := NewNetwork(f.client, &Mediator{Schemas: map[string]rel.Schema{
		"A": rel.MustSchema("A", rel.Column{Name: "id", Kind: rel.KindInt}),
		"B": rel.MustSchema("B", rel.Column{Name: "id", Kind: rel.KindInt}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Query("SELECT * FROM A JOIN B ON A.id = B.id", ProtocolPlaintext, Params{}); err == nil {
		t.Error("query with unroutable relations succeeded")
	}
}

func TestDuplicateRelationRejected(t *testing.T) {
	f := getFixture(t)
	r1, _ := testRelations(t)
	s1 := &Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1}}
	s2 := &Source{Name: "S2", Catalog: algebra.MapCatalog{"R1": r1}}
	if _, err := NewNetwork(f.client, &Mediator{}, s1, s2); err == nil {
		t.Error("duplicate relation accepted")
	}
}

func TestCredentialSubsetSelection(t *testing.T) {
	f := getFixture(t)
	// Issue a second, irrelevant credential; hint the mediator that R1/R2
	// need "role" so only the role credential is forwarded.
	other, err := f.ca.Issue(&f.client.PrivateKey.PublicKey,
		[]credential.Property{{Name: "membership", Value: "gold"}}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	saved := f.client.Credentials
	defer func() { f.client.Credentials = saved }()
	f.client.Credentials = append(credential.Set{}, saved...)
	f.client.Credentials = append(f.client.Credentials, other)

	med := &Mediator{CredHints: map[string][]string{"R1": {"role"}, "R2": {"role"}}}
	r1, r2 := testRelations(t)
	s1 := &Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
		Policies: map[string]*credential.Policy{"R1": policyFor("R1")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	s2 := &Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
		Policies: map[string]*credential.Policy{"R2": policyFor("R2")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	n, err := NewNetwork(f.client, med, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Query(fixtureSQL, ProtocolPlaintext, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != expectedJoin(t).Len() {
		t.Errorf("join size %d", got.Len())
	}
	// Direct check of the selection helper.
	sel := med.selectCredentials("R1", f.client.Credentials)
	if len(sel) != 1 || !sel[0].HasProperty("role", "analyst") {
		t.Errorf("selectCredentials forwarded %d credentials", len(sel))
	}
	selAll := med.selectCredentials("unhinted", f.client.Credentials)
	if len(selAll) != 2 {
		t.Errorf("unhinted relation got %d credentials, want all 2", len(selAll))
	}
}

func TestProtocolStrings(t *testing.T) {
	names := map[Protocol]string{
		ProtocolPlaintext: "plaintext", ProtocolMobileCode: "mobile-code",
		ProtocolDAS: "database-as-a-service", ProtocolCommutative: "commutative-encryption",
		ProtocolPM: "private-matching", Protocol(99): "unknown",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("Protocol(%d).String() = %q", p, p.String())
		}
	}
	if PayloadInline.String() != "inline" || PayloadHybrid.String() != "hybrid" {
		t.Error("PayloadMode strings")
	}
}

func TestParamsDefaultsAndGroups(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Partitions == 0 || p.GroupBits == 0 || p.Buckets == 0 || p.PaillierBits == 0 {
		t.Errorf("defaults not applied: %+v", p)
	}
	if _, err := (Params{GroupBits: 1234}).commutativeGroup(); err == nil {
		t.Error("bad group size accepted")
	}
	for _, bits := range []int{1536, 2048, 3072} {
		g, err := (Params{GroupBits: bits}).commutativeGroup()
		if err != nil || g.Bits() != bits {
			t.Errorf("group %d: %v", bits, err)
		}
	}
}

// The mediated intersection (Agrawal's second operation) returns exactly
// the tuples common to two same-schema relations.
func TestMediatedIntersection(t *testing.T) {
	f := getFixture(t)
	schema1 := rel.MustSchema("A",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "tag", Kind: rel.KindString})
	schema2 := schema1.Rename("B")
	a := rel.MustFromTuples(schema1,
		rel.Tuple{rel.Int(1), rel.String_("x")},
		rel.Tuple{rel.Int(2), rel.String_("y")},
		rel.Tuple{rel.Int(2), rel.String_("y")}, // duplicate collapses
		rel.Tuple{rel.Int(3), rel.String_("z")})
	b := rel.MustFromTuples(schema2,
		rel.Tuple{rel.Int(2), rel.String_("y")},
		rel.Tuple{rel.Int(3), rel.String_("zz")}, // same id, different tag: no match
		rel.Tuple{rel.Int(4), rel.String_("w")})
	s1 := &Source{Name: "SA", Catalog: algebra.MapCatalog{"A": a},
		Policies: map[string]*credential.Policy{"A": policyFor("A")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	s2 := &Source{Name: "SB", Catalog: algebra.MapCatalog{"B": b},
		Policies: map[string]*credential.Policy{"B": policyFor("B")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	n, err := NewNetwork(f.client, &Mediator{}, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Intersect("A", "B", fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Tuple(0)[0].AsInt() != 2 {
		t.Errorf("intersection = \n%v\nwant the single tuple (2, y)", got)
	}
}

func TestSelectDistinctQuery(t *testing.T) {
	n := newTestNetwork(t, nil)
	// Projecting to R2.city over the join yields duplicates (dortmund/essen
	// each joined against two R1 rows); DISTINCT collapses them.
	plain, err := n.Query("SELECT city FROM R1 JOIN R2 ON R1.id = R2.id", ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	dist, err := n.Query("SELECT DISTINCT city FROM R1 JOIN R2 ON R1.id = R2.id", ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 5 || dist.Len() != 3 {
		t.Errorf("plain=%d distinct=%d, want 5/3\n%v\n%v", plain.Len(), dist.Len(), plain, dist)
	}
}

// The mediator and sources must handle concurrent sessions independently
// (each session gets fresh links and per-session state).
func TestConcurrentSessions(t *testing.T) {
	n := newTestNetwork(t, nil)
	want := expectedJoin(t)
	const parallel = 8
	errs := make(chan error, parallel)
	for i := 0; i < parallel; i++ {
		proto := []Protocol{ProtocolPlaintext, ProtocolDAS, ProtocolCommutative, ProtocolPM}[i%4]
		go func(p Protocol) {
			got, err := n.Query(fixtureSQL, p, fastParams())
			if err == nil && !got.EqualMultiset(want) {
				err = errTypeMismatch
			}
			errs <- err
		}(proto)
	}
	for i := 0; i < parallel; i++ {
		if err := <-errs; err != nil {
			t.Errorf("concurrent session: %v", err)
		}
	}
}

// The union extension: same-schema relations from two sources, mediator
// concatenates ciphertext rows only.
func TestMediatedUnion(t *testing.T) {
	f := getFixture(t)
	schema := rel.MustSchema("A", rel.Column{Name: "k", Kind: rel.KindInt})
	a := rel.MustFromTuples(schema, rel.Tuple{rel.Int(1)}, rel.Tuple{rel.Int(2)}, rel.Tuple{rel.Int(2)})
	b := rel.MustFromTuples(schema.Rename("B"), rel.Tuple{rel.Int(2)}, rel.Tuple{rel.Int(3)})
	s1 := &Source{Name: "SA", Catalog: algebra.MapCatalog{"A": a},
		Policies: map[string]*credential.Policy{"A": policyFor("A")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	s2 := &Source{Name: "SB", Catalog: algebra.MapCatalog{"B": b},
		Policies: map[string]*credential.Policy{"B": policyFor("B")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	ledger := leakage.NewLedger()
	f.client.Ledger = ledger
	n, err := NewNetwork(f.client, &Mediator{Ledger: ledger}, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Query("SELECT * FROM A UNION SELECT * FROM B", ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 { // {1,2,3}
		t.Errorf("UNION = %d tuples, want 3\n%v", got.Len(), got)
	}
	gotAll, err := n.Query("SELECT * FROM A UNION ALL SELECT * FROM B", ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if gotAll.Len() != 5 {
		t.Errorf("UNION ALL = %d tuples, want 5\n%v", gotAll.Len(), gotAll)
	}
	// Mediator saw only cardinalities.
	if v, _ := ledger.Observed(leakage.PartyMediator, "|R1|"); v != 3 {
		t.Errorf("mediator |R1| = %d", v)
	}
	// Incompatible schemas are rejected at the mediator.
	other := rel.MustFromTuples(rel.MustSchema("C", rel.Column{Name: "x", Kind: rel.KindString}))
	s3 := &Source{Name: "SC", Catalog: algebra.MapCatalog{"C": other},
		Policies: map[string]*credential.Policy{"C": policyFor("C")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	n2, err := NewNetwork(f.client, &Mediator{}, s1, s3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Query("SELECT * FROM A UNION SELECT * FROM C", ProtocolCommutative, fastParams()); err == nil {
		t.Error("incompatible UNION accepted")
	}
}
