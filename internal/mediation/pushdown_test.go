package mediation

import (
	"testing"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/leakage"
	rel "github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
)

func whereOf(t *testing.T, sql string) algebra.Expr {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return q.Where
}

func TestExtractPushdown(t *testing.T) {
	schema := rel.MustSchema("R1",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "name", Kind: rel.KindString})

	// Simple conjunction: both conjuncts for this schema.
	conds := extractPushdown(whereOf(t, "SELECT * FROM R1 WHERE id >= 3 AND name = 'x'"), schema)
	if len(conds) != 2 {
		t.Fatalf("conds = %v", conds)
	}
	if conds[0].Column != "id" || conds[0].Op != algebra.OpGe || conds[0].Bound.AsInt() != 3 {
		t.Errorf("cond[0] = %+v", conds[0])
	}

	// Literal-op-column order is flipped.
	conds = extractPushdown(whereOf(t, "SELECT * FROM R1 WHERE 3 < id"), schema)
	if len(conds) != 1 || conds[0].Op != algebra.OpGt {
		t.Errorf("flipped cond = %+v", conds)
	}

	// OR and NOT are not pushable.
	conds = extractPushdown(whereOf(t, "SELECT * FROM R1 WHERE id = 1 OR id = 2"), schema)
	if len(conds) != 0 {
		t.Errorf("OR pushed down: %v", conds)
	}
	conds = extractPushdown(whereOf(t, "SELECT * FROM R1 WHERE NOT id = 1"), schema)
	if len(conds) != 0 {
		t.Errorf("NOT pushed down: %v", conds)
	}

	// Conjunct nested under AND is found; foreign columns are skipped.
	conds = extractPushdown(whereOf(t, "SELECT * FROM R1 WHERE (id = 1 AND city = 'b') AND name <> 'z'"), schema)
	if len(conds) != 2 {
		t.Errorf("nested conds = %v", conds)
	}

	// Kind mismatch is skipped.
	conds = extractPushdown(whereOf(t, "SELECT * FROM R1 WHERE id = 'oops'"), schema)
	if len(conds) != 0 {
		t.Errorf("kind-mismatched cond pushed: %v", conds)
	}

	// Nil WHERE.
	if len(extractPushdown(nil, schema)) != 0 {
		t.Error("nil where produced conditions")
	}
}

func TestFlipCompare(t *testing.T) {
	pairs := map[algebra.CompareOp]algebra.CompareOp{
		algebra.OpLt: algebra.OpGt, algebra.OpGt: algebra.OpLt,
		algebra.OpLe: algebra.OpGe, algebra.OpGe: algebra.OpLe,
		algebra.OpEq: algebra.OpEq, algebra.OpNe: algebra.OpNe,
	}
	for in, want := range pairs {
		if got := flipCompare(in); got != want {
			t.Errorf("flip(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestFilterColumns(t *testing.T) {
	conds := []pushCondition{{Column: "a"}, {Column: "b"}, {Column: "a"}, {Column: "j"}}
	got := filterColumns(conds, []string{"j"})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("filterColumns = %v", got)
	}
}

// Pushdown must not change results, and must shrink what the mediator
// sends back (the superset) when predicates are selective.
func TestDASPushdownEndToEnd(t *testing.T) {
	sql := "SELECT * FROM R1 JOIN R2 ON R1.id = R2.id WHERE R1.name <> 'gus' AND city = 'dortmund'"

	baseParams := fastParams()
	baseParams.Partitions = 16 // fine partitions: filters become selective

	// Reference run without pushdown.
	plainLedger := leakage.NewLedger()
	n := newTestNetwork(t, plainLedger)
	want, err := n.Query(sql, ProtocolDAS, baseParams)
	if err != nil {
		t.Fatal(err)
	}
	baseSuperset, _ := plainLedger.Observed(leakage.PartyClient, "superset-size")

	// Pushdown run.
	pushLedger := leakage.NewLedger()
	n2 := newTestNetwork(t, pushLedger)
	params := baseParams
	params.Pushdown = true
	got, err := n2.Query(sql, ProtocolDAS, params)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualMultiset(want) {
		t.Errorf("pushdown changed results:\n%v\nwant\n%v", got, want)
	}
	pushSuperset, _ := pushLedger.Observed(leakage.PartyClient, "superset-size")
	if pushSuperset > baseSuperset {
		t.Errorf("pushdown grew the superset: %d > %d", pushSuperset, baseSuperset)
	}
	if pushSuperset == 0 && want.Len() > 0 {
		t.Error("pushdown dropped true results")
	}
	// The mediator observed the filters (extra leakage, by design).
	if _, ok := pushLedger.Observed(leakage.PartyMediator, "pushdown-filters"); !ok {
		t.Error("pushdown filters not recorded at mediator")
	}
	if _, ok := plainLedger.Observed(leakage.PartyMediator, "pushdown-filters"); ok {
		t.Error("non-pushdown run recorded filters")
	}
}

// With selective equality predicates and fine partitions, pushdown should
// strictly shrink the superset.
func TestDASPushdownShrinksSuperset(t *testing.T) {
	sql := "SELECT * FROM R1 JOIN R2 ON R1.id = R2.id WHERE city = 'dortmund'"
	params := fastParams()
	params.Partitions = 64 // one value per partition: exact filtering

	run := func(push bool) int64 {
		ledger := leakage.NewLedger()
		n := newTestNetwork(t, ledger)
		params := params
		params.Pushdown = push
		if _, err := n.Query(sql, ProtocolDAS, params); err != nil {
			t.Fatal(err)
		}
		v, _ := ledger.Observed(leakage.PartyClient, "superset-size")
		return v
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Errorf("superset with pushdown %d, without %d; want strict shrink", with, without)
	}
	// city='dortmund' matches 1 R2 row; join on id=3 has 2 R1 rows → 2 pairs.
	if with != 2 {
		t.Errorf("pushdown superset = %d, want 2", with)
	}
}

// Equality pushdown on the join attribute itself also works (join columns
// are indexed anyway).
func TestDASPushdownOnJoinColumn(t *testing.T) {
	sql := "SELECT * FROM R1 JOIN R2 ON R1.id = R2.id WHERE R1.id = 3"
	params := fastParams()
	params.Partitions = 64
	params.Pushdown = true
	ledger := leakage.NewLedger()
	n := newTestNetwork(t, ledger)
	got, err := n.Query(sql, ProtocolDAS, params)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 { // id 3: 2 left × 2 right
		t.Errorf("join size = %d, want 4\n%v", got.Len(), got)
	}
	superset, _ := ledger.Observed(leakage.PartyClient, "superset-size")
	if superset != 4 {
		t.Errorf("superset = %d, want 4 (exact with per-value partitions)", superset)
	}
}

func TestPushdownSoundnessAcrossStrategies(t *testing.T) {
	sql := "SELECT * FROM R1 JOIN R2 ON R1.id = R2.id WHERE R2.city >= 'd'"
	for _, strat := range []das.Strategy{das.EquiDepth, das.HashBuckets} {
		params := fastParams()
		params.Strategy = strat
		params.Pushdown = true
		n := newTestNetwork(t, nil)
		got, err := n.Query(sql, ProtocolDAS, params)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		n2 := newTestNetwork(t, nil)
		want, err := n2.Query(sql, ProtocolPlaintext, Params{})
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualMultiset(want) {
			t.Errorf("%v: pushdown result mismatch:\n%v\nwant\n%v", strat, got, want)
		}
	}
}
