package mediation

import (
	"crypto/rsa"
	"fmt"
	"sync"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// Source is a datasource party: it owns relations, enforces credential-
// based access control, and executes its side of the delivery-phase
// protocols.
type Source struct {
	// Name identifies the source (S1, S2, ... in the paper).
	Name string
	// Catalog holds the source's relations.
	Catalog algebra.MapCatalog
	// Policies maps relation names to access policies. A relation without
	// a policy is not served (deny by default).
	Policies map[string]*credential.Policy
	// TrustedCAs are the certification-authority keys this source accepts.
	TrustedCAs []*rsa.PublicKey
	// Ledger optionally records leakage and primitive usage.
	Ledger *leakage.Ledger
	// Telemetry optionally records phase spans and traffic metrics for
	// this party.
	Telemetry *telemetry.Registry
	// Now is an injectable clock for credential validation (defaults to
	// time.Now).
	Now func() time.Time

	// attempts tracks the highest attempt number served per query ID, so
	// a retried query's abandoned earlier attempt — still limping along
	// on a half-dead link, or replayed by a duplicating wire — is denied
	// instead of racing the live one. Bounded FIFO (attemptCap entries).
	attemptMu    sync.Mutex
	attempts     map[string]int
	attemptOrder []string
}

// attemptCap bounds the stale-attempt registry; old query IDs are
// evicted FIFO. At one entry per in-flight-or-recent logical query this
// comfortably covers the retry window without growing unbounded over a
// long-lived process.
const attemptCap = 1024

// admitAttempt registers one (queryID, attempt) arrival and reports
// whether it is current. An empty queryID (client not using the retry
// orchestrator) is always admitted; a repeat of the same attempt is
// admitted (the registry tracks abandonment, not duplication); an
// attempt lower than one already seen is stale — the client has moved
// on — and is denied.
func (s *Source) admitAttempt(queryID string, attempt int) bool {
	if queryID == "" {
		return true
	}
	s.attemptMu.Lock()
	defer s.attemptMu.Unlock()
	last, seen := s.attempts[queryID]
	if seen && attempt < last {
		if s.Telemetry.Enabled() {
			s.Telemetry.Counter("stale_attempts_discarded").Add(1)
		}
		return false
	}
	if !seen {
		if s.attempts == nil {
			s.attempts = make(map[string]int)
		}
		if len(s.attemptOrder) >= attemptCap {
			evict := s.attemptOrder[0]
			s.attemptOrder = s.attemptOrder[1:]
			delete(s.attempts, evict)
		}
		s.attemptOrder = append(s.attemptOrder, queryID)
	}
	if attempt > last {
		s.attempts[queryID] = attempt
	}
	return true
}

func (s *Source) party() string { return leakage.PartySource(s.Name) }

func (s *Source) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// Serve handles one mediation session over the link to the mediator:
// authorization (Listing 1, step 4) followed by the protocol-specific
// delivery phase. It returns nil when the session ends normally, including
// the access-denied case (which is a protocol outcome, not a server
// failure).
func (s *Source) Serve(conn transport.Conn) error {
	var pq PartialQuery
	if err := recvInto(conn, "mediator", msgPartialQuery, &pq); err != nil {
		return fmt.Errorf("mediation: source %s: %w", s.Name, err)
	}
	// Arm the mediator link with the query's per-operation deadline so a
	// dead mediator cannot park this session forever.
	if pq.Params.Timeout > 0 {
		conn.SetTimeout(pq.Params.Timeout)
	}
	if !s.admitAttempt(pq.Params.QueryID, pq.Params.Attempt) {
		// A later attempt of this query already reached us: this one was
		// abandoned by the client. Denying (a protocol outcome, like an
		// access denial) discards the stale partial state cleanly.
		reason := fmt.Sprintf("stale attempt %d of query %s", pq.Params.Attempt, pq.Params.QueryID)
		return sendMsg(conn, "mediator", msgPartialAck, PartialAck{Granted: false, Reason: reason})
	}
	rel, clientKey, denyReason, err := s.executePartial(&pq)
	if err != nil {
		return s.abort(conn, err)
	}
	if denyReason != "" {
		return sendMsg(conn, "mediator", msgPartialAck, PartialAck{Granted: false, Reason: denyReason})
	}
	if err := sendMsg(conn, "mediator", msgPartialAck, PartialAck{Granted: true, Schema: rel.Schema()}); err != nil {
		return err
	}
	root := s.Telemetry.Tracer(s.party()).Start("session")
	root.Annotate("protocol", pq.Protocol.String())
	root.Annotate("relation", pq.Relation)
	annotateSession(root, conn)
	defer root.End()
	defer trafficGauges(s.Telemetry, s.party(), "mediator", conn.Stats())
	watch := newStopwatch(s.Ledger, s.party())
	watch.attach(root)
	if pq.Union {
		if err := s.serveMobileCode(conn, &pq, rel, clientKey, watch); err != nil {
			return s.abort(conn, err)
		}
		return nil
	}
	if pq.Aggregate != nil {
		if err := s.serveAggregate(conn, &pq, rel, watch); err != nil {
			return s.abort(conn, err)
		}
		return nil
	}
	switch pq.Protocol {
	case ProtocolPlaintext:
		err = s.servePlaintext(conn, rel)
	case ProtocolMobileCode:
		err = s.serveMobileCode(conn, &pq, rel, clientKey, watch)
	case ProtocolDAS:
		err = s.serveDAS(conn, &pq, rel, clientKey, watch)
	case ProtocolCommutative:
		err = s.serveCommutative(conn, &pq, rel, clientKey, watch)
	case ProtocolPM:
		err = s.servePM(conn, &pq, rel, watch)
	default:
		err = fmt.Errorf("unknown protocol %d", pq.Protocol)
	}
	if err != nil {
		return s.abort(conn, err)
	}
	return nil
}

// abort reports err to the mediator (attributed to this source unless the
// chain already carries an origin) and returns the wrapped session error.
func (s *Source) abort(conn transport.Conn, err error) error {
	err = attribute(s.party(), "", err)
	countTimeout(s.Telemetry, s.party(), err)
	sendError(conn, s.party(), err)
	return fmt.Errorf("mediation: source %s: %w", s.Name, err)
}

// executePartial runs Listing 1 step 4: credential check, then execution
// of q_i against the catalog, with the policy's row filter applied. The
// returned denyReason is non-empty when access is denied (not an error).
func (s *Source) executePartial(pq *PartialQuery) (*relation.Relation, *rsa.PublicKey, string, error) {
	pol, ok := s.Policies[pq.Relation]
	if !ok {
		return nil, nil, fmt.Sprintf("source %s serves no relation %q", s.Name, pq.Relation), nil
	}
	decision := pol.Check(pq.Credentials, s.TrustedCAs, s.now())
	if !decision.Granted {
		return nil, nil, decision.Reason, nil
	}
	q, err := sqlparse.Parse(pq.Query)
	if err != nil {
		return nil, nil, "", fmt.Errorf("bad partial query: %w", err)
	}
	if q.Right != "" || q.Left != pq.Relation {
		return nil, nil, "", fmt.Errorf("partial query %q does not match relation %q", pq.Query, pq.Relation)
	}
	out, err := q.Tree().Eval(s.Catalog)
	if err != nil {
		return nil, nil, "", err
	}
	out, err = decision.ApplyFilter(out)
	if err != nil {
		return nil, nil, "", err
	}
	// Validate the join attributes exist before entering the delivery
	// phase (aggregation partial queries have none).
	for _, c := range pq.JoinCols {
		if out.Schema().IndexOf(c) < 0 {
			return nil, nil, "", fmt.Errorf("relation %s has no join column %q", pq.Relation, c)
		}
	}
	if len(pq.JoinCols) == 0 && pq.Aggregate == nil && !pq.Union {
		return nil, nil, "", fmt.Errorf("empty join attribute set")
	}
	return out, decision.ClientKey, "", nil
}

// servePlaintext ships the partial result in the clear (trusted-mediator
// baseline).
func (s *Source) servePlaintext(conn transport.Conn, rel *relation.Relation) error {
	return sendMsg(conn, "mediator", msgPTPartial, toWire(rel))
}
