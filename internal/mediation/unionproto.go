package mediation

import (
	"fmt"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
	"github.com/secmediation/secmediation/internal/transport"
)

// The union extension: "SELECT * FROM A UNION [ALL] SELECT * FROM B"
// computes the set (or bag) union of two same-schema relations held by
// different sources. Each source ships its partial result hybrid-encrypted
// row-wise (the mobile-code wire format); the untrusted mediator merely
// concatenates the two encrypted row lists — it learns the cardinalities
// and nothing else — and the client decrypts, unions, and deduplicates
// (plain UNION semantics). Together with join, selection, projection,
// intersection and aggregation this completes the mediated relational
// operation set the paper's Section 8 asks for.

const msgUnionResult = "union.result"

// unionResult forwards both encrypted partial results.
type unionResult struct {
	P1, P2  mcPartial
	Session string
}

// handleUnion is the mediator's side of the union extension.
// seclint:entry mediator
func (m *Mediator) handleUnion(client transport.Conn, req *Request, q *sqlparse.Query) error {
	s1, ok := m.Schemas[q.Left]
	if !ok {
		return fmt.Errorf("mediation: unknown relation %q (not in global schema)", q.Left)
	}
	s2, ok := m.Schemas[q.UnionWith]
	if !ok {
		return fmt.Errorf("mediation: unknown relation %q (not in global schema)", q.UnionWith)
	}
	if !s1.Equal(s2) {
		return fmt.Errorf("mediation: UNION of incompatible schemas %s and %s", s1, s2)
	}
	session, err := newSessionID()
	if err != nil {
		return err
	}
	open := func(rel string) (transport.Conn, error) {
		dial, ok := m.Routes[rel]
		if !ok {
			return nil, fmt.Errorf("mediation: no source for relation %q", rel)
		}
		return dial()
	}
	conn1, err := open(q.Left)
	if err != nil {
		return &ProtocolError{Party: "source:" + q.Left, Err: fmt.Errorf("dialing: %w", err)}
	}
	defer conn1.Close()
	conn2, err := open(q.UnionWith)
	if err != nil {
		return &ProtocolError{Party: "source:" + q.UnionWith, Err: fmt.Errorf("dialing: %w", err)}
	}
	defer conn2.Close()
	if req.Params.Timeout > 0 {
		conn1.SetTimeout(req.Params.Timeout)
		conn2.SetTimeout(req.Params.Timeout)
	}

	ask := func(conn transport.Conn, rel string) (mcPartial, error) {
		peer := "source:" + rel
		pq := PartialQuery{
			SessionID: session, Query: "SELECT * FROM " + rel, Relation: rel,
			Credentials: m.selectCredentials(rel, req.Credentials),
			Protocol:    ProtocolMobileCode, Params: req.Params, Union: true,
		}
		if err := sendMsg(conn, peer, msgPartialQuery, pq); err != nil {
			return mcPartial{}, err
		}
		var ack PartialAck
		if err := recvInto(conn, peer, msgPartialAck, &ack); err != nil {
			return mcPartial{}, err
		}
		if !ack.Granted {
			return mcPartial{}, fmt.Errorf("mediation: access to %s denied: %s", rel, ack.Reason)
		}
		var part sessioned[mcPartial]
		if err := recvInto(conn, peer, msgMCPartial, &part); err != nil {
			return mcPartial{}, err
		}
		return part.Body, nil
	}
	p1, err := ask(conn1, q.Left)
	if err != nil {
		abortLinks(err, conn2)
		return err
	}
	p2, err := ask(conn2, q.UnionWith)
	if err != nil {
		return err
	}
	// The union mediator learns only the two cardinalities.
	m.Ledger.Observe(leakage.PartyMediator, "|R1|", int64(len(p1.Rows)))
	m.Ledger.Observe(leakage.PartyMediator, "|R2|", int64(len(p2.Rows)))
	return sendMsg(client, "client", msgUnionResult, unionResult{P1: p1, P2: p2, Session: session})
}

// runUnion is the client's side: decrypt both partial results and apply
// UNION (dedup) or UNION ALL (bag) semantics.
func (c *Client) runUnion(conn transport.Conn, q *sqlparse.Query) (*relation.Relation, error) {
	var res unionResult
	if err := recvInto(conn, "mediator", msgUnionResult, &res); err != nil {
		return nil, err
	}
	r1, err := c.openMCPartial(res.P1, res.Session)
	if err != nil {
		return nil, err
	}
	r2, err := c.openMCPartial(res.P2, res.Session)
	if err != nil {
		return nil, err
	}
	// Align schemas (relation names differ; column lists must match).
	out, err := algebra.Union(r1, r2.Rename(r1.Schema().Relation))
	if err != nil {
		return nil, err
	}
	if !q.UnionAll {
		out = algebra.Distinct(out)
	}
	c.Ledger.Observe(leakage.PartyClient, "result-tuples", int64(out.Len()))
	return out, nil
}
