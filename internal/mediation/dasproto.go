package mediation

import (
	"crypto/rsa"
	"fmt"

	"github.com/secmediation/secmediation/internal/crypto/hybrid"
	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// dasPartial is a source's Listing 2 step 3 message: the encrypted
// relation R_i^S and the hybrid-encrypted index tables (sealed under the
// same session key, as the paper recommends).
type dasPartial struct {
	Session string
	Schema  relation.Schema
	// Columns names the indexed attributes, parallel to the index tables:
	// the join columns first, then any pushdown filter columns.
	Columns []string
	EncRel  das.EncryptedRelation
	// EncIndexTables is the sealed gob of []*das.IndexTable.
	EncIndexTables []byte
}

// dasIndexTables is the mediator's step 4 message to the client.
type dasIndexTables struct {
	Session              string
	Schema1, Schema2     relation.Schema
	JoinCols1, JoinCols2 []string
	// Cols1/Cols2 name all indexed attributes per side (join columns
	// first, then pushdown filter columns).
	Cols1, Cols2       []string
	Wrapped1, Wrapped2 []byte
	Enc1, Enc2         []byte
}

// dasServerQuery is the client's step 5 message: q_S.
type dasServerQuery struct {
	Query das.ServerQuery
}

// dasResult is the mediator's step 6 message: R_C.
type dasResult struct {
	Result das.ServerResult
}

// serveDAS implements Listing 2 steps 1–3 at a datasource: partition the
// active domains of the join attributes, build index tables, encrypt the
// partial result DAS-style and the index tables with the client's keys,
// and send everything to the mediator in one interaction.
func (s *Source) serveDAS(conn transport.Conn, pq *PartialQuery, rel *relation.Relation, clientKey *rsa.PublicKey, watch *stopwatch) error {
	indexedCols := append(append([]string(nil), pq.JoinCols...), pq.FilterCols...)
	var out dasPartial
	err := watch.phase(telemetry.PhaseSourceEncrypt, func() error {
		its := make([]*das.IndexTable, len(indexedCols))
		for i, col := range indexedCols {
			dom, err := rel.ActiveDomain(col)
			if err != nil {
				return err
			}
			if len(dom) == 0 {
				return fmt.Errorf("das: relation %s is empty; no active domain for %s", pq.Relation, col)
			}
			strategy := pq.Params.Strategy
			if strategy == das.EquiWidth && dom[0].Kind() != relation.KindInt {
				strategy = das.EquiDepth // equi-width is INT-only; degrade gracefully
			}
			parts, err := das.PartitionDomain(dom, pq.Params.Partitions, strategy)
			if err != nil {
				return err
			}
			s.Ledger.UsePrimitive(s.party(), "collision-free-hash", int64(len(parts)))
			it, err := das.BuildIndexTable(col, parts)
			if err != nil {
				return err
			}
			its[i] = it
		}
		encRel, sess, err := das.EncryptRelation(rel, indexedCols, its, clientKey, pq.Params.Workers)
		if err != nil {
			return err
		}
		s.Ledger.UsePrimitive(s.party(), "hybrid-encryption", int64(rel.Len()+1))
		itBlob, err := transport.Encode(its)
		if err != nil {
			return err
		}
		sealed, err := sess.Seal(itBlob, []byte("das:itable:"+pq.SessionID+":"+pq.Relation))
		if err != nil {
			return err
		}
		out = dasPartial{Session: pq.SessionID, Schema: rel.Schema(), Columns: indexedCols, EncRel: *encRel, EncIndexTables: sealed.Marshal()}
		return nil
	})
	if err != nil {
		return err
	}
	return sendMsg(conn, "mediator", msgDASPartial, out)
}

// mediateDAS implements the mediator's role: forward the encrypted index
// tables to the client (step 4), receive the server query (step 5),
// evaluate it over the encrypted partial results and return R_C (step 6).
// seclint:entry mediator
func (m *Mediator) mediateDAS(client, s1, s2 transport.Conn, d *decomposition, watch *stopwatch) error {
	var p1, p2 dasPartial
	if err := recvInto(s1, "source:"+d.rel1, msgDASPartial, &p1); err != nil {
		return err
	}
	if err := recvInto(s2, "source:"+d.rel2, msgDASPartial, &p2); err != nil {
		return err
	}
	// Table 1: the mediator learns the partial result cardinalities.
	m.Ledger.Observe(leakage.PartyMediator, "|R1|", int64(p1.EncRel.Len()))
	m.Ledger.Observe(leakage.PartyMediator, "|R2|", int64(p2.EncRel.Len()))

	if err := sendMsg(client, "client", msgDASIndexTables, dasIndexTables{
		Session: p1.Session,
		Schema1: p1.Schema, Schema2: p2.Schema,
		JoinCols1: d.joinCols1, JoinCols2: d.joinCols2,
		Cols1: p1.Columns, Cols2: p2.Columns,
		Wrapped1: p1.EncRel.WrappedKey, Wrapped2: p2.EncRel.WrappedKey,
		Enc1: p1.EncIndexTables, Enc2: p2.EncIndexTables,
	}); err != nil {
		return err
	}
	var sq dasServerQuery
	if err := recvInto(client, "client", msgDASServerQuery, &sq); err != nil {
		return err
	}
	if n := len(sq.Query.Filters1) + len(sq.Query.Filters2); n > 0 {
		// Pushdown leaks predicate-satisfaction patterns to the mediator.
		m.Ledger.Observe(leakage.PartyMediator, "pushdown-filters", int64(n))
	}
	var res *das.ServerResult
	err := watch.phase(telemetry.PhaseMatch, func() error {
		var err error
		res, err = das.ExecuteServerQuery(&p1.EncRel, &p2.EncRel, sq.Query)
		return err
	})
	if err != nil {
		return err
	}
	// Table 1: the mediator learns |R_C|, an upper bound of the global
	// result size.
	m.Ledger.Observe(leakage.PartyMediator, "|RC|", int64(len(res.Pairs)))
	return sendMsg(client, "client", msgDASResult, dasResult{Result: *res})
}

// runDAS implements the client side (Listing 2 steps 5 and 7): decrypt the
// index tables, act as the DAS query translator (build q_S and q_C), send
// q_S, then decrypt R_C and apply q_C.
func (c *Client) runDAS(conn transport.Conn, q *sqlparse.Query, params Params, watch *stopwatch) (*relation.Relation, relation.Schema, []string, error) {
	var its dasIndexTables
	if err := recvInto(conn, "mediator", msgDASIndexTables, &its); err != nil {
		return nil, relation.Schema{}, nil, err
	}
	var recv1, recv2 *hybrid.Receiver
	var tables1, tables2 []*das.IndexTable
	var sq das.ServerQuery
	err := watch.phase(telemetry.PhaseTranslate, func() error {
		var err error
		recv1, err = hybrid.NewReceiver(c.PrivateKey, its.Wrapped1)
		if err != nil {
			return err
		}
		recv2, err = hybrid.NewReceiver(c.PrivateKey, its.Wrapped2)
		if err != nil {
			return err
		}
		tables1, err = openIndexTables(recv1, its.Enc1, its.Session, its.Schema1.Relation)
		if err != nil {
			return err
		}
		tables2, err = openIndexTables(recv2, its.Enc2, its.Session, its.Schema2.Relation)
		if err != nil {
			return err
		}
		// Table 1: the client sees both index tables (partition ranges).
		c.Ledger.Observe(leakage.PartyClient, "index-table-partitions",
			int64(len(tables1[0].Entries)+len(tables2[0].Entries)))
		// The join pairs are built from the join-column tables only; the
		// remaining tables cover pushdown filter columns.
		nJoin := len(its.JoinCols1)
		if nJoin > len(tables1) || nJoin > len(tables2) {
			return fmt.Errorf("mediation: fewer index tables than join columns")
		}
		sq, err = das.BuildServerQuery(tables1[:nJoin], tables2[:nJoin])
		if err != nil {
			return err
		}
		if params.Pushdown {
			// Selection pushdown (extension): translate pushable WHERE
			// conjuncts into allowed-index filters over every indexed
			// column.
			sq.Filters1 = buildIndexFilters(extractPushdown(q.Where, its.Schema1), its.Cols1, tables1)
			sq.Filters2 = buildIndexFilters(extractPushdown(q.Where, its.Schema2), its.Cols2, tables2)
		}
		return nil
	})
	if err != nil {
		return nil, relation.Schema{}, nil, err
	}
	if err := sendMsg(conn, "mediator", msgDASServerQuery, dasServerQuery{Query: sq}); err != nil {
		return nil, relation.Schema{}, nil, err
	}
	var res dasResult
	if err := recvInto(conn, "mediator", msgDASResult, &res); err != nil {
		return nil, relation.Schema{}, nil, err
	}
	var joined *relation.Relation
	err = watch.phase(telemetry.PhasePostFilter, func() error {
		var discarded int
		var err error
		joined, discarded, err = das.DecryptServerResult(&res.Result, recv1, recv2,
			its.Schema1, its.Schema2, its.JoinCols1, its.JoinCols2, params.Workers)
		if err != nil {
			return err
		}
		c.Ledger.UsePrimitive(leakage.PartyClient, "hybrid-decryption", int64(2*len(res.Result.Pairs)))
		// Table 1: the client receives a superset of the global result.
		c.Ledger.Observe(leakage.PartyClient, "superset-size", int64(len(res.Result.Pairs)))
		c.Ledger.Observe(leakage.PartyClient, "false-positives-discarded", int64(discarded))
		return nil
	})
	if err != nil {
		return nil, relation.Schema{}, nil, err
	}
	return joined, its.Schema2, its.JoinCols2, nil
}

// buildIndexFilters maps pushable conditions onto the indexed columns.
// Conditions on un-indexed columns stay client-side (postProcess applies
// the full WHERE regardless).
func buildIndexFilters(conds []pushCondition, cols []string, tables []*das.IndexTable) []das.IndexFilter {
	var out []das.IndexFilter
	for _, cond := range conds {
		for i, col := range cols {
			if col == cond.Column && i < len(tables) {
				out = append(out, das.IndexFilter{Attr: i, Allowed: tables[i].AllowedIndexes(cond.Op, cond.Bound)})
				break
			}
		}
	}
	return out
}

func openIndexTables(recv *hybrid.Receiver, blob []byte, session, rel string) ([]*das.IndexTable, error) {
	ct, err := hybrid.UnmarshalCiphertext(blob)
	if err != nil {
		return nil, err
	}
	pt, err := recv.Open(ct, []byte("das:itable:"+session+":"+rel))
	if err != nil {
		return nil, err
	}
	var tables []*das.IndexTable
	if err := transport.Decode(pt, &tables); err != nil {
		return nil, err
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("mediation: empty index table list from %s", rel)
	}
	return tables, nil
}
