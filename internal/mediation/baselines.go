package mediation

import (
	"crypto/rsa"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/crypto/hybrid"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// ptResult is the plaintext baseline's final message: the mediator joined
// the plaintext partial results itself.
type ptResult struct {
	Result    wireRelation
	Schema2   relation.Schema
	JoinCols2 []string
}

// mediatePlaintext is the trusted-mediator baseline: partial results
// arrive in the clear and the mediator computes the join (Figure 1
// without any confidentiality mechanism). Used as the correctness oracle
// and the cost floor in the Section 6 experiments.
// seclint:entry mediator
func (m *Mediator) mediatePlaintext(client, s1, s2 transport.Conn, d *decomposition, watch *stopwatch) error {
	var w1, w2 wireRelation
	if err := recvInto(s1, "source:"+d.rel1, msgPTPartial, &w1); err != nil {
		return err
	}
	if err := recvInto(s2, "source:"+d.rel2, msgPTPartial, &w2); err != nil {
		return err
	}
	var joined *relation.Relation
	err := watch.phase(telemetry.PhaseMatch, func() error {
		r1, err := fromWire(w1)
		if err != nil {
			return err
		}
		r2, err := fromWire(w2)
		if err != nil {
			return err
		}
		// The plaintext mediator sees everything; record the obvious.
		m.Ledger.Observe(leakage.PartyMediator, "plaintext-tuples-seen", int64(r1.Len()+r2.Len()))
		joined, err = algebra.EquiJoin(r1, r2, d.joinCols1, d.joinCols2)
		return err
	})
	if err != nil {
		return err
	}
	return sendMsg(client, "client", msgPTResult, ptResult{Result: toWire(joined), Schema2: d.schema2, JoinCols2: d.joinCols2})
}

func (c *Client) runPlaintext(conn transport.Conn) (*relation.Relation, relation.Schema, []string, error) {
	var res ptResult
	if err := recvInto(conn, "mediator", msgPTResult, &res); err != nil {
		return nil, relation.Schema{}, nil, err
	}
	out, err := fromWire(res.Result)
	if err != nil {
		return nil, relation.Schema{}, nil, err
	}
	return out, res.Schema2, res.JoinCols2, nil
}

// mcPartial is one hybrid-encrypted partial result: the prior MMM solution
// shipped these to the client together with mobile code computing the join
// after decryption. Here the "mobile code" is the client's local join.
type mcPartial struct {
	Schema     relation.Schema
	WrappedKey []byte
	Rows       [][]byte
}

// mcResult forwards both encrypted partial results to the client.
type mcResult struct {
	P1, P2               mcPartial
	JoinCols1, JoinCols2 []string
}

func (s *Source) serveMobileCode(conn transport.Conn, pq *PartialQuery, rel *relation.Relation, clientKey *rsa.PublicKey, watch *stopwatch) error {
	var out mcPartial
	err := watch.phase(telemetry.PhaseSourceEncrypt, func() error {
		sess, err := hybrid.NewSession(clientKey)
		if err != nil {
			return err
		}
		s.Ledger.UsePrimitive(s.party(), "hybrid-encryption", int64(rel.Len()))
		out = mcPartial{Schema: rel.Schema(), WrappedKey: sess.WrappedKey()}
		aad := []byte("mc:" + pq.SessionID + ":" + rel.Schema().Relation)
		for _, t := range rel.Tuples() {
			ct, err := sess.Seal(t.Encode(nil), aad)
			if err != nil {
				return err
			}
			out.Rows = append(out.Rows, ct.Marshal())
		}
		return nil
	})
	if err != nil {
		return err
	}
	return sendMsg(conn, "mediator", msgMCPartial, sessioned[mcPartial]{Session: pq.SessionID, Body: out})
}

// seclint:entry mediator
func (m *Mediator) mediateMobileCode(client, s1, s2 transport.Conn, d *decomposition) error {
	var p1, p2 sessioned[mcPartial]
	if err := recvInto(s1, "source:"+d.rel1, msgMCPartial, &p1); err != nil {
		return err
	}
	if err := recvInto(s2, "source:"+d.rel2, msgMCPartial, &p2); err != nil {
		return err
	}
	// The mobile-code mediator sees the encrypted partial results whole:
	// it learns both cardinalities (and forwards everything).
	m.Ledger.Observe(leakage.PartyMediator, "|R1|", int64(len(p1.Body.Rows)))
	m.Ledger.Observe(leakage.PartyMediator, "|R2|", int64(len(p2.Body.Rows)))
	return sendMsg(client, "client", msgMCResult, sessioned[mcResult]{
		Session: p1.Session,
		Body:    mcResult{P1: p1.Body, P2: p2.Body, JoinCols1: d.joinCols1, JoinCols2: d.joinCols2},
	})
}

func (c *Client) runMobileCode(conn transport.Conn, watch *stopwatch) (*relation.Relation, relation.Schema, []string, error) {
	var res sessioned[mcResult]
	if err := recvInto(conn, "mediator", msgMCResult, &res); err != nil {
		return nil, relation.Schema{}, nil, err
	}
	var joined *relation.Relation
	err := watch.phase(telemetry.PhasePostFilter, func() error {
		r1, err := c.openMCPartial(res.Body.P1, res.Session)
		if err != nil {
			return err
		}
		r2, err := c.openMCPartial(res.Body.P2, res.Session)
		if err != nil {
			return err
		}
		c.Ledger.Observe(leakage.PartyClient, "tuples-received", int64(r1.Len()+r2.Len()))
		joined, err = algebra.EquiJoin(r1, r2, res.Body.JoinCols1, res.Body.JoinCols2)
		return err
	})
	if err != nil {
		return nil, relation.Schema{}, nil, err
	}
	return joined, res.Body.P2.Schema, res.Body.JoinCols2, nil
}

func (c *Client) openMCPartial(p mcPartial, session string) (*relation.Relation, error) {
	recv, err := hybrid.NewReceiver(c.PrivateKey, p.WrappedKey)
	if err != nil {
		return nil, err
	}
	c.Ledger.UsePrimitive(leakage.PartyClient, "hybrid-decryption", int64(len(p.Rows)))
	out := relation.New(p.Schema)
	aad := []byte("mc:" + session + ":" + p.Schema.Relation)
	for _, blob := range p.Rows {
		ct, err := hybrid.UnmarshalCiphertext(blob)
		if err != nil {
			return nil, err
		}
		pt, err := recv.Open(ct, aad)
		if err != nil {
			return nil, err
		}
		t, err := relation.DecodeTuple(p.Schema, pt)
		if err != nil {
			return nil, err
		}
		if err := out.Append(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sessioned wraps a payload with its session id so AAD strings can be
// recomputed by the client.
type sessioned[T any] struct {
	Session string
	Body    T
}
