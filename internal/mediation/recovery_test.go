package mediation

import (
	"context"
	"crypto/rsa"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	rel "github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/resilience"
	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/testutil"
	"github.com/secmediation/secmediation/internal/transport"
)

// TestChaosSourceRestartRecovery kills a datasource mid-run in the full
// multiplexed deployment and asserts the recovery contract: the retry
// orchestrator converges the interrupted query once the source is back
// (walking the mediator's per-peer breaker through its open window),
// and fresh sibling sessions on the SAME client↔mediator mux link are
// unaffected by the episode. Leak-checked.
func TestChaosSourceRestartRecovery(t *testing.T) {
	const openTimeout = 100 * time.Millisecond
	snap := testutil.Snapshot()
	t.Cleanup(func() { testutil.CheckGoroutines(t, snap) })
	f := getFixture(t)
	want := expectedJoin(t)
	r1, r2 := testRelations(t)
	reg := telemetry.NewRegistry()

	// S1 is restartable: one Source instance persists (its stale-attempt
	// registry must survive a crash of the serving layer), each restart
	// builds a fresh session.Server on the same fixed address.
	src1 := &Source{Name: "S1", Catalog: algebra.MapCatalog{"R1": r1},
		Policies: map[string]*credential.Policy{"R1": policyFor("R1")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	var s1mu sync.Mutex
	var s1srv *session.Server
	var s1l *transport.Listener
	var s1done chan error
	var addr1 string
	startS1 := func() error {
		s1mu.Lock()
		listen := addr1
		s1mu.Unlock()
		if listen == "" {
			listen = "127.0.0.1:0"
		}
		var l *transport.Listener
		var err error
		// The fixed port was just freed by the kill; absorb a racing rebind.
		for i := 0; i < 50; i++ {
			if l, err = transport.Listen(listen); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("restarting S1: %w", err)
		}
		srv := &session.Server{Handler: func(conn transport.Conn) error {
			conn.SetTimeout(30 * time.Second)
			return src1.Serve(conn)
		}}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		s1mu.Lock()
		s1srv, s1l, s1done, addr1 = srv, l, done, l.Addr()
		s1mu.Unlock()
		return nil
	}
	stopS1 := func() {
		s1mu.Lock()
		srv, l, done := s1srv, s1l, s1done
		s1srv, s1l, s1done = nil, nil, nil
		s1mu.Unlock()
		if srv == nil {
			return
		}
		l.Close()
		<-done
		// An already-expired context forces the live links closed now: a
		// crash, not a drain.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = srv.Shutdown(ctx)
	}
	if err := startS1(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopS1)
	route1 := func() string {
		s1mu.Lock()
		defer s1mu.Unlock()
		return addr1
	}

	addr2 := serveSession(t, &session.Server{Handler: func(conn transport.Conn) error {
		conn.SetTimeout(30 * time.Second)
		src2 := &Source{Name: "S2", Catalog: algebra.MapCatalog{"R2": r2},
			Policies: map[string]*credential.Policy{"R2": policyFor("R2")}, TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
		return src2.Serve(conn)
	}})

	// The mediator's source pool sits behind per-peer breakers: S1's
	// death must not cost every retry a fresh dial timeout, and S2's
	// breaker must never trip.
	pool := &session.Pool{Dial: transport.Dial, Telemetry: reg,
		Governor: resilience.NewBreakerSet(resilience.BreakerConfig{
			Window: 8, FailureRate: 0.5, MinSamples: 2, OpenTimeout: openTimeout, Telemetry: reg,
		})}
	t.Cleanup(func() {
		if err := pool.Close(); err != nil {
			t.Logf("pool close: %v", err)
		}
	})
	med := &Mediator{
		Schemas:   map[string]rel.Schema{"R1": r1.Schema(), "R2": r2.Schema()},
		Telemetry: reg,
		Routes: map[string]Dialer{
			"R1": func() (transport.Conn, error) { return pool.Open(route1()) },
			"R2": func() (transport.Conn, error) { return pool.Open(addr2) },
		},
	}
	addr := serveSession(t, &session.Server{Handler: func(conn transport.Conn) error {
		conn.SetTimeout(30 * time.Second)
		return med.HandleSession(conn)
	}})

	conn, err := transport.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	cm := session.NewMux(conn, session.Config{})
	t.Cleanup(func() {
		if err := cm.Close(); err != nil {
			t.Logf("mux close: %v", err)
		}
	})
	params := fastParams()
	params.Timeout = chaosTimeout
	runQuery := func(pol resilience.Policy) (resilience.Result, error) {
		var got *rel.Relation
		r, err := resilience.Do(pol, func(a resilience.Attempt) error {
			st, err := cm.Open()
			if err != nil {
				return err
			}
			defer st.Close()
			st.SetTimeout(params.Timeout)
			p := params
			p.QueryID, p.Attempt = a.QueryID, a.N
			out, err := f.client.Query(st, fixtureSQL, ProtocolDAS, p)
			if err != nil {
				return err
			}
			got = out
			return nil
		})
		if err == nil && !got.EqualMultiset(want) {
			return r, errors.New("recovered query returned a wrong join")
		}
		return r, err
	}

	// Warm-up: a clean run proves the topology and caches the pool's S1
	// link, whose death the kill then exercises mid-deployment.
	if _, err := runQuery(resilience.Policy{MaxAttempts: 2, Telemetry: reg}); err != nil {
		t.Fatalf("warm-up query: %v", err)
	}

	// Kill S1 and orchestrate the victim query: two failed attempts trip
	// the breaker, the second backoff restarts S1 and waits out the open
	// window, and the half-open probe recovers the query.
	stopS1()
	var restartErr error
	sleeps := 0
	r, err := runQuery(resilience.Policy{
		MaxAttempts: 5, BaseDelay: 20 * time.Millisecond, Seed: 7, Telemetry: reg,
		Sleep: func(d time.Duration) {
			sleeps++
			if sleeps == 2 {
				restartErr = startS1()
				time.Sleep(openTimeout + 100*time.Millisecond)
				return
			}
			time.Sleep(d)
		},
	})
	if restartErr != nil {
		t.Fatalf("restarting S1: %v", restartErr)
	}
	if err != nil {
		t.Fatalf("victim query did not recover: %v", err)
	}
	if !r.Recovered || r.Attempts < 2 {
		t.Errorf("victim result %+v, want a recovery after >= 2 attempts", r)
	}
	if got := reg.Counter("queries_recovered").Value(); got < 1 {
		t.Errorf("queries_recovered = %d, want >= 1", got)
	}
	if st := resilience.State(reg.Gauge("breaker_state", "peer", route1()).Value()); st != resilience.StateClosed {
		t.Errorf("S1 breaker %v after recovery, want closed", st)
	}
	if st := resilience.State(reg.Gauge("breaker_state", "peer", addr2).Value()); st != resilience.StateClosed {
		t.Errorf("S2 breaker %v, want closed (S1's death must not trip it)", st)
	}

	// Siblings on the SAME mux link after the episode: the shared
	// physical link and the mediator's pool must be unharmed.
	const siblings = 3
	var wg sync.WaitGroup
	errs := make(chan error, siblings)
	for i := 0; i < siblings; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := runQuery(resilience.Policy{MaxAttempts: 2, Telemetry: reg})
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("sibling session after restart: %v", err)
		}
	}
}

// TestAdmitAttempt pins the stale-attempt registry contract: empty IDs
// (clients not using the orchestrator) always admitted, duplicates of
// the live attempt admitted, older attempts denied and counted, and
// FIFO eviction at attemptCap.
func TestAdmitAttempt(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := &Source{Name: "S1", Telemetry: reg}
	if !s.admitAttempt("", 5) {
		t.Error("empty query ID denied; orchestrator-less clients must always be admitted")
	}
	if !s.admitAttempt("q1", 1) {
		t.Error("first attempt denied")
	}
	if !s.admitAttempt("q1", 1) {
		t.Error("duplicate of the live attempt denied; the registry tracks abandonment, not duplication")
	}
	if !s.admitAttempt("q1", 2) {
		t.Error("newer attempt denied")
	}
	if s.admitAttempt("q1", 1) {
		t.Error("stale attempt admitted after the client moved on")
	}
	if got := reg.Counter("stale_attempts_discarded").Value(); got != 1 {
		t.Errorf("stale_attempts_discarded = %d, want 1", got)
	}
	// Fill the registry with fresh IDs until q1 is evicted FIFO; its
	// previously-stale attempt is then admitted again (the registry
	// bounds memory, not correctness — a stale attempt that slips
	// through after eviction is a duplicate session, not a wrong join).
	for i := 0; i < attemptCap; i++ {
		if !s.admitAttempt(fmt.Sprintf("evict-%d", i), 3) {
			t.Fatalf("fresh query evict-%d denied", i)
		}
	}
	if !s.admitAttempt("q1", 1) {
		t.Error("q1 not evicted after attemptCap fresh query IDs")
	}
}

// TestErrorTransientPropagation pins the wire contract that keeps retry
// classification alive across party boundaries: a relayed transient
// failure reconstructs as retryable, a relayed protocol violation as
// terminal, and an attributed *ProtocolError keeps its origin.
func TestErrorTransientPropagation(t *testing.T) {
	relay := func(err error) error {
		a, b := transport.Pair()
		defer a.Close()
		defer b.Close()
		sendError(a, "S1", err)
		_, rerr := recvExpect(b, "mediator", "anything")
		return rerr
	}

	got := relay(fmt.Errorf("awaiting ack: %w", transport.ErrTimeout))
	var pe *ProtocolError
	if !errors.As(got, &pe) {
		t.Fatalf("relayed timeout: %v, want *ProtocolError", got)
	}
	if pe.Party != "S1" {
		t.Errorf("relayed timeout attributed to %q, want S1", pe.Party)
	}
	if !resilience.Retryable(got) {
		t.Error("relayed timeout lost its transient classification")
	}

	got = relay(errors.New("schema mismatch"))
	if !errors.As(got, &pe) {
		t.Fatalf("relayed violation: %v, want *ProtocolError", got)
	}
	if resilience.Retryable(got) {
		t.Error("relayed protocol violation reconstructed as retryable")
	}

	got = relay(&ProtocolError{Party: "S2", Phase: "delivery", Err: errors.New("bad partition")})
	if !errors.As(got, &pe) {
		t.Fatalf("relayed attributed error: %v, want *ProtocolError", got)
	}
	if pe.Party != "S2" || pe.Phase != "delivery" {
		t.Errorf("relayed attribution = %q/%q, want S2/delivery", pe.Party, pe.Phase)
	}
}
