package mediation

import (
	"crypto/rand"
	"io"
)

// cryptoRand returns the process CSPRNG; a helper so tests read clearly.
func cryptoRand() io.Reader { return rand.Reader }
