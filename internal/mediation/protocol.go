// Package mediation implements the paper's contribution: the credential-
// based Multimedia Mediator (MMM) architecture with three delivery-phase
// protocols that let an untrusted mediator compute an equi-JOIN over
// encrypted partial results —
//
//   - ProtocolDAS: bucketization with a client-side query translator
//     (Listing 2; after Hacıgümüş et al.),
//   - ProtocolCommutative: double commutative encryption of hashed join
//     values (Listing 3; after Agrawal et al.),
//   - ProtocolPM: private matching with homomorphically encrypted
//     polynomials (Listing 4; after Freedman et al.) —
//
// plus two baselines: ProtocolMobileCode (the earlier MMM solution: the
// client decrypts partial results and computes the join locally) and
// ProtocolPlaintext (a trusted mediator joining plaintexts).
//
// Parties (Client, Mediator, Source) communicate exclusively through
// transport.Conn links, so every protocol runs identically in-memory
// (tests, benchmarks) and across TCP (cmd/mediator etc.). All parties are
// semi-honest: they follow the protocol but may analyze what they see;
// the leakage.Ledger records exactly what that is.
package mediation

import (
	"fmt"
	"time"

	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// Protocol selects a delivery-phase protocol.
type Protocol uint8

const (
	// ProtocolPlaintext is the trusted-mediator baseline (Figure 1 without
	// encryption).
	ProtocolPlaintext Protocol = iota
	// ProtocolMobileCode is the prior MMM solution: hybrid-encrypted
	// partial results, join at the client.
	ProtocolMobileCode
	// ProtocolDAS is the Database-as-a-Service protocol (Listing 2,
	// client setting).
	ProtocolDAS
	// ProtocolCommutative is the commutative-encryption protocol
	// (Listing 3).
	ProtocolCommutative
	// ProtocolPM is the private-matching protocol (Listing 4).
	ProtocolPM
)

// String names the protocol as in the paper's tables.
func (p Protocol) String() string {
	switch p {
	case ProtocolPlaintext:
		return "plaintext"
	case ProtocolMobileCode:
		return "mobile-code"
	case ProtocolDAS:
		return "database-as-a-service"
	case ProtocolCommutative:
		return "commutative-encryption"
	case ProtocolPM:
		return "private-matching"
	default:
		return "unknown"
	}
}

// PayloadMode selects how the PM protocol carries tuple sets.
type PayloadMode uint8

const (
	// PayloadInline packs the serialized tuple set directly into the
	// masked polynomial evaluation (Listing 4 as written). Limited by the
	// Paillier plaintext size.
	PayloadInline PayloadMode = iota
	// PayloadHybrid implements footnote 2: the polynomial carries a fresh
	// session key and an ID; the tuple set travels separately, sealed
	// under that session key.
	PayloadHybrid
)

// String names the payload mode.
func (m PayloadMode) String() string {
	if m == PayloadHybrid {
		return "hybrid"
	}
	return "inline"
}

// Params tunes the delivery-phase protocols. The zero value selects sane
// defaults (see withDefaults).
type Params struct {
	// Partitions is the DAS partition count per index table.
	Partitions int
	// Pushdown enables the DAS selection-pushdown extension: conjunctive
	// WHERE conditions are translated into mediator-side index filters.
	// Off by default (it reveals predicate-satisfaction patterns to the
	// mediator; see internal/mediation/pushdown.go).
	Pushdown bool
	// Strategy is the DAS partitioning strategy.
	Strategy das.Strategy
	// GroupBits selects the commutative-encryption safe-prime group
	// (1536, 2048 or 3072 bits, the embedded RFC 3526 groups).
	GroupBits int
	// IDMode enables footnote 1 for the commutative protocol: the
	// mediator retains the encrypted tuple sets and circulates fixed-
	// length IDs instead.
	IDMode bool
	// PayloadMode selects the PM tuple-set transport.
	PayloadMode PayloadMode
	// Buckets is the FNP bucketing parameter for PM; 0 or 1 means one
	// polynomial over the whole active domain.
	Buckets int
	// PaillierBits is the PM key size; the client generates the key.
	PaillierBits int
	// Workers bounds the worker pool every party uses for its per-value
	// crypto hot loops (hash+encrypt+seal, re-encryption, oblivious
	// evaluation, result decryption). 0 selects runtime.NumCPU() on each
	// party's own machine; 1 forces the fully sequential execution the
	// protocol listings describe. Transcripts are order-preserving, so
	// the value never changes protocol results — only wall-clock time.
	Workers int
	// Telemetry optionally records phase spans and metrics for the query.
	// It is a per-query override of the Client's Telemetry field; the
	// registry is deliberately gob-inert, so it never crosses a transport
	// link — mediators and sources observe into their own Telemetry
	// fields, which the in-process Network (and medbench) point at the
	// same registry to assemble a cross-party span tree.
	Telemetry *telemetry.Registry
}

func (p Params) withDefaults() Params {
	if p.Partitions == 0 {
		p.Partitions = 16
	}
	if p.GroupBits == 0 {
		p.GroupBits = 2048
	}
	if p.Buckets < 1 {
		p.Buckets = 1
	}
	if p.PaillierBits == 0 {
		p.PaillierBits = 1024
	}
	return p
}

// commutativeGroup resolves GroupBits to an embedded RFC 3526 group.
func (p Params) commutativeGroup() (*groups.Group, error) {
	switch p.GroupBits {
	case 1536:
		return groups.MODP1536(), nil
	case 2048:
		return groups.MODP2048(), nil
	case 3072:
		return groups.MODP3072(), nil
	default:
		return nil, fmt.Errorf("mediation: unsupported commutative group size %d (use 1536, 2048 or 3072)", p.GroupBits)
	}
}

// Message type tags. One namespace per protocol keeps mis-wiring loud.
const (
	msgRequest      = "mmm.request"
	msgPartialQuery = "mmm.partial-query"
	msgPartialAck   = "mmm.partial-ack"
	msgError        = "mmm.error"

	msgDASPartial     = "das.partial"
	msgDASIndexTables = "das.index-tables"
	msgDASServerQuery = "das.server-query"
	msgDASResult      = "das.result"

	msgCommOffer     = "comm.offer"
	msgCommCross     = "comm.cross"
	msgCommCrossBack = "comm.cross-back"
	msgCommResult    = "comm.result"

	msgPMCoeffs = "pm.coeffs"
	msgPMCross  = "pm.cross"
	msgPMEvals  = "pm.evals"
	msgPMResult = "pm.result"

	msgMCPartial = "mc.partial"
	msgMCResult  = "mc.result"

	msgPTPartial = "pt.partial"
	msgPTResult  = "pt.result"
)

// errorBody is the payload of msgError.
type errorBody struct {
	Message string
}

// sendError best-effort reports a failure to a peer so it can abort
// instead of hanging.
func sendError(conn transport.Conn, err error) {
	m, e := transport.NewMessage(msgError, errorBody{Message: err.Error()})
	if e != nil {
		return
	}
	if serr := conn.Send(m); serr != nil {
		// The peer is already unreachable; the caller's original error is
		// what surfaces, and the peer's own Recv will fail on the dead
		// link, so there is nothing further to do with serr.
		return
	}
}

// recvExpect receives the next message, turning msgError payloads into
// errors and enforcing the expected type tag.
func recvExpect(conn transport.Conn, typ string) (transport.Message, error) {
	m, err := conn.Recv()
	if err != nil {
		return transport.Message{}, err
	}
	if m.Type == msgError {
		var body errorBody
		if err := transport.Decode(m.Body, &body); err != nil {
			return transport.Message{}, fmt.Errorf("mediation: peer error (undecodable)")
		}
		return transport.Message{}, fmt.Errorf("mediation: peer error: %s", body.Message)
	}
	if m.Type != typ {
		return transport.Message{}, fmt.Errorf("mediation: expected %q, got %q", typ, m.Type)
	}
	return m, nil
}

// sendMsg encodes and sends a payload in one step.
func sendMsg(conn transport.Conn, typ string, v any) error {
	m, err := transport.NewMessage(typ, v)
	if err != nil {
		return err
	}
	return conn.Send(m)
}

// recvInto receives a message of the given type and decodes its body.
func recvInto(conn transport.Conn, typ string, v any) error {
	m, err := recvExpect(conn, typ)
	if err != nil {
		return err
	}
	return transport.Decode(m.Body, v)
}

// stopwatch accumulates a party's active compute time into the ledger
// (item "compute-ns"), excluding time spent blocked on the network. The
// Section 6 cost matrix reads these. When a telemetry root span is
// attached, tracked work additionally becomes named child spans of that
// root — the per-phase cost breakdown.
type stopwatch struct {
	ledger *leakage.Ledger
	party  string
	total  time.Duration
	root   *telemetry.Span
}

func newStopwatch(l *leakage.Ledger, party string) *stopwatch {
	return &stopwatch{ledger: l, party: party}
}

// attach nests subsequent phase calls under the given root span. A nil
// root (telemetry off) keeps the stopwatch ledger-only.
func (s *stopwatch) attach(root *telemetry.Span) { s.root = root }

// track runs f while accumulating its duration.
func (s *stopwatch) track(f func() error) error {
	start := time.Now()
	err := f()
	s.total += time.Since(start)
	s.ledger.Observe(s.party, "compute-ns", s.total.Nanoseconds())
	return err
}

// phase runs f as one named telemetry phase (a child span of the attached
// root) while also accumulating compute time like track. With no root
// attached the span calls are nil no-ops.
func (s *stopwatch) phase(name string, f func() error) error {
	sp := s.root.Start(name)
	err := s.track(f)
	sp.End()
	return err
}

// trafficGauges exports one endpoint's transport counters as telemetry
// gauges labelled by the recording party and its peer. Nil-safe.
func trafficGauges(reg *telemetry.Registry, party, peer string, st *transport.Stats) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge("transport_bytes_sent", "party", party, "peer", peer).Set(st.BytesSent())
	reg.Gauge("transport_bytes_recv", "party", party, "peer", peer).Set(st.BytesRecv())
	reg.Gauge("transport_msgs_sent", "party", party, "peer", peer).Set(st.MsgsSent())
	reg.Gauge("transport_msgs_recv", "party", party, "peer", peer).Set(st.MsgsRecv())
}
