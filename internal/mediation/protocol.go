// Package mediation implements the paper's contribution: the credential-
// based Multimedia Mediator (MMM) architecture with three delivery-phase
// protocols that let an untrusted mediator compute an equi-JOIN over
// encrypted partial results —
//
//   - ProtocolDAS: bucketization with a client-side query translator
//     (Listing 2; after Hacıgümüş et al.),
//   - ProtocolCommutative: double commutative encryption of hashed join
//     values (Listing 3; after Agrawal et al.),
//   - ProtocolPM: private matching with homomorphically encrypted
//     polynomials (Listing 4; after Freedman et al.) —
//
// plus two baselines: ProtocolMobileCode (the earlier MMM solution: the
// client decrypts partial results and computes the join locally) and
// ProtocolPlaintext (a trusted mediator joining plaintexts).
//
// Parties (Client, Mediator, Source) communicate exclusively through
// transport.Conn links, so every protocol runs identically in-memory
// (tests, benchmarks) and across TCP (cmd/mediator etc.). All parties are
// semi-honest: they follow the protocol but may analyze what they see;
// the leakage.Ledger records exactly what that is.
package mediation

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/secmediation/secmediation/internal/crypto/commutative"
	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/das"
	"github.com/secmediation/secmediation/internal/leakage"
	"github.com/secmediation/secmediation/internal/resilience"
	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// Protocol selects a delivery-phase protocol.
type Protocol uint8

const (
	// ProtocolPlaintext is the trusted-mediator baseline (Figure 1 without
	// encryption).
	ProtocolPlaintext Protocol = iota
	// ProtocolMobileCode is the prior MMM solution: hybrid-encrypted
	// partial results, join at the client.
	ProtocolMobileCode
	// ProtocolDAS is the Database-as-a-Service protocol (Listing 2,
	// client setting).
	ProtocolDAS
	// ProtocolCommutative is the commutative-encryption protocol
	// (Listing 3).
	ProtocolCommutative
	// ProtocolPM is the private-matching protocol (Listing 4).
	ProtocolPM
)

// String names the protocol as in the paper's tables.
func (p Protocol) String() string {
	switch p {
	case ProtocolPlaintext:
		return "plaintext"
	case ProtocolMobileCode:
		return "mobile-code"
	case ProtocolDAS:
		return "database-as-a-service"
	case ProtocolCommutative:
		return "commutative-encryption"
	case ProtocolPM:
		return "private-matching"
	default:
		return "unknown"
	}
}

// PayloadMode selects how the PM protocol carries tuple sets.
type PayloadMode uint8

const (
	// PayloadInline packs the serialized tuple set directly into the
	// masked polynomial evaluation (Listing 4 as written). Limited by the
	// Paillier plaintext size.
	PayloadInline PayloadMode = iota
	// PayloadHybrid implements footnote 2: the polynomial carries a fresh
	// session key and an ID; the tuple set travels separately, sealed
	// under that session key.
	PayloadHybrid
)

// String names the payload mode.
func (m PayloadMode) String() string {
	if m == PayloadHybrid {
		return "hybrid"
	}
	return "inline"
}

// Params tunes the delivery-phase protocols. The zero value selects sane
// defaults (see withDefaults).
type Params struct {
	// Partitions is the DAS partition count per index table.
	Partitions int
	// Pushdown enables the DAS selection-pushdown extension: conjunctive
	// WHERE conditions are translated into mediator-side index filters.
	// Off by default (it reveals predicate-satisfaction patterns to the
	// mediator; see internal/mediation/pushdown.go).
	Pushdown bool
	// Strategy is the DAS partitioning strategy.
	Strategy das.Strategy
	// GroupBits selects the commutative-encryption safe-prime group
	// (1536, 2048 or 3072 bits, the embedded RFC 3526 groups).
	GroupBits int
	// KeyMode selects how the sources draw their commutative exponents
	// (short, full-length, or constant-time ladder); see CommKeyMode.
	// It travels in the request so both sources use the same policy.
	KeyMode CommKeyMode
	// IDMode enables footnote 1 for the commutative protocol: the
	// mediator retains the encrypted tuple sets and circulates fixed-
	// length IDs instead.
	IDMode bool
	// PayloadMode selects the PM tuple-set transport.
	PayloadMode PayloadMode
	// Buckets is the FNP bucketing parameter for PM; 0 or 1 means one
	// polynomial over the whole active domain.
	Buckets int
	// PaillierBits is the PM key size; the client generates the key.
	PaillierBits int
	// Workers bounds the worker pool every party uses for its per-value
	// crypto hot loops (hash+encrypt+seal, re-encryption, oblivious
	// evaluation, result decryption). 0 selects runtime.NumCPU() on each
	// party's own machine; 1 forces the fully sequential execution the
	// protocol listings describe. Transcripts are order-preserving, so
	// the value never changes protocol results — only wall-clock time.
	Workers int
	// Timeout bounds every single Send/Recv a party performs for this
	// query (via transport.Conn.SetTimeout); it travels in the request so
	// mediator and sources arm the same per-operation deadline. Zero (the
	// default) disables deadlines — single-process runs and tests that
	// never lose a party need none. The cmd binaries set a sane default.
	// A timed-out operation aborts the protocol with a *ProtocolError
	// wrapping transport.ErrTimeout.
	Timeout time.Duration
	// QueryID is the client-generated identifier of the logical query,
	// stable across retry attempts (resilience.Do supplies it). It
	// travels in the request and partial queries so sources can
	// recognize — and discard partial state from — attempts the client
	// has abandoned. Empty disables attempt tracking (in-process runs
	// need none).
	QueryID string
	// Attempt numbers this try of the query from 1 (resilience.Attempt.N).
	// A source that has seen a later attempt of the same QueryID denies
	// earlier ones as stale.
	Attempt int
	// Telemetry optionally records phase spans and metrics for the query.
	// It is a per-query override of the Client's Telemetry field; the
	// registry is deliberately gob-inert, so it never crosses a transport
	// link — mediators and sources observe into their own Telemetry
	// fields, which the in-process Network (and medbench) point at the
	// same registry to assemble a cross-party span tree.
	Telemetry *telemetry.Registry
}

func (p Params) withDefaults() Params {
	if p.Partitions == 0 {
		p.Partitions = 16
	}
	if p.GroupBits == 0 {
		p.GroupBits = 2048
	}
	if p.Buckets < 1 {
		p.Buckets = 1
	}
	if p.PaillierBits == 0 {
		p.PaillierBits = 1024
	}
	return p
}

// CommKeyMode selects the commutative key-generation policy a protocol
// run uses at both sources.
type CommKeyMode int

const (
	// KeyShortExponent draws 224/256/288-bit exponents (GenerateKey,
	// Koshiba–Kurosawa assumption) — the default and the fast path.
	KeyShortExponent CommKeyMode = iota
	// KeyFullExponent draws full-length uniform exponents
	// (GenerateKeyFullExponent) — the scheme exactly as Agrawal et al.
	// state it, with no short-exponent assumption, at ~8× the
	// per-element encryption cost.
	KeyFullExponent
	// KeyConstantTime draws short exponents but runs every
	// exponentiation through the fixed-window constant-time ladder
	// (GenerateKeyConstantTime) for deployments where a co-resident
	// attacker could observe timing; see docs/SECURITY.md.
	KeyConstantTime
)

// String names the key mode.
func (m CommKeyMode) String() string {
	switch m {
	case KeyFullExponent:
		return "full-exponent"
	case KeyConstantTime:
		return "constant-time"
	default:
		return "short-exponent"
	}
}

// generateCommKey draws a commutative key under the requested policy.
func (p Params) generateCommKey(g *groups.Group, rnd io.Reader) (*commutative.Key, error) {
	switch p.KeyMode {
	case KeyFullExponent:
		return commutative.GenerateKeyFullExponent(g, rnd)
	case KeyConstantTime:
		return commutative.GenerateKeyConstantTime(g, rnd)
	case KeyShortExponent:
		return commutative.GenerateKey(g, rnd)
	default:
		mode := int(p.KeyMode)
		return nil, fmt.Errorf("mediation: unknown commutative key mode %d", mode)
	}
}

// commutativeGroup resolves GroupBits to an embedded RFC 3526 group.
func (p Params) commutativeGroup() (*groups.Group, error) {
	switch p.GroupBits {
	case 1536:
		return groups.MODP1536(), nil
	case 2048:
		return groups.MODP2048(), nil
	case 3072:
		return groups.MODP3072(), nil
	default:
		return nil, fmt.Errorf("mediation: unsupported commutative group size %d (use 1536, 2048 or 3072)", p.GroupBits)
	}
}

// Message type tags. One namespace per protocol keeps mis-wiring loud.
const (
	msgRequest      = "mmm.request"
	msgPartialQuery = "mmm.partial-query"
	msgPartialAck   = "mmm.partial-ack"
	msgError        = "mmm.error"

	msgDASPartial     = "das.partial"
	msgDASIndexTables = "das.index-tables"
	msgDASServerQuery = "das.server-query"
	msgDASResult      = "das.result"

	msgCommOffer     = "comm.offer"
	msgCommCross     = "comm.cross"
	msgCommCrossBack = "comm.cross-back"
	msgCommResult    = "comm.result"

	msgPMCoeffs = "pm.coeffs"
	msgPMCross  = "pm.cross"
	msgPMEvals  = "pm.evals"
	msgPMResult = "pm.result"

	msgMCPartial = "mc.partial"
	msgMCResult  = "mc.result"

	msgPTPartial = "pt.partial"
	msgPTResult  = "pt.result"
)

// ProtocolError is the typed abort error every party surfaces when a
// delivery-phase run fails: it attributes the failure to the party where
// it originated (leakage party naming: "client", "mediator", "source:S1",
// or the mediator's relation-addressed "source:R1" for links whose source
// name is unknown) and, when known, the protocol phase that was active
// there. Callers unwrap the cause with errors.Is/As — a dead peer's
// timeout matches transport.ErrTimeout.
type ProtocolError struct {
	// Party is where the failure originated (or the peer behind the link
	// that failed, when the party itself is unreachable).
	Party string
	// Phase is the telemetry phase active at the origin, when known
	// (e.g. "cross.encrypt").
	Phase string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *ProtocolError) Error() string {
	if e.Phase != "" {
		return fmt.Sprintf("mediation: %s failed during %s: %v", e.Party, e.Phase, e.Err)
	}
	return fmt.Sprintf("mediation: %s failed: %v", e.Party, e.Err)
}

// Unwrap supports errors.Is/As on the cause.
func (e *ProtocolError) Unwrap() error { return e.Err }

// attribute wraps err as a *ProtocolError blamed on party/phase, unless
// the chain already carries an attribution (the origin wins: a mediator
// relaying a source's failure must not re-blame itself).
func attribute(party, phase string, err error) error {
	if err == nil {
		return nil
	}
	var pe *ProtocolError
	if errors.As(err, &pe) {
		return err
	}
	return &ProtocolError{Party: party, Phase: phase, Err: err}
}

// countTimeout bumps the party's mediation_timeouts counter when err is a
// deadline expiry. Nil-safe on the registry.
func countTimeout(reg *telemetry.Registry, party string, err error) {
	if reg.Enabled() && errors.Is(err, transport.ErrTimeout) {
		reg.Counter("mediation_timeouts", "party", party).Add(1)
	}
}

// linkSessionID reports the mux session ID of a virtual link, when conn
// is a session-layer stream (any conn exposing SessionID). Plain links
// report false, and per-session telemetry roots stay unannotated.
func linkSessionID(conn transport.Conn) (uint64, bool) {
	s, ok := conn.(interface{ SessionID() uint64 })
	if !ok {
		return 0, false
	}
	return s.SessionID(), true
}

// annotateSession tags a telemetry root span with the mux session ID of
// the link it serves, tying each span tree to one virtual link of a
// multiplexed deployment.
func annotateSession(root *telemetry.Span, conn transport.Conn) {
	if sid, ok := linkSessionID(conn); ok {
		root.Annotate("mux-session", strconv.FormatUint(sid, 10))
	}
}

// errorBody is the payload of msgError: the originating party and phase
// travel with the message so every survivor reports the same attribution.
// Transient carries the origin's retry classification — error chains
// flatten to strings at party boundaries, so without this flag a
// client could not tell a relayed timeout (worth a fresh attempt) from
// a relayed protocol violation (terminal).
type errorBody struct {
	Party     string
	Phase     string
	Message   string
	Transient bool
}

// sendError best-effort reports a failure to a peer so it can abort
// instead of hanging. The from party names the sender; when err already
// carries a *ProtocolError attribution, the origin's party/phase are
// forwarded unchanged. The origin's retry classification rides along as
// the Transient flag.
func sendError(conn transport.Conn, from string, err error) {
	body := errorBody{Party: from, Message: err.Error(), Transient: resilience.Retryable(err)}
	var pe *ProtocolError
	if errors.As(err, &pe) {
		body.Party, body.Phase, body.Message = pe.Party, pe.Phase, pe.Err.Error()
	}
	m, e := transport.NewMessage(msgError, body)
	if e != nil {
		return
	}
	if serr := conn.Send(m); serr != nil {
		// The peer is already unreachable; the caller's original error is
		// what surfaces, and the peer's own Recv will fail on the dead
		// link, so there is nothing further to do with serr.
		return
	}
}

// abortLinks best-effort propagates err as msgError on every live link,
// so peers blocked mid-protocol abort immediately instead of waiting out
// their deadline. Used by the mediator, the only party with more than one
// link.
func abortLinks(err error, conns ...transport.Conn) {
	for _, c := range conns {
		sendError(c, leakage.PartyMediator, err)
	}
}

// recvExpect receives the next message, turning msgError payloads and
// link failures into *ProtocolError aborts and enforcing the expected
// type tag. The peer name attributes link failures: a dead or silent link
// is blamed on the party at its far end.
func recvExpect(conn transport.Conn, peer, typ string) (transport.Message, error) {
	m, err := conn.Recv()
	if err != nil {
		return transport.Message{}, &ProtocolError{
			Party: peer,
			Err:   fmt.Errorf("link failed awaiting %q: %w", typ, err),
		}
	}
	if m.Type == msgError {
		var body errorBody
		payload, perr := transport.Payload(m)
		if perr == nil {
			perr = transport.Decode(payload, &body)
		}
		if perr != nil {
			return transport.Message{}, &ProtocolError{
				Party: peer,
				Err:   fmt.Errorf("peer error (undecodable)"),
			}
		}
		party := body.Party
		if party == "" {
			party = peer
		}
		cause := error(fmt.Errorf("peer error: %s", body.Message))
		if body.Transient {
			// The origin classified its failure retryable; keep that
			// visible through the reconstructed chain.
			cause = resilience.MarkTransient(cause)
		}
		return transport.Message{}, &ProtocolError{
			Party: party,
			Phase: body.Phase,
			Err:   cause,
		}
	}
	if m.Type != typ {
		return transport.Message{}, &ProtocolError{
			Party: peer,
			Err:   fmt.Errorf("expected %q, got %q", typ, m.Type),
		}
	}
	// Verify the body digest before any payload reaches a decoder: a
	// corrupted-but-decodable payload would otherwise silently change
	// the protocol's inputs (and with them the join). Integrity
	// failures are link faults — typed and retryable.
	payload, err := transport.Payload(m)
	if err != nil {
		return transport.Message{}, &ProtocolError{
			Party: peer,
			Err:   fmt.Errorf("receiving %q: %w", typ, err),
		}
	}
	m.Body = payload
	return m, nil
}

// sendMsg encodes and sends a payload in one step. Send failures become
// *ProtocolError aborts attributed to the peer behind the link.
//
// seclint:wire gob-encodes the payload onto the party link
func sendMsg(conn transport.Conn, peer, typ string, v any) error {
	m, err := transport.NewMessage(typ, v)
	if err != nil {
		return err
	}
	if err := conn.Send(m); err != nil {
		return &ProtocolError{
			Party: peer,
			Err:   fmt.Errorf("sending %q: %w", typ, err),
		}
	}
	return nil
}

// recvInto receives a message of the given type and decodes its body.
//
// seclint:wire gob-decodes a link payload into the target (keys must not
// arrive over a link either)
func recvInto(conn transport.Conn, peer, typ string, v any) error {
	m, err := recvExpect(conn, peer, typ)
	if err != nil {
		return err
	}
	if err := transport.Decode(m.Body, v); err != nil {
		return &ProtocolError{
			Party: peer,
			Err:   fmt.Errorf("decoding %q: %w", typ, err),
		}
	}
	return nil
}

// stopwatch accumulates a party's active compute time into the ledger
// (item "compute-ns"), excluding time spent blocked on the network. The
// Section 6 cost matrix reads these. When a telemetry root span is
// attached, tracked work additionally becomes named child spans of that
// root — the per-phase cost breakdown.
type stopwatch struct {
	ledger *leakage.Ledger
	party  string
	total  time.Duration
	root   *telemetry.Span
}

func newStopwatch(l *leakage.Ledger, party string) *stopwatch {
	return &stopwatch{ledger: l, party: party}
}

// attach nests subsequent phase calls under the given root span. A nil
// root (telemetry off) keeps the stopwatch ledger-only.
func (s *stopwatch) attach(root *telemetry.Span) { s.root = root }

// track runs f while accumulating its duration.
func (s *stopwatch) track(f func() error) error {
	start := time.Now()
	err := f()
	s.total += time.Since(start)
	s.ledger.Observe(s.party, "compute-ns", s.total.Nanoseconds())
	return err
}

// phase runs f as one named telemetry phase (a child span of the attached
// root) while also accumulating compute time like track. With no root
// attached the span calls are nil no-ops. A failing phase aborts the
// protocol: the error is attributed to this party and phase (unless it
// already carries an origin attribution from a peer).
func (s *stopwatch) phase(name string, f func() error) error {
	sp := s.root.Start(name)
	err := s.track(f)
	sp.End()
	return attribute(s.party, name, err)
}

// trafficGauges exports one endpoint's transport counters as telemetry
// gauges labelled by the recording party and its peer. Nil-safe.
func trafficGauges(reg *telemetry.Registry, party, peer string, st *transport.Stats) {
	if !reg.Enabled() {
		return
	}
	reg.Gauge("transport_bytes_sent", "party", party, "peer", peer).Set(st.BytesSent())
	reg.Gauge("transport_bytes_recv", "party", party, "peer", peer).Set(st.BytesRecv())
	reg.Gauge("transport_msgs_sent", "party", party, "peer", peer).Set(st.MsgsSent())
	reg.Gauge("transport_msgs_recv", "party", party, "peer", peer).Set(st.MsgsRecv())
}
