package mediation

import (
	"crypto/rsa"
	"testing"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/credential"
	rel "github.com/secmediation/secmediation/internal/relation"
	"github.com/secmediation/secmediation/internal/sqlparse"
)

// chainNetwork builds three sources: People(pid,name), Jobs(pid,role),
// Salaries(role,pay).
func chainNetwork(t testing.TB) (*Network, *rel.Relation, *rel.Relation, *rel.Relation) {
	t.Helper()
	f := getFixture(t)
	people := rel.MustFromTuples(rel.MustSchema("People",
		rel.Column{Name: "pid", Kind: rel.KindInt},
		rel.Column{Name: "name", Kind: rel.KindString}),
		rel.Tuple{rel.Int(1), rel.String_("ada")},
		rel.Tuple{rel.Int(2), rel.String_("bob")},
		rel.Tuple{rel.Int(3), rel.String_("cyd")})
	jobs := rel.MustFromTuples(rel.MustSchema("Jobs",
		rel.Column{Name: "pid", Kind: rel.KindInt},
		rel.Column{Name: "role", Kind: rel.KindString}),
		rel.Tuple{rel.Int(1), rel.String_("dev")},
		rel.Tuple{rel.Int(2), rel.String_("ops")},
		rel.Tuple{rel.Int(2), rel.String_("dev")},
		rel.Tuple{rel.Int(9), rel.String_("dev")})
	salaries := rel.MustFromTuples(rel.MustSchema("Salaries",
		rel.Column{Name: "role", Kind: rel.KindString},
		rel.Column{Name: "pay", Kind: rel.KindInt}),
		rel.Tuple{rel.String_("dev"), rel.Int(100)},
		rel.Tuple{rel.String_("ops"), rel.Int(90)},
		rel.Tuple{rel.String_("pm"), rel.Int(95)})
	mk := func(name, relName string, r *rel.Relation) *Source {
		return &Source{Name: name, Catalog: algebra.MapCatalog{relName: r},
			Policies:   map[string]*credential.Policy{relName: policyFor(relName)},
			TrustedCAs: []*rsa.PublicKey{f.ca.PublicKey()}}
	}
	n, err := NewNetwork(f.client, &Mediator{},
		mk("S1", "People", people), mk("S2", "Jobs", jobs), mk("S3", "Salaries", salaries))
	if err != nil {
		t.Fatal(err)
	}
	return n, people, jobs, salaries
}

// Plaintext truth for the three-way chain.
func chainTruth(t testing.TB, people, jobs, salaries *rel.Relation) *rel.Relation {
	t.Helper()
	pj, err := algebra.NaturalJoin(people, jobs)
	if err != nil {
		t.Fatal(err)
	}
	pjs, err := algebra.NaturalJoin(pj, salaries)
	if err != nil {
		t.Fatal(err)
	}
	return pjs
}

func TestChainedNaturalJoins(t *testing.T) {
	n, people, jobs, salaries := chainNetwork(t)
	want := chainTruth(t, people, jobs, salaries)
	for _, proto := range []Protocol{ProtocolPlaintext, ProtocolCommutative, ProtocolDAS, ProtocolPM} {
		got, err := n.Query("SELECT * FROM People NATURAL JOIN Jobs NATURAL JOIN Salaries", proto, fastParams())
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if got.Len() != want.Len() {
			t.Errorf("%v: chain size %d, want %d\n%v", proto, got.Len(), want.Len(), got)
		}
	}
}

func TestChainedOnJoins(t *testing.T) {
	n, _, _, _ := chainNetwork(t)
	got, err := n.Query(
		"SELECT name, pay FROM People JOIN Jobs ON People.pid = Jobs.pid JOIN Salaries ON Jobs.role = Salaries.role WHERE pay >= 100",
		ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	// dev rows only: ada(dev,100), bob(dev,100).
	if got.Len() != 2 || got.Schema().Arity() != 2 {
		t.Errorf("chain with ON + WHERE: %d×%d\n%v", got.Len(), got.Schema().Arity(), got)
	}
}

func TestChainedDistinct(t *testing.T) {
	n, _, _, _ := chainNetwork(t)
	got, err := n.Query(
		"SELECT DISTINCT role FROM People NATURAL JOIN Jobs NATURAL JOIN Salaries",
		ProtocolCommutative, fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 { // dev, ops
		t.Errorf("distinct roles = %d, want 2\n%v", got.Len(), got)
	}
}

func TestChainParserRendering(t *testing.T) {
	in := "SELECT * FROM A JOIN B ON A.x = B.x JOIN C ON B.y = C.y NATURAL JOIN D"
	q, err := parseChain(t, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.MoreJoins) != 2 || q.MoreJoins[0].Relation != "C" || !q.MoreJoins[1].Natural {
		t.Errorf("chain parse: %+v", q.MoreJoins)
	}
	if q.String() != in {
		t.Errorf("chain rendering: %q", q.String())
	}
}

// parseChain parses SQL for chain-structure assertions.
func parseChain(t testing.TB, sql string) (*sqlparse.Query, error) {
	t.Helper()
	return sqlparse.Parse(sql)
}
