package das

import (
	"crypto/rsa"
	"fmt"

	"github.com/secmediation/secmediation/internal/crypto/hybrid"
	"github.com/secmediation/secmediation/internal/parallel"
	"github.com/secmediation/secmediation/internal/relation"
)

// EncTuple is one row of the encrypted relation R^S: the hybrid-encrypted
// tuple (etuple) plus the index value of each join attribute's partition.
// The paper treats a single join attribute; multiple entries in Index
// implement the multi-attribute extension (one index table per join
// attribute, CondS becoming a conjunction of per-attribute disjunctions).
type EncTuple struct {
	// Etuple is the sealed canonical tuple encoding (session ciphertext,
	// marshaled).
	Etuple []byte
	// Index holds a^S_join per join attribute, in join-column order.
	Index []IndexValue
}

// EncryptedRelation is R^S(Etuple, A^S_join, ...) together with the
// session-key material the client needs for decryptDAS.
type EncryptedRelation struct {
	// Name is the source relation name (schema metadata, not secret: the
	// mediator localized the source by name already).
	Name string
	// WrappedKey is the hybrid session key wrapped for the client.
	WrappedKey []byte
	// Tuples are the encrypted rows.
	Tuples []EncTuple
}

// Len returns the number of encrypted tuples (visible to the mediator —
// the |R_i| leakage of Table 1).
func (er *EncryptedRelation) Len() int { return len(er.Tuples) }

// EncryptRelation produces R^S from a partial result: each tuple is sealed
// row-wise under a fresh session key for the client's public key, and
// annotated with the index values of its join attribute values (one per
// join column, parallel to the index tables). It also returns the session
// so the caller can seal the index tables under the same key, as the paper
// recommends. The per-tuple index+seal work fans out over a worker pool
// (workers as in parallel.Resolve) with tuple order preserved.
// seclint:sanitizer DAS encrypt boundary (tuples sealed, buckets indexed)
func EncryptRelation(r *relation.Relation, joinCols []string, its []*IndexTable, clientKey *rsa.PublicKey, workers int) (*EncryptedRelation, *hybrid.Session, error) {
	if len(joinCols) == 0 || len(joinCols) != len(its) {
		return nil, nil, fmt.Errorf("das: need one index table per join column, got %d/%d", len(joinCols), len(its))
	}
	idxs := make([]int, len(joinCols))
	for i, c := range joinCols {
		idxs[i] = r.Schema().IndexOf(c)
		if idxs[i] < 0 {
			return nil, nil, fmt.Errorf("das: relation %s has no column %q", r.Schema().Relation, c)
		}
	}
	sess, err := hybrid.NewSession(clientKey)
	if err != nil {
		return nil, nil, err
	}
	er := &EncryptedRelation{Name: r.Schema().Relation, WrappedKey: sess.WrappedKey()}
	aad := []byte("das:etuple:" + r.Schema().Relation)
	tuples := r.Tuples()
	er.Tuples, err = parallel.Map(len(tuples), workers, func(ti int) (EncTuple, error) {
		t := tuples[ti]
		iv := make([]IndexValue, len(joinCols))
		for i, ji := range idxs {
			v, err := its[i].IndexOf(t[ji])
			if err != nil {
				return EncTuple{}, err
			}
			iv[i] = v
		}
		ct, err := sess.Seal(t.Encode(nil), aad)
		if err != nil {
			return EncTuple{}, err
		}
		return EncTuple{Etuple: ct.Marshal(), Index: iv}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return er, sess, nil
}

// IndexPair is one disjunct of CondS for one attribute:
// R1^S.A = I1 ∧ R2^S.A = I2.
type IndexPair struct {
	I1, I2 IndexValue
}

// IndexFilter is one pushed-down selection over an indexed attribute: the
// tuple's index value at position Attr must be in Allowed. A filter is a
// sound over-approximation (partitions that may contain a satisfying value
// are allowed), so the client query still post-filters exactly.
type IndexFilter struct {
	// Attr is the position within EncTuple.Index.
	Attr int
	// Allowed lists the admissible index values.
	Allowed []IndexValue
}

// ServerQuery is q_S in transported form: for every join attribute, the
// disjunction of admissible index pairs (a tuple pair qualifies when every
// attribute's pair is admissible), plus optional pushed-down selection
// filters per side (the selection-pushdown extension).
type ServerQuery struct {
	PerAttr  [][]IndexPair
	Filters1 []IndexFilter
	Filters2 []IndexFilter
}

// BuildServerQuery computes q_S from the plaintext index tables of both
// sources — the query-translator step the client performs in the client
// setting.
func BuildServerQuery(its1, its2 []*IndexTable) (ServerQuery, error) {
	if len(its1) == 0 || len(its1) != len(its2) {
		return ServerQuery{}, fmt.Errorf("das: mismatched index table lists (%d vs %d)", len(its1), len(its2))
	}
	q := ServerQuery{PerAttr: make([][]IndexPair, len(its1))}
	for i := range its1 {
		q.PerAttr[i] = OverlapPairs(its1[i], its2[i])
	}
	return q, nil
}

// ServerResultPair is one row of R_C: a pair of etuples whose index values
// satisfied CondS.
type ServerResultPair struct {
	E1, E2 []byte
}

// ServerResult is R_C = σ_CondS(R1^S × R2^S), still encrypted.
type ServerResult struct {
	Pairs []ServerResultPair
}

// ExecuteServerQuery evaluates q_S over the two encrypted relations. This
// is the mediator's computation: it sees only index values and ciphertext
// blobs. Implemented as a hash join on the first attribute's admissible
// pairs with residual filtering on the remaining attributes — semantically
// identical to σ_CondS(R1^S × R2^S).
func ExecuteServerQuery(r1, r2 *EncryptedRelation, q ServerQuery) (*ServerResult, error) {
	if len(q.PerAttr) == 0 {
		return nil, fmt.Errorf("das: empty server query")
	}
	// Admissibility maps: attr -> I1 -> set of I2.
	adm := make([]map[IndexValue]map[IndexValue]bool, len(q.PerAttr))
	for a, pairs := range q.PerAttr {
		adm[a] = make(map[IndexValue]map[IndexValue]bool, len(pairs))
		for _, p := range pairs {
			m, ok := adm[a][p.I1]
			if !ok {
				m = make(map[IndexValue]bool)
				adm[a][p.I1] = m
			}
			m[p.I2] = true
		}
	}
	filter1, err := buildFilter(q.Filters1)
	if err != nil {
		return nil, err
	}
	filter2, err := buildFilter(q.Filters2)
	if err != nil {
		return nil, err
	}
	// Group r2 tuple positions by first-attribute index, applying the
	// pushed-down filters.
	byIdx := make(map[IndexValue][]int, len(r2.Tuples))
	for i, t := range r2.Tuples {
		if len(t.Index) < len(q.PerAttr) {
			return nil, fmt.Errorf("das: R2 tuple has %d index values, query has %d attributes", len(t.Index), len(q.PerAttr))
		}
		if !filter2.admits(t.Index) {
			continue
		}
		byIdx[t.Index[0]] = append(byIdx[t.Index[0]], i)
	}
	res := &ServerResult{}
	for _, t1 := range r1.Tuples {
		if len(t1.Index) < len(q.PerAttr) {
			return nil, fmt.Errorf("das: R1 tuple has %d index values, query has %d attributes", len(t1.Index), len(q.PerAttr))
		}
		if !filter1.admits(t1.Index) {
			continue
		}
		first := adm[0][t1.Index[0]]
		if first == nil {
			continue
		}
		for i2 := range first {
			for _, j := range byIdx[i2] {
				t2 := r2.Tuples[j]
				match := true
				for a := 1; a < len(q.PerAttr); a++ {
					if !adm[a][t1.Index[a]][t2.Index[a]] {
						match = false
						break
					}
				}
				if match {
					res.Pairs = append(res.Pairs, ServerResultPair{E1: t1.Etuple, E2: t2.Etuple})
				}
			}
		}
	}
	return res, nil
}

// Opener decrypts session ciphertexts; *hybrid.Receiver implements it.
type Opener interface {
	Open(*hybrid.Ciphertext, []byte) ([]byte, error)
}

// DecryptServerResult is decryptDAS followed by the client query q_C: it
// opens both etuples of every pair, drops the index values (they are not
// part of the etuple encoding), applies CondC (true join-attribute
// equality on every join column) and assembles the joined tuples under the
// concatenated schema. It returns the exact join and the number of false
// positives discarded by q_C. The per-pair decryptions fan out over a
// worker pool; matching and assembly stay sequential in pair order, so the
// result is worker-count independent.
// seclint:source decrypted DAS server result tuples
func DecryptServerResult(res *ServerResult, recv1, recv2 Opener,
	schema1, schema2 relation.Schema, joinCols1, joinCols2 []string, workers int) (*relation.Relation, int, error) {

	if len(joinCols1) == 0 || len(joinCols1) != len(joinCols2) {
		return nil, 0, fmt.Errorf("das: mismatched join column lists")
	}
	j1 := make([]int, len(joinCols1))
	j2 := make([]int, len(joinCols2))
	for i := range joinCols1 {
		j1[i] = schema1.IndexOf(joinCols1[i])
		j2[i] = schema2.IndexOf(joinCols2[i])
		if j1[i] < 0 || j2[i] < 0 {
			return nil, 0, fmt.Errorf("das: join columns %q/%q not found", joinCols1[i], joinCols2[i])
		}
	}
	joined, err := schema1.Concat(schema2)
	if err != nil {
		return nil, 0, err
	}
	out := relation.New(joined)
	aad1 := []byte("das:etuple:" + schema1.Relation)
	aad2 := []byte("das:etuple:" + schema2.Relation)
	type tuplePair struct{ t1, t2 relation.Tuple }
	opened, err := parallel.Map(len(res.Pairs), workers, func(i int) (tuplePair, error) {
		t1, err := openTuple(recv1, res.Pairs[i].E1, aad1, schema1)
		if err != nil {
			return tuplePair{}, err
		}
		t2, err := openTuple(recv2, res.Pairs[i].E2, aad2, schema2)
		if err != nil {
			return tuplePair{}, err
		}
		return tuplePair{t1: t1, t2: t2}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	discarded := 0
	for _, p := range opened {
		t1, t2 := p.t1, p.t2
		match := true
		for i := range j1 {
			if !t1[j1[i]].Equal(t2[j2[i]]) {
				match = false
				break
			}
		}
		if !match {
			discarded++ // false positive of the coarse index match
			continue
		}
		t := make(relation.Tuple, 0, len(t1)+len(t2))
		t = append(t, t1...)
		t = append(t, t2...)
		if err := out.Append(t); err != nil {
			return nil, 0, err
		}
	}
	return out, discarded, nil
}

// compiledFilter is the evaluable form of a filter list.
type compiledFilter []struct {
	attr    int
	allowed map[IndexValue]bool
}

func buildFilter(fs []IndexFilter) (compiledFilter, error) {
	out := make(compiledFilter, 0, len(fs))
	for _, f := range fs {
		if f.Attr < 0 {
			return nil, fmt.Errorf("das: negative filter attribute")
		}
		m := make(map[IndexValue]bool, len(f.Allowed))
		for _, iv := range f.Allowed {
			m[iv] = true
		}
		out = append(out, struct {
			attr    int
			allowed map[IndexValue]bool
		}{attr: f.Attr, allowed: m})
	}
	return out, nil
}

func (cf compiledFilter) admits(index []IndexValue) bool {
	for _, f := range cf {
		if f.attr >= len(index) || !f.allowed[index[f.attr]] {
			return false
		}
	}
	return true
}

// seclint:source decrypted DAS tuple
func openTuple(r Opener, blob, aad []byte, schema relation.Schema) (relation.Tuple, error) {
	ct, err := hybrid.UnmarshalCiphertext(blob)
	if err != nil {
		return nil, err
	}
	pt, err := r.Open(ct, aad)
	if err != nil {
		return nil, err
	}
	return relation.DecodeTuple(schema, pt)
}
