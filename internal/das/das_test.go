package das

import (
	"crypto/rand"
	"crypto/rsa"
	"sync"
	"testing"
	"testing/quick"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/crypto/hybrid"
	rel "github.com/secmediation/secmediation/internal/relation"
)

func intDomain(vals ...int64) []rel.Value {
	out := make([]rel.Value, len(vals))
	for i, v := range vals {
		out[i] = rel.Int(v)
	}
	return out
}

func TestEquiWidthPartitioning(t *testing.T) {
	dom := intDomain(1, 5, 10, 15, 20)
	parts, err := PartitionDomain(dom, 4, EquiWidth)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("parts = %d, want 4", len(parts))
	}
	// Every domain value must be covered by exactly one partition.
	for _, v := range dom {
		n := 0
		for _, p := range parts {
			if p.Contains(v) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("value %v covered by %d partitions", v, n)
		}
	}
	// Range coverage must be contiguous from 1 to 20.
	if parts[0].Lo.AsInt() != 1 || parts[3].Hi.AsInt() != 20 {
		t.Errorf("range bounds: %v..%v", parts[0].Lo, parts[3].Hi)
	}
	if _, err := PartitionDomain([]rel.Value{rel.String_("x")}, 2, EquiWidth); err == nil {
		t.Error("equi-width over TEXT accepted")
	}
}

func TestEquiDepthPartitioning(t *testing.T) {
	dom := intDomain(1, 2, 3, 100, 200, 300, 301)
	parts, err := PartitionDomain(dom, 3, EquiDepth)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(parts))
	}
	// 7 values into 3 partitions: 3+2+2.
	if parts[0].Lo.AsInt() != 1 || parts[0].Hi.AsInt() != 3 {
		t.Errorf("first partition %v..%v, want 1..3", parts[0].Lo, parts[0].Hi)
	}
	for _, v := range dom {
		found := false
		for _, p := range parts {
			if p.Contains(v) {
				found = true
			}
		}
		if !found {
			t.Errorf("value %v not covered", v)
		}
	}
	// Works for strings too.
	sdom := []rel.Value{rel.String_("a"), rel.String_("b"), rel.String_("z")}
	sparts, err := PartitionDomain(sdom, 2, EquiDepth)
	if err != nil || len(sparts) != 2 {
		t.Errorf("string equi-depth: %v, %v", sparts, err)
	}
}

func TestHashBucketPartitioning(t *testing.T) {
	dom := intDomain(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	parts, err := PartitionDomain(dom, 4, HashBuckets)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, v := range dom {
		for _, p := range parts {
			if p.Contains(v) {
				covered++
				break
			}
		}
	}
	if covered != len(dom) {
		t.Errorf("covered %d of %d values", covered, len(dom))
	}
	// Same bucket count on two sources must agree on assignment.
	other, _ := PartitionDomain(intDomain(5, 6, 99), 4, HashBuckets)
	for _, p := range parts {
		for _, q := range other {
			if p.Bucket == q.Bucket && !p.Overlaps(q) {
				t.Errorf("same-ordinal buckets do not overlap")
			}
			if p.Bucket != q.Bucket && p.Overlaps(q) {
				t.Errorf("different-ordinal buckets overlap")
			}
		}
	}
}

func TestPartitionDomainValidation(t *testing.T) {
	if _, err := PartitionDomain(nil, 2, EquiDepth); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := PartitionDomain(intDomain(1), 0, EquiDepth); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PartitionDomain(intDomain(1), 1, Strategy(99)); err == nil {
		t.Error("unknown strategy accepted")
	}
	for s, want := range map[Strategy]string{EquiWidth: "equi-width", EquiDepth: "equi-depth", HashBuckets: "hash-buckets", Strategy(9): "unknown"} {
		if s.String() != want {
			t.Errorf("Strategy(%d).String() = %q", s, s.String())
		}
	}
}

func TestMorePartitionsThanValues(t *testing.T) {
	dom := intDomain(4, 7)
	for _, s := range []Strategy{EquiWidth, EquiDepth} {
		parts, err := PartitionDomain(dom, 10, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(parts) > 4 {
			t.Errorf("%v produced %d partitions for 2 values", s, len(parts))
		}
	}
}

func TestIntervalOverlap(t *testing.T) {
	iv := func(lo, hi int64) Partition {
		return Partition{IsInterval: true, Lo: rel.Int(lo), Hi: rel.Int(hi)}
	}
	cases := []struct {
		a, b Partition
		want bool
	}{
		{iv(1, 5), iv(5, 9), true},
		{iv(1, 5), iv(6, 9), false},
		{iv(1, 10), iv(3, 4), true},
		{iv(3, 4), iv(1, 10), true},
		{iv(1, 2), Partition{IsInterval: true, Lo: rel.String_("a"), Hi: rel.String_("b")}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v..%v, %v..%v) = %v, want %v", c.a.Lo, c.a.Hi, c.b.Lo, c.b.Hi, got, c.want)
		}
	}
	// Mixed interval/bucket.
	bucket := Partition{Members: intDomain(3, 30)}
	if !bucket.Overlaps(iv(1, 5)) || !iv(1, 5).Overlaps(bucket) {
		t.Error("bucket {3,30} should overlap [1,5]")
	}
	if bucket.Overlaps(iv(6, 9)) {
		t.Error("bucket {3,30} should not overlap [6,9]")
	}
	// Bucket-bucket with different counts falls back to member comparison.
	b1 := Partition{Members: intDomain(1, 2), BucketCount: 3, Bucket: 0}
	b2 := Partition{Members: intDomain(2, 9), BucketCount: 5, Bucket: 1}
	if !b1.Overlaps(b2) {
		t.Error("member-intersecting buckets should overlap")
	}
}

func TestIndexTable(t *testing.T) {
	dom := intDomain(1, 2, 3, 4, 5, 6, 7, 8)
	parts, _ := PartitionDomain(dom, 3, EquiDepth)
	it, err := BuildIndexTable("id", parts)
	if err != nil {
		t.Fatal(err)
	}
	if len(it.Entries) != len(parts) {
		t.Fatalf("entries = %d, want %d", len(it.Entries), len(parts))
	}
	seen := map[IndexValue]bool{}
	for _, e := range it.Entries {
		if seen[e.Index] {
			t.Error("duplicate index value")
		}
		seen[e.Index] = true
	}
	iv, err := it.IndexOf(rel.Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if !seen[iv] {
		t.Error("IndexOf returned unknown index")
	}
	if _, err := it.IndexOf(rel.Int(99)); err == nil {
		t.Error("uncovered value indexed")
	}
}

func TestOverlapPairsSymmetry(t *testing.T) {
	d1 := intDomain(1, 2, 3, 10, 11, 12)
	d2 := intDomain(2, 3, 4, 11, 40)
	p1, _ := PartitionDomain(d1, 3, EquiDepth)
	p2, _ := PartitionDomain(d2, 2, EquiDepth)
	it1, _ := BuildIndexTable("a", p1)
	it2, _ := BuildIndexTable("a", p2)
	fwd := OverlapPairs(it1, it2)
	rev := OverlapPairs(it2, it1)
	if len(fwd) != len(rev) {
		t.Errorf("overlap pairs asymmetric: %d vs %d", len(fwd), len(rev))
	}
	if len(fwd) == 0 {
		t.Error("no overlapping partitions for overlapping domains")
	}
}

var (
	keyOnce sync.Once
	ck      *rsa.PrivateKey
)

func clientKey(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		var err error
		ck, err = rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			panic(err)
		}
	})
	return ck
}

func fixtures(t testing.TB) (*rel.Relation, *rel.Relation) {
	t.Helper()
	s1 := rel.MustSchema("R1",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "name", Kind: rel.KindString})
	s2 := rel.MustSchema("R2",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "city", Kind: rel.KindString})
	r1 := rel.MustFromTuples(s1,
		rel.Tuple{rel.Int(1), rel.String_("a")},
		rel.Tuple{rel.Int(2), rel.String_("b")},
		rel.Tuple{rel.Int(5), rel.String_("e")},
		rel.Tuple{rel.Int(5), rel.String_("e2")},
		rel.Tuple{rel.Int(9), rel.String_("i")},
	)
	r2 := rel.MustFromTuples(s2,
		rel.Tuple{rel.Int(2), rel.String_("x")},
		rel.Tuple{rel.Int(5), rel.String_("y")},
		rel.Tuple{rel.Int(7), rel.String_("z")},
	)
	return r1, r2
}

// End-to-end DAS mechanics: encrypt both relations, build the server query
// from the index tables, run it, decrypt + post-filter, and compare with a
// plaintext join.
func TestDASEndToEnd(t *testing.T) {
	key := clientKey(t)
	r1, r2 := fixtures(t)
	for _, strategy := range []Strategy{EquiWidth, EquiDepth, HashBuckets} {
		for _, k := range []int{1, 2, 3, 100} {
			d1, _ := r1.ActiveDomain("id")
			d2, _ := r2.ActiveDomain("id")
			p1, err := PartitionDomain(d1, k, strategy)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := PartitionDomain(d2, k, strategy)
			if err != nil {
				t.Fatal(err)
			}
			it1, _ := BuildIndexTable("id", p1)
			it2, _ := BuildIndexTable("id", p2)
			er1, _, err := EncryptRelation(r1, []string{"id"}, []*IndexTable{it1}, &key.PublicKey, 1)
			if err != nil {
				t.Fatal(err)
			}
			er2, _, err := EncryptRelation(r2, []string{"id"}, []*IndexTable{it2}, &key.PublicKey, 1)
			if err != nil {
				t.Fatal(err)
			}
			sq, err := BuildServerQuery([]*IndexTable{it1}, []*IndexTable{it2})
			if err != nil {
				t.Fatal(err)
			}
			res, err := ExecuteServerQuery(er1, er2, sq)
			if err != nil {
				t.Fatal(err)
			}

			recv1, err := hybrid.NewReceiver(key, er1.WrappedKey)
			if err != nil {
				t.Fatal(err)
			}
			recv2, err := hybrid.NewReceiver(key, er2.WrappedKey)
			if err != nil {
				t.Fatal(err)
			}
			got, discarded, err := DecryptServerResult(res, recv1, recv2, r1.Schema(), r2.Schema(), []string{"id"}, []string{"id"}, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Expected join: ids 2 (1×1) and 5 (2×1) → 3 tuples.
			if got.Len() != 3 {
				t.Errorf("%v k=%d: join size = %d, want 3", strategy, k, got.Len())
			}
			// Superset property: server result ≥ exact result.
			if len(res.Pairs) < got.Len() {
				t.Errorf("%v k=%d: server result smaller than join", strategy, k)
			}
			if len(res.Pairs) != got.Len()+discarded {
				t.Errorf("%v k=%d: pair accounting broken: %d != %d+%d", strategy, k, len(res.Pairs), got.Len(), discarded)
			}
		}
	}
}

// Coarser partitioning must never shrink the server result (the paper's
// granularity trade-off): k=1 yields the full cross product of index
// matches.
func TestPartitionGranularityMonotonicity(t *testing.T) {
	key := clientKey(t)
	r1, r2 := fixtures(t)
	d1, _ := r1.ActiveDomain("id")
	d2, _ := r2.ActiveDomain("id")
	sizes := map[int]int{}
	for _, k := range []int{1, 2, 4, 64} {
		p1, _ := PartitionDomain(d1, k, EquiDepth)
		p2, _ := PartitionDomain(d2, k, EquiDepth)
		it1, _ := BuildIndexTable("id", p1)
		it2, _ := BuildIndexTable("id", p2)
		er1, _, _ := EncryptRelation(r1, []string{"id"}, []*IndexTable{it1}, &key.PublicKey, 1)
		er2, _, _ := EncryptRelation(r2, []string{"id"}, []*IndexTable{it2}, &key.PublicKey, 1)
		sq, _ := BuildServerQuery([]*IndexTable{it1}, []*IndexTable{it2})
		res, err := ExecuteServerQuery(er1, er2, sq)
		if err != nil {
			t.Fatal(err)
		}
		sizes[k] = len(res.Pairs)
	}
	if sizes[1] != r1.Len()*r2.Len() {
		t.Errorf("k=1 server result = %d, want full product %d", sizes[1], r1.Len()*r2.Len())
	}
	if sizes[64] > sizes[4] || sizes[4] > sizes[1] {
		t.Errorf("superset size not monotone in granularity: %v", sizes)
	}
}

func TestEncryptRelationErrors(t *testing.T) {
	key := clientKey(t)
	r1, _ := fixtures(t)
	d1, _ := r1.ActiveDomain("id")
	p1, _ := PartitionDomain(d1, 2, EquiDepth)
	it1, _ := BuildIndexTable("id", p1)
	if _, _, err := EncryptRelation(r1, []string{"ghost"}, []*IndexTable{it1}, &key.PublicKey, 1); err == nil {
		t.Error("bad join column accepted")
	}
	if _, _, err := EncryptRelation(r1, []string{"id"}, nil, &key.PublicKey, 1); err == nil {
		t.Error("missing index tables accepted")
	}
	// Index table missing coverage.
	itBad := &IndexTable{Attribute: "id"}
	if _, _, err := EncryptRelation(r1, []string{"id"}, []*IndexTable{itBad}, &key.PublicKey, 1); err == nil {
		t.Error("uncovering index table accepted")
	}
}

// Property: for random int domains, OverlapPairs includes every pair of
// partitions that actually share an active value.
func TestOverlapPairsComplete(t *testing.T) {
	f := func(seedVals []uint8, k1, k2 uint8) bool {
		if len(seedVals) == 0 {
			return true
		}
		uniq := map[int64]bool{}
		for _, v := range seedVals {
			uniq[int64(v%64)] = true
		}
		var dom []rel.Value
		for v := range uniq {
			dom = append(dom, rel.Int(v))
		}
		// sort
		for i := range dom {
			for j := i + 1; j < len(dom); j++ {
				if dom[j].Compare(dom[i]) < 0 {
					dom[i], dom[j] = dom[j], dom[i]
				}
			}
		}
		p1, err := PartitionDomain(dom, int(k1%5)+1, EquiDepth)
		if err != nil {
			return false
		}
		p2, err := PartitionDomain(dom, int(k2%5)+1, EquiWidth)
		if err != nil {
			return false
		}
		it1, _ := BuildIndexTable("a", p1)
		it2, _ := BuildIndexTable("a", p2)
		pairs := OverlapPairs(it1, it2)
		inPairs := map[IndexPair]bool{}
		for _, p := range pairs {
			inPairs[p] = true
		}
		// Every shared value's partition pair must be admissible.
		for _, v := range dom {
			i1, err1 := it1.IndexOf(v)
			i2, err2 := it2.IndexOf(v)
			if err1 != nil || err2 != nil {
				return false
			}
			if !inPairs[IndexPair{I1: i1, I2: i2}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Multi-attribute DAS (paper §8 future work): one index table per join
// attribute, CondS a conjunction of per-attribute disjunctions.
func TestDASMultiAttribute(t *testing.T) {
	key := clientKey(t)
	s1 := rel.MustSchema("R1",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "dept", Kind: rel.KindString},
		rel.Column{Name: "name", Kind: rel.KindString})
	s2 := rel.MustSchema("R2",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "dept", Kind: rel.KindString},
		rel.Column{Name: "city", Kind: rel.KindString})
	r1 := rel.MustFromTuples(s1,
		rel.Tuple{rel.Int(1), rel.String_("a"), rel.String_("n1")},
		rel.Tuple{rel.Int(1), rel.String_("b"), rel.String_("n2")},
		rel.Tuple{rel.Int(2), rel.String_("a"), rel.String_("n3")},
	)
	r2 := rel.MustFromTuples(s2,
		rel.Tuple{rel.Int(1), rel.String_("a"), rel.String_("c1")},
		rel.Tuple{rel.Int(1), rel.String_("c"), rel.String_("c2")},
		rel.Tuple{rel.Int(2), rel.String_("b"), rel.String_("c3")},
	)
	buildITs := func(r *rel.Relation) []*IndexTable {
		d1, _ := r.ActiveDomain("id")
		d2, _ := r.ActiveDomain("dept")
		p1, err := PartitionDomain(d1, 2, EquiDepth)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := PartitionDomain(d2, 2, HashBuckets)
		if err != nil {
			t.Fatal(err)
		}
		it1, _ := BuildIndexTable("id", p1)
		it2, _ := BuildIndexTable("dept", p2)
		return []*IndexTable{it1, it2}
	}
	its1 := buildITs(r1)
	its2 := buildITs(r2)
	cols := []string{"id", "dept"}
	er1, _, err := EncryptRelation(r1, cols, its1, &ck.PublicKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	er2, _, err := EncryptRelation(r2, cols, its2, &ck.PublicKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := BuildServerQuery(its1, its2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteServerQuery(er1, er2, sq)
	if err != nil {
		t.Fatal(err)
	}
	recv1, _ := hybrid.NewReceiver(key, er1.WrappedKey)
	recv2, _ := hybrid.NewReceiver(key, er2.WrappedKey)
	got, _, err := DecryptServerResult(res, recv1, recv2, s1, s2, cols, cols, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Only (1, "a") matches on both attributes.
	if got.Len() != 1 {
		t.Errorf("multi-attr join size = %d, want 1\n%v", got.Len(), got)
	}
}

func TestExecuteServerQueryValidation(t *testing.T) {
	if _, err := ExecuteServerQuery(&EncryptedRelation{}, &EncryptedRelation{}, ServerQuery{}); err == nil {
		t.Error("empty server query accepted")
	}
	// Tuples with fewer index entries than query attributes are invalid
	// (extra entries are fine: they carry pushed-down filter columns).
	q2 := ServerQuery{PerAttr: [][]IndexPair{{{I1: 1, I2: 1}}, {{I1: 2, I2: 2}}}}
	short := &EncryptedRelation{Tuples: []EncTuple{{Index: []IndexValue{1}}}}
	if _, err := ExecuteServerQuery(short, &EncryptedRelation{}, q2); err == nil {
		t.Error("short index vector accepted (R1)")
	}
	ok1 := &EncryptedRelation{Tuples: []EncTuple{{Index: []IndexValue{1, 2}}}}
	if _, err := ExecuteServerQuery(ok1, short, q2); err == nil {
		t.Error("short index vector accepted (R2)")
	}
	// Negative filter attribute is rejected.
	q3 := ServerQuery{PerAttr: [][]IndexPair{{{I1: 1, I2: 1}}}, Filters1: []IndexFilter{{Attr: -1}}}
	if _, err := ExecuteServerQuery(ok1, ok1, q3); err == nil {
		t.Error("negative filter attr accepted")
	}
}

func TestBuildServerQueryValidation(t *testing.T) {
	if _, err := BuildServerQuery(nil, nil); err == nil {
		t.Error("empty table lists accepted")
	}
	if _, err := BuildServerQuery([]*IndexTable{{}}, nil); err == nil {
		t.Error("mismatched table lists accepted")
	}
}

func TestMaySatisfyIntervals(t *testing.T) {
	iv := Partition{IsInterval: true, Lo: rel.Int(10), Hi: rel.Int(20)}
	cases := []struct {
		op    algebra.CompareOp
		bound int64
		want  bool
	}{
		{algebra.OpEq, 15, true}, {algebra.OpEq, 9, false}, {algebra.OpEq, 21, false},
		{algebra.OpEq, 10, true}, {algebra.OpEq, 20, true},
		{algebra.OpLt, 10, false}, {algebra.OpLt, 11, true},
		{algebra.OpLe, 9, false}, {algebra.OpLe, 10, true},
		{algebra.OpGt, 20, false}, {algebra.OpGt, 19, true},
		{algebra.OpGe, 21, false}, {algebra.OpGe, 20, true},
		{algebra.OpNe, 15, true},
	}
	for _, c := range cases {
		if got := iv.MaySatisfy(c.op, rel.Int(c.bound)); got != c.want {
			t.Errorf("[10,20] MaySatisfy(%v, %d) = %v, want %v", c.op, c.bound, got, c.want)
		}
	}
	// Degenerate interval [c,c] with != c is unsatisfiable.
	single := Partition{IsInterval: true, Lo: rel.Int(5), Hi: rel.Int(5)}
	if single.MaySatisfy(algebra.OpNe, rel.Int(5)) {
		t.Error("[5,5] may satisfy != 5")
	}
	// Kind mismatch is unsatisfiable.
	if iv.MaySatisfy(algebra.OpEq, rel.String_("x")) {
		t.Error("kind-mismatched bound satisfiable")
	}
}

func TestMaySatisfyBuckets(t *testing.T) {
	b := Partition{Members: intDomain(3, 17, 40)}
	if !b.MaySatisfy(algebra.OpLt, rel.Int(5)) {
		t.Error("bucket with 3 should satisfy < 5")
	}
	if b.MaySatisfy(algebra.OpGt, rel.Int(40)) {
		t.Error("bucket max 40 should not satisfy > 40")
	}
	if !b.MaySatisfy(algebra.OpEq, rel.Int(17)) || b.MaySatisfy(algebra.OpEq, rel.Int(18)) {
		t.Error("bucket equality satisfiability wrong")
	}
}

func TestAllowedIndexes(t *testing.T) {
	dom := intDomain(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	parts, _ := PartitionDomain(dom, 5, EquiDepth) // [1,2][3,4][5,6][7,8][9,10]
	it, _ := BuildIndexTable("x", parts)
	allowed := it.AllowedIndexes(algebra.OpLe, rel.Int(4))
	if len(allowed) != 2 {
		t.Errorf("AllowedIndexes(<=4) = %d partitions, want 2", len(allowed))
	}
	all := it.AllowedIndexes(algebra.OpNe, rel.Int(3))
	if len(all) != 5 {
		t.Errorf("AllowedIndexes(!=3) = %d, want 5", len(all))
	}
}

// Server-side filters must never lose true results (soundness of the
// over-approximation).
func TestServerQueryFilterSoundness(t *testing.T) {
	key := clientKey(t)
	r1, r2 := fixtures(t)
	d1, _ := r1.ActiveDomain("id")
	d2, _ := r2.ActiveDomain("id")
	p1, _ := PartitionDomain(d1, 3, EquiDepth)
	p2, _ := PartitionDomain(d2, 3, EquiDepth)
	it1, _ := BuildIndexTable("id", p1)
	it2, _ := BuildIndexTable("id", p2)
	er1, _, _ := EncryptRelation(r1, []string{"id"}, []*IndexTable{it1}, &key.PublicKey, 1)
	er2, _, _ := EncryptRelation(r2, []string{"id"}, []*IndexTable{it2}, &key.PublicKey, 1)
	sq, _ := BuildServerQuery([]*IndexTable{it1}, []*IndexTable{it2})
	// Push down "R1.id >= 5": ids 5,5,9 remain on the left.
	sq.Filters1 = []IndexFilter{{Attr: 0, Allowed: it1.AllowedIndexes(algebra.OpGe, rel.Int(5))}}
	res, err := ExecuteServerQuery(er1, er2, sq)
	if err != nil {
		t.Fatal(err)
	}
	recv1, _ := hybrid.NewReceiver(key, er1.WrappedKey)
	recv2, _ := hybrid.NewReceiver(key, er2.WrappedKey)
	got, _, err := DecryptServerResult(res, recv1, recv2, r1.Schema(), r2.Schema(), []string{"id"}, []string{"id"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// True answer for id>=5: the two id=5 tuples joining id=5 on the right.
	count := 0
	for _, tup := range got.Tuples() {
		i := got.Schema().IndexOf("R1.id")
		if tup[i].AsInt() >= 5 {
			count++
		}
	}
	if count != 2 {
		t.Errorf("filtered join kept %d id>=5 tuples, want 2\n%v", count, got)
	}
}
