// Package das implements the Database-as-a-Service substrate of the
// paper's Section 3 protocol (after Hacıgümüş, Iyer, Li, Mehrotra,
// SIGMOD'02): bucketization of the join attribute's active domain, index
// tables mapping partitions to opaque index values, row-wise encrypted
// relations R^S(Etuple, A^S_join), and the server/client query split
//
//	R_C = q_S(R1^S, R2^S) = σ_CondS(R1^S × R2^S)
//	q_C(decrypt(R_C)) = σ_CondC(decrypt(R_C)),  CondC: R1.A_join = R2.A_join
//
// where CondS is the disjunction over index pairs of overlapping
// partitions. The mediation layer (internal/mediation) orchestrates who
// computes what; this package holds the mechanics.
package das

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/relation"
)

// Strategy selects how the active domain is partitioned.
type Strategy uint8

const (
	// EquiWidth splits the active value range into equal-width intervals
	// (INT attributes only).
	EquiWidth Strategy = iota
	// EquiDepth splits the sorted active domain into partitions holding
	// (nearly) equal numbers of distinct values (any ordered kind).
	EquiDepth
	// HashBuckets assigns values to buckets by a hash of their canonical
	// encoding (any kind, including small categorical domains).
	HashBuckets
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case EquiWidth:
		return "equi-width"
	case EquiDepth:
		return "equi-depth"
	case HashBuckets:
		return "hash-buckets"
	default:
		return "unknown"
	}
}

// Partition is one partition of the active domain: either a closed value
// interval [Lo, Hi] or an explicit member set (hash bucket).
type Partition struct {
	// IsInterval distinguishes interval partitions from bucket partitions.
	IsInterval bool
	// Lo and Hi are the inclusive interval bounds (interval partitions).
	Lo, Hi relation.Value
	// Members is the sorted member list (bucket partitions).
	Members []relation.Value
	// Bucket is the bucket ordinal (bucket partitions); two sources using
	// the same bucket count assign a value to the same ordinal, which is
	// how bucket overlap is decided without comparing member sets.
	Bucket int
	// BucketCount is the total number of buckets of the partitioning this
	// bucket belongs to.
	BucketCount int
}

// Contains reports whether the partition covers v.
func (p Partition) Contains(v relation.Value) bool {
	if p.IsInterval {
		if v.Kind() != p.Lo.Kind() {
			return false
		}
		return p.Lo.Compare(v) <= 0 && v.Compare(p.Hi) <= 0
	}
	if p.BucketCount > 0 {
		return bucketOf(v, p.BucketCount) == p.Bucket
	}
	for _, m := range p.Members {
		if m.Kind() == v.Kind() && m.Equal(v) {
			return true
		}
	}
	return false
}

// Overlaps reports whether two partitions (possibly produced by different
// sources with different strategies) can share a value: interval-interval
// by range intersection, bucket-bucket by ordinal (same bucket count) or
// member intersection, and mixed by membership in the interval.
func (p Partition) Overlaps(q Partition) bool {
	switch {
	case p.IsInterval && q.IsInterval:
		if p.Lo.Kind() != q.Lo.Kind() {
			return false
		}
		return p.Lo.Compare(q.Hi) <= 0 && q.Lo.Compare(p.Hi) <= 0
	case !p.IsInterval && !q.IsInterval:
		if p.BucketCount > 0 && p.BucketCount == q.BucketCount {
			return p.Bucket == q.Bucket
		}
		// Cross-partitioning buckets: compare explicit member lists (the
		// hash-assignment shortcut of Contains does not apply across
		// different bucket counts).
		for _, m := range p.Members {
			for _, n := range q.Members {
				if m.Kind() == n.Kind() && m.Equal(n) {
					return true
				}
			}
		}
		return false
	case p.IsInterval:
		return q.overlapsInterval(p)
	default:
		return p.overlapsInterval(q)
	}
}

func (p Partition) overlapsInterval(iv Partition) bool {
	for _, m := range p.Members {
		if iv.Contains(m) {
			return true
		}
	}
	return false
}

// bucketOf hashes a value into one of k buckets (FNV-1a over the canonical
// encoding; both sources compute the same assignment for the same k).
func bucketOf(v relation.Value, k int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range v.Encode(nil) {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(k))
}

// PartitionDomain partitions a non-empty active domain (sorted distinct
// values, as produced by Relation.ActiveDomain) into at most k partitions
// using the given strategy.
// seclint:source plaintext bucket domain (partitioning sees every value)
func PartitionDomain(dom []relation.Value, k int, strategy Strategy) ([]Partition, error) {
	if len(dom) == 0 {
		return nil, fmt.Errorf("das: empty active domain")
	}
	if k < 1 {
		return nil, fmt.Errorf("das: partition count %d < 1", k)
	}
	switch strategy {
	case EquiWidth:
		return equiWidth(dom, k)
	case EquiDepth:
		return equiDepth(dom, k), nil
	case HashBuckets:
		return hashBuckets(dom, k), nil
	default:
		return nil, fmt.Errorf("das: unknown strategy %d", strategy)
	}
}

func equiWidth(dom []relation.Value, k int) ([]Partition, error) {
	if dom[0].Kind() != relation.KindInt {
		return nil, fmt.Errorf("das: equi-width needs INT attributes, got %v", dom[0].Kind())
	}
	lo, hi := dom[0].AsInt(), dom[len(dom)-1].AsInt()
	span := hi - lo + 1
	if int64(k) > span {
		k = int(span)
	}
	width := span / int64(k)
	rem := span % int64(k)
	var parts []Partition
	cur := lo
	for i := 0; i < k; i++ {
		w := width
		if int64(i) < rem {
			w++
		}
		parts = append(parts, Partition{
			IsInterval: true,
			Lo:         relation.Int(cur),
			Hi:         relation.Int(cur + w - 1),
		})
		cur += w
	}
	return parts, nil
}

func equiDepth(dom []relation.Value, k int) []Partition {
	if k > len(dom) {
		k = len(dom)
	}
	per := len(dom) / k
	rem := len(dom) % k
	var parts []Partition
	i := 0
	for p := 0; p < k; p++ {
		n := per
		if p < rem {
			n++
		}
		parts = append(parts, Partition{
			IsInterval: true,
			Lo:         dom[i],
			Hi:         dom[i+n-1],
		})
		i += n
	}
	return parts
}

func hashBuckets(dom []relation.Value, k int) []Partition {
	members := make([][]relation.Value, k)
	for _, v := range dom {
		b := bucketOf(v, k)
		members[b] = append(members[b], v)
	}
	var parts []Partition
	for b, ms := range members {
		if len(ms) == 0 {
			continue
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i].Compare(ms[j]) < 0 })
		parts = append(parts, Partition{Members: ms, Bucket: b, BucketCount: k})
	}
	return parts
}

// IndexValue is the opaque identifier of a partition; the paper's "index".
type IndexValue uint64

// IndexEntry maps one partition to its index value.
type IndexEntry struct {
	Partition Partition
	Index     IndexValue
}

// IndexTable is ITable_{Ri.Ajoin}: the mapping from partitions of the
// active domain to index values. The table itself is confidential (it
// reveals partition ranges) and travels hybrid-encrypted to the client.
type IndexTable struct {
	// Attribute is the indexed join attribute name.
	Attribute string
	// Entries are the partitions with their index values.
	Entries []IndexEntry
}

// BuildIndexTable assigns a fresh random unique index value to every
// partition. Random identifiers play the role of the paper's
// "collision-free hash of partition properties" while revealing nothing
// about the partitions themselves.
func BuildIndexTable(attribute string, parts []Partition) (*IndexTable, error) {
	it := &IndexTable{Attribute: attribute}
	seen := make(map[IndexValue]bool, len(parts))
	for _, p := range parts {
		for {
			var buf [8]byte
			if _, err := rand.Read(buf[:]); err != nil {
				return nil, fmt.Errorf("das: index value: %w", err)
			}
			iv := IndexValue(binary.BigEndian.Uint64(buf[:]))
			if !seen[iv] {
				seen[iv] = true
				it.Entries = append(it.Entries, IndexEntry{Partition: p, Index: iv})
				break
			}
		}
	}
	return it, nil
}

// IndexOf returns the index value of the partition containing v.
func (it *IndexTable) IndexOf(v relation.Value) (IndexValue, error) {
	for _, e := range it.Entries {
		if e.Partition.Contains(v) {
			return e.Index, nil
		}
	}
	return 0, fmt.Errorf("das: value %v not covered by index table for %s", v, it.Attribute)
}

// OverlapPairs computes, for two index tables, the index-value pairs of
// overlapping partitions — the p1 ∩ p2 ≠ ∅ pairs that constitute CondS.
// This runs at the client (client setting of the query translator), which
// is the only party holding both plaintext index tables.
func OverlapPairs(it1, it2 *IndexTable) []IndexPair {
	var pairs []IndexPair
	for _, e1 := range it1.Entries {
		for _, e2 := range it2.Entries {
			if e1.Partition.Overlaps(e2.Partition) {
				pairs = append(pairs, IndexPair{I1: e1.Index, I2: e2.Index})
			}
		}
	}
	return pairs
}

// MaySatisfy reports whether some value covered by the partition could
// satisfy "value op bound" — the satisfiability test behind selection
// pushdown: the client includes a partition's index value in the allowed
// set exactly when this returns true, so the mediator-side filter is
// always a superset of the true selection (no false negatives).
func (p Partition) MaySatisfy(op algebra.CompareOp, bound relation.Value) bool {
	if p.IsInterval {
		if p.Lo.Kind() != bound.Kind() {
			return false
		}
		lo, hi := p.Lo.Compare(bound), p.Hi.Compare(bound)
		switch op {
		case algebra.OpEq:
			return lo <= 0 && hi >= 0
		case algebra.OpNe:
			// Only an exactly-[c,c] interval is all-c.
			return !(lo == 0 && hi == 0)
		case algebra.OpLt:
			return lo < 0
		case algebra.OpLe:
			return lo <= 0
		case algebra.OpGt:
			return hi > 0
		case algebra.OpGe:
			return hi >= 0
		default:
			return true
		}
	}
	for _, m := range p.Members {
		if m.Kind() != bound.Kind() {
			continue
		}
		c := m.Compare(bound)
		ok := false
		switch op {
		case algebra.OpEq:
			ok = c == 0
		case algebra.OpNe:
			ok = c != 0
		case algebra.OpLt:
			ok = c < 0
		case algebra.OpLe:
			ok = c <= 0
		case algebra.OpGt:
			ok = c > 0
		case algebra.OpGe:
			ok = c >= 0
		default:
			ok = true
		}
		if ok {
			return true
		}
	}
	return false
}

// AllowedIndexes returns the index values of all partitions that may
// satisfy the condition — the transported form of a pushed-down selection.
func (it *IndexTable) AllowedIndexes(op algebra.CompareOp, bound relation.Value) []IndexValue {
	var out []IndexValue
	for _, e := range it.Entries {
		if e.Partition.MaySatisfy(op, bound) {
			out = append(out, e.Index)
		}
	}
	return out
}
