package relation

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) Schema {
	t.Helper()
	return MustSchema("R",
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString},
		Column{Name: "score", Kind: KindFloat},
	)
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("R", Column{Name: "", Kind: KindInt}); err == nil {
		t.Error("empty column name accepted")
	}
	if _, err := NewSchema("R", Column{Name: "a", Kind: KindInvalid}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := NewSchema("R", Column{Name: "a", Kind: KindInt}, Column{Name: "a", Kind: KindInt}); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestSchemaIndexOf(t *testing.T) {
	s := testSchema(t)
	if i := s.IndexOf("name"); i != 1 {
		t.Errorf("IndexOf(name) = %d, want 1", i)
	}
	if i := s.IndexOf("R.name"); i != 1 {
		t.Errorf("IndexOf(R.name) = %d, want 1", i)
	}
	if i := s.IndexOf("S.name"); i != -1 {
		t.Errorf("IndexOf(S.name) = %d, want -1", i)
	}
	if i := s.IndexOf("missing"); i != -1 {
		t.Errorf("IndexOf(missing) = %d, want -1", i)
	}
	q := s.Qualify()
	if i := q.IndexOf("name"); i != 1 {
		t.Errorf("qualified IndexOf(name) = %d, want 1", i)
	}
	if i := q.IndexOf("R.name"); i != 1 {
		t.Errorf("qualified IndexOf(R.name) = %d, want 1", i)
	}
}

func TestSchemaProjectAndConcat(t *testing.T) {
	s := testSchema(t)
	p, err := s.Project("score", "id")
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 || p.Columns[0].Name != "score" || p.Columns[1].Name != "id" {
		t.Errorf("Project wrong: %v", p)
	}
	if _, err := s.Project("nope"); err == nil {
		t.Error("Project(nope) succeeded")
	}

	o := MustSchema("S", Column{Name: "id", Kind: KindInt}, Column{Name: "city", Kind: KindString})
	c, err := s.Concat(o)
	if err != nil {
		t.Fatal(err)
	}
	// id collides, so both sides must be qualified.
	if c.IndexOf("R.id") < 0 || c.IndexOf("S.id") < 0 {
		t.Errorf("Concat did not qualify colliding columns: %v", c)
	}
	if c.Arity() != 5 {
		t.Errorf("Concat arity = %d, want 5", c.Arity())
	}
}

func TestSchemaKindOfAndString(t *testing.T) {
	s := testSchema(t)
	k, err := s.KindOf("score")
	if err != nil || k != KindFloat {
		t.Errorf("KindOf(score) = %v, %v", k, err)
	}
	if _, err := s.KindOf("zzz"); err == nil {
		t.Error("KindOf(zzz) succeeded")
	}
	if got := s.String(); got != "R(id INT, name TEXT, score FLOAT)" {
		t.Errorf("Schema.String() = %q", got)
	}
}

func TestRelationAppendValidation(t *testing.T) {
	r := New(testSchema(t))
	if err := r.Append(Tuple{Int(1), String_("a")}); err == nil {
		t.Error("short tuple accepted")
	}
	if err := r.Append(Tuple{Int(1), Int(2), Float(3)}); err == nil {
		t.Error("wrong-kind tuple accepted")
	}
	if err := r.Append(Tuple{Int(1), String_("a"), Float(1.5)}); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestActiveDomainAndTupleSet(t *testing.T) {
	s := MustSchema("R", Column{Name: "k", Kind: KindInt}, Column{Name: "v", Kind: KindString})
	r := MustFromTuples(s,
		Tuple{Int(3), String_("c")},
		Tuple{Int(1), String_("a")},
		Tuple{Int(3), String_("c2")},
		Tuple{Int(2), String_("b")},
		Tuple{Int(1), String_("a2")},
	)
	dom, err := r.ActiveDomain("k")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3}
	if len(dom) != len(want) {
		t.Fatalf("ActiveDomain size = %d, want %d", len(dom), len(want))
	}
	for i, w := range want {
		if dom[i].AsInt() != w {
			t.Errorf("dom[%d] = %v, want %d", i, dom[i], w)
		}
	}
	ts, err := r.TupleSet("k", Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Errorf("TupleSet(3) size = %d, want 2", len(ts))
	}
	if _, err := r.ActiveDomain("nope"); err == nil {
		t.Error("ActiveDomain(nope) succeeded")
	}
	if _, err := r.TupleSet("nope", Int(1)); err == nil {
		t.Error("TupleSet(nope) succeeded")
	}
}

func TestGroupByColumn(t *testing.T) {
	s := MustSchema("R", Column{Name: "k", Kind: KindString}, Column{Name: "v", Kind: KindInt})
	r := MustFromTuples(s,
		Tuple{String_("x"), Int(1)},
		Tuple{String_("y"), Int(2)},
		Tuple{String_("x"), Int(3)},
	)
	dom, groups, err := r.GroupByColumn("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(dom) != 2 || len(groups) != 2 {
		t.Fatalf("GroupByColumn: dom=%d groups=%d, want 2/2", len(dom), len(groups))
	}
	kx := string(String_("x").Encode(nil))
	if len(groups[kx]) != 2 {
		t.Errorf("group x size = %d, want 2", len(groups[kx]))
	}
}

func TestEqualMultiset(t *testing.T) {
	s := MustSchema("R", Column{Name: "k", Kind: KindInt})
	a := MustFromTuples(s, Tuple{Int(1)}, Tuple{Int(2)}, Tuple{Int(2)})
	b := MustFromTuples(s, Tuple{Int(2)}, Tuple{Int(1)}, Tuple{Int(2)})
	c := MustFromTuples(s, Tuple{Int(2)}, Tuple{Int(1)}, Tuple{Int(1)})
	if !a.EqualMultiset(b) {
		t.Error("permuted relations reported unequal")
	}
	if a.EqualMultiset(c) {
		t.Error("different multiplicities reported equal")
	}
	// EqualMultiset must not reorder the receiver.
	if a.Tuple(0)[0].AsInt() != 1 {
		t.Error("EqualMultiset mutated receiver order")
	}
}

func TestTupleEncodeDecodeRoundtrip(t *testing.T) {
	s := testSchema(t)
	f := func(id int64, name string, score float64) bool {
		tu := Tuple{Int(id), String_(name), Float(score)}
		enc := tu.Encode(nil)
		got, err := DecodeTuple(s, enc)
		return err == nil && got.Equal(tu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	s := testSchema(t)
	good := Tuple{Int(1), String_("x"), Float(2)}.Encode(nil)
	if _, err := DecodeTuple(s, good[:len(good)-1]); err == nil {
		t.Error("truncated tuple decoded")
	}
	if _, err := DecodeTuple(s, append(append([]byte{}, good...), 0)); err == nil {
		t.Error("tuple with trailing bytes decoded")
	}
	// Kind mismatch: encode in wrong column order.
	bad := Tuple{String_("x"), Int(1), Float(2)}.Encode(nil)
	if _, err := DecodeTuple(s, bad); err == nil {
		t.Error("kind-mismatched tuple decoded")
	}
}

// Property: tuple encoding is injective over random tuples.
func TestTupleEncodeInjective(t *testing.T) {
	gen := func(r *rand.Rand) Tuple {
		return Tuple{Int(r.Int63n(50)), String_(string(rune('a' + r.Intn(5)))), Float(float64(r.Intn(4)))}
	}
	f := func(seed1, seed2 int64) bool {
		a := gen(rand.New(rand.NewSource(seed1)))
		b := gen(rand.New(rand.NewSource(seed2)))
		ea, eb := a.Encode(nil), b.Encode(nil)
		if a.Equal(b) {
			return bytes.Equal(ea, eb)
		}
		return !bytes.Equal(ea, eb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTupleCompare(t *testing.T) {
	a := Tuple{Int(1), String_("b")}
	b := Tuple{Int(1), String_("c")}
	c := Tuple{Int(1)}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Tuple.Compare lexicographic order broken")
	}
	if c.Compare(a) != -1 || a.Compare(c) != 1 {
		t.Error("Tuple.Compare prefix ordering broken")
	}
}

func TestCSVRoundtrip(t *testing.T) {
	s := testSchema(t)
	r := MustFromTuples(s,
		Tuple{Int(1), String_("alice, the first"), Float(9.5)},
		Tuple{Int(2), String_("bob\n(newline)"), Float(-0.25)},
	)
	var buf bytes.Buffer
	if err := WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("R", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualMultiset(r) {
		t.Errorf("CSV roundtrip mismatch:\n%v\nvs\n%v", got, r)
	}
	if !got.Schema().Equal(r.Schema()) {
		t.Errorf("CSV schema mismatch: %v vs %v", got.Schema(), r.Schema())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"id\n1\n",                // header without :TYPE
		"id:BLOB\n1\n",           // unknown type
		"id:INT,n:TEXT\n1\n",     // short row
		"id:INT\nnot-a-number\n", // bad value
		"id:INT,id:INT\n1,2\n",   // duplicate column
	}
	for _, c := range cases {
		if _, err := ReadCSV("R", strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", c)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustSchema("R", Column{Name: "k", Kind: KindInt})
	r := MustFromTuples(s, Tuple{Int(1)})
	c := r.Clone()
	c.Tuple(0)[0] = Int(99)
	if r.Tuple(0)[0].AsInt() != 1 {
		t.Error("Clone shares tuple storage with original")
	}
}

func TestRelationString(t *testing.T) {
	s := MustSchema("R", Column{Name: "k", Kind: KindInt}, Column{Name: "v", Kind: KindString})
	r := MustFromTuples(s, Tuple{Int(10), String_("hello")})
	out := r.String()
	for _, want := range []string{"k", "v", "10", "hello", "1 tuples"} {
		if !strings.Contains(out, want) {
			t.Errorf("Relation.String() missing %q:\n%s", want, out)
		}
	}
}

func TestQuickValueGeneratorCoversKinds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	seen := map[Kind]bool{}
	for i := 0; i < 200; i++ {
		seen[randomValue(r).Kind()] = true
	}
	for _, k := range []Kind{KindInt, KindString, KindFloat, KindBool} {
		if !seen[k] {
			t.Errorf("generator never produced %v", k)
		}
	}
	_ = reflect.TypeOf(quickValue{}) // keep reflect import honest
}
