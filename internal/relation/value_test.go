package relation

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomValue produces an arbitrary valid Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Int(r.Int63() - r.Int63())
	case 1:
		n := r.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return String_(string(b))
	case 2:
		return Float(r.NormFloat64() * 1e6)
	default:
		return Bool(r.Intn(2) == 0)
	}
}

// quickValue adapts randomValue to testing/quick generation.
type quickValue struct{ V Value }

func (quickValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickValue{V: randomValue(r)})
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt: "INT", KindString: "TEXT", KindFloat: "FLOAT",
		KindBool: "BOOL", KindInvalid: "INVALID",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"INT", KindInt}, {"integer", KindInt}, {" Bigint ", KindInt},
		{"TEXT", KindString}, {"varchar", KindString}, {"STRING", KindString},
		{"float", KindFloat}, {"DOUBLE", KindFloat}, {"real", KindFloat},
		{"bool", KindBool}, {"BOOLEAN", KindBool},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) succeeded, want error")
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(7).AsInt() != 7 {
		t.Error("Int accessor")
	}
	if String_("x").AsString() != "x" {
		t.Error("String accessor")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("Float accessor")
	}
	if !Bool(true).AsBool() {
		t.Error("Bool accessor")
	}
	if (Value{}).Valid() {
		t.Error("zero value reports Valid")
	}
	defer func() {
		if recover() == nil {
			t.Error("AsInt on string did not panic")
		}
	}()
	_ = String_("x").AsInt()
}

func TestValueEqualKinds(t *testing.T) {
	if Int(1).Equal(Float(1)) {
		t.Error("Int(1) equals Float(1); cross-kind equality must be false")
	}
	if Int(0).Equal(Bool(false)) {
		t.Error("cross-kind equality must be false")
	}
	if !Int(42).Equal(Int(42)) || Int(42).Equal(Int(43)) {
		t.Error("Int equality broken")
	}
}

func TestValueCompare(t *testing.T) {
	for _, tc := range []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{Float(1.5), Float(2.5), -1},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Float(math.NaN()), Float(math.NaN()), 0},
		{Float(math.NaN()), Float(-1e300), -1},
		{Float(0), Float(math.NaN()), 1},
	} {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-kind Compare did not panic")
		}
	}()
	Int(1).Compare(String_("1"))
}

func TestParseStringRoundtrip(t *testing.T) {
	for _, v := range []Value{Int(-12345), String_("hello, world"), Float(3.25), Bool(true), Bool(false)} {
		got, err := Parse(v.Kind(), v.String())
		if err != nil {
			t.Fatalf("Parse(%v, %q): %v", v.Kind(), v.String(), err)
		}
		if !got.Equal(v) {
			t.Errorf("Parse/String roundtrip: got %v, want %v", got, v)
		}
	}
	if _, err := Parse(KindInt, "not-an-int"); err == nil {
		t.Error("Parse(INT, garbage) succeeded")
	}
	if _, err := Parse(KindInvalid, "x"); err == nil {
		t.Error("Parse into invalid kind succeeded")
	}
}

// Property: Encode is injective — equal values encode equal, distinct
// values encode distinct.
func TestEncodeInjective(t *testing.T) {
	f := func(a, b quickValue) bool {
		ea := a.V.Encode(nil)
		eb := b.V.Encode(nil)
		if a.V.Equal(b.V) {
			return bytes.Equal(ea, eb)
		}
		return !bytes.Equal(ea, eb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: DecodeValue inverts Encode and consumes exactly the encoding.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	f := func(a quickValue) bool {
		enc := a.V.Encode(nil)
		got, n, err := DecodeValue(enc)
		return err == nil && n == len(enc) && got.Equal(a.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindInt)},                // truncated int
		{byte(KindString), 0, 0, 0, 5}, // length beyond input
		{byte(KindFloat), 1, 2},        // truncated float
		{byte(KindBool)},               // truncated bool
		{99},                           // bad tag
	}
	for _, c := range cases {
		if _, _, err := DecodeValue(c); err == nil {
			t.Errorf("DecodeValue(% x) succeeded, want error", c)
		}
	}
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestCompareConsistency(t *testing.T) {
	f := func(a, b quickValue) bool {
		if a.V.Kind() != b.V.Kind() {
			return true // Compare requires same kind
		}
		c1 := a.V.Compare(b.V)
		c2 := b.V.Compare(a.V)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == a.V.Equal(b.V) || a.V.Kind() == KindFloat // NaN==NaN in Compare but not bit-equal path is fine
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
