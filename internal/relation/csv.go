package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// ReadCSV loads a relation from CSV. The first record must be a header of
// the form "name:TYPE" per column (e.g. "id:INT,name:TEXT"); subsequent
// records are parsed against the declared types. relName names the loaded
// relation.
func ReadCSV(relName string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %w", err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		name, typ, ok := strings.Cut(h, ":")
		if !ok {
			return nil, fmt.Errorf("relation: csv header field %q: want name:TYPE", h)
		}
		k, err := ParseKind(typ)
		if err != nil {
			return nil, err
		}
		cols[i] = Column{Name: strings.TrimSpace(name), Kind: k}
	}
	schema, err := NewSchema(relName, cols...)
	if err != nil {
		return nil, err
	}
	rel := New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read csv line %d: %w", line, err)
		}
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("relation: csv line %d: %d fields, want %d", line, len(rec), len(cols))
		}
		t := make(Tuple, len(cols))
		for i, f := range rec {
			v, err := Parse(cols[i].Kind, f)
			if err != nil {
				return nil, fmt.Errorf("relation: csv line %d: %w", line, err)
			}
			t[i] = v
		}
		rel.tuples = append(rel.tuples, t)
	}
	return rel, nil
}

// WriteCSV writes the relation in the format ReadCSV accepts.
func WriteCSV(r *Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, r.schema.Arity())
	for i, c := range r.schema.Columns {
		header[i] = c.Name + ":" + c.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation: write csv header: %w", err)
	}
	row := make([]string, r.schema.Arity())
	for _, t := range r.tuples {
		for i, v := range t {
			row[i] = v.String()
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("relation: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
