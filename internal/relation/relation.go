package relation

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row of a relation: values in schema column order.
type Tuple []Value

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports value-wise equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically column by column. Both tuples
// must conform to the same schema.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// Encode appends a deterministic byte encoding of the whole tuple to dst.
// This is the plaintext that the hybrid scheme encrypts as an "etuple" in
// the DAS protocol and inside tuple sets in the other two protocols.
func (t Tuple) Encode(dst []byte) []byte {
	for _, v := range t {
		dst = v.Encode(dst)
	}
	return dst
}

// DecodeTuple decodes a tuple of the given schema from src. The entire
// input must be consumed.
func DecodeTuple(s Schema, src []byte) (Tuple, error) {
	t := make(Tuple, 0, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		v, n, err := DecodeValue(src)
		if err != nil {
			return nil, fmt.Errorf("relation: decode tuple column %d: %w", i, err)
		}
		if v.Kind() != s.Columns[i].Kind {
			return nil, fmt.Errorf("relation: decode tuple: column %d is %v, schema wants %v", i, v.Kind(), s.Columns[i].Kind)
		}
		src = src[n:]
		t = append(t, v)
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("relation: decode tuple: %d trailing bytes", len(src))
	}
	return t, nil
}

// Relation is a bag (multiset) of tuples under a schema. The in-memory
// representation keeps insertion order; multiset semantics are used for
// equality so that protocol results can be compared independent of
// delivery order.
type Relation struct {
	schema Schema
	tuples []Tuple
}

// New creates an empty relation with the given schema.
func New(s Schema) *Relation {
	return &Relation{schema: s}
}

// FromTuples creates a relation and appends the given tuples, validating
// each against the schema.
func FromTuples(s Schema, tuples ...Tuple) (*Relation, error) {
	r := New(s)
	for _, t := range tuples {
		if err := r.Append(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustFromTuples is FromTuples but panics on error; for tests and examples.
func MustFromTuples(s Schema, tuples ...Tuple) *Relation {
	r, err := FromTuples(s, tuples...)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of tuples (with multiplicity).
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the i-th tuple. The caller must not mutate it.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the underlying tuple slice. The caller must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Append validates t against the schema and adds it to the relation.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("relation: %s: tuple arity %d, schema arity %d", r.schema.Relation, len(t), r.schema.Arity())
	}
	for i, v := range t {
		if v.Kind() != r.schema.Columns[i].Kind {
			return fmt.Errorf("relation: %s: column %s wants %v, got %v", r.schema.Relation, r.schema.Columns[i].Name, r.schema.Columns[i].Kind, v.Kind())
		}
	}
	r.tuples = append(r.tuples, t)
	return nil
}

// MustAppend is Append but panics on error.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{schema: r.schema.Rename(r.schema.Relation), tuples: make([]Tuple, len(r.tuples))}
	for i, t := range r.tuples {
		c.tuples[i] = t.Clone()
	}
	return c
}

// Rename returns a shallow copy of the relation under a new name.
func (r *Relation) Rename(name string) *Relation {
	return &Relation{schema: r.schema.Rename(name), tuples: r.tuples}
}

// Sort orders the tuples lexicographically in place and returns the
// relation for chaining. Protocol results are sorted before comparison in
// tests.
func (r *Relation) Sort() *Relation {
	sort.Slice(r.tuples, func(i, j int) bool { return r.tuples[i].Compare(r.tuples[j]) < 0 })
	return r
}

// EqualMultiset reports whether two relations contain the same tuples with
// the same multiplicities, regardless of order. Schemas must be compatible
// (Equal). It does not mutate either relation.
func (r *Relation) EqualMultiset(o *Relation) bool {
	if !r.schema.Equal(o.schema) || len(r.tuples) != len(o.tuples) {
		return false
	}
	a := r.Clone().Sort()
	b := o.Clone().Sort()
	for i := range a.tuples {
		if !a.tuples[i].Equal(b.tuples[i]) {
			return false
		}
	}
	return true
}

// ActiveDomain returns the sorted set of distinct values appearing in the
// named column — domactive(A) in the paper's notation. The commutative and
// PM protocols operate on exactly this set.
func (r *Relation) ActiveDomain(column string) ([]Value, error) {
	i := r.schema.IndexOf(column)
	if i < 0 {
		return nil, fmt.Errorf("relation: %s has no column %q", r.schema.Relation, column)
	}
	vals := make([]Value, 0, len(r.tuples))
	for _, t := range r.tuples {
		vals = append(vals, t[i])
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].Compare(vals[b]) < 0 })
	out := vals[:0]
	for _, v := range vals {
		if len(out) == 0 || !out[len(out)-1].Equal(v) {
			out = append(out, v)
		}
	}
	return append([]Value(nil), out...), nil
}

// TupleSet returns Tup(a) for the named join column: all tuples whose value
// in that column equals a (paper, Section 4.1). The returned slice aliases
// the relation's tuples.
func (r *Relation) TupleSet(column string, a Value) ([]Tuple, error) {
	i := r.schema.IndexOf(column)
	if i < 0 {
		return nil, fmt.Errorf("relation: %s has no column %q", r.schema.Relation, column)
	}
	var out []Tuple
	for _, t := range r.tuples {
		if t[i].Equal(a) {
			out = append(out, t)
		}
	}
	return out, nil
}

// GroupByColumn partitions the relation's tuples by the value of the named
// column, returning the active domain (sorted) and the map from each value
// (by encoded key) to its tuple set. This is the bulk form of TupleSet used
// by the protocol implementations.
func (r *Relation) GroupByColumn(column string) ([]Value, map[string][]Tuple, error) {
	i := r.schema.IndexOf(column)
	if i < 0 {
		return nil, nil, fmt.Errorf("relation: %s has no column %q", r.schema.Relation, column)
	}
	groups := make(map[string][]Tuple)
	for _, t := range r.tuples {
		k := string(t[i].Encode(nil))
		groups[k] = append(groups[k], t)
	}
	dom, err := r.ActiveDomain(column)
	if err != nil {
		return nil, nil, err
	}
	return dom, groups, nil
}

// Filter returns a new relation containing the tuples for which keep
// returns true.
func (r *Relation) Filter(keep func(Tuple) bool) *Relation {
	out := New(r.schema)
	for _, t := range r.tuples {
		if keep(t) {
			out.tuples = append(out.tuples, t)
		}
	}
	return out
}

// String renders the relation as an aligned text table, sorted output not
// implied; mainly for examples and debugging.
func (r *Relation) String() string {
	var b strings.Builder
	widths := make([]int, r.schema.Arity())
	header := make([]string, r.schema.Arity())
	for i, c := range r.schema.Columns {
		header[i] = c.Name
		widths[i] = len(c.Name)
	}
	rows := make([][]string, len(r.tuples))
	for ri, t := range r.tuples {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		rows[ri] = row
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	if r.schema.Relation != "" {
		fmt.Fprintf(&b, "-- %s (%d tuples)\n", r.schema.Relation, len(r.tuples))
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// KeyGroup is one group of a composite-key grouping: the (possibly
// multi-column) join key and the tuples carrying it.
type KeyGroup struct {
	Key    []Value
	Tuples []Tuple
}

// EncodeValues appends the canonical encodings of a value list — the
// composite-key analogue of Value.Encode, used by the protocols to treat a
// multi-attribute join key as one opaque byte string.
func EncodeValues(vals []Value, dst []byte) []byte {
	for _, v := range vals {
		dst = v.Encode(dst)
	}
	return dst
}

// GroupByColumns partitions the relation by the composite key over the
// named columns, returning groups sorted by key. With a single column this
// is the multi-column generalization of GroupByColumn; the protocols use
// it to compute Tup_i(a) for composite join keys (the paper's
// multi-attribute future-work extension).
func (r *Relation) GroupByColumns(cols []string) ([]KeyGroup, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: GroupByColumns needs at least one column")
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.schema.IndexOf(c)
		if idx[i] < 0 {
			return nil, fmt.Errorf("relation: %s has no column %q", r.schema.Relation, c)
		}
	}
	byKey := make(map[string]*KeyGroup)
	var order []string
	for _, t := range r.tuples {
		key := make([]Value, len(idx))
		for i, j := range idx {
			key[i] = t[j]
		}
		k := string(EncodeValues(key, nil))
		g, ok := byKey[k]
		if !ok {
			g = &KeyGroup{Key: key}
			byKey[k] = g
			order = append(order, k)
		}
		g.Tuples = append(g.Tuples, t)
	}
	sort.Strings(order)
	out := make([]KeyGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out, nil
}

// EncodeTupleSet serializes a tuple list compactly: a uvarint count
// followed by uvarint-length-prefixed canonical tuple encodings. This is
// the wire form of Tup_i(a) inside protocol payloads; it is far denser
// than generic encodings, which matters when a tuple set must fit into a
// homomorphic plaintext (PM inline payload mode).
func EncodeTupleSet(tuples []Tuple) []byte {
	out := binary.AppendUvarint(nil, uint64(len(tuples)))
	for _, t := range tuples {
		enc := t.Encode(nil)
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
	}
	return out
}

// DecodeTupleSet parses an EncodeTupleSet blob against a schema.
func DecodeTupleSet(s Schema, b []byte) ([]Tuple, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, fmt.Errorf("relation: decode tuple set: bad count")
	}
	b = b[k:]
	out := make([]Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(b)
		if k <= 0 || uint64(len(b[k:])) < l {
			return nil, fmt.Errorf("relation: decode tuple set: truncated entry %d", i)
		}
		t, err := DecodeTuple(s, b[k:k+int(l)])
		if err != nil {
			return nil, err
		}
		b = b[k+int(l):]
		out = append(out, t)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("relation: decode tuple set: %d trailing bytes", len(b))
	}
	return out, nil
}
