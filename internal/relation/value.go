// Package relation implements the relational substrate of the secure
// mediation system: typed values, schemas, tuples and relations, together
// with deterministic byte encodings that the cryptographic protocols rely
// on (equal values must encode to equal byte strings, and distinct values
// to distinct byte strings).
//
// The package is deliberately self-contained: the mediator architecture of
// Biskup/Tsatedem/Wiese (ICDE 2007) assumes each datasource manages plain
// relations and that the mediator understands a homogeneous global schema.
package relation

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the attribute types supported by the mediation system.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it is never valid in a schema.
	KindInvalid Kind = iota
	// KindInt is a 64-bit signed integer attribute.
	KindInt
	// KindString is a UTF-8 string attribute.
	KindString
	// KindFloat is a 64-bit floating point attribute.
	KindFloat
	// KindBool is a boolean attribute.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindString:
		return "TEXT"
	case KindFloat:
		return "FLOAT"
	case KindBool:
		return "BOOL"
	default:
		return "INVALID"
	}
}

// ParseKind converts a type name (as used in schema declarations and CSV
// headers) into a Kind. It accepts the names produced by Kind.String as
// well as a few common aliases, case-insensitively.
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INT", "INTEGER", "BIGINT":
		return KindInt, nil
	case "TEXT", "STRING", "VARCHAR", "CHAR":
		return KindString, nil
	case "FLOAT", "DOUBLE", "REAL":
		return KindFloat, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	default:
		return KindInvalid, fmt.Errorf("relation: unknown type %q", s)
	}
}

// Value is a dynamically typed attribute value. The zero Value has
// KindInvalid and compares unequal to every valid value.
//
// Value is a small immutable struct passed by value throughout the system.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// String_ returns a string value. (Named with a trailing underscore because
// String is reserved for fmt.Stringer.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Float returns a floating point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; it panics if the value is not KindInt.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("relation: AsInt on %v value", v.kind))
	}
	return v.i
}

// AsString returns the string payload; it panics if the value is not KindString.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relation: AsString on %v value", v.kind))
	}
	return v.s
}

// AsFloat returns the float payload; it panics if the value is not KindFloat.
func (v Value) AsFloat() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("relation: AsFloat on %v value", v.kind))
	}
	return v.f
}

// AsBool returns the boolean payload; it panics if the value is not KindBool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("relation: AsBool on %v value", v.kind))
	}
	return v.b
}

// Valid reports whether the value has a valid kind.
func (v Value) Valid() bool { return v.kind != KindInvalid }

// Equal reports whether two values are identical (same kind, same payload).
// Values of different kinds are never equal; no implicit coercion happens
// anywhere in the system, mirroring the paper's assumption of a homogeneous
// global schema.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInt:
		return v.i == o.i
	case KindString:
		return v.s == o.s
	case KindFloat:
		return v.f == o.f
	case KindBool:
		return v.b == o.b
	default:
		return false
	}
}

// Compare orders two values of the same kind: -1 if v < o, 0 if equal,
// +1 if v > o. It panics on kind mismatch (schema checking happens before
// evaluation). Booleans order false < true. NaN floats order before all
// other floats and equal to each other, so that sorting is total.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		panic(fmt.Sprintf("relation: comparing %v with %v", v.kind, o.kind))
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindFloat:
		vn, on := math.IsNaN(v.f), math.IsNaN(o.f)
		switch {
		case vn && on:
			return 0
		case vn:
			return -1
		case on:
			return 1
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case !v.b && o.b:
			return -1
		case v.b && !o.b:
			return 1
		}
		return 0
	default:
		panic("relation: comparing invalid values")
	}
}

// String renders the value for display and CSV output.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// Parse converts a textual representation into a value of the given kind.
// It is the inverse of String for all kinds (modulo float formatting).
func Parse(k Kind, s string) (Value, error) {
	switch k {
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse INT %q: %w", s, err)
		}
		return Int(i), nil
	case KindString:
		return String_(s), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse FLOAT %q: %w", s, err)
		}
		return Float(f), nil
	case KindBool:
		b, err := strconv.ParseBool(strings.TrimSpace(s))
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse BOOL %q: %w", s, err)
		}
		return Bool(b), nil
	default:
		return Value{}, fmt.Errorf("relation: parse into invalid kind")
	}
}

// Encode appends a deterministic, injective byte encoding of the value to
// dst and returns the extended slice. Two values encode to the same bytes
// iff Equal reports true; this property is what lets the cryptographic
// protocols (ideal hashing in the commutative protocol, polynomial-root
// encoding in the PM protocol) treat attribute values as canonical byte
// strings.
//
// Layout: 1 tag byte (the Kind), followed by a fixed 8-byte big-endian
// payload for INT/FLOAT, a single byte for BOOL, or a length-prefixed UTF-8
// string for TEXT.
func (v Value) Encode(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindInt:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.i))
		dst = append(dst, buf[:]...)
	case KindString:
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(len(v.s)))
		dst = append(dst, buf[:]...)
		dst = append(dst, v.s...)
	case KindFloat:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.f))
		dst = append(dst, buf[:]...)
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// GobEncode implements gob.GobEncoder via the canonical encoding, so
// values (and tuples, and structs containing them) can travel in protocol
// messages.
func (v Value) GobEncode() ([]byte, error) {
	if !v.Valid() {
		return nil, fmt.Errorf("relation: gob-encoding invalid value")
	}
	return v.Encode(nil), nil
}

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(b []byte) error {
	dec, n, err := DecodeValue(b)
	if err != nil {
		return err
	}
	if n != len(b) {
		return fmt.Errorf("relation: gob value has %d trailing bytes", len(b)-n)
	}
	*v = dec
	return nil
}

// DecodeValue decodes a value previously produced by Encode from the front
// of src, returning the value and the number of bytes consumed.
func DecodeValue(src []byte) (Value, int, error) {
	if len(src) == 0 {
		return Value{}, 0, fmt.Errorf("relation: decode value: empty input")
	}
	k := Kind(src[0])
	rest := src[1:]
	switch k {
	case KindInt:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("relation: decode INT: short input")
		}
		return Int(int64(binary.BigEndian.Uint64(rest[:8]))), 9, nil
	case KindString:
		if len(rest) < 4 {
			return Value{}, 0, fmt.Errorf("relation: decode TEXT: short input")
		}
		n := int(binary.BigEndian.Uint32(rest[:4]))
		if len(rest) < 4+n {
			return Value{}, 0, fmt.Errorf("relation: decode TEXT: short input")
		}
		return String_(string(rest[4 : 4+n])), 5 + n, nil
	case KindFloat:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("relation: decode FLOAT: short input")
		}
		return Float(math.Float64frombits(binary.BigEndian.Uint64(rest[:8]))), 9, nil
	case KindBool:
		if len(rest) < 1 {
			return Value{}, 0, fmt.Errorf("relation: decode BOOL: short input")
		}
		// Only the canonical encodings 0 and 1 are accepted; anything else
		// would make two distinct byte strings decode to equal values,
		// breaking the injectivity the cryptographic protocols rely on.
		switch rest[0] {
		case 0:
			return Bool(false), 2, nil
		case 1:
			return Bool(true), 2, nil
		default:
			return Value{}, 0, fmt.Errorf("relation: decode BOOL: non-canonical byte %d", rest[0])
		}
	default:
		return Value{}, 0, fmt.Errorf("relation: decode value: bad tag %d", src[0])
	}
}
