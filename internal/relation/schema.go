package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation schema.
type Column struct {
	// Name is the attribute name. It may be qualified ("R1.id") in schemas
	// produced by join operations; base relations use unqualified names.
	Name string
	// Kind is the attribute type.
	Kind Kind
}

// Schema is an ordered list of columns, optionally carrying the name of the
// relation it describes. Schemas are immutable by convention: operations
// return new schemas.
type Schema struct {
	// Relation is the relation name, used for qualification in joins and
	// for mediator-side source localization. May be empty for derived
	// relations.
	Relation string
	// Columns are the attributes in order.
	Columns []Column
}

// NewSchema builds a schema after validating that the column names are
// non-empty and unique and all kinds are valid.
func NewSchema(relName string, cols ...Column) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return Schema{}, fmt.Errorf("relation: schema %s: empty column name", relName)
		}
		if c.Kind == KindInvalid {
			return Schema{}, fmt.Errorf("relation: schema %s: column %s has invalid kind", relName, c.Name)
		}
		if seen[c.Name] {
			return Schema{}, fmt.Errorf("relation: schema %s: duplicate column %s", relName, c.Name)
		}
		seen[c.Name] = true
	}
	return Schema{Relation: relName, Columns: append([]Column(nil), cols...)}, nil
}

// MustSchema is NewSchema but panics on error; intended for tests, examples
// and compile-time-constant schemas.
func MustSchema(relName string, cols ...Column) Schema {
	s, err := NewSchema(relName, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Columns) }

// IndexOf resolves a column name to its position, accepting either the
// exact stored name or, for qualified lookups like "R.a", a match on the
// unqualified suffix when the stored name is unqualified and the qualifier
// equals the relation name. It returns -1 if the name does not resolve or
// is ambiguous.
func (s Schema) IndexOf(name string) int {
	// Exact match first.
	idx := -1
	for i, c := range s.Columns {
		if c.Name == name {
			if idx >= 0 {
				return -1 // ambiguous
			}
			idx = i
		}
	}
	if idx >= 0 {
		return idx
	}
	// Qualified lookup "rel.col" against unqualified stored names.
	if rel, col, ok := splitQualified(name); ok {
		if rel == s.Relation {
			return s.IndexOf(col)
		}
		// Stored names may themselves be qualified; also try matching the
		// suffix of qualified stored names ("R1.a" asked as "a").
		return -1
	}
	// Unqualified lookup against qualified stored names.
	for i, c := range s.Columns {
		if _, col, ok := splitQualified(c.Name); ok && col == name {
			if idx >= 0 {
				return -1 // ambiguous
			}
			idx = i
		}
	}
	return idx
}

func splitQualified(name string) (rel, col string, ok bool) {
	i := strings.IndexByte(name, '.')
	if i <= 0 || i == len(name)-1 {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

// Column returns the column at position i.
func (s Schema) Column(i int) Column { return s.Columns[i] }

// KindOf returns the kind of the named column, or an error if it does not
// resolve.
func (s Schema) KindOf(name string) (Kind, error) {
	i := s.IndexOf(name)
	if i < 0 {
		return KindInvalid, fmt.Errorf("relation: schema %s has no column %q", s.Relation, name)
	}
	return s.Columns[i].Kind, nil
}

// Equal reports whether two schemas have identical column lists (names and
// kinds, in order). The relation name is ignored: it is metadata, not part
// of relational compatibility.
func (s Schema) Equal(o Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}

// Rename returns a copy of the schema with a new relation name.
func (s Schema) Rename(relName string) Schema {
	return Schema{Relation: relName, Columns: append([]Column(nil), s.Columns...)}
}

// Project returns the schema restricted to the named columns, in the given
// order.
func (s Schema) Project(names ...string) (Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			return Schema{}, fmt.Errorf("relation: project: schema %s has no column %q", s.Relation, n)
		}
		cols = append(cols, s.Columns[i])
	}
	return Schema{Relation: s.Relation, Columns: cols}, nil
}

// Qualify returns a copy of the schema where every unqualified column name
// is prefixed with the relation name ("a" becomes "R.a"). Join results use
// this to keep provenance, matching the paper's R1.Ajoin / R2.Ajoin
// qualification.
func (s Schema) Qualify() Schema {
	cols := make([]Column, len(s.Columns))
	for i, c := range s.Columns {
		if _, _, ok := splitQualified(c.Name); !ok && s.Relation != "" {
			c.Name = s.Relation + "." + c.Name
		}
		cols[i] = c
	}
	return Schema{Relation: s.Relation, Columns: cols}
}

// Concat returns the concatenation of two schemas (for cross products and
// joins). Name collisions are resolved by qualifying both sides first.
func (s Schema) Concat(o Schema) (Schema, error) {
	a, b := s, o
	if s.collidesWith(o) {
		a, b = s.Qualify(), o.Qualify()
		if a.collidesWith(b) {
			return Schema{}, fmt.Errorf("relation: concat: unresolvable column collision between %s and %s", s.Relation, o.Relation)
		}
	}
	cols := make([]Column, 0, len(a.Columns)+len(b.Columns))
	cols = append(cols, a.Columns...)
	cols = append(cols, b.Columns...)
	return Schema{Columns: cols}, nil
}

func (s Schema) collidesWith(o Schema) bool {
	names := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		names[c.Name] = true
	}
	for _, c := range o.Columns {
		if names[c.Name] {
			return true
		}
	}
	return false
}

// String renders the schema as "R(a INT, b TEXT)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Relation)
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
