package relation

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeValue: arbitrary bytes must never panic the decoder, and any
// accepted value must re-encode to exactly the consumed bytes.
func FuzzDecodeValue(f *testing.F) {
	f.Add(Int(42).Encode(nil))
	f.Add(String_("hello").Encode(nil))
	f.Add(Float(1.5).Encode(nil))
	f.Add(Bool(true).Encode(nil))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := DecodeValue(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := v.Encode(nil)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoding mismatch: % x vs % x", re, data[:n])
		}
	})
}

// FuzzDecodeTupleSet: arbitrary bytes against a fixed schema must never
// panic, and accepted tuple sets must roundtrip.
func FuzzDecodeTupleSet(f *testing.F) {
	schema := MustSchema("R",
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindString})
	f.Add(EncodeTupleSet([]Tuple{{Int(1), String_("a")}, {Int(2), String_("b")}}))
	f.Add(EncodeTupleSet(nil))
	f.Add([]byte{0x01})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		tuples, err := DecodeTupleSet(schema, data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeTupleSet(tuples), data) {
			t.Fatal("tuple set re-encoding mismatch")
		}
	})
}

// FuzzReadCSV: arbitrary CSV input must never panic the loader; accepted
// relations must write back and reload to the same multiset.
func FuzzReadCSV(f *testing.F) {
	f.Add("id:INT,name:TEXT\n1,a\n2,b\n")
	f.Add("x:FLOAT\n1.5\n")
	f.Add("b:BOOL\ntrue\nfalse\n")
	f.Add("id:INT\n")
	f.Add("")
	f.Add("a:INT,a:INT\n1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		r, err := ReadCSV("F", strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(r, &buf); err != nil {
			t.Fatalf("accepted relation does not write: %v", err)
		}
		r2, err := ReadCSV("F", &buf)
		if err != nil {
			t.Fatalf("written CSV does not reload: %v", err)
		}
		if !r2.EqualMultiset(r) {
			t.Fatal("CSV write/read not a roundtrip")
		}
	})
}
