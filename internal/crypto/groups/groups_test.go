package groups

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestEmbeddedGroupsAreSafePrimes(t *testing.T) {
	for name, g := range map[string]*Group{
		"MODP1536": MODP1536(),
		"MODP2048": MODP2048(),
		"MODP3072": MODP3072(),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if MODP1536().Bits() != 1536 || MODP2048().Bits() != 2048 || MODP3072().Bits() != 3072 {
		t.Error("embedded group bit lengths wrong")
	}
}

func TestGenerateSafePrime(t *testing.T) {
	g, err := GenerateSafePrime(128, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	if g.Bits() != 128 {
		t.Errorf("generated group bits = %d, want 128", g.Bits())
	}
	if _, err := GenerateSafePrime(8, rand.Reader); err == nil {
		t.Error("8-bit safe prime accepted")
	}
}

func TestValidateRejectsBadGroups(t *testing.T) {
	g := &Group{P: big.NewInt(23), Q: big.NewInt(11)} // 23 = 2*11+1, both prime: valid
	if err := g.Validate(); err != nil {
		t.Errorf("23/11 rejected: %v", err)
	}
	bad := []*Group{
		{P: big.NewInt(25), Q: big.NewInt(12)}, // neither prime
		{P: big.NewInt(23), Q: big.NewInt(7)},  // structure wrong
		{P: big.NewInt(13), Q: big.NewInt(6)},  // Q not prime
		{},                                     // nil moduli
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%v/%v) accepted", g.P, g.Q)
		}
	}
}

func TestQuadraticResidues(t *testing.T) {
	g := &Group{P: big.NewInt(23), Q: big.NewInt(11)}
	// QR(23) = squares mod 23: {1,2,3,4,6,8,9,12,13,16,18}
	want := map[int64]bool{1: true, 2: true, 3: true, 4: true, 6: true, 8: true, 9: true, 12: true, 13: true, 16: true, 18: true}
	for x := int64(1); x < 23; x++ {
		got := g.IsQuadraticResidue(big.NewInt(x))
		if got != want[x] {
			t.Errorf("IsQuadraticResidue(%d) = %v, want %v", x, got, want[x])
		}
	}
	if g.IsQuadraticResidue(big.NewInt(0)) || g.IsQuadraticResidue(big.NewInt(23)) {
		t.Error("out-of-range element accepted as QR")
	}
}

func TestSquareLandsInQR(t *testing.T) {
	g := MODP2048()
	for i := 0; i < 10; i++ {
		x, err := rand.Int(rand.Reader, new(big.Int).Sub(g.P, big.NewInt(3)))
		if err != nil {
			t.Fatal(err)
		}
		x.Add(x, big.NewInt(2))
		if !g.IsQuadraticResidue(g.Square(x)) {
			t.Errorf("Square(%v...) not in QR", x.String()[:16])
		}
	}
}

func TestRandomElementInQR(t *testing.T) {
	g := MODP1536()
	for i := 0; i < 5; i++ {
		x, err := g.RandomElement(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsQuadraticResidue(x) {
			t.Error("RandomElement not in QR")
		}
	}
}

func TestRandomExponentRange(t *testing.T) {
	g := &Group{P: big.NewInt(23), Q: big.NewInt(11)}
	seen := map[int64]bool{}
	for i := 0; i < 200; i++ {
		e, err := g.RandomExponent(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if e.Sign() <= 0 || e.Cmp(g.Q) >= 0 {
			t.Fatalf("exponent %v out of [1, Q-1]", e)
		}
		seen[e.Int64()] = true
	}
	if len(seen) < 5 {
		t.Errorf("exponents not spread: %v", seen)
	}
}

// TestJacobiMatchesEulerCriterion cross-checks the Jacobi-symbol QR test
// against the Euler-criterion exponentiation it replaced, over residues,
// non-residues, and range edges.
func TestJacobiMatchesEulerCriterion(t *testing.T) {
	gs := []*Group{
		{P: big.NewInt(23), Q: big.NewInt(11)},
		MODP1536(),
	}
	for _, g := range gs {
		for i := 0; i < 40; i++ {
			max := new(big.Int).Sub(g.P, big.NewInt(2))
			x, err := rand.Int(rand.Reader, max)
			if err != nil {
				t.Fatal(err)
			}
			x.Add(x, big.NewInt(1)) // [1, P-2]
			euler := new(big.Int).Exp(x, g.Q, g.P).Cmp(big.NewInt(1)) == 0
			if got := g.IsQuadraticResidue(x); got != euler {
				t.Fatalf("P=%d bits, x=%v: Jacobi=%v Euler=%v", g.Bits(), x, got, euler)
			}
		}
		// Range edges stay rejected regardless of symbol.
		for _, bad := range []*big.Int{big.NewInt(0), big.NewInt(-4), g.P, new(big.Int).Add(g.P, big.NewInt(1))} {
			if g.IsQuadraticResidue(bad) {
				t.Errorf("P=%d bits: IsQuadraticResidue(%v) = true, want false", g.Bits(), bad)
			}
		}
	}
}

// TestRandomShortExponent checks the short-exponent policy: exact bit
// length, oddness, validity as a commutative key (coprime to Q), and the
// full-length fallback for small test groups.
func TestRandomShortExponent(t *testing.T) {
	g := MODP2048()
	want := g.ShortExponentBits()
	if want != 256 {
		t.Fatalf("MODP2048 ShortExponentBits = %d, want 256", want)
	}
	for i := 0; i < 20; i++ {
		e, err := g.RandomShortExponent(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if e.BitLen() != want {
			t.Fatalf("short exponent bit length %d, want %d", e.BitLen(), want)
		}
		if e.Bit(0) != 1 {
			t.Fatalf("short exponent %v is even", e)
		}
		if new(big.Int).GCD(nil, nil, e, g.Q).Cmp(big.NewInt(1)) != 0 {
			t.Fatalf("short exponent %v not coprime to Q", e)
		}
	}
	if got := MODP1536().ShortExponentBits(); got != 224 {
		t.Errorf("MODP1536 ShortExponentBits = %d, want 224", got)
	}
	if got := MODP3072().ShortExponentBits(); got != 288 {
		t.Errorf("MODP3072 ShortExponentBits = %d, want 288", got)
	}
	// Tiny test groups fall back to full-length RandomExponent.
	tiny := &Group{P: big.NewInt(23), Q: big.NewInt(11)}
	if tiny.ShortExponentBits() != 0 {
		t.Error("tiny group should report ShortExponentBits 0")
	}
	for i := 0; i < 20; i++ {
		e, err := tiny.RandomShortExponent(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if e.Sign() <= 0 || e.Cmp(tiny.Q) >= 0 {
			t.Fatalf("fallback exponent %v out of [1, Q-1]", e)
		}
	}
}
