// Package groups provides the algebraic setting of the commutative
// encryption scheme: safe-prime groups and their subgroup of quadratic
// residues.
//
// Agrawal et al. (and, following them, the commutative protocol of the
// paper) work in QR(p), the subgroup of quadratic residues modulo a safe
// prime p = 2q+1 with q prime. QR(p) has prime order q, so every element
// except 1 generates it and exponentiation with exponents coprime to q is
// a bijection on it — exactly the structure the commutative encryption
// function f_e(x) = x^e mod p needs.
//
// The package embeds the RFC 3526 MODP groups (1536/2048/3072/4096 bit),
// whose moduli are genuine safe primes, and also implements a from-scratch
// safe-prime generator for smaller test parameters.
package groups

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"strings"
	"sync"
)

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// Group is a safe-prime group: P = 2Q+1 with both P and Q prime. QR(P) is
// the order-Q subgroup of squares.
type Group struct {
	// P is the safe prime modulus.
	P *big.Int
	// Q is the Sophie Germain prime (P-1)/2, the order of QR(P).
	Q *big.Int
}

// Bits returns the bit length of the modulus.
func (g *Group) Bits() int { return g.P.BitLen() }

// Validate checks the safe-prime structure: P prime, Q prime, P = 2Q+1.
// It uses 32 rounds of Miller-Rabin (plus the Baillie-PSW test run by
// ProbablyPrime), which makes the error probability negligible.
func (g *Group) Validate() error {
	if g.P == nil || g.Q == nil {
		return fmt.Errorf("groups: nil modulus")
	}
	expect := new(big.Int).Mul(g.Q, two)
	expect.Add(expect, one)
	if expect.Cmp(g.P) != 0 {
		return fmt.Errorf("groups: P != 2Q+1")
	}
	if !g.P.ProbablyPrime(32) {
		return fmt.Errorf("groups: P is not prime")
	}
	if !g.Q.ProbablyPrime(32) {
		return fmt.Errorf("groups: Q is not prime")
	}
	return nil
}

// IsQuadraticResidue reports whether x is in QR(P), i.e. x^Q ≡ 1 (mod P)
// and 0 < x < P. The test is the Legendre symbol (x|P), computed as the
// Jacobi symbol — for prime P the two coincide — via big.Jacobi's binary
// algorithm. That costs one gcd-like pass (quadratic in the modulus size)
// instead of the full-length Euler-criterion exponentiation x^Q mod P it
// replaces: ~20× cheaper at 2048 bits, which matters because the
// commutative cipher runs this test on every Encrypt and Decrypt.
func (g *Group) IsQuadraticResidue(x *big.Int) bool {
	if x.Sign() <= 0 || x.Cmp(g.P) >= 0 {
		return false
	}
	return big.Jacobi(x, g.P) == 1
}

// Square maps any 0 < x < P into QR(P) by squaring.
func (g *Group) Square(x *big.Int) *big.Int {
	return new(big.Int).Exp(x, two, g.P)
}

// RandomExponent draws a uniformly random exponent e in [1, Q-1]. Because
// Q is prime every such e is coprime to Q, hence invertible mod Q — a valid
// commutative encryption key.
//
// seclint:secret drawn commutative-encryption exponent
func (g *Group) RandomExponent(rnd io.Reader) (*big.Int, error) {
	max := new(big.Int).Sub(g.Q, one) // draw from [0, Q-2], shift to [1, Q-1]
	e, err := rand.Int(rnd, max)
	if err != nil {
		return nil, fmt.Errorf("groups: random exponent: %w", err)
	}
	return e.Add(e, one), nil
}

// ShortExponentBits returns the short-exponent length for this group's
// modulus size, or 0 if the group is too small for the short-exponent
// optimization to be meaningful (sub-1024-bit test groups).
//
// Drawing commutative-encryption exponents from [2^(ℓ-1), 2^ℓ) instead of
// the full [1, Q-1] shrinks the exponentiation ladder by ~8× at 2048 bits
// while keeping ≥ 2ℓ-security against the best generic attacks (Pollard
// lambda costs ~2^(ℓ/2) group operations). This is the standard
// short-exponent practice of RFC 7919 §5.2 for discrete-log key exchange;
// its DDH-style formalization is the short-exponent indistinguishability
// assumption of Koshiba–Kurosawa (PKC 2004). The lengths below give a
// ≥ 16-bit margin over the strength RFC 3526 §8 estimates for each
// modulus. See docs/SECURITY.md for the assumption's role in the
// mediator-privacy proof.
func (g *Group) ShortExponentBits() int {
	bits := g.Bits()
	switch {
	case bits >= 3072:
		return 288
	case bits >= 2048:
		return 256
	case bits >= 1024:
		return 224
	default:
		return 0 // test-size groups: full-length exponents
	}
}

// RandomShortExponent draws a random odd exponent of exactly
// ShortExponentBits bits (top and bottom bits forced to 1). For groups
// below the short-exponent threshold it falls back to RandomExponent.
// Oddness plus ℓ < |Q| guarantees 1 ≤ e < Q with gcd(e, Q) = 1 — Q is
// prime — so every result is a valid commutative-encryption key.
//
// seclint:secret drawn short commutative-encryption exponent
func (g *Group) RandomShortExponent(rnd io.Reader) (*big.Int, error) {
	ell := g.ShortExponentBits()
	if ell == 0 || ell >= g.Q.BitLen() {
		return g.RandomExponent(rnd)
	}
	e, err := rand.Int(rnd, new(big.Int).Lsh(one, uint(ell)))
	if err != nil {
		return nil, fmt.Errorf("groups: random short exponent: %w", err)
	}
	e.SetBit(e, ell-1, 1) // exact bit length: uniform leading-bit policy
	e.SetBit(e, 0, 1)     // odd, hence coprime to the prime Q > 2
	return e, nil
}

// RandomElement draws a uniformly random element of QR(P) by squaring a
// random element of Z_P^*.
func (g *Group) RandomElement(rnd io.Reader) (*big.Int, error) {
	max := new(big.Int).Sub(g.P, two) // [0, P-3] -> [2, P-1]
	x, err := rand.Int(rnd, max)
	if err != nil {
		return nil, fmt.Errorf("groups: random element: %w", err)
	}
	x.Add(x, two)
	return g.Square(x), nil
}

// GenerateSafePrime generates a fresh safe-prime group with a modulus of
// the given bit length. Intended for tests and small parameters; for
// production-size moduli prefer the embedded RFC 3526 groups, which are
// standardized and free.
func GenerateSafePrime(bits int, rnd io.Reader) (*Group, error) {
	if bits < 16 {
		return nil, fmt.Errorf("groups: modulus of %d bits is too small", bits)
	}
	for {
		q, err := rand.Prime(rnd, bits-1)
		if err != nil {
			return nil, fmt.Errorf("groups: generate safe prime: %w", err)
		}
		p := new(big.Int).Mul(q, two)
		p.Add(p, one)
		if p.BitLen() != bits {
			continue
		}
		if p.ProbablyPrime(32) {
			return &Group{P: p, Q: new(big.Int).Set(q)}, nil
		}
	}
}

// RFC 3526 MODP moduli (all safe primes).
const (
	modp1536Hex = `
FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1
29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD
EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245
E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED
EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D
C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F
83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D
670C354E 4ABC9804 F1746C08 CA237327 FFFFFFFF FFFFFFFF`

	modp2048Hex = `
FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1
29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD
EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245
E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED
EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D
C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F
83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D
670C354E 4ABC9804 F1746C08 CA18217C 32905E46 2E36CE3B
E39E772C 180E8603 9B2783A2 EC07A28F B5C55DF0 6F4C52C9
DE2BCBF6 95581718 3995497C EA956AE5 15D22618 98FA0510
15728E5A 8AACAA68 FFFFFFFF FFFFFFFF`

	modp3072Hex = `
FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1
29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD
EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245
E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED
EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE45B3D
C2007CB8 A163BF05 98DA4836 1C55D39A 69163FA8 FD24CF5F
83655D23 DCA3AD96 1C62F356 208552BB 9ED52907 7096966D
670C354E 4ABC9804 F1746C08 CA18217C 32905E46 2E36CE3B
E39E772C 180E8603 9B2783A2 EC07A28F B5C55DF0 6F4C52C9
DE2BCBF6 95581718 3995497C EA956AE5 15D22618 98FA0510
15728E5A 8AAAC42D AD33170D 04507A33 A85521AB DF1CBA64
ECFB8504 58DBEF0A 8AEA7157 5D060C7D B3970F85 A6E1E4C7
ABF5AE8C DB0933D7 1E8C94E0 4A25619D CEE3D226 1AD2EE6B
F12FFA06 D98A0864 D8760273 3EC86A64 521F2B18 177B200C
BBE11757 7A615D6C 770988C0 BAD946E2 08E24FA0 74E5AB31
43DB5BFC E0FD108E 4B82D120 A93AD2CA FFFFFFFF FFFFFFFF`
)

func parseHexGroup(hex string) *Group {
	clean := strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' || r == '\t' {
			return -1
		}
		return r
	}, hex)
	p, ok := new(big.Int).SetString(clean, 16)
	if !ok {
		panic("groups: bad embedded modulus")
	}
	q := new(big.Int).Sub(p, one)
	q.Rsh(q, 1)
	return &Group{P: p, Q: q}
}

var (
	modp1536Once, modp2048Once, modp3072Once sync.Once
	modp1536G, modp2048G, modp3072G          *Group
)

// MODP1536 returns the RFC 3526 1536-bit group (group 5).
func MODP1536() *Group {
	modp1536Once.Do(func() { modp1536G = parseHexGroup(modp1536Hex) })
	return modp1536G
}

// MODP2048 returns the RFC 3526 2048-bit group (group 14). This is the
// default parameter set of the commutative protocol.
func MODP2048() *Group {
	modp2048Once.Do(func() { modp2048G = parseHexGroup(modp2048Hex) })
	return modp2048G
}

// MODP3072 returns the RFC 3526 3072-bit group (group 15).
func MODP3072() *Group {
	modp3072Once.Do(func() { modp3072G = parseHexGroup(modp3072Hex) })
	return modp3072G
}
