package modexp

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// testModuli covers the word-count range the ciphers use: a tiny 1-word
// prime (the commutative test group p = 23), a 256-bit safe prime, and a
// multi-word odd composite (Paillier-style n²-shaped modulus).
func testModuli(t *testing.T) []*big.Int {
	t.Helper()
	p256, ok := new(big.Int).SetString(
		"ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74", 16)
	if !ok {
		t.Fatal("bad hex constant")
	}
	if p256.Bit(0) == 0 {
		p256.Add(p256, big.NewInt(1))
	}
	odd1024 := new(big.Int).Lsh(big.NewInt(1), 1023)
	odd1024.Add(odd1024, big.NewInt(982451653)) // odd offset keeps it odd
	return []*big.Int{big.NewInt(23), p256, odd1024}
}

func TestNewModulusRejectsBadInput(t *testing.T) {
	for _, bad := range []*big.Int{nil, big.NewInt(0), big.NewInt(1), big.NewInt(-7), big.NewInt(100)} {
		if _, err := NewModulus(bad); err == nil {
			t.Errorf("NewModulus(%v): want error", bad)
		}
	}
}

func TestNewEngineRejectsBadExponent(t *testing.T) {
	mod, err := NewModulus(big.NewInt(23))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*big.Int{nil, big.NewInt(0), big.NewInt(-3)} {
		if _, err := NewEngine(mod, bad); err == nil {
			t.Errorf("NewEngine(e=%v): want error", bad)
		}
	}
	if _, err := NewEngine(nil, big.NewInt(3)); err == nil {
		t.Error("NewEngine(nil modulus): want error")
	}
}

// TestAgainstBigIntExp is the core property test: for random moduli sizes,
// random exponents of many bit lengths, and random bases (plus the edge
// bases 0, 1, n−1), the Montgomery backend must agree with big.Int.Exp.
func TestAgainstBigIntExp(t *testing.T) {
	for _, n := range testModuli(t) {
		mod, err := NewModulus(n)
		if err != nil {
			t.Fatal(err)
		}
		expBits := []int{1, 2, 3, 7, 8, 17, 64, 65, 200, 256}
		for _, bits := range expBits {
			for trial := 0; trial < 4; trial++ {
				e, err := rand.Int(rand.Reader, new(big.Int).Lsh(bigOne, uint(bits)))
				if err != nil {
					t.Fatal(err)
				}
				e.SetBit(e, bits-1, 1) // force the requested bit length
				if e.Sign() == 0 {
					e.SetInt64(1)
				}
				en, err := NewEngineBackend(mod, e, BackendMontgomery)
				if err != nil {
					t.Fatal(err)
				}
				bases := []*big.Int{big.NewInt(0), big.NewInt(1), new(big.Int).Sub(n, bigOne)}
				for i := 0; i < 3; i++ {
					x, err := rand.Int(rand.Reader, n)
					if err != nil {
						t.Fatal(err)
					}
					bases = append(bases, x)
				}
				for _, x := range bases {
					got := en.Exp(x)
					want := new(big.Int).Exp(x, e, n)
					if got.Cmp(want) != 0 {
						t.Fatalf("n=%d bits, e=%v (%d bits), x=%v: engine=%v want=%v",
							n.BitLen(), e, e.BitLen(), x, got, want)
					}
				}
			}
		}
	}
}

// TestEdgeExponents pins the schedule edge cases the issue names: e ≡ 1
// (single one-window), pure powers of two (top window then only zero
// runs), all-ones exponents (maximal windows, no zero runs), and
// exponents with long interior zero runs.
func TestEdgeExponents(t *testing.T) {
	n := testModuli(t)[1]
	mod, err := NewModulus(n)
	if err != nil {
		t.Fatal(err)
	}
	exps := []*big.Int{
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(3),
		new(big.Int).Lsh(bigOne, 64),  // 2^64: top window 1, then 64 squarings
		new(big.Int).Lsh(bigOne, 255), // 2^255
		new(big.Int).Sub(new(big.Int).Lsh(bigOne, 160), bigOne), // all ones
		new(big.Int).Add(new(big.Int).Lsh(bigOne, 200), bigOne), // 1...0^199...1
	}
	x := big.NewInt(1234567891011)
	for _, e := range exps {
		en, err := NewEngineBackend(mod, e, BackendMontgomery)
		if err != nil {
			t.Fatal(err)
		}
		got := en.Exp(x)
		want := new(big.Int).Exp(x, e, n)
		if got.Cmp(want) != 0 {
			t.Errorf("e=%v: engine=%v want=%v", e, got, want)
		}
	}
}

// TestExpReducesBase checks out-of-range and negative bases are reduced
// into the group first, matching big.Int.Exp semantics.
func TestExpReducesBase(t *testing.T) {
	n := testModuli(t)[1]
	mod, err := NewModulus(n)
	if err != nil {
		t.Fatal(err)
	}
	e := big.NewInt(65537)
	en, err := NewEngineBackend(mod, e, BackendMontgomery)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []*big.Int{
		new(big.Int).Add(n, big.NewInt(5)),
		new(big.Int).Neg(big.NewInt(42)),
		new(big.Int).Mul(n, n),
	} {
		got := en.Exp(x)
		want := new(big.Int).Exp(new(big.Int).Mod(x, n), e, n)
		if got.Cmp(want) != 0 {
			t.Errorf("x=%v: engine=%v want=%v", x, got, want)
		}
	}
}

// TestAutoCalibration checks BackendAuto settles on a concrete backend
// after the first Exp and that the calibrated result is correct.
func TestAutoCalibration(t *testing.T) {
	n := testModuli(t)[1]
	mod, err := NewModulus(n)
	if err != nil {
		t.Fatal(err)
	}
	e := big.NewInt(0xfedcba987654321)
	en, err := NewEngine(mod, e)
	if err != nil {
		t.Fatal(err)
	}
	if en.Backend() != BackendAuto {
		t.Fatalf("fresh engine backend = %v, want auto", en.Backend())
	}
	x := big.NewInt(777)
	got := en.Exp(x)
	if want := new(big.Int).Exp(x, e, n); got.Cmp(want) != 0 {
		t.Fatalf("calibrating Exp = %v, want %v", got, want)
	}
	if b := en.Backend(); b != BackendBig && b != BackendMontgomery {
		t.Fatalf("post-calibration backend = %v, want a concrete backend", b)
	}
}

// TestExpBatch checks the batch path is deterministic and order-preserving
// across worker counts — run under -race this also exercises the shared
// engine for data races.
func TestExpBatch(t *testing.T) {
	n := testModuli(t)[1]
	mod, err := NewModulus(n)
	if err != nil {
		t.Fatal(err)
	}
	e := big.NewInt(1000003)
	en, err := NewEngineBackend(mod, e, BackendMontgomery)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*big.Int, 61)
	want := make([]*big.Int, len(xs))
	for i := range xs {
		x, err := rand.Int(rand.Reader, n)
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = x
		want[i] = new(big.Int).Exp(x, e, n)
	}
	for _, workers := range []int{1, 2, 7, 0} {
		got, err := en.ExpBatch(xs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			if got[i].Cmp(want[i]) != 0 {
				t.Fatalf("workers=%d index %d: got %v want %v", workers, i, got[i], want[i])
			}
		}
	}
	if _, err := en.ExpBatch([]*big.Int{big.NewInt(1), nil}, 2); err == nil {
		t.Error("ExpBatch with nil element: want error")
	}
}

func TestBackendString(t *testing.T) {
	if BackendAuto.String() != "auto" || BackendBig.String() != "big.Int.Exp" || BackendMontgomery.String() != "montgomery" {
		t.Error("Backend.String mismatch")
	}
}
