// Package modexp is the fast modular-exponentiation engine under the
// commutative cipher's hot path: fixed-exponent, varying-base powers
// x^e mod p, the operation the paper's cost model charges the
// commutative protocol in (one per active-domain value per layer).
//
// The engine exploits the structure of that workload: the exponent is a
// per-key secret that never changes, so its sliding-window decomposition
// (Menezes et al. Alg. 14.85) is computed once per key and reused by
// every exponentiation, and the modulus is a per-group constant, so its
// Montgomery context (word form, -n⁻¹ mod 2⁶⁴, R and R² mod n) is built
// once and shared by all keys in the group — mirroring the lazily built
// fixed-base table idiom in internal/crypto/paillier.
//
// Two interchangeable backends compute the ladder itself:
//
//   - backendMont: the in-package Montgomery CIOS kernel (mont.go) with
//     the precomputed window schedule — pure Go, portable, and the
//     reference implementation the property tests cross-check.
//   - backendBig: math/big's Exp, whose inner multiplication kernel is
//     hand-written assembly on the common architectures and therefore
//     ~2× faster per modular multiplication than anything expressible
//     in portable Go.
//
// Because the winner depends on the platform's math/big kernels, an
// engine calibrates itself on its first exponentiation: it runs both
// backends on the same input, keeps the faster one for the rest of its
// life, and panics if they ever disagree (a pure-math invariant — the
// two backends are independent implementations of the same function).
// Calibration costs one extra exponentiation per key, amortized over the
// 2·|domactive| exponentiations a protocol run performs with it.
package modexp

import (
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"github.com/secmediation/secmediation/internal/parallel"
)

// Backend selects how an engine computes the ladder.
type Backend int32

const (
	// BackendAuto calibrates on first use: both backends run once, the
	// faster one wins, results are cross-checked.
	BackendAuto Backend = iota
	// BackendBig forces math/big's Exp.
	BackendBig
	// BackendMontgomery forces the in-package Montgomery kernel.
	BackendMontgomery
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendBig:
		return "big.Int.Exp"
	case BackendMontgomery:
		return "montgomery"
	case BackendConstantTime:
		return "constant-time"
	default:
		return "auto"
	}
}

// windowOp is one step of the precomputed schedule: square the
// accumulator sq times, then (for mul ≥ 0) multiply by the odd power
// x^mul of the per-call base table.
type windowOp struct {
	sq  int32
	mul int32 // odd window digit, or -1 for trailing squarings
}

// Engine computes x ↦ x^e mod n for one fixed exponent. The window
// schedule is derived from the secret exponent — its digit sequence IS
// the exponent — so engines are key material and live inside the key
// that owns them, exactly like the exponent itself.
// seclint:private window schedule derived from a secret exponent
type Engine struct {
	mod   *Modulus
	e     *big.Int   // seclint:secret retained for the math/big backend
	sched []windowOp // seclint:secret sliding-window decomposition of e, built once
	w     int        // window width
	tabN  int        // odd-power table entries: 2^(w-1)
	// ctBits is the public exponent-length bound of a constant-time
	// engine (NewEngineConstantTime); 0 on variable-time engines.
	ctBits int

	backend atomic.Int32 // Backend; BackendAuto until calibrated
	calOnce sync.Once
}

// NewEngine builds an engine for exponent e ≥ 1 on the given modulus,
// decomposing e into its reusable window schedule. Auto-calibrating
// backend; use NewEngineBackend to force one.
func NewEngine(mod *Modulus, e *big.Int) (*Engine, error) {
	return NewEngineBackend(mod, e, BackendAuto)
}

// NewEngineBackend is NewEngine with an explicit backend choice
// (tests force each backend to cross-check them; BackendAuto measures).
func NewEngineBackend(mod *Modulus, e *big.Int, b Backend) (*Engine, error) {
	if mod == nil {
		return nil, fmt.Errorf("modexp: nil modulus")
	}
	if e == nil || e.Sign() <= 0 {
		return nil, fmt.Errorf("modexp: exponent must be positive")
	}
	en := &Engine{mod: mod, e: new(big.Int).Set(e)}
	en.w = windowWidth(e.BitLen())
	en.tabN = 1 << (en.w - 1)
	en.sched = decompose(e, en.w)
	en.backend.Store(int32(b))
	if b != BackendAuto {
		en.calOnce.Do(func() {}) // mark calibrated
	}
	return en, nil
}

// windowWidth picks the sliding-window width minimizing
// 2^(w-1) table multiplications + ℓ/(w+1) window multiplications.
func windowWidth(bits int) int {
	switch {
	case bits < 32:
		return 2
	case bits < 128:
		return 3
	case bits < 512:
		return 4
	case bits < 1536:
		return 5
	default:
		return 6
	}
}

// decompose computes the left-to-right sliding-window schedule of e:
// maximal odd windows of width ≤ w, runs of zeros become squarings.
func decompose(e *big.Int, w int) []windowOp {
	var sched []windowOp
	i := e.BitLen() - 1
	for i >= 0 {
		if e.Bit(i) == 0 {
			// run of zeros: count them into one squaring op
			run := 0
			for i >= 0 && e.Bit(i) == 0 {
				run++
				i--
			}
			sched = append(sched, windowOp{sq: int32(run), mul: -1})
			continue
		}
		// window [i .. j]: j is the lowest set bit with i-j+1 ≤ w,
		// making the digit odd and as wide as possible.
		j := i - w + 1
		if j < 0 {
			j = 0
		}
		for e.Bit(j) == 0 {
			j++
		}
		digit := int32(0)
		for b := i; b >= j; b-- {
			digit = digit<<1 | int32(e.Bit(b))
		}
		sched = append(sched, windowOp{sq: int32(i - j + 1), mul: digit})
		i = j - 1
	}
	return sched
}

// Exp computes x^e mod n. x is reduced into [0, n) first; the input is
// never modified. Safe for concurrent use — the schedule and context are
// read-only after construction, which is what lets one engine serve a
// whole worker pool.
func (en *Engine) Exp(x *big.Int) *big.Int {
	if x.Sign() < 0 || x.Cmp(en.mod.n) >= 0 {
		x = new(big.Int).Mod(x, en.mod.n)
	}
	switch en.decide(x) {
	case BackendMontgomery:
		return en.montExp(x)
	case BackendConstantTime:
		return ExpConstantTime(en.mod, x, en.e, en.ctBits)
	default:
		return new(big.Int).Exp(x, en.e, en.mod.n)
	}
}

// ExpBatch computes xs[i]^e mod n for every element across a worker
// pool (workers as in parallel.Resolve), preserving order. The engine —
// schedule, Montgomery context, calibration — is shared by all workers;
// calibration is forced up front so the pool never serializes on it.
func (en *Engine) ExpBatch(xs []*big.Int, workers int) ([]*big.Int, error) {
	if len(xs) > 0 {
		en.decide(xs[0]) // calibrate once, outside the pool
	}
	return parallel.Map(len(xs), workers, func(i int) (*big.Int, error) {
		if xs[i] == nil {
			return nil, fmt.Errorf("modexp: nil element at index %d", i)
		}
		return en.Exp(xs[i]), nil
	})
}

// Backend reports which backend the engine is using (BackendAuto until
// the first exponentiation calibrates it).
func (en *Engine) Backend() Backend { return Backend(en.backend.Load()) }

// Bits returns the exponent bit length (the schedule length driver).
func (en *Engine) Bits() int { return en.e.BitLen() }

// decide returns the backend to use, running the one-time calibration
// race on first use: both backends compute x^e, the faster one is kept,
// and a result mismatch panics (two independent implementations of a
// pure function disagreeing is a bug, never an input condition).
func (en *Engine) decide(x *big.Int) Backend {
	if b := Backend(en.backend.Load()); b != BackendAuto {
		return b
	}
	en.calOnce.Do(func() {
		start := time.Now()
		viaMont := en.montExp(x)
		montNs := time.Since(start)
		start = time.Now()
		viaBig := new(big.Int).Exp(x, en.e, en.mod.n)
		bigNs := time.Since(start)
		if viaMont.Cmp(viaBig) != 0 {
			panic("modexp: montgomery and math/big backends disagree")
		}
		if montNs < bigNs {
			en.backend.Store(int32(BackendMontgomery))
		} else {
			en.backend.Store(int32(BackendBig))
		}
	})
	return Backend(en.backend.Load())
}

// montExp runs the precomputed window schedule over the Montgomery
// kernel: per call it builds the odd-power table of the base
// (2^(w-1) multiplications), then replays the schedule — ℓ squarings
// plus one multiplication per window.
func (en *Engine) montExp(x *big.Int) *big.Int {
	m := en.mod
	k := m.k
	scratch := make([]uint64, k+2)
	buf := make([]uint64, (en.tabN+3)*k) // table + xm + x² + spare
	tab := make([][]uint64, en.tabN)
	for i := range tab {
		tab[i] = buf[i*k : (i+1)*k]
	}
	xm := buf[en.tabN*k : (en.tabN+1)*k]
	xSq := buf[(en.tabN+1)*k : (en.tabN+2)*k]
	tmp := buf[(en.tabN+2)*k : (en.tabN+3)*k]

	m.montMul(xm, wordsOf(x, k), m.rr, scratch) // to Montgomery form
	copy(tab[0], xm)                            // x^1
	if en.tabN > 1 {
		m.montMul(xSq, xm, xm, scratch) // x²
		for i := 1; i < en.tabN; i++ {
			m.montMul(tab[i], tab[i-1], xSq, scratch) // x^(2i+1)
		}
	}

	var acc []uint64 // nil while the leading window is pending
	accBuf := make([]uint64, k)
	for _, op := range en.sched {
		if acc != nil {
			for s := int32(0); s < op.sq; s++ {
				m.montMul(tmp, acc, acc, scratch)
				acc, tmp = tmp, acc
			}
		}
		if op.mul >= 0 {
			if acc == nil {
				// Leading window: the accumulator starts as the digit
				// power itself; the window's squarings are implicit.
				copy(accBuf, tab[op.mul>>1])
				acc = accBuf
				tmp = make([]uint64, k)
			} else {
				m.montMul(tmp, acc, tab[op.mul>>1], scratch)
				acc, tmp = tmp, acc
			}
		}
	}
	out := make([]uint64, k)
	m.montMul(out, acc, m.one, scratch) // out of Montgomery form
	return bigOf(out)
}
