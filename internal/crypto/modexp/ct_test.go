package modexp

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// TestExpConstantTimeAgainstBigExp is the property test the issue asks
// for: across every test modulus, the edge exponents (0, 1, 2^k−1,
// top-bit-only 2^k) and random exponents of many lengths, the
// constant-time ladder must be bit-identical to math/big.Exp — and, by
// transitivity through TestAgainstBigIntExp, to the Montgomery backend.
func TestExpConstantTimeAgainstBigExp(t *testing.T) {
	for _, n := range testModuli(t) {
		mod, err := NewModulus(n)
		if err != nil {
			t.Fatal(err)
		}
		var exps []*big.Int
		exps = append(exps, big.NewInt(0), big.NewInt(1), big.NewInt(2), big.NewInt(3))
		for _, k := range []uint{7, 8, 63, 64, 65, 224, 256, 1024} {
			exps = append(exps,
				new(big.Int).Sub(new(big.Int).Lsh(bigOne, k), bigOne), // 2^k − 1: all ones
				new(big.Int).Lsh(bigOne, k),                           // 2^k: top bit only
			)
		}
		for _, bits := range []int{5, 32, 200, 700} {
			e, err := rand.Int(rand.Reader, new(big.Int).Lsh(bigOne, uint(bits)))
			if err != nil {
				t.Fatal(err)
			}
			exps = append(exps, e)
		}
		for _, e := range exps {
			bases := []*big.Int{big.NewInt(0), big.NewInt(1), new(big.Int).Sub(n, bigOne)}
			for i := 0; i < 2; i++ {
				x, err := rand.Int(rand.Reader, n)
				if err != nil {
					t.Fatal(err)
				}
				bases = append(bases, x)
			}
			for _, x := range bases {
				got := ExpConstantTime(mod, x, e, 0)
				want := new(big.Int).Exp(x, e, n)
				if got.Cmp(want) != 0 {
					t.Fatalf("n=%d bits, e=%v (%d bits), x=%v: ct=%v want=%v",
						n.BitLen(), e, e.BitLen(), x, got, want)
				}
			}
		}
	}
}

// TestExpConstantTimePadding checks the result is invariant under the
// public length bound: padding an exponent to any bound ≥ its length
// changes the trajectory, never the value.
func TestExpConstantTimePadding(t *testing.T) {
	n := testModuli(t)[1]
	mod, err := NewModulus(n)
	if err != nil {
		t.Fatal(err)
	}
	e := big.NewInt(0x1d3f5)
	x := big.NewInt(987654321)
	want := new(big.Int).Exp(x, e, n)
	for _, bits := range []int{0, e.BitLen(), e.BitLen() + 1, 64, 224, 256, 500} {
		if got := ExpConstantTime(mod, x, e, bits); got.Cmp(want) != 0 {
			t.Errorf("bits=%d: ct=%v want=%v", bits, got, want)
		}
	}
}

// TestExpConstantTimeNegativeExponentPanics pins the contract: the
// ladder refuses negative exponents loudly.
func TestExpConstantTimeNegativeExponentPanics(t *testing.T) {
	mod, err := NewModulus(big.NewInt(23))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative exponent did not panic")
		}
	}()
	ExpConstantTime(mod, big.NewInt(2), big.NewInt(-1), 0)
}

// TestConstantTimeEngine checks the engine wrapper: Exp routes to the
// ladder, the backend reports constant-time from birth (no calibration
// race), the padding bound is honored, and batch exponentiation over a
// shared constant-time engine stays correct and race-free.
func TestConstantTimeEngine(t *testing.T) {
	n := testModuli(t)[1]
	mod, err := NewModulus(n)
	if err != nil {
		t.Fatal(err)
	}
	e := big.NewInt(0xfedcba987654321)
	en, err := NewEngineConstantTime(mod, e, 224)
	if err != nil {
		t.Fatal(err)
	}
	if b := en.Backend(); b != BackendConstantTime {
		t.Fatalf("backend = %v, want constant-time", b)
	}
	if en.Bits() != e.BitLen() {
		t.Errorf("Bits() = %d, want %d", en.Bits(), e.BitLen())
	}
	xs := make([]*big.Int, 17)
	for i := range xs {
		if xs[i], err = rand.Int(rand.Reader, n); err != nil {
			t.Fatal(err)
		}
	}
	got, err := en.ExpBatch(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want := new(big.Int).Exp(x, e, n)
		if got[i].Cmp(want) != 0 {
			t.Fatalf("batch index %d: got %v want %v", i, got[i], want)
		}
		if one := en.Exp(x); one.Cmp(want) != 0 {
			t.Fatalf("Exp(%v) = %v, want %v", x, one, want)
		}
	}
	if b := en.Backend(); b != BackendConstantTime {
		t.Fatalf("backend drifted to %v after use", b)
	}

	// The method form must agree on a variable-time engine too.
	vt, err := NewEngineBackend(mod, e, BackendMontgomery)
	if err != nil {
		t.Fatal(err)
	}
	x := xs[0]
	if ct, want := vt.ExpConstantTime(x), vt.Exp(x); ct.Cmp(want) != 0 {
		t.Fatalf("ExpConstantTime on variable-time engine: %v want %v", ct, want)
	}
}

func TestNewEngineConstantTimeRejectsBadInput(t *testing.T) {
	mod, err := NewModulus(big.NewInt(23))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*big.Int{nil, big.NewInt(0), big.NewInt(-3)} {
		if _, err := NewEngineConstantTime(mod, bad, 0); err == nil {
			t.Errorf("NewEngineConstantTime(e=%v): want error", bad)
		}
	}
	if _, err := NewEngineConstantTime(nil, big.NewInt(3), 0); err == nil {
		t.Error("NewEngineConstantTime(nil modulus): want error")
	}
}

// TestCTWordHelpers pins the branchless primitives the ladder rests on.
func TestCTWordHelpers(t *testing.T) {
	if ctMask(0) != 0 || ctMask(1) != ^uint64(0) {
		t.Error("ctMask broken")
	}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			want := uint64(0)
			if a == b {
				want = ^uint64(0)
			}
			if got := ctEqMask(a, b); got != want {
				t.Errorf("ctEqMask(%d, %d) = %#x, want %#x", a, b, got, want)
			}
		}
	}
	if got := ctEqMask(^uint64(0), ^uint64(0)); got != ^uint64(0) {
		t.Errorf("ctEqMask(max, max) = %#x", got)
	}
	z := []uint64{1, 2, 3}
	ctSelectWords(z, []uint64{7, 8, 9}, 0)
	if z[0] != 1 || z[2] != 3 {
		t.Error("ctSelectWords with zero mask modified z")
	}
	ctSelectWords(z, []uint64{7, 8, 9}, ^uint64(0))
	if z[0] != 7 || z[1] != 8 || z[2] != 9 {
		t.Error("ctSelectWords with full mask did not select")
	}
}

// FuzzExpConstantTime cross-checks the ladder against math/big.Exp on
// fuzzer-chosen (base, exponent, pad) triples over a fixed 256-bit
// modulus.
func FuzzExpConstantTime(f *testing.F) {
	f.Add([]byte{2}, []byte{3}, uint16(0))
	f.Add([]byte{0xff, 0xff}, []byte{0xff, 0xff, 0xff}, uint16(64))
	f.Add([]byte{1}, []byte{}, uint16(7))
	n, _ := new(big.Int).SetString(
		"ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc75", 16)
	mod, err := NewModulus(n)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, xb, eb []byte, pad uint16) {
		if len(eb) > 64 {
			eb = eb[:64] // keep ladder length bounded
		}
		x := new(big.Int).SetBytes(xb)
		e := new(big.Int).SetBytes(eb)
		got := ExpConstantTime(mod, x, e, int(pad%1024))
		want := new(big.Int).Exp(x, e, n)
		if got.Cmp(want) != 0 {
			t.Fatalf("x=%v e=%v pad=%d: ct=%v want=%v", x, e, pad, got, want)
		}
	})
}

// BenchmarkCTvsVariableLadder compares the constant-time ladder to the
// variable-time Montgomery backend on the commutative hot-path shape
// (256-bit short exponent); `medbench -table engine` records the same
// ratio into BENCH_parallel.json.
func BenchmarkCTvsVariableLadder(b *testing.B) {
	n := new(big.Int).Lsh(bigOne, 1023)
	n.Add(n, big.NewInt(982451653))
	mod, err := NewModulus(n)
	if err != nil {
		b.Fatal(err)
	}
	e, err := rand.Int(rand.Reader, new(big.Int).Lsh(bigOne, 256))
	if err != nil {
		b.Fatal(err)
	}
	e.SetBit(e, 255, 1)
	x, err := rand.Int(rand.Reader, n)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("variable", func(b *testing.B) {
		en, err := NewEngineBackend(mod, e, BackendMontgomery)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			en.Exp(x)
		}
	})
	b.Run("constant-time", func(b *testing.B) {
		en, err := NewEngineConstantTime(mod, e, 256)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			en.Exp(x)
		}
	})
}
