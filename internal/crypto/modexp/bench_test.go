package modexp

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// bench2048 is the RFC 3526 group-14 prime — the cipher's default modulus.
const bench2048 = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF6955817183995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF"

func benchSetup(b *testing.B, expBits int, backend Backend) (*Engine, []*big.Int) {
	b.Helper()
	p, ok := new(big.Int).SetString(bench2048, 16)
	if !ok {
		b.Fatal("bad prime")
	}
	mod, err := NewModulus(p)
	if err != nil {
		b.Fatal(err)
	}
	e, err := rand.Int(rand.Reader, new(big.Int).Lsh(bigOne, uint(expBits)))
	if err != nil {
		b.Fatal(err)
	}
	e.SetBit(e, expBits-1, 1)
	en, err := NewEngineBackend(mod, e, backend)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]*big.Int, 16)
	for i := range xs {
		x, err := rand.Int(rand.Reader, p)
		if err != nil {
			b.Fatal(err)
		}
		xs[i] = x
	}
	return en, xs
}

func benchExp(b *testing.B, expBits int, backend Backend) {
	en, xs := benchSetup(b, expBits, backend)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.Exp(xs[i%len(xs)])
	}
}

func BenchmarkExpFull2048Mont(b *testing.B) { benchExp(b, 2047, BackendMontgomery) }
func BenchmarkExpFull2048Big(b *testing.B)  { benchExp(b, 2047, BackendBig) }
func BenchmarkExpShort256Mont(b *testing.B) { benchExp(b, 256, BackendMontgomery) }
func BenchmarkExpShort256Big(b *testing.B)  { benchExp(b, 256, BackendBig) }
func BenchmarkExpAuto256(b *testing.B)      { benchExp(b, 256, BackendAuto) }
