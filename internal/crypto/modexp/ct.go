package modexp

// ct.go is the constant-time ladder: a fixed-window Montgomery
// exponentiation whose execution trajectory — operation sequence, loop
// bounds, memory access pattern — depends only on public parameters (the
// modulus and a declared exponent-length bound), never on the exponent's
// bits. It exists for deployments that reject the variable-time caveat
// documented on the sliding-window engine (docs/SECURITY.md): the window
// schedule of Engine.Exp is literally the exponent, so its replay leaks
// exponent structure to a co-resident attacker; this ladder does not.
//
// Three mechanisms remove the data dependence:
//
//   - Fixed windows. The exponent is split into ⌈bits/w⌉ contiguous
//     w-bit digits (no sliding, no zero-run skipping), so the ladder
//     always performs the same ⌈bits/w⌉·w squarings and ⌈bits/w⌉
//     multiplications for a given public bit bound. Zero digits multiply
//     by the Montgomery representation of 1 — a real multiplication,
//     indistinguishable from any other.
//   - Masked table scans. Every window lookup reads all 2^w table
//     entries and accumulates the selected one with ctEqMask/ctSelectWords
//     (mont.go), so the memory trace is independent of the digit value —
//     no secret-indexed loads.
//   - Constant-time reduction. montMulCT replaces the kernel's final
//     conditional subtraction with an unconditional subtract-and-select.
//
// The price is the skipped-work the sliding window exploits: measured
// overhead vs the variable-time ladder is recorded by `medbench -table
// engine` (ct_ladder_* fields in BENCH_parallel.json).

import (
	"fmt"
	"math/big"
)

// BackendConstantTime identifies engines built by NewEngineConstantTime.
// It is never selected by calibration: constant-time execution is a
// correctness property of the deployment, not a performance choice.
const BackendConstantTime Backend = 3

// publicBitBound declassifies an exponent's bit length. The CT ladder's
// execution trajectory is a function of its length bound alone, and the
// fall-back paths below reach this only when the caller declared the
// true length public (full-length exponents, or short exponents drawn to
// a fixed known size — groups.RandomShortExponent pins both end bits).
// The sanitizer annotation makes this the audited declassification point
// for cttaint: bit-length flows that bypass it are findings.
//
// seclint:sanitizer declared-public exponent bit length
func publicBitBound(e *big.Int) int { return e.BitLen() }

// ctWindowWidth picks the fixed-window width for an exponent bound:
// wider windows amortize multiplications but square the table (and its
// full scan per lookup), so the optimum sits below the sliding-window
// choice for the same length.
func ctWindowWidth(bits int) int {
	switch {
	case bits < 24:
		return 1
	case bits < 128:
		return 2
	case bits < 512:
		return 3
	case bits < 2048:
		return 4
	default:
		return 5
	}
}

// ExpConstantTime computes x^e mod n in constant time with respect to
// the value of e, given a public bound bits ≥ e.BitLen() on its length
// (the ladder pads to ⌈bits/w⌉ full windows, so only the bound — not
// the exponent's true length or bit pattern — shapes the execution).
// bits ≤ 0 falls back to e.BitLen(), which is the right call only when
// the exponent's length is itself public (e.g. full-length exponents
// drawn to a known size). e must be non-negative; x is reduced into
// [0, n) first and never modified.
func ExpConstantTime(m *Modulus, x, e *big.Int, bits int) *big.Int {
	if e.Sign() < 0 {
		panic("modexp: negative exponent")
	}
	if b := publicBitBound(e); bits < b {
		bits = b
	}
	if bits == 0 {
		// e = 0: x^0 = 1 for every x (math/big.Exp convention, n > 1).
		return big.NewInt(1)
	}
	if x.Sign() < 0 || x.Cmp(m.n) >= 0 {
		x = new(big.Int).Mod(x, m.n)
	}
	k := m.k
	w := ctWindowWidth(bits)
	tabN := 1 << w

	scratch := make([]uint64, k+2)
	buf := make([]uint64, (tabN+3)*k) // table + acc + sel + tmp
	tab := make([][]uint64, tabN)
	for i := range tab {
		tab[i] = buf[i*k : (i+1)*k]
	}
	acc := buf[tabN*k : (tabN+1)*k]
	sel := buf[(tabN+1)*k : (tabN+2)*k]
	tmp := buf[(tabN+2)*k : (tabN+3)*k]

	// tab[0] = R mod n (the Montgomery form of 1), tab[i] = x^i·R mod n.
	m.montMulCT(tab[0], m.one, m.rr, scratch)
	if tabN > 1 {
		m.montMulCT(tab[1], wordsOf(x, k), m.rr, scratch)
		for i := 2; i < tabN; i++ {
			m.montMulCT(tab[i], tab[i-1], tab[1], scratch)
		}
	}

	// Fixed-window digits, most significant first. The digit values are
	// secret; the digit count nd = ⌈bits/w⌉ is a function of the public
	// bound only.
	ew := wordsOf(e, (bits+63)/64)
	digit := func(j int) uint64 {
		bit := j * w
		wi, off := bit/64, uint(bit%64)
		d := ew[wi] >> off
		if off+uint(w) > 64 && wi+1 < len(ew) {
			d |= ew[wi+1] << (64 - off)
		}
		return d & (1<<uint(w) - 1)
	}

	nd := (bits + w - 1) / w
	copy(acc, tab[0]) // acc = 1 in Montgomery form
	for j := nd - 1; j >= 0; j-- {
		if j != nd-1 { // first round: squaring 1 is a no-op, skip is public
			for s := 0; s < w; s++ {
				m.montMulCT(tmp, acc, acc, scratch)
				acc, tmp = tmp, acc
			}
		}
		// Masked scan: read every entry, keep the one matching the digit.
		d := digit(j)
		for i := range sel {
			sel[i] = 0
		}
		for i := 0; i < tabN; i++ {
			ctSelectWords(sel, tab[i], ctEqMask(uint64(i), d))
		}
		m.montMulCT(tmp, acc, sel, scratch)
		acc, tmp = tmp, acc
	}

	out := make([]uint64, k)
	m.montMulCT(out, acc, m.one, scratch) // out of Montgomery form
	return bigOf(out)
}

// NewEngineConstantTime builds an engine whose Exp runs the fixed-window
// constant-time ladder instead of the calibrated variable-time backends.
// padBits declares the public bound on the exponent's length (its
// drawing range, e.g. groups.ShortExponentBits or |q|); padBits ≤ 0
// uses e.BitLen(), treating the true length as public. The engine never
// calibrates — Backend reports BackendConstantTime from birth.
func NewEngineConstantTime(mod *Modulus, e *big.Int, padBits int) (*Engine, error) {
	if mod == nil {
		return nil, fmt.Errorf("modexp: nil modulus")
	}
	if e == nil || e.Sign() <= 0 {
		return nil, fmt.Errorf("modexp: exponent must be positive")
	}
	if b := publicBitBound(e); padBits < b {
		padBits = b
	}
	en := &Engine{mod: mod, e: new(big.Int).Set(e), ctBits: padBits}
	en.backend.Store(int32(BackendConstantTime))
	en.calOnce.Do(func() {}) // never calibrate
	return en, nil
}

// ExpConstantTime runs the constant-time ladder with this engine's
// exponent, independent of the engine's configured backend. The length
// bound is the engine's declared padBits for constant-time engines and
// the exponent's own bit length otherwise.
func (en *Engine) ExpConstantTime(x *big.Int) *big.Int {
	bits := en.ctBits
	if bits == 0 {
		bits = publicBitBound(en.e)
	}
	return ExpConstantTime(en.mod, x, en.e, bits)
}
