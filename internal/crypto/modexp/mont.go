package modexp

import (
	"fmt"
	"math/big"
	"math/bits"
)

// Modulus is the reusable Montgomery context of one odd modulus: the
// word-level representation of n, the Montgomery constant -n⁻¹ mod 2⁶⁴,
// and the conversion factors R mod n and R² mod n (R = 2^(64·k) for k
// words). It holds public parameters only — the group modulus is part of
// dom_f and known to every party — so a single context is safely shared
// by all engines (and hence all keys) in the same group.
//
// All word vectors are little-endian []uint64, independent of the
// platform word size, so transcripts are architecture-independent.
type Modulus struct {
	n     *big.Int // the modulus itself, for big.Int interop
	nw    []uint64 // n in words
	k     int      // word count
	n0inv uint64   // -n⁻¹ mod 2⁶⁴ (CIOS reduction constant)
	rr    []uint64 // R² mod n: toMont multiplier
	one   []uint64 // the plain value 1: fromMont multiplier (a·R·1·R⁻¹ = a)
}

// NewModulus builds the Montgomery context for an odd modulus n > 1.
// The construction costs two big.Int divisions — amortized over every
// exponentiation any engine on this modulus ever performs.
func NewModulus(n *big.Int) (*Modulus, error) {
	if n == nil || n.Sign() <= 0 || n.Bit(0) == 0 || n.Cmp(bigOne) <= 0 {
		return nil, fmt.Errorf("modexp: modulus must be odd and > 1")
	}
	k := (n.BitLen() + 63) / 64
	m := &Modulus{n: new(big.Int).Set(n), k: k}
	m.nw = wordsOf(m.n, k)
	// n0inv = -n⁻¹ mod 2⁶⁴ by Newton iteration on the low word
	// (five steps double the valid bits from 4 to 64).
	inv := m.nw[0]
	for i := 0; i < 5; i++ {
		inv *= 2 - m.nw[0]*inv
	}
	m.n0inv = -inv
	r := new(big.Int).Lsh(bigOne, uint(64*k))
	m.one = wordsOf(bigOne, k)
	rSq := new(big.Int).Mul(r, r)
	m.rr = wordsOf(rSq.Mod(rSq, n), k)
	return m, nil
}

// N returns the modulus.
func (m *Modulus) N() *big.Int { return new(big.Int).Set(m.n) }

var bigOne = big.NewInt(1)

// wordsOf converts 0 ≤ x < 2^(64k) to k little-endian words.
func wordsOf(x *big.Int, k int) []uint64 {
	b := x.Bytes() // big-endian
	w := make([]uint64, k)
	for i := 0; i < len(b); i++ {
		byteIdx := len(b) - 1 - i // i-th least significant byte
		w[i/8] |= uint64(b[byteIdx]) << (8 * uint(i%8))
	}
	return w
}

// bigOf converts little-endian words back to a big.Int.
func bigOf(w []uint64) *big.Int {
	b := make([]byte, len(w)*8)
	for i, word := range w {
		for j := 0; j < 8; j++ {
			b[len(b)-1-(i*8+j)] = byte(word >> (8 * uint(j)))
		}
	}
	return new(big.Int).SetBytes(b)
}

// montMul computes z = x·y·R⁻¹ mod n (CIOS: coarsely integrated operand
// scanning, Menezes et al. Alg. 14.36) into z, using t as scratch.
// x, y < n is required; z < n is guaranteed. z must not alias x or y;
// len(z) = k, len(t) = k+2. The final reduction is a data-dependent
// conditional subtraction — use montMulCT where the operands derive from
// secret exponent digits.
func (m *Modulus) montMul(z, x, y, t []uint64) {
	m.montMulCore(z, x, y, t)
	// The loop invariant leaves t < 2n; one conditional subtraction
	// finishes the reduction.
	if t[m.k] != 0 || geWords(z, m.nw) {
		subWords(z, m.nw)
	}
}

// montMulCT is montMul with a constant-time final reduction: the
// subtraction is always computed and the result selected by mask, so no
// branch or memory access depends on the value being reduced. The CIOS
// core itself is already fixed-trajectory (bits.Mul64/Add64 over fixed
// loop bounds), which makes this the multiplication kernel of the
// constant-time ladder (ct.go).
func (m *Modulus) montMulCT(z, x, y, t []uint64) {
	k := m.k
	m.montMulCore(z, x, y, t)
	// t < 2n, so the carry word t[k] is 0 or 1. Subtract n iff
	// t[k]·2^(64k) + z ≥ n: always compute z-n into t, then select.
	var borrow uint64
	for i := 0; i < k; i++ {
		t[i], borrow = bits.Sub64(z[i], m.nw[i], borrow)
	}
	// Reduce iff the high word is set (z wrapped past 2^(64k) ≥ n) or
	// the subtraction did not borrow (z ≥ n).
	ctSelectWords(z, t[:k], ctMask(t[k]|(borrow^1)))
}

// montMulCore runs the CIOS loop, leaving the sub-2n result in z (low k
// words) and its carry bit in t[k]. len(z) = k, len(t) = k+2.
func (m *Modulus) montMulCore(z, x, y, t []uint64) {
	k := m.k
	n := m.nw
	for i := range t {
		t[i] = 0
	}
	for i := 0; i < k; i++ {
		// t += x[i]·y
		var carry uint64
		xi := x[i]
		for j := 0; j < k; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			var c uint64
			lo, c = bits.Add64(lo, t[j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			t[j] = lo
			carry = hi
		}
		var c uint64
		t[k], c = bits.Add64(t[k], carry, 0)
		t[k+1] += c
		// t = (t + mf·n) / 2⁶⁴ — mf chosen so the low word cancels
		mf := t[0] * m.n0inv
		hi, lo := bits.Mul64(mf, n[0])
		_, c = bits.Add64(lo, t[0], 0)
		carry = hi + c
		for j := 1; j < k; j++ {
			hi, lo := bits.Mul64(mf, n[j])
			var c uint64
			lo, c = bits.Add64(lo, t[j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			t[j-1] = lo
			carry = hi
		}
		t[k-1], c = bits.Add64(t[k], carry, 0)
		t[k] = t[k+1] + c
		t[k+1] = 0
	}
	copy(z, t[:k])
}

// ctMask expands a 0/1 bit into a 0/all-ones word without branching.
func ctMask(bit uint64) uint64 { return -bit }

// ctSelectWords sets z[i] = b[i] where mask is all-ones and leaves z
// untouched where mask is zero, in constant time.
func ctSelectWords(z, b []uint64, mask uint64) {
	for i := range z {
		z[i] ^= mask & (z[i] ^ b[i])
	}
}

// ctEqMask returns all-ones when a == b and zero otherwise, without
// branching — the comparator of the masked table scan in ct.go.
func ctEqMask(a, b uint64) uint64 {
	x := a ^ b
	return ctMask(((x | -x) >> 63) ^ 1)
}

// geWords reports a ≥ b for equal-length little-endian words.
func geWords(a, b []uint64) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return true
}

// subWords computes a -= b in place (a ≥ b required).
func subWords(a, b []uint64) {
	var borrow uint64
	for i := range a {
		a[i], borrow = bits.Sub64(a[i], b[i], borrow)
	}
}
