package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func benchKey(b *testing.B, bits int) *PrivateKey {
	b.Helper()
	key, err := GenerateKey(rand.Reader, bits)
	if err != nil {
		b.Fatal(err)
	}
	return key
}

// Textbook encryption: the full r^n mod n² exponentiation per randomizer.
// A fresh PublicKey copy is used per iteration batch so the warmup counter
// never flips the key into the precomputed path mid-measurement.
func BenchmarkEncryptTextbook(b *testing.B) {
	key := benchKey(b, 1024)
	m := big.NewInt(424242)
	for i := 0; i < b.N; i++ {
		pk := &PublicKey{N: key.N, NSquared: key.NSquared}
		if _, err := pk.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

// Fixed-base encryption: randomizers come from the windowed table over
// β = x^n, ~ℓ/4 multiplications instead of a full exponentiation.
func BenchmarkEncryptPrecomputed(b *testing.B) {
	key := benchKey(b, 1024)
	pk := &PublicKey{N: key.N, NSquared: key.NSquared}
	if err := pk.Precompute(rand.Reader); err != nil {
		b.Fatal(err)
	}
	m := big.NewInt(424242)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pk.Encrypt(rand.Reader, m); err != nil {
			b.Fatal(err)
		}
	}
}

// One-time cost of building the fixed-base table.
func BenchmarkPrecompute(b *testing.B) {
	key := benchKey(b, 1024)
	for i := 0; i < b.N; i++ {
		pk := &PublicKey{N: key.N, NSquared: key.NSquared}
		if err := pk.Precompute(rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	key := benchKey(b, 1024)
	ct, err := key.PublicKey.Encrypt(rand.Reader, big.NewInt(424242))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := key.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}
