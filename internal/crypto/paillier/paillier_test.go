package paillier

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

var (
	keyOnce sync.Once
	tk      *PrivateKey
)

// testKeypair returns a shared small key (512-bit) so tests stay fast.
func testKeypair(t testing.TB) *PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		var err error
		tk, err = GenerateKey(rand.Reader, 512)
		if err != nil {
			panic(err)
		}
	})
	return tk
}

func TestGenerateKeyValidation(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 32); err == nil {
		t.Error("32-bit modulus accepted")
	}
	if _, err := GenerateKey(rand.Reader, 65); err == nil {
		t.Error("odd modulus size accepted")
	}
	k := testKeypair(t)
	if k.N.BitLen() != 512 {
		t.Errorf("modulus bits = %d, want 512", k.N.BitLen())
	}
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	k := testKeypair(t)
	f := func(m uint32) bool {
		c, err := k.EncryptInt64(rand.Reader, int64(m))
		if err != nil {
			return false
		}
		got, err := k.Decrypt(c)
		return err == nil && got.Int64() == int64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEncryptRange(t *testing.T) {
	k := testKeypair(t)
	if _, err := k.Encrypt(rand.Reader, big.NewInt(-1)); err == nil {
		t.Error("negative plaintext accepted by Encrypt")
	}
	if _, err := k.Encrypt(rand.Reader, k.N); err == nil {
		t.Error("plaintext = n accepted")
	}
	if _, err := k.EncryptInt64(rand.Reader, -3); err == nil {
		t.Error("EncryptInt64(-3) accepted")
	}
	// Boundary: n-1 must roundtrip.
	c, err := k.Encrypt(rand.Reader, k.MaxPlaintext())
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Decrypt(c)
	if err != nil || got.Cmp(k.MaxPlaintext()) != 0 {
		t.Errorf("n-1 roundtrip failed: %v %v", got, err)
	}
}

func TestHomomorphicAdd(t *testing.T) {
	k := testKeypair(t)
	f := func(a, b uint32) bool {
		ca, _ := k.EncryptInt64(rand.Reader, int64(a))
		cb, _ := k.EncryptInt64(rand.Reader, int64(b))
		sum, err := k.Decrypt(k.Add(ca, cb))
		return err == nil && sum.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHomomorphicAddPlain(t *testing.T) {
	k := testKeypair(t)
	ca, _ := k.EncryptInt64(rand.Reader, 100)
	got, err := k.Decrypt(k.AddPlain(ca, big.NewInt(23)))
	if err != nil || got.Int64() != 123 {
		t.Errorf("AddPlain: %v %v", got, err)
	}
	// Negative plaintext wraps mod n, recoverable via DecryptSigned.
	gotNeg, err := k.DecryptSigned(k.AddPlain(ca, big.NewInt(-150)))
	if err != nil || gotNeg.Int64() != -50 {
		t.Errorf("AddPlain negative: %v %v", gotNeg, err)
	}
}

func TestHomomorphicMulConst(t *testing.T) {
	k := testKeypair(t)
	f := func(a uint16, g uint16) bool {
		ca, _ := k.EncryptInt64(rand.Reader, int64(a))
		got, err := k.Decrypt(k.MulConst(ca, big.NewInt(int64(g))))
		return err == nil && got.Int64() == int64(a)*int64(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSignedRoundtrip(t *testing.T) {
	k := testKeypair(t)
	for _, m := range []int64{0, 1, -1, 123456, -123456} {
		c, err := k.EncryptSigned(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.DecryptSigned(c)
		if err != nil || got.Int64() != m {
			t.Errorf("signed roundtrip %d: got %v, %v", m, got, err)
		}
	}
}

func TestRerandomize(t *testing.T) {
	k := testKeypair(t)
	c, _ := k.EncryptInt64(rand.Reader, 7)
	r, err := k.Rerandomize(rand.Reader, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.C.Cmp(c.C) == 0 {
		t.Error("rerandomized ciphertext identical")
	}
	got, err := k.Decrypt(r)
	if err != nil || got.Int64() != 7 {
		t.Errorf("rerandomize changed plaintext: %v %v", got, err)
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	k := testKeypair(t)
	c1, _ := k.EncryptInt64(rand.Reader, 9)
	c2, _ := k.EncryptInt64(rand.Reader, 9)
	if c1.C.Cmp(c2.C) == 0 {
		t.Error("two encryptions of 9 are identical")
	}
}

func TestDecryptValidation(t *testing.T) {
	k := testKeypair(t)
	if _, err := k.Decrypt(nil); err == nil {
		t.Error("nil ciphertext accepted")
	}
	if _, err := k.Decrypt(&Ciphertext{C: new(big.Int)}); err == nil {
		t.Error("zero ciphertext accepted")
	}
	if _, err := k.Decrypt(&Ciphertext{C: new(big.Int).Set(k.NSquared)}); err == nil {
		t.Error("out-of-range ciphertext accepted")
	}
}

func TestRandomPlaintextRange(t *testing.T) {
	k := testKeypair(t)
	for i := 0; i < 20; i++ {
		r, err := k.RandomPlaintext(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if r.Sign() <= 0 || r.Cmp(k.N) >= 0 {
			t.Errorf("RandomPlaintext out of (0, n): %v", r)
		}
	}
}

// The PM protocol's core identity: Dec(E(r·P(a)+m)) = m when P(a)=0.
func TestMaskedEvaluationIdentity(t *testing.T) {
	k := testKeypair(t)
	// E(P(a)) where P(a) = 0: encrypt zero.
	cz, _ := k.EncryptInt64(rand.Reader, 0)
	r, _ := k.RandomPlaintext(rand.Reader)
	payload := big.NewInt(0xDEADBEEF)
	masked := k.AddPlain(k.MulConst(cz, r), payload)
	got, err := k.Decrypt(masked)
	if err != nil || got.Cmp(payload) != 0 {
		t.Errorf("masked eval on root: %v %v, want payload", got, err)
	}
	// Non-root: r·v + payload with v != 0 is (w.h.p.) not payload.
	cv, _ := k.EncryptInt64(rand.Reader, 12345)
	masked2 := k.AddPlain(k.MulConst(cv, r), payload)
	got2, _ := k.Decrypt(masked2)
	if got2.Cmp(payload) == 0 {
		t.Error("masked eval on non-root leaked payload")
	}
}

// The CRT fast path must agree with the textbook λ/μ decryption.
func TestCRTMatchesLambdaDecryption(t *testing.T) {
	k := testKeypair(t)
	f := func(m uint64) bool {
		c, err := k.Encrypt(rand.Reader, new(big.Int).SetUint64(m))
		if err != nil {
			return false
		}
		crt, err := k.Decrypt(c)
		if err != nil {
			return false
		}
		return crt.Cmp(k.decryptLambda(c)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	// Boundary plaintexts.
	for _, m := range []*big.Int{big.NewInt(0), big.NewInt(1), k.MaxPlaintext()} {
		c, err := k.Encrypt(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		crt, err := k.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if crt.Cmp(k.decryptLambda(c)) != 0 || crt.Cmp(m) != 0 {
			t.Errorf("CRT/lambda/plaintext mismatch at %v", m)
		}
	}
}

func BenchmarkDecryptCRT(b *testing.B) {
	k, err := GenerateKey(rand.Reader, 2048)
	if err != nil {
		b.Fatal(err)
	}
	c, _ := k.EncryptInt64(rand.Reader, 123456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Decrypt(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecryptLambda(b *testing.B) {
	k, err := GenerateKey(rand.Reader, 2048)
	if err != nil {
		b.Fatal(err)
	}
	c, _ := k.EncryptInt64(rand.Reader, 123456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.decryptLambda(c)
	}
}

func TestFixedBaseExpMatchesExp(t *testing.T) {
	k := testKeypair(t)
	base, err := k.PublicKey.randomUnit(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	fb := newFixedBase(base, k.NSquared, k.N.BitLen())
	for i := 0; i < 32; i++ {
		e, err := rand.Int(rand.Reader, k.N)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Exp(base, e, k.NSquared)
		if got := fb.exp(e); got.Cmp(want) != 0 {
			t.Fatalf("fixed-base exp mismatch for e=%v", e)
		}
	}
	// Edge exponents.
	for _, e := range []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(15), big.NewInt(16)} {
		want := new(big.Int).Exp(base, e, k.NSquared)
		if got := fb.exp(e); got.Cmp(want) != 0 {
			t.Fatalf("fixed-base exp mismatch for small e=%v", e)
		}
	}
}

func TestPrecomputedEncryptDecrypts(t *testing.T) {
	k, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.PublicKey.Precompute(rand.Reader); err != nil {
		t.Fatal(err)
	}
	if k.PublicKey.fb.Load() == nil {
		t.Fatal("Precompute left no table")
	}
	for i := int64(0); i < 40; i++ {
		c, err := k.EncryptInt64(rand.Reader, i*7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != i*7 {
			t.Fatalf("CRT decrypt = %v, want %d", got, i*7)
		}
		if l := k.decryptLambda(c); l.Int64() != i*7 {
			t.Fatalf("lambda decrypt = %v, want %d", l, i*7)
		}
	}
	// Precomputed encryption must stay probabilistic.
	c1, _ := k.EncryptInt64(rand.Reader, 99)
	c2, _ := k.EncryptInt64(rand.Reader, 99)
	if c1.C.Cmp(c2.C) == 0 {
		t.Fatal("precomputed encryption is deterministic")
	}
}

func TestWarmupTriggersPrecompute(t *testing.T) {
	k, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fbWarmup-1; i++ {
		if _, err := k.EncryptInt64(rand.Reader, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if k.PublicKey.fb.Load() != nil {
		t.Fatal("table built before warmup threshold")
	}
	if _, err := k.EncryptInt64(rand.Reader, 1); err != nil {
		t.Fatal(err)
	}
	if k.PublicKey.fb.Load() == nil {
		t.Fatal("warmup did not build the table")
	}
	c, err := k.EncryptInt64(rand.Reader, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := k.Decrypt(c); err != nil || got.Int64() != 1234 {
		t.Fatalf("post-warmup decrypt = %v, %v", got, err)
	}
}

// TestEncryptBatch checks the batch entry point: order preservation and
// scalar-path agreement across worker counts, eager table construction,
// and whole-batch failure on a bad plaintext.
func TestEncryptBatch(t *testing.T) {
	k := testKeypair(t)
	pk := &PublicKey{N: k.N, NSquared: k.NSquared} // fresh key: no table yet
	ms := make([]*big.Int, 25)
	for i := range ms {
		ms[i] = big.NewInt(int64(1000 + i))
	}
	for _, workers := range []int{1, 4, 0} {
		cs, err := pk.EncryptBatch(rand.Reader, ms, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(cs) != len(ms) {
			t.Fatalf("workers=%d: got %d ciphertexts", workers, len(cs))
		}
		for i, c := range cs {
			m, err := k.Decrypt(c)
			if err != nil {
				t.Fatal(err)
			}
			if m.Cmp(ms[i]) != 0 {
				t.Fatalf("workers=%d: element %d decrypts to %v, want %v", workers, i, m, ms[i])
			}
		}
	}
	if pk.fb.Load() == nil {
		t.Error("EncryptBatch did not build the fixed-base table eagerly")
	}
	bad := append([]*big.Int(nil), ms...)
	bad[13] = new(big.Int).Neg(one)
	if _, err := pk.EncryptBatch(rand.Reader, bad, 4); err == nil {
		t.Error("batch accepted an out-of-range plaintext")
	}
	bad[13] = nil
	if _, err := pk.EncryptBatch(rand.Reader, bad, 4); err == nil {
		t.Error("batch accepted a nil plaintext")
	}
}
