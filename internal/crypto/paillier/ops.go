package paillier

import "github.com/secmediation/secmediation/internal/telemetry"

// Process-wide operation counters (telemetry.OpTotals). A bump is one
// atomic add against the ~ms-scale modular arithmetic it counts, so the
// counters stay always-on.
var (
	opEncrypt = telemetry.CryptoOp("paillier.encrypt")
	opDecrypt = telemetry.CryptoOp("paillier.decrypt")
)
