// Package paillier implements the Paillier public-key cryptosystem
// (Paillier, EUROCRYPT'99), the additively homomorphic scheme the paper's
// private-matching protocol (Section 5) relies on:
//
//   - E(a)·E(b) mod n²  decrypts to  a+b mod n      (homomorphic addition)
//   - E(a)^γ   mod n²  decrypts to  γ·a mod n      (scalar multiplication)
//
// which is exactly what oblivious polynomial evaluation
// E(r·P(a') + (a'‖payload)) needs.
//
// Construction (with the standard g = n+1 simplification):
//
//	KeyGen: n = p·q for equal-size primes, λ = lcm(p-1, q-1), μ = λ⁻¹ mod n
//	Enc(m): c = (1 + m·n) · rⁿ mod n²  for random r ∈ Z_n^*
//	Dec(c): m = L(c^λ mod n²) · μ mod n,  L(u) = (u-1)/n
package paillier

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
	"sync/atomic"

	"github.com/secmediation/secmediation/internal/parallel"
)

var one = big.NewInt(1)

// PublicKey is a Paillier public key.
//
// A key lazily builds a fixed-base precomputation table for its
// randomizer (see Precompute); the table lives in unexported fields, so
// transported keys (gob) arrive without it and rebuild it on their side
// of the wire once they encrypt enough values to amortize the cost.
type PublicKey struct {
	// N is the modulus.
	N *big.Int
	// NSquared caches N².
	NSquared *big.Int

	// fb is the lazily built fixed-base randomizer table; encs counts
	// encryptions so the table is only built once a key is demonstrably
	// hot (building costs a few plain exponentiations).
	fb   atomic.Pointer[fixedBase]
	encs atomic.Int64
}

// Fixed-base precomputation parameters.
const (
	// fbWindow is the window width in bits: the table stores
	// base^(j·2^(fbWindow·i)) for every window position i and digit j,
	// turning an ℓ-bit exponentiation into ~ℓ/fbWindow multiplications
	// (no squarings).
	fbWindow = 4
	// fbWarmup is the number of Encrypt calls after which a key builds
	// its table automatically; building costs roughly four plain
	// exponentiations, so the break-even point is a handful of
	// encryptions.
	fbWarmup = 8
)

// fixedBase is a windowed fixed-base exponentiation table modulo n²:
// table[i][j-1] = base^(j · 2^(fbWindow·i)) for j ∈ [1, 2^fbWindow).
type fixedBase struct {
	table [][]*big.Int
	mod   *big.Int
}

func newFixedBase(base, mod *big.Int, bits int) *fixedBase {
	blocks := (bits + fbWindow - 1) / fbWindow
	fb := &fixedBase{table: make([][]*big.Int, blocks), mod: mod}
	b := new(big.Int).Set(base)
	for i := 0; i < blocks; i++ {
		row := make([]*big.Int, (1<<fbWindow)-1)
		row[0] = new(big.Int).Set(b)
		for j := 2; j < 1<<fbWindow; j++ {
			row[j-1] = new(big.Int).Mul(row[j-2], b)
			row[j-1].Mod(row[j-1], mod)
		}
		fb.table[i] = row
		for s := 0; s < fbWindow; s++ {
			b.Mul(b, b)
			b.Mod(b, mod)
		}
	}
	return fb
}

// exp computes base^e mod n² from the table: one multiplication per
// non-zero exponent window, no squarings.
func (fb *fixedBase) exp(e *big.Int) *big.Int {
	acc := big.NewInt(1)
	bits := e.BitLen()
	for i := 0; i*fbWindow < bits && i < len(fb.table); i++ {
		var d uint
		for b := 0; b < fbWindow; b++ {
			if e.Bit(i*fbWindow+b) == 1 {
				d |= 1 << b
			}
		}
		if d != 0 {
			acc.Mul(acc, fb.table[i][d-1])
			acc.Mod(acc, fb.mod)
		}
	}
	return acc
}

// Precompute builds the key's fixed-base randomizer table immediately.
//
// Two bases appear in Enc(m) = g^m · r^n mod n². With the standard
// g = n+1 choice, g^m = 1 + m·n needs no table at all — it is a single
// multiplication, which Encrypt already exploits. The expensive term is
// the randomizer r^n: its exponent n is fixed but its base is fresh per
// encryption, so fixed-base precomputation cannot apply directly.
// Instead the key fixes β = x^n mod n² once (for a random unit x) and
// draws randomizers as β^a for fresh random a ∈ [1, n): β is fixed, so
// the windowed table turns every randomizer into ~|n|/4 multiplications
// instead of a full |n|-bit exponentiation (~4–5× less work).
//
// The randomizers then range over the cyclic subgroup ⟨β⟩ of the n-th
// powers rather than the full group of n-th residues; for a random x the
// subgroup is overwhelmingly likely to be large and the resulting
// distribution is the standard randomizer-precomputation trade-off
// (semantic security still rests on the DCR assumption). Keys that never
// call Precompute and stay below the automatic warmup threshold keep the
// textbook uniform r^n path.
func (pk *PublicKey) Precompute(rnd io.Reader) error {
	if pk.fb.Load() != nil {
		return nil
	}
	x, err := pk.randomUnit(rnd)
	if err != nil {
		return err
	}
	beta := new(big.Int).Exp(x, pk.N, pk.NSquared)
	// a is drawn in [1, n), so n.BitLen() bits of table suffice.
	pk.fb.CompareAndSwap(nil, newFixedBase(beta, pk.NSquared, pk.N.BitLen()))
	return nil
}

// randomizer returns a fresh r^n mod n² factor: via the fixed-base table
// when present, via the textbook random-unit exponentiation otherwise.
// The warmup counter triggers an automatic Precompute on hot keys.
func (pk *PublicKey) randomizer(rnd io.Reader) (*big.Int, error) {
	if fb := pk.fb.Load(); fb != nil {
		a, err := rand.Int(rnd, new(big.Int).Sub(pk.N, one))
		if err != nil {
			return nil, fmt.Errorf("paillier: randomizer exponent: %w", err)
		}
		a.Add(a, one)
		return fb.exp(a), nil
	}
	if pk.encs.Add(1) == fbWarmup {
		if err := pk.Precompute(rnd); err != nil {
			return nil, err
		}
	}
	r, err := pk.randomUnit(rnd)
	if err != nil {
		return nil, err
	}
	return new(big.Int).Exp(r, pk.N, pk.NSquared), nil
}

// PrivateKey is a Paillier private key. Decryption uses the standard CRT
// optimization (work modulo p² and q² instead of n²), which is ~3–4×
// faster than the textbook λ/μ route; both paths are kept and
// cross-checked in tests.
// seclint:private Paillier decryption key
type PrivateKey struct {
	PublicKey
	lambda *big.Int // seclint:secret lcm(p-1, q-1)
	mu     *big.Int // seclint:secret lambda⁻¹ mod n

	// CRT precomputation.
	p, q     *big.Int // seclint:secret modulus factors
	pSq, qSq *big.Int // seclint:secret p², q²
	hp, hq   *big.Int // seclint:secret L_p(g^{p-1} mod p²)⁻¹ mod p, and the q analogue
	pInvQ    *big.Int // seclint:secret p⁻¹ mod q
}

// Ciphertext is a Paillier ciphertext, an element of Z_{n²}^*.
type Ciphertext struct {
	C *big.Int
}

// GenerateKey creates a key pair with a modulus of the given bit length.
// bits must be even and at least 64 (tests use small parameters; use 2048+
// in earnest).
func GenerateKey(rnd io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 || bits%2 != 0 {
		return nil, fmt.Errorf("paillier: invalid modulus size %d", bits)
	}
	for {
		p, err := rand.Prime(rnd, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generate prime: %w", err)
		}
		q, err := rand.Prime(rnd, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generate prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)
		mu := new(big.Int).ModInverse(lambda, n)
		if mu == nil {
			continue // gcd(lambda, n) != 1; retry with new primes
		}
		key := &PrivateKey{
			PublicKey: PublicKey{N: n, NSquared: new(big.Int).Mul(n, n)},
			lambda:    lambda,
			mu:        mu,
			p:         p, q: q,
			pSq: new(big.Int).Mul(p, p),
			qSq: new(big.Int).Mul(q, q),
		}
		// h_p = L_p(g^{p-1} mod p²)⁻¹ mod p with g = n+1, so
		// g^{p-1} mod p² = 1 + (p-1)·n mod p² and L_p is exact division.
		g := new(big.Int).Add(n, one)
		key.hp = crtH(g, p, key.pSq, pm1)
		key.hq = crtH(g, q, key.qSq, qm1)
		key.pInvQ = new(big.Int).ModInverse(p, q)
		if key.hp == nil || key.hq == nil || key.pInvQ == nil {
			continue // degenerate primes; retry
		}
		return key, nil
	}
}

// crtH computes L_r(g^{r-1} mod r²)⁻¹ mod r for a prime factor r.
func crtH(g, r, rSq, rm1 *big.Int) *big.Int {
	u := new(big.Int).Exp(g, rm1, rSq)
	u.Sub(u, one)
	u.Div(u, r)
	u.Mod(u, r)
	return u.ModInverse(u, r)
}

// MaxPlaintext returns the largest encodable plaintext, n-1.
func (pk *PublicKey) MaxPlaintext() *big.Int {
	return new(big.Int).Sub(pk.N, one)
}

// Encrypt encrypts 0 ≤ m < n. Safe for concurrent use: the protocol hot
// loops fan encryptions out over a worker pool.
// seclint:sanitizer Paillier encrypt boundary
func (pk *PublicKey) Encrypt(rnd io.Reader, m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext out of range [0, n)")
	}
	rn, err := pk.randomizer(rnd)
	if err != nil {
		return nil, err
	}
	opEncrypt.Add(1)
	// c = (1 + m·n) · r^n mod n²
	c := new(big.Int).Mul(m, pk.N)
	c.Add(c, one)
	c.Mod(c, pk.NSquared)
	c.Mul(c, rn)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{C: c}, nil
}

// EncryptInt64 encrypts a small non-negative integer.
// seclint:sanitizer Paillier encrypt boundary
func (pk *PublicKey) EncryptInt64(rnd io.Reader, m int64) (*Ciphertext, error) {
	if m < 0 {
		return nil, fmt.Errorf("paillier: negative plaintext %d", m)
	}
	return pk.Encrypt(rnd, big.NewInt(m))
}

// EncryptBatch encrypts a slice of plaintexts (each in [0, n)) across a
// worker pool (workers as in parallel.Resolve), preserving order. The
// fixed-base randomizer table is built eagerly before the pool starts —
// a batch is by definition hot enough to amortize it — so every worker
// draws its randomizers from the shared table instead of racing through
// the warmup counter with full-width exponentiations. rnd must be safe
// for concurrent use (crypto/rand.Reader is).
// seclint:sanitizer Paillier encrypt boundary
func (pk *PublicKey) EncryptBatch(rnd io.Reader, ms []*big.Int, workers int) ([]*Ciphertext, error) {
	if len(ms) > 1 {
		if err := pk.Precompute(rnd); err != nil {
			return nil, err
		}
	}
	return parallel.Map(len(ms), workers, func(i int) (*Ciphertext, error) {
		if ms[i] == nil {
			return nil, fmt.Errorf("paillier: nil plaintext at index %d", i)
		}
		return pk.Encrypt(rnd, ms[i])
	})
}

// EncryptSigned encrypts a possibly negative value by reducing it modulo n
// (two's-complement style: -x encodes as n-x). DecryptSigned reverses it.
// The PM polynomial coefficients are signed, so the protocol uses this pair.
// seclint:sanitizer Paillier encrypt boundary
func (pk *PublicKey) EncryptSigned(rnd io.Reader, m *big.Int) (*Ciphertext, error) {
	mm := new(big.Int).Mod(m, pk.N)
	return pk.Encrypt(rnd, mm)
}

// Decrypt recovers the plaintext in [0, n), via CRT when the key carries
// its factorization (keys from GenerateKey always do).
// seclint:source Paillier decryption output
func (sk *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	if err := sk.checkCiphertext(c); err != nil {
		return nil, err
	}
	opDecrypt.Add(1)
	if sk.p == nil {
		return sk.decryptLambda(c), nil
	}
	// m_p = L_p(c^{p-1} mod p²)·h_p mod p; m_q analogously.
	mp := new(big.Int).Exp(c.C, new(big.Int).Sub(sk.p, one), sk.pSq)
	mp.Sub(mp, one)
	mp.Div(mp, sk.p)
	mp.Mul(mp, sk.hp)
	mp.Mod(mp, sk.p)
	mq := new(big.Int).Exp(c.C, new(big.Int).Sub(sk.q, one), sk.qSq)
	mq.Sub(mq, one)
	mq.Div(mq, sk.q)
	mq.Mul(mq, sk.hq)
	mq.Mod(mq, sk.q)
	// CRT recombination: m = m_p + p·((m_q − m_p)·p⁻¹ mod q).
	t := new(big.Int).Sub(mq, mp)
	t.Mul(t, sk.pInvQ)
	t.Mod(t, sk.q)
	t.Mul(t, sk.p)
	t.Add(t, mp)
	return t, nil
}

// decryptLambda is the textbook λ/μ decryption; kept as the reference path
// and cross-checked against the CRT path in tests.
// seclint:source Paillier decryption output
func (sk *PrivateKey) decryptLambda(c *Ciphertext) *big.Int {
	u := new(big.Int).Exp(c.C, sk.lambda, sk.NSquared)
	// L(u) = (u-1)/n
	u.Sub(u, one)
	u.Div(u, sk.N)
	u.Mul(u, sk.mu)
	u.Mod(u, sk.N)
	return u
}

// DecryptSigned recovers a signed plaintext in (-n/2, n/2].
// seclint:source Paillier decryption output
func (sk *PrivateKey) DecryptSigned(c *Ciphertext) (*big.Int, error) {
	m, err := sk.Decrypt(c)
	if err != nil {
		return nil, err
	}
	half := new(big.Int).Rsh(sk.N, 1)
	if m.Cmp(half) > 0 {
		m.Sub(m, sk.N)
	}
	return m, nil
}

// Add returns a ciphertext of a+b given ciphertexts of a and b.
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{C: c}
}

// AddPlain returns a ciphertext of a+m given a ciphertext of a and a
// plaintext m (no fresh randomness needed; callers that require semantic
// security of the sum should Rerandomize).
func (pk *PublicKey) AddPlain(a *Ciphertext, m *big.Int) *Ciphertext {
	mm := new(big.Int).Mod(m, pk.N)
	g := new(big.Int).Mul(mm, pk.N)
	g.Add(g, one)
	g.Mod(g, pk.NSquared)
	c := new(big.Int).Mul(a.C, g)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{C: c}
}

// MulConst returns a ciphertext of γ·a given a ciphertext of a.
func (pk *PublicKey) MulConst(a *Ciphertext, gamma *big.Int) *Ciphertext {
	g := new(big.Int).Mod(gamma, pk.N)
	return &Ciphertext{C: new(big.Int).Exp(a.C, g, pk.NSquared)}
}

// Rerandomize multiplies by a fresh encryption of zero, making the
// ciphertext unlinkable to its inputs.
func (pk *PublicKey) Rerandomize(rnd io.Reader, a *Ciphertext) (*Ciphertext, error) {
	zero, err := pk.Encrypt(rnd, new(big.Int))
	if err != nil {
		return nil, err
	}
	return pk.Add(a, zero), nil
}

// RandomPlaintext draws a uniformly random plaintext in [1, n), used as the
// masking factor r in the PM protocol's E(r·P(a') + ...).
func (pk *PublicKey) RandomPlaintext(rnd io.Reader) (*big.Int, error) {
	m, err := rand.Int(rnd, new(big.Int).Sub(pk.N, one))
	if err != nil {
		return nil, fmt.Errorf("paillier: random plaintext: %w", err)
	}
	return m.Add(m, one), nil
}

func (pk *PublicKey) randomUnit(rnd io.Reader) (*big.Int, error) {
	for {
		r, err := rand.Int(rnd, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: random unit: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

func (pk *PublicKey) checkCiphertext(c *Ciphertext) error {
	if c == nil || c.C == nil {
		return fmt.Errorf("paillier: nil ciphertext")
	}
	if c.C.Sign() <= 0 || c.C.Cmp(pk.NSquared) >= 0 {
		return fmt.Errorf("paillier: ciphertext out of range")
	}
	return nil
}
