// Package paillier implements the Paillier public-key cryptosystem
// (Paillier, EUROCRYPT'99), the additively homomorphic scheme the paper's
// private-matching protocol (Section 5) relies on:
//
//   - E(a)·E(b) mod n²  decrypts to  a+b mod n      (homomorphic addition)
//   - E(a)^γ   mod n²  decrypts to  γ·a mod n      (scalar multiplication)
//
// which is exactly what oblivious polynomial evaluation
// E(r·P(a') + (a'‖payload)) needs.
//
// Construction (with the standard g = n+1 simplification):
//
//	KeyGen: n = p·q for equal-size primes, λ = lcm(p-1, q-1), μ = λ⁻¹ mod n
//	Enc(m): c = (1 + m·n) · rⁿ mod n²  for random r ∈ Z_n^*
//	Dec(c): m = L(c^λ mod n²) · μ mod n,  L(u) = (u-1)/n
package paillier

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

var one = big.NewInt(1)

// PublicKey is a Paillier public key.
type PublicKey struct {
	// N is the modulus.
	N *big.Int
	// NSquared caches N².
	NSquared *big.Int
}

// PrivateKey is a Paillier private key. Decryption uses the standard CRT
// optimization (work modulo p² and q² instead of n²), which is ~3–4×
// faster than the textbook λ/μ route; both paths are kept and
// cross-checked in tests.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p-1, q-1)
	mu     *big.Int // lambda⁻¹ mod n

	// CRT precomputation.
	p, q     *big.Int
	pSq, qSq *big.Int // p², q²
	hp, hq   *big.Int // L_p(g^{p-1} mod p²)⁻¹ mod p, and the q analogue
	pInvQ    *big.Int // p⁻¹ mod q
}

// Ciphertext is a Paillier ciphertext, an element of Z_{n²}^*.
type Ciphertext struct {
	C *big.Int
}

// GenerateKey creates a key pair with a modulus of the given bit length.
// bits must be even and at least 64 (tests use small parameters; use 2048+
// in earnest).
func GenerateKey(rnd io.Reader, bits int) (*PrivateKey, error) {
	if bits < 64 || bits%2 != 0 {
		return nil, fmt.Errorf("paillier: invalid modulus size %d", bits)
	}
	for {
		p, err := rand.Prime(rnd, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generate prime: %w", err)
		}
		q, err := rand.Prime(rnd, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generate prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)
		mu := new(big.Int).ModInverse(lambda, n)
		if mu == nil {
			continue // gcd(lambda, n) != 1; retry with new primes
		}
		key := &PrivateKey{
			PublicKey: PublicKey{N: n, NSquared: new(big.Int).Mul(n, n)},
			lambda:    lambda,
			mu:        mu,
			p:         p, q: q,
			pSq: new(big.Int).Mul(p, p),
			qSq: new(big.Int).Mul(q, q),
		}
		// h_p = L_p(g^{p-1} mod p²)⁻¹ mod p with g = n+1, so
		// g^{p-1} mod p² = 1 + (p-1)·n mod p² and L_p is exact division.
		g := new(big.Int).Add(n, one)
		key.hp = crtH(g, p, key.pSq, pm1)
		key.hq = crtH(g, q, key.qSq, qm1)
		key.pInvQ = new(big.Int).ModInverse(p, q)
		if key.hp == nil || key.hq == nil || key.pInvQ == nil {
			continue // degenerate primes; retry
		}
		return key, nil
	}
}

// crtH computes L_r(g^{r-1} mod r²)⁻¹ mod r for a prime factor r.
func crtH(g, r, rSq, rm1 *big.Int) *big.Int {
	u := new(big.Int).Exp(g, rm1, rSq)
	u.Sub(u, one)
	u.Div(u, r)
	u.Mod(u, r)
	return u.ModInverse(u, r)
}

// MaxPlaintext returns the largest encodable plaintext, n-1.
func (pk *PublicKey) MaxPlaintext() *big.Int {
	return new(big.Int).Sub(pk.N, one)
}

// Encrypt encrypts 0 ≤ m < n.
func (pk *PublicKey) Encrypt(rnd io.Reader, m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext out of range [0, n)")
	}
	r, err := pk.randomUnit(rnd)
	if err != nil {
		return nil, err
	}
	// c = (1 + m·n) · r^n mod n²
	c := new(big.Int).Mul(m, pk.N)
	c.Add(c, one)
	c.Mod(c, pk.NSquared)
	rn := new(big.Int).Exp(r, pk.N, pk.NSquared)
	c.Mul(c, rn)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{C: c}, nil
}

// EncryptInt64 encrypts a small non-negative integer.
func (pk *PublicKey) EncryptInt64(rnd io.Reader, m int64) (*Ciphertext, error) {
	if m < 0 {
		return nil, fmt.Errorf("paillier: negative plaintext %d", m)
	}
	return pk.Encrypt(rnd, big.NewInt(m))
}

// EncryptSigned encrypts a possibly negative value by reducing it modulo n
// (two's-complement style: -x encodes as n-x). DecryptSigned reverses it.
// The PM polynomial coefficients are signed, so the protocol uses this pair.
func (pk *PublicKey) EncryptSigned(rnd io.Reader, m *big.Int) (*Ciphertext, error) {
	mm := new(big.Int).Mod(m, pk.N)
	return pk.Encrypt(rnd, mm)
}

// Decrypt recovers the plaintext in [0, n), via CRT when the key carries
// its factorization (keys from GenerateKey always do).
func (sk *PrivateKey) Decrypt(c *Ciphertext) (*big.Int, error) {
	if err := sk.checkCiphertext(c); err != nil {
		return nil, err
	}
	if sk.p == nil {
		return sk.decryptLambda(c), nil
	}
	// m_p = L_p(c^{p-1} mod p²)·h_p mod p; m_q analogously.
	mp := new(big.Int).Exp(c.C, new(big.Int).Sub(sk.p, one), sk.pSq)
	mp.Sub(mp, one)
	mp.Div(mp, sk.p)
	mp.Mul(mp, sk.hp)
	mp.Mod(mp, sk.p)
	mq := new(big.Int).Exp(c.C, new(big.Int).Sub(sk.q, one), sk.qSq)
	mq.Sub(mq, one)
	mq.Div(mq, sk.q)
	mq.Mul(mq, sk.hq)
	mq.Mod(mq, sk.q)
	// CRT recombination: m = m_p + p·((m_q − m_p)·p⁻¹ mod q).
	t := new(big.Int).Sub(mq, mp)
	t.Mul(t, sk.pInvQ)
	t.Mod(t, sk.q)
	t.Mul(t, sk.p)
	t.Add(t, mp)
	return t, nil
}

// decryptLambda is the textbook λ/μ decryption; kept as the reference path
// and cross-checked against the CRT path in tests.
func (sk *PrivateKey) decryptLambda(c *Ciphertext) *big.Int {
	u := new(big.Int).Exp(c.C, sk.lambda, sk.NSquared)
	// L(u) = (u-1)/n
	u.Sub(u, one)
	u.Div(u, sk.N)
	u.Mul(u, sk.mu)
	u.Mod(u, sk.N)
	return u
}

// DecryptSigned recovers a signed plaintext in (-n/2, n/2].
func (sk *PrivateKey) DecryptSigned(c *Ciphertext) (*big.Int, error) {
	m, err := sk.Decrypt(c)
	if err != nil {
		return nil, err
	}
	half := new(big.Int).Rsh(sk.N, 1)
	if m.Cmp(half) > 0 {
		m.Sub(m, sk.N)
	}
	return m, nil
}

// Add returns a ciphertext of a+b given ciphertexts of a and b.
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{C: c}
}

// AddPlain returns a ciphertext of a+m given a ciphertext of a and a
// plaintext m (no fresh randomness needed; callers that require semantic
// security of the sum should Rerandomize).
func (pk *PublicKey) AddPlain(a *Ciphertext, m *big.Int) *Ciphertext {
	mm := new(big.Int).Mod(m, pk.N)
	g := new(big.Int).Mul(mm, pk.N)
	g.Add(g, one)
	g.Mod(g, pk.NSquared)
	c := new(big.Int).Mul(a.C, g)
	c.Mod(c, pk.NSquared)
	return &Ciphertext{C: c}
}

// MulConst returns a ciphertext of γ·a given a ciphertext of a.
func (pk *PublicKey) MulConst(a *Ciphertext, gamma *big.Int) *Ciphertext {
	g := new(big.Int).Mod(gamma, pk.N)
	return &Ciphertext{C: new(big.Int).Exp(a.C, g, pk.NSquared)}
}

// Rerandomize multiplies by a fresh encryption of zero, making the
// ciphertext unlinkable to its inputs.
func (pk *PublicKey) Rerandomize(rnd io.Reader, a *Ciphertext) (*Ciphertext, error) {
	zero, err := pk.Encrypt(rnd, new(big.Int))
	if err != nil {
		return nil, err
	}
	return pk.Add(a, zero), nil
}

// RandomPlaintext draws a uniformly random plaintext in [1, n), used as the
// masking factor r in the PM protocol's E(r·P(a') + ...).
func (pk *PublicKey) RandomPlaintext(rnd io.Reader) (*big.Int, error) {
	m, err := rand.Int(rnd, new(big.Int).Sub(pk.N, one))
	if err != nil {
		return nil, fmt.Errorf("paillier: random plaintext: %w", err)
	}
	return m.Add(m, one), nil
}

func (pk *PublicKey) randomUnit(rnd io.Reader) (*big.Int, error) {
	for {
		r, err := rand.Int(rnd, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: random unit: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

func (pk *PublicKey) checkCiphertext(c *Ciphertext) error {
	if c == nil || c.C == nil {
		return fmt.Errorf("paillier: nil ciphertext")
	}
	if c.C.Sign() <= 0 || c.C.Cmp(pk.NSquared) >= 0 {
		return fmt.Errorf("paillier: ciphertext out of range")
	}
	return nil
}
