package commutative

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"runtime"
	"testing"

	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/crypto/oracle"
	"github.com/secmediation/secmediation/internal/relation"
)

// Per-group-size cost of the commutative primitive: the dominant term of
// the Listing 3 protocol (sources perform 2·|dom| of these each).
func BenchmarkEncrypt(b *testing.B) {
	for _, g := range []*groups.Group{groups.MODP1536(), groups.MODP2048(), groups.MODP3072()} {
		b.Run(fmt.Sprintf("group=%d", g.Bits()), func(b *testing.B) {
			key, err := GenerateKey(g, rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			x, err := g.RandomElement(rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := key.Encrypt(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// EncryptUnchecked vs Encrypt isolates the cost of the quadratic-residue
// membership test (itself a full exponentiation) that trusted-origin
// inputs skip.
func BenchmarkEncryptUnchecked(b *testing.B) {
	g := groups.MODP2048()
	key, err := GenerateKey(g, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	x, err := g.RandomElement(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key.EncryptUnchecked(x)
	}
}

// Worker-pool scaling of the batch API; b.N elements per op keeps the
// pool busy enough to show the scaling on multi-core runners.
func BenchmarkEncryptBatchWorkers(b *testing.B) {
	g := groups.MODP2048()
	key, err := GenerateKey(g, rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	xs := make([]*big.Int, batch)
	for i := range xs {
		if xs[i], err = g.RandomElement(rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := key.EncryptBatch(xs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKeyGeneration(b *testing.B) {
	g := groups.MODP2048()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateKey(g, rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIdealHash(b *testing.B) {
	o := oracle.New(groups.MODP2048(), "bench")
	for i := 0; i < b.N; i++ {
		o.HashValue(relation.Int(int64(i)))
	}
}
