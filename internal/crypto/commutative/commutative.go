// Package commutative implements the commutative encryption function used
// by the paper's Section 4 protocol (after Agrawal, Evfimievski, Srikant):
// Pohlig–Hellman exponentiation f_e(x) = x^e mod p over QR(p), the
// quadratic-residue subgroup of a safe prime p = 2q+1.
//
// The four defining properties hold by construction:
//
//   - Commutativity: f_e1(f_e2(x)) = x^(e1·e2) = f_e2(f_e1(x)).
//   - Bijectivity: gcd(e, q) = 1 because q is prime and 1 ≤ e < q, so
//     exponentiation permutes the order-q subgroup QR(p).
//   - Invertibility: d = e⁻¹ mod q gives f_d(f_e(x)) = x^(e·d mod q) = x.
//   - Secrecy: under the Decisional Diffie–Hellman assumption in QR(p),
//     ⟨x, x^e, y, y^e⟩ is indistinguishable from ⟨x, x^e, y, z⟩ for random
//     x, y, z — the indistinguishability property Agrawal et al. prove.
//     With short exponents (GenerateKey at production group sizes) this
//     additionally relies on the short-exponent indistinguishability
//     assumption (Koshiba–Kurosawa, PKC 2004); see docs/SECURITY.md.
//
// Each key exponentiation runs through a modexp.Engine: the secret
// exponent's window schedule is decomposed once at key generation and
// reused by every Encrypt/ReEncrypt/Decrypt — the hot path of the whole
// commutative protocol.
//
// Inputs must be elements of QR(p); the protocols guarantee this by hashing
// attribute values into QR(p) with the ideal-hash oracle
// (internal/crypto/oracle).
package commutative

import (
	"fmt"
	"io"
	"math/big"

	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/crypto/modexp"
	"github.com/secmediation/secmediation/internal/parallel"
)

// Key is a commutative encryption key: a secret exponent, its inverse in
// a fixed safe-prime group, and the precomputed exponentiation engines
// for both (the engines' window schedules are derived from the secrets
// and are key material themselves). Both datasources must use the same
// group (the paper's common domain dom_f); they generate independent
// exponents.
// seclint:private commutative-encryption exponent
type Key struct {
	group *groups.Group
	e     *big.Int       // seclint:secret encryption exponent, 1 ≤ e < q
	d     *big.Int       // seclint:secret decryption exponent, e·d ≡ 1 (mod q)
	enc   *modexp.Engine // engine for x ↦ x^e mod p
	dec   *modexp.Engine // engine for y ↦ y^d mod p
}

// GenerateKey draws a fresh secret exponent in the given group. At
// production group sizes (≥ 1024 bits) the exponent is short — see
// groups.ShortExponentBits — which shrinks the encryption ladder ~8× at
// the default 2048-bit group; smaller test groups draw full-length
// exponents. The decryption exponent d = e⁻¹ mod q is full-length either
// way (the inverse of a short exponent is not short); Decrypt sits off
// the protocols' hot path, which cross-encrypts far more than it decrypts.
func GenerateKey(g *groups.Group, rnd io.Reader) (*Key, error) {
	e, err := g.RandomShortExponent(rnd)
	if err != nil {
		return nil, err
	}
	return keyFromExponent(g, e)
}

// GenerateKeyFullExponent draws a full-length exponent uniform in
// [1, q-1] — the scheme exactly as Agrawal et al. state it, with no
// short-exponent assumption. Use it to drop the Koshiba–Kurosawa
// assumption at ~8× the per-element encryption cost; medbench's engine
// table benches both.
func GenerateKeyFullExponent(g *groups.Group, rnd io.Reader) (*Key, error) {
	e, err := g.RandomExponent(rnd)
	if err != nil {
		return nil, err
	}
	return keyFromExponent(g, e)
}

// GenerateKeyConstantTime draws a short exponent like GenerateKey but
// runs every exponentiation through the fixed-window constant-time
// ladder (modexp.ExpConstantTime): the execution trajectory depends only
// on the group and the public exponent-length bound, never on the
// exponent's bits, closing the timing side channel the cttaint analyzer
// flags on the calibrated engines. The encrypt ladder is padded to the
// group's short-exponent bound and the decrypt ladder to |q|, so the pad
// reveals only what the drawing procedure already fixes. Costs the
// skipped-work the sliding window exploits; `medbench -table engine`
// records the overhead.
func GenerateKeyConstantTime(g *groups.Group, rnd io.Reader) (*Key, error) {
	e, err := g.RandomShortExponent(rnd)
	if err != nil {
		return nil, err
	}
	return keyFromExponentOpt(g, e, true)
}

// keyFromExponent completes a key: inverse exponent, shared Montgomery
// context, and the two window-schedule engines.
func keyFromExponent(g *groups.Group, e *big.Int) (*Key, error) {
	return keyFromExponentOpt(g, e, false)
}

// keyFromExponentOpt builds the key's engines, constant-time or
// calibrated variable-time.
func keyFromExponentOpt(g *groups.Group, e *big.Int, constantTime bool) (*Key, error) {
	d := new(big.Int).ModInverse(e, g.Q)
	if d == nil {
		// unreachable for prime q and 1 ≤ e < q, but fail loudly
		return nil, fmt.Errorf("commutative: exponent not invertible")
	}
	mod, err := modexp.NewModulus(g.P)
	if err != nil {
		return nil, fmt.Errorf("commutative: %w", err)
	}
	if constantTime {
		// The public pad bounds: encryption exponents are drawn to the
		// group's short-exponent length (or |q| below the threshold);
		// decryption exponents are full-length in [1, q-1] either way.
		encBits := g.ShortExponentBits()
		if encBits == 0 || encBits >= g.Q.BitLen() {
			encBits = g.Q.BitLen()
		}
		decBits := g.Q.BitLen()
		enc, err := modexp.NewEngineConstantTime(mod, e, encBits)
		if err != nil {
			return nil, fmt.Errorf("commutative: %w", err)
		}
		dec, err := modexp.NewEngineConstantTime(mod, d, decBits)
		if err != nil {
			return nil, fmt.Errorf("commutative: %w", err)
		}
		return &Key{group: g, e: e, d: d, enc: enc, dec: dec}, nil
	}
	enc, err := modexp.NewEngine(mod, e)
	if err != nil {
		return nil, fmt.Errorf("commutative: %w", err)
	}
	dec, err := modexp.NewEngine(mod, d)
	if err != nil {
		return nil, fmt.Errorf("commutative: %w", err)
	}
	return &Key{group: g, e: e, d: d, enc: enc, dec: dec}, nil
}

// newKeyForTest builds a key from a fixed exponent; used by tests only.
func newKeyForTest(g *groups.Group, e *big.Int) (*Key, error) {
	em := new(big.Int).Mod(e, g.Q)
	if em.Sign() == 0 {
		return nil, fmt.Errorf("commutative: zero exponent")
	}
	return keyFromExponent(g, em)
}

// Group returns the key's group.
func (k *Key) Group() *groups.Group { return k.group }

// Encrypt computes f_e(x) = x^e mod p. x must be in QR(p): the function
// returns an error otherwise, because applying it outside the subgroup
// breaks both bijectivity and the security argument. The membership test
// is a Jacobi-symbol evaluation — cheap next to the exponentiation, but
// not free; callers whose inputs are group elements by construction can
// still use EncryptUnchecked.
// seclint:sanitizer commutative encrypt boundary
func (k *Key) Encrypt(x *big.Int) (*big.Int, error) {
	opQRTest.Add(1)
	if !k.group.IsQuadraticResidue(x) {
		return nil, fmt.Errorf("commutative: input not in QR(p)")
	}
	return k.EncryptUnchecked(x), nil
}

// EncryptUnchecked computes f_e(x) = x^e mod p without the
// quadratic-residue membership test.
//
// When to use which path:
//
//   - Untrusted first-layer inputs (values that arrive from outside the
//     group machinery) MUST go through Encrypt: exponentiation outside
//     QR(p) is not a bijection on the subgroup and voids the DDH-based
//     indistinguishability argument.
//   - Oracle-hashed values are squared into QR(p) by construction
//     (oracle.HashBytes ends in Square), so the sources' own hash
//     encryptions may skip the test.
//   - Our own ciphertexts are elements of QR(p) because f_e maps the
//     subgroup onto itself, so re-encryption layers may skip it too.
//
// seclint:sanitizer commutative encrypt boundary
func (k *Key) EncryptUnchecked(x *big.Int) *big.Int {
	opExp.Add(1)
	return k.enc.Exp(x)
}

// EncryptBatch encrypts a slice of QR(p) elements across a worker pool
// (workers as in parallel.Resolve), preserving order. Inputs are
// membership-checked like Encrypt; for trusted-origin batches map
// EncryptUnchecked over the slice instead. All workers share the key's
// one engine — its schedule is read-only after key generation.
// seclint:sanitizer commutative encrypt boundary
func (k *Key) EncryptBatch(xs []*big.Int, workers int) ([]*big.Int, error) {
	return parallel.Map(len(xs), workers, func(i int) (*big.Int, error) {
		return k.Encrypt(xs[i])
	})
}

// ReEncrypt applies f_e to an already-encrypted element (the second layer
// in the protocol's cross-encryption step).
//
// It deliberately skips the quadratic-residue test that Encrypt performs
// and only range-checks the ciphertext: cross-encryption inputs are the
// opposite source's ciphertexts, which are QR(p) elements by construction
// (f_e permutes the subgroup), and the parties are semi-honest, so paying
// a membership test per element to re-verify buys nothing. First-layer
// encryptions of genuinely untrusted inputs must still use Encrypt — see
// EncryptUnchecked for the full argument.
// seclint:sanitizer commutative re-encrypt boundary
func (k *Key) ReEncrypt(c *big.Int) (*big.Int, error) {
	if c == nil || c.Sign() <= 0 || c.Cmp(k.group.P) >= 0 {
		return nil, fmt.Errorf("commutative: ciphertext out of range")
	}
	return k.EncryptUnchecked(c), nil
}

// ReEncryptBatch re-encrypts a slice of ciphertexts across a worker pool
// (workers as in parallel.Resolve), preserving order. Inputs are
// range-checked like ReEncrypt — and, like it, NOT membership-tested:
// the batch form exists for the protocol's cross-encryption step, whose
// inputs are the opposite source's ciphertexts and hence QR(p) elements
// by construction. All workers share the key's one engine. This is the
// hot loop of the commutative protocol: 2·(n+m) of the run's
// exponentiations flow through here.
// seclint:sanitizer commutative re-encrypt boundary
func (k *Key) ReEncryptBatch(cs []*big.Int, workers int) ([]*big.Int, error) {
	return parallel.Map(len(cs), workers, func(i int) (*big.Int, error) {
		return k.ReEncrypt(cs[i])
	})
}

// Decrypt computes f_e⁻¹(y) = y^d mod p. The ciphertext is
// membership-tested (Jacobi symbol) before the inversion exponentiation.
// seclint:source commutative decryption output
func (k *Key) Decrypt(y *big.Int) (*big.Int, error) {
	opQRTest.Add(1)
	if !k.group.IsQuadraticResidue(y) {
		return nil, fmt.Errorf("commutative: ciphertext not in QR(p)")
	}
	opExp.Add(1)
	return k.dec.Exp(y), nil
}

// DecryptBatch decrypts a slice of ciphertexts across a worker pool
// (workers as in parallel.Resolve), preserving order. Inputs are
// membership-checked like Decrypt. All workers share the key's one
// decryption engine. Note d is full-length even for short-exponent keys
// (see GenerateKey), so batch decryption costs full-ladder
// exponentiations — it parallelizes, but does not shorten, the ladder.
// seclint:source commutative decryption output
func (k *Key) DecryptBatch(ys []*big.Int, workers int) ([]*big.Int, error) {
	return parallel.Map(len(ys), workers, func(i int) (*big.Int, error) {
		return k.Decrypt(ys[i])
	})
}
