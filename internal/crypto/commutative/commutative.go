// Package commutative implements the commutative encryption function used
// by the paper's Section 4 protocol (after Agrawal, Evfimievski, Srikant):
// Pohlig–Hellman exponentiation f_e(x) = x^e mod p over QR(p), the
// quadratic-residue subgroup of a safe prime p = 2q+1.
//
// The four defining properties hold by construction:
//
//   - Commutativity: f_e1(f_e2(x)) = x^(e1·e2) = f_e2(f_e1(x)).
//   - Bijectivity: gcd(e, q) = 1 because q is prime and 1 ≤ e < q, so
//     exponentiation permutes the order-q subgroup QR(p).
//   - Invertibility: d = e⁻¹ mod q gives f_d(f_e(x)) = x^(e·d mod q) = x.
//   - Secrecy: under the Decisional Diffie–Hellman assumption in QR(p),
//     ⟨x, x^e, y, y^e⟩ is indistinguishable from ⟨x, x^e, y, z⟩ for random
//     x, y, z — the indistinguishability property Agrawal et al. prove.
//
// Inputs must be elements of QR(p); the protocols guarantee this by hashing
// attribute values into QR(p) with the ideal-hash oracle
// (internal/crypto/oracle).
package commutative

import (
	"fmt"
	"io"
	"math/big"

	"github.com/secmediation/secmediation/internal/crypto/groups"
)

// Key is a commutative encryption key: a secret exponent and its inverse
// in a fixed safe-prime group. Both datasources must use the same group
// (the paper's common domain dom_f); they generate independent exponents.
type Key struct {
	group *groups.Group
	e     *big.Int // encryption exponent, 1 ≤ e < q
	d     *big.Int // decryption exponent, e·d ≡ 1 (mod q)
}

// GenerateKey draws a fresh secret exponent in the given group.
func GenerateKey(g *groups.Group, rnd io.Reader) (*Key, error) {
	e, err := g.RandomExponent(rnd)
	if err != nil {
		return nil, err
	}
	d := new(big.Int).ModInverse(e, g.Q)
	if d == nil {
		// unreachable for prime q and 1 ≤ e < q, but fail loudly
		return nil, fmt.Errorf("commutative: exponent not invertible")
	}
	return &Key{group: g, e: e, d: d}, nil
}

// newKeyForTest builds a key from a fixed exponent; used by tests only.
func newKeyForTest(g *groups.Group, e *big.Int) (*Key, error) {
	em := new(big.Int).Mod(e, g.Q)
	if em.Sign() == 0 {
		return nil, fmt.Errorf("commutative: zero exponent")
	}
	d := new(big.Int).ModInverse(em, g.Q)
	if d == nil {
		return nil, fmt.Errorf("commutative: exponent not invertible")
	}
	return &Key{group: g, e: em, d: d}, nil
}

// Group returns the key's group.
func (k *Key) Group() *groups.Group { return k.group }

// Encrypt computes f_e(x) = x^e mod p. x must be in QR(p): the function
// returns an error otherwise, because applying it outside the subgroup
// breaks both bijectivity and the security argument.
func (k *Key) Encrypt(x *big.Int) (*big.Int, error) {
	if !k.group.IsQuadraticResidue(x) {
		return nil, fmt.Errorf("commutative: input not in QR(p)")
	}
	return new(big.Int).Exp(x, k.e, k.group.P), nil
}

// ReEncrypt applies f_e to an already-encrypted element (the second layer
// in the protocol's cross-encryption step). Ciphertexts are elements of
// QR(p), so this is the same operation as Encrypt; the separate name keeps
// protocol code readable.
func (k *Key) ReEncrypt(c *big.Int) (*big.Int, error) { return k.Encrypt(c) }

// Decrypt computes f_e⁻¹(y) = y^d mod p.
func (k *Key) Decrypt(y *big.Int) (*big.Int, error) {
	if !k.group.IsQuadraticResidue(y) {
		return nil, fmt.Errorf("commutative: ciphertext not in QR(p)")
	}
	return new(big.Int).Exp(y, k.d, k.group.P), nil
}
