// Package commutative implements the commutative encryption function used
// by the paper's Section 4 protocol (after Agrawal, Evfimievski, Srikant):
// Pohlig–Hellman exponentiation f_e(x) = x^e mod p over QR(p), the
// quadratic-residue subgroup of a safe prime p = 2q+1.
//
// The four defining properties hold by construction:
//
//   - Commutativity: f_e1(f_e2(x)) = x^(e1·e2) = f_e2(f_e1(x)).
//   - Bijectivity: gcd(e, q) = 1 because q is prime and 1 ≤ e < q, so
//     exponentiation permutes the order-q subgroup QR(p).
//   - Invertibility: d = e⁻¹ mod q gives f_d(f_e(x)) = x^(e·d mod q) = x.
//   - Secrecy: under the Decisional Diffie–Hellman assumption in QR(p),
//     ⟨x, x^e, y, y^e⟩ is indistinguishable from ⟨x, x^e, y, z⟩ for random
//     x, y, z — the indistinguishability property Agrawal et al. prove.
//
// Inputs must be elements of QR(p); the protocols guarantee this by hashing
// attribute values into QR(p) with the ideal-hash oracle
// (internal/crypto/oracle).
package commutative

import (
	"fmt"
	"io"
	"math/big"

	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/parallel"
)

// Key is a commutative encryption key: a secret exponent and its inverse
// in a fixed safe-prime group. Both datasources must use the same group
// (the paper's common domain dom_f); they generate independent exponents.
// seclint:private commutative-encryption exponent
type Key struct {
	group *groups.Group
	e     *big.Int // encryption exponent, 1 ≤ e < q
	d     *big.Int // decryption exponent, e·d ≡ 1 (mod q)
}

// GenerateKey draws a fresh secret exponent in the given group.
func GenerateKey(g *groups.Group, rnd io.Reader) (*Key, error) {
	e, err := g.RandomExponent(rnd)
	if err != nil {
		return nil, err
	}
	d := new(big.Int).ModInverse(e, g.Q)
	if d == nil {
		// unreachable for prime q and 1 ≤ e < q, but fail loudly
		return nil, fmt.Errorf("commutative: exponent not invertible")
	}
	return &Key{group: g, e: e, d: d}, nil
}

// newKeyForTest builds a key from a fixed exponent; used by tests only.
func newKeyForTest(g *groups.Group, e *big.Int) (*Key, error) {
	em := new(big.Int).Mod(e, g.Q)
	if em.Sign() == 0 {
		return nil, fmt.Errorf("commutative: zero exponent")
	}
	d := new(big.Int).ModInverse(em, g.Q)
	if d == nil {
		return nil, fmt.Errorf("commutative: exponent not invertible")
	}
	return &Key{group: g, e: em, d: d}, nil
}

// Group returns the key's group.
func (k *Key) Group() *groups.Group { return k.group }

// Encrypt computes f_e(x) = x^e mod p. x must be in QR(p): the function
// returns an error otherwise, because applying it outside the subgroup
// breaks both bijectivity and the security argument. The membership test
// is itself a full exponentiation (x^q mod p), doubling the per-element
// cost — callers whose inputs are group elements by construction should
// use EncryptUnchecked instead.
// seclint:sanitizer commutative encrypt boundary
func (k *Key) Encrypt(x *big.Int) (*big.Int, error) {
	opExp.Add(1) // the membership test is a full exponentiation
	if !k.group.IsQuadraticResidue(x) {
		return nil, fmt.Errorf("commutative: input not in QR(p)")
	}
	return k.EncryptUnchecked(x), nil
}

// EncryptUnchecked computes f_e(x) = x^e mod p without the
// quadratic-residue membership test, halving the cost of Encrypt.
//
// When to use which path:
//
//   - Untrusted first-layer inputs (values that arrive from outside the
//     group machinery) MUST go through Encrypt: exponentiation outside
//     QR(p) is not a bijection on the subgroup and voids the DDH-based
//     indistinguishability argument.
//   - Oracle-hashed values are squared into QR(p) by construction
//     (oracle.HashBytes ends in Square), so the sources' own hash
//     encryptions may skip the test.
//   - Our own ciphertexts are elements of QR(p) because f_e maps the
//     subgroup onto itself, so re-encryption layers may skip it too.
// seclint:sanitizer commutative encrypt boundary
func (k *Key) EncryptUnchecked(x *big.Int) *big.Int {
	opExp.Add(1)
	return new(big.Int).Exp(x, k.e, k.group.P)
}

// EncryptBatch encrypts a slice of QR(p) elements across a worker pool
// (workers as in parallel.Resolve), preserving order. Inputs are
// membership-checked like Encrypt; for trusted-origin batches map
// EncryptUnchecked over the slice instead.
// seclint:sanitizer commutative encrypt boundary
func (k *Key) EncryptBatch(xs []*big.Int, workers int) ([]*big.Int, error) {
	return parallel.Map(len(xs), workers, func(i int) (*big.Int, error) {
		return k.Encrypt(xs[i])
	})
}

// ReEncrypt applies f_e to an already-encrypted element (the second layer
// in the protocol's cross-encryption step).
//
// It deliberately skips the quadratic-residue test that Encrypt performs
// and only range-checks the ciphertext: cross-encryption inputs are the
// opposite source's ciphertexts, which are QR(p) elements by construction
// (f_e permutes the subgroup), and the parties are semi-honest, so paying
// a second exponentiation per element to re-verify membership buys
// nothing. First-layer encryptions of genuinely untrusted inputs must
// still use Encrypt — see EncryptUnchecked for the full argument.
// seclint:sanitizer commutative re-encrypt boundary
func (k *Key) ReEncrypt(c *big.Int) (*big.Int, error) {
	if c == nil || c.Sign() <= 0 || c.Cmp(k.group.P) >= 0 {
		return nil, fmt.Errorf("commutative: ciphertext out of range")
	}
	return k.EncryptUnchecked(c), nil
}

// Decrypt computes f_e⁻¹(y) = y^d mod p.
// seclint:source commutative decryption output
func (k *Key) Decrypt(y *big.Int) (*big.Int, error) {
	opExp.Add(2) // membership test + inversion exponentiation
	if !k.group.IsQuadraticResidue(y) {
		return nil, fmt.Errorf("commutative: ciphertext not in QR(p)")
	}
	return new(big.Int).Exp(y, k.d, k.group.P), nil
}
