package commutative

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"

	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/crypto/oracle"
	"github.com/secmediation/secmediation/internal/relation"
)

var (
	tgOnce sync.Once
	tg     *groups.Group
)

// testGroup returns a small safe-prime group so property tests stay fast.
func testGroup(t testing.TB) *groups.Group {
	t.Helper()
	tgOnce.Do(func() {
		var err error
		tg, err = groups.GenerateSafePrime(256, rand.Reader)
		if err != nil {
			panic(err)
		}
	})
	return tg
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	g := testGroup(t)
	k, err := GenerateKey(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x, err := g.RandomElement(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		c, err := k.Encrypt(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(x) != 0 {
			t.Fatalf("decrypt(encrypt(x)) != x: %v vs %v", got, x)
		}
	}
}

// Commutativity: f_e1 ∘ f_e2 = f_e2 ∘ f_e1 — the property the mediator's
// matching step (Listing 3, step 7) relies on.
func TestCommutativity(t *testing.T) {
	g := testGroup(t)
	k1, _ := GenerateKey(g, rand.Reader)
	k2, _ := GenerateKey(g, rand.Reader)
	for i := 0; i < 20; i++ {
		x, err := g.RandomElement(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		a1, _ := k1.Encrypt(x)
		a12, _ := k2.ReEncrypt(a1)
		b2, _ := k2.Encrypt(x)
		b21, _ := k1.ReEncrypt(b2)
		if a12.Cmp(b21) != 0 {
			t.Fatalf("commutativity broken: %v vs %v", a12, b21)
		}
	}
}

// Bijectivity: distinct QR inputs map to distinct ciphertexts.
func TestBijectivity(t *testing.T) {
	// Exhaustive check over a tiny group: p=23, q=11, QR = 11 elements.
	g := &groups.Group{P: big.NewInt(23), Q: big.NewInt(11)}
	k, err := newKeyForTest(g, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	count := 0
	for x := int64(1); x < 23; x++ {
		xi := big.NewInt(x)
		if !g.IsQuadraticResidue(xi) {
			continue
		}
		c, err := k.Encrypt(xi)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsQuadraticResidue(c) {
			t.Errorf("ciphertext %v left QR", c)
		}
		if seen[c.String()] {
			t.Errorf("collision at x=%d", x)
		}
		seen[c.String()] = true
		count++
	}
	if count != 11 || len(seen) != 11 {
		t.Errorf("QR(23) image size = %d over %d inputs, want 11/11", len(seen), count)
	}
}

func TestRejectsNonResidues(t *testing.T) {
	g := &groups.Group{P: big.NewInt(23), Q: big.NewInt(11)}
	k, _ := newKeyForTest(g, big.NewInt(3))
	// 5 is a non-residue mod 23.
	if _, err := k.Encrypt(big.NewInt(5)); err == nil {
		t.Error("Encrypt accepted a non-residue")
	}
	if _, err := k.Decrypt(big.NewInt(5)); err == nil {
		t.Error("Decrypt accepted a non-residue")
	}
	if _, err := k.Encrypt(big.NewInt(0)); err == nil {
		t.Error("Encrypt accepted zero")
	}
}

func TestKeysDiffer(t *testing.T) {
	g := testGroup(t)
	k1, _ := GenerateKey(g, rand.Reader)
	k2, _ := GenerateKey(g, rand.Reader)
	x, _ := g.RandomElement(rand.Reader)
	c1, _ := k1.Encrypt(x)
	c2, _ := k2.Encrypt(x)
	if c1.Cmp(c2) == 0 {
		t.Error("two random keys encrypted identically (astronomically unlikely)")
	}
	if k1.Group() != g {
		t.Error("Group accessor wrong")
	}
}

func TestZeroExponentRejected(t *testing.T) {
	g := testGroup(t)
	if _, err := newKeyForTest(g, big.NewInt(0)); err == nil {
		t.Error("zero exponent accepted")
	}
}

// End-to-end with the ideal-hash oracle: equal values match after double
// encryption regardless of key order; distinct values do not.
func TestDoubleEncryptionMatching(t *testing.T) {
	g := testGroup(t)
	o := oracle.New(g, "test-run")
	k1, _ := GenerateKey(g, rand.Reader)
	k2, _ := GenerateKey(g, rand.Reader)

	enc2 := func(k1st, k2nd *Key, v relation.Value) *big.Int {
		h := o.HashValue(v)
		c1, err := k1st.Encrypt(h)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := k2nd.ReEncrypt(c1)
		if err != nil {
			t.Fatal(err)
		}
		return c2
	}
	a := relation.Int(42)
	b := relation.Int(43)
	if enc2(k1, k2, a).Cmp(enc2(k2, k1, a)) != 0 {
		t.Error("equal values do not match after double encryption")
	}
	if enc2(k1, k2, a).Cmp(enc2(k2, k1, b)) == 0 {
		t.Error("distinct values match after double encryption")
	}
	// Cross-kind: Int(1) vs String("1") must hash differently.
	if o.HashValue(relation.Int(1)).Cmp(o.HashValue(relation.String_("1"))) == 0 {
		t.Error("oracle conflates Int(1) and String(\"1\")")
	}
}

func TestOracleDeterminismAndRange(t *testing.T) {
	g := testGroup(t)
	o := oracle.New(g, "label-A")
	o2 := oracle.New(g, "label-B")
	v := relation.String_("dortmund")
	h1 := o.HashValue(v)
	h2 := o.HashValue(v)
	if h1.Cmp(h2) != 0 {
		t.Error("oracle not deterministic")
	}
	if !g.IsQuadraticResidue(h1) {
		t.Error("oracle output not in QR(p)")
	}
	if h1.Cmp(o2.HashValue(v)) == 0 {
		t.Error("different labels produced identical hashes")
	}
	// Distinct values spread.
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[o.HashValue(relation.Int(int64(i))).String()] = true
	}
	if len(seen) != 100 {
		t.Errorf("oracle collisions: %d distinct of 100", len(seen))
	}
}

func TestEncryptUncheckedMatchesEncrypt(t *testing.T) {
	g := testGroup(t)
	k, err := GenerateKey(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		x, err := g.RandomElement(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		want, err := k.Encrypt(x)
		if err != nil {
			t.Fatal(err)
		}
		if got := k.EncryptUnchecked(x); got.Cmp(want) != 0 {
			t.Fatal("EncryptUnchecked diverges from Encrypt on a QR element")
		}
	}
}

func TestEncryptBatch(t *testing.T) {
	g := testGroup(t)
	k, err := GenerateKey(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]*big.Int, 33)
	for i := range xs {
		if xs[i], err = g.RandomElement(rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		got, err := k.EncryptBatch(xs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range xs {
			want, _ := k.Encrypt(xs[i])
			if got[i].Cmp(want) != 0 {
				t.Fatalf("workers=%d: batch element %d mismatch", workers, i)
			}
		}
	}
	// A non-residue anywhere in the batch must fail the whole batch.
	bad := append([]*big.Int(nil), xs...)
	bad[17] = findNonResidue(t, g)
	if _, err := k.EncryptBatch(bad, 4); err == nil {
		t.Fatal("batch accepted a non-residue")
	}
}

func TestReEncryptRangeCheck(t *testing.T) {
	g := testGroup(t)
	k, err := GenerateKey(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*big.Int{nil, big.NewInt(0), new(big.Int).Neg(big.NewInt(3)), new(big.Int).Set(g.P)} {
		if _, err := k.ReEncrypt(bad); err == nil {
			t.Fatalf("ReEncrypt accepted out-of-range input %v", bad)
		}
	}
}

// findNonResidue searches small integers for a quadratic non-residue of
// the test group (half of Z_p^* qualifies, so this terminates fast).
func findNonResidue(t *testing.T, g *groups.Group) *big.Int {
	t.Helper()
	for i := int64(2); i < 1000; i++ {
		x := big.NewInt(i)
		if !g.IsQuadraticResidue(x) {
			return x
		}
	}
	t.Fatal("no small non-residue found")
	return nil
}

// TestReEncryptBatch mirrors TestEncryptBatch for the second-layer batch
// path: order preservation across worker counts, agreement with the
// scalar ReEncrypt, and whole-batch failure on a range violation.
func TestReEncryptBatch(t *testing.T) {
	g := testGroup(t)
	k1, _ := GenerateKey(g, rand.Reader)
	k2, _ := GenerateKey(g, rand.Reader)
	cs := make([]*big.Int, 33)
	for i := range cs {
		x, err := g.RandomElement(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if cs[i], err = k1.Encrypt(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4, 0} {
		got, err := k2.ReEncryptBatch(cs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range cs {
			want, _ := k2.ReEncrypt(cs[i])
			if got[i].Cmp(want) != 0 {
				t.Fatalf("workers=%d: batch element %d mismatch", workers, i)
			}
		}
	}
	bad := append([]*big.Int(nil), cs...)
	bad[11] = new(big.Int).Set(g.P)
	if _, err := k2.ReEncryptBatch(bad, 4); err == nil {
		t.Fatal("batch accepted an out-of-range ciphertext")
	}
}

// TestDecryptBatch mirrors TestEncryptBatch for the decryption batch
// path, including whole-batch failure on a non-residue.
func TestDecryptBatch(t *testing.T) {
	g := testGroup(t)
	k, _ := GenerateKey(g, rand.Reader)
	xs := make([]*big.Int, 33)
	cs := make([]*big.Int, len(xs))
	for i := range xs {
		x, err := g.RandomElement(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = x
		if cs[i], err = k.Encrypt(x); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4, 0} {
		got, err := k.DecryptBatch(cs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range xs {
			if got[i].Cmp(xs[i]) != 0 {
				t.Fatalf("workers=%d: batch element %d did not round-trip", workers, i)
			}
		}
	}
	bad := append([]*big.Int(nil), cs...)
	bad[7] = findNonResidue(t, g)
	if _, err := k.DecryptBatch(bad, 4); err == nil {
		t.Fatal("batch accepted a non-residue ciphertext")
	}
}

// TestShortExponentKey checks the production path end-to-end on a real
// RFC 3526 group: GenerateKey draws a short exponent there, and the key
// must still round-trip, commute with a full-exponent key, and satisfy
// the exact-bit-length policy.
func TestShortExponentKey(t *testing.T) {
	g := groups.MODP1536()
	ks, err := GenerateKey(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ks.e.BitLen(), g.ShortExponentBits(); got != want {
		t.Fatalf("short key exponent bit length = %d, want %d", got, want)
	}
	kf, err := GenerateKeyFullExponent(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if kf.e.BitLen() <= g.ShortExponentBits() {
		t.Logf("full-exponent key drew %d bits (possible but unlikely)", kf.e.BitLen())
	}
	x, err := g.RandomElement(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ks.Encrypt(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ks.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cmp(x) != 0 {
		t.Fatal("short-exponent key did not round-trip")
	}
	// Commutativity across short and full keys.
	a, _ := ks.Encrypt(x)
	ab, _ := kf.ReEncrypt(a)
	b, _ := kf.Encrypt(x)
	ba, _ := ks.ReEncrypt(b)
	if ab.Cmp(ba) != 0 {
		t.Fatal("short and full exponent keys do not commute")
	}
}

// TestGenerateKeyConstantTime checks the constant-time key end to end:
// roundtrip, commutation with a calibrated variable-time key, and exact
// agreement with the textbook f_e(x) = x^e mod p on both layers — the
// ladder change must be invisible in the transcript.
func TestGenerateKeyConstantTime(t *testing.T) {
	g := testGroup(t)
	ct, err := GenerateKeyConstantTime(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	vt, err := GenerateKey(g, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x, err := g.RandomElement(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ct.Encrypt(x)
		if err != nil {
			t.Fatal(err)
		}
		if want := new(big.Int).Exp(x, ct.e, g.P); c.Cmp(want) != 0 {
			t.Fatalf("ct encrypt diverges from x^e mod p: %v vs %v", c, want)
		}
		back, err := ct.Decrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		if back.Cmp(x) != 0 {
			t.Fatalf("ct roundtrip: %v vs %v", back, x)
		}
		// Commutation across ladder implementations.
		ab, err := vt.ReEncrypt(c)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := vt.Encrypt(x)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := ct.ReEncrypt(c2)
		if err != nil {
			t.Fatal(err)
		}
		if ab.Cmp(ba) != 0 {
			t.Fatalf("ct/vt keys do not commute: %v vs %v", ab, ba)
		}
	}
	// Batch path shares the constant-time engine across workers.
	xs := make([]*big.Int, 9)
	for i := range xs {
		var err error
		if xs[i], err = g.RandomElement(rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := ct.EncryptBatch(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ct.DecryptBatch(enc, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if dec[i].Cmp(xs[i]) != 0 {
			t.Fatalf("batch roundtrip index %d: %v vs %v", i, dec[i], xs[i])
		}
	}
}
