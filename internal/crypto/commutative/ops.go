package commutative

import "github.com/secmediation/secmediation/internal/telemetry"

// opExp counts full modular exponentiations in the group — the unit the
// paper's cost model charges the commutative protocol in. Membership
// tests (x^q mod p) count like encryptions because they cost the same.
var opExp = telemetry.CryptoOp("commutative.exp")
