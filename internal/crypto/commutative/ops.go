package commutative

import "github.com/secmediation/secmediation/internal/telemetry"

// opExp counts modular exponentiations in the group — the unit the
// paper's cost model charges the commutative protocol in. Since the QR
// membership test moved to the Jacobi symbol it is counted separately
// (opQRTest): it no longer costs an exponentiation, and folding it in
// here made opExp over-report actual ladder work by 2×.
var opExp = telemetry.CryptoOp("commutative.exp")

// opQRTest counts quadratic-residue membership tests (Jacobi symbol —
// a gcd-like pass, ~20× cheaper than the exponentiation it replaced).
var opQRTest = telemetry.CryptoOp("commutative.qrtest")
