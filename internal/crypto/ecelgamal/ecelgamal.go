// Package ecelgamal implements the additively homomorphic "elliptic curve
// variant of ElGamal" the paper cites as an alternative to Paillier
// (Cramer/Gennaro/Schoenmakers, EUROCRYPT'97): exponential ElGamal over
// NIST P-256, where a message m is encrypted as
//
//	C1 = r·G,   C2 = m·G + r·PK
//
// so that component-wise addition of ciphertexts adds plaintexts and
// scalar multiplication scales them. Decryption recovers M = m·G and then
// solves a small discrete logarithm with baby-step/giant-step, which caps
// usable plaintexts at a configurable bound — the practical reason the PM
// protocol proper uses Paillier (arbitrary payloads) while this scheme
// serves the homomorphic-primitive ablation (see DESIGN.md, ablation-homo).
package ecelgamal

import (
	"crypto/elliptic"
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// point is an affine curve point; (nil, nil)-valued coordinates are never
// used — the point at infinity is represented as (0, 0), matching
// crypto/elliptic's affine convention.
type point struct{ x, y *big.Int }

func (p point) isInfinity() bool { return p.x.Sign() == 0 && p.y.Sign() == 0 }

// PublicKey is an EC-ElGamal public key.
type PublicKey struct {
	Curve elliptic.Curve
	X, Y  *big.Int
}

// PrivateKey is an EC-ElGamal private key.
type PrivateKey struct {
	PublicKey
	D *big.Int
}

// Ciphertext is an EC-ElGamal ciphertext (two curve points).
type Ciphertext struct {
	C1X, C1Y *big.Int
	C2X, C2Y *big.Int
}

// GenerateKey creates a P-256 key pair.
func GenerateKey(rnd io.Reader) (*PrivateKey, error) {
	curve := elliptic.P256()
	d, err := rand.Int(rnd, new(big.Int).Sub(curve.Params().N, big.NewInt(1)))
	if err != nil {
		return nil, fmt.Errorf("ecelgamal: generate key: %w", err)
	}
	d.Add(d, big.NewInt(1))
	x, y := curve.ScalarBaseMult(d.Bytes())
	return &PrivateKey{PublicKey: PublicKey{Curve: curve, X: x, Y: y}, D: d}, nil
}

// Encrypt encrypts a small non-negative integer m.
func (pk *PublicKey) Encrypt(rnd io.Reader, m int64) (*Ciphertext, error) {
	if m < 0 {
		return nil, fmt.Errorf("ecelgamal: negative plaintext %d", m)
	}
	r, err := rand.Int(rnd, new(big.Int).Sub(pk.Curve.Params().N, big.NewInt(1)))
	if err != nil {
		return nil, fmt.Errorf("ecelgamal: encrypt: %w", err)
	}
	r.Add(r, big.NewInt(1))
	c1x, c1y := pk.Curve.ScalarBaseMult(r.Bytes())
	// m·G
	var mx, my *big.Int
	if m == 0 {
		mx, my = new(big.Int), new(big.Int)
	} else {
		mx, my = pk.Curve.ScalarBaseMult(big.NewInt(m).Bytes())
	}
	// r·PK
	sx, sy := pk.Curve.ScalarMult(pk.X, pk.Y, r.Bytes())
	c2x, c2y := addPoints(pk.Curve, point{mx, my}, point{sx, sy})
	return &Ciphertext{C1X: c1x, C1Y: c1y, C2X: c2x, C2Y: c2y}, nil
}

// Add returns a ciphertext of the plaintext sum.
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	x1, y1 := addPoints(pk.Curve, point{a.C1X, a.C1Y}, point{b.C1X, b.C1Y})
	x2, y2 := addPoints(pk.Curve, point{a.C2X, a.C2Y}, point{b.C2X, b.C2Y})
	return &Ciphertext{C1X: x1, C1Y: y1, C2X: x2, C2Y: y2}
}

// MulConst returns a ciphertext of γ·m.
func (pk *PublicKey) MulConst(a *Ciphertext, gamma int64) *Ciphertext {
	if gamma == 0 {
		z := new(big.Int)
		return &Ciphertext{C1X: z, C1Y: new(big.Int), C2X: new(big.Int), C2Y: new(big.Int)}
	}
	g := new(big.Int).Mod(big.NewInt(gamma), pk.Curve.Params().N)
	x1, y1 := scalarMulPoint(pk.Curve, point{a.C1X, a.C1Y}, g)
	x2, y2 := scalarMulPoint(pk.Curve, point{a.C2X, a.C2Y}, g)
	return &Ciphertext{C1X: x1, C1Y: y1, C2X: x2, C2Y: y2}
}

// Decrypter solves the final small discrete log with a baby-step/giant-step
// table; it is reusable across decryptions.
type Decrypter struct {
	sk       *PrivateKey
	babySize int64
	maxM     int64
	baby     map[string]int64 // encoded j·G -> j for j in [0, babySize)
	giantX   *big.Int         // -babySize·G, added per giant step
	giantY   *big.Int
}

// NewDecrypter builds a decrypter able to recover plaintexts in [0, maxM].
// Table size is ~sqrt(maxM) points.
func NewDecrypter(sk *PrivateKey, maxM int64) (*Decrypter, error) {
	if maxM < 1 {
		return nil, fmt.Errorf("ecelgamal: maxM must be positive")
	}
	babySize := int64(1)
	for babySize*babySize < maxM+1 {
		babySize++
	}
	curve := sk.Curve
	baby := make(map[string]int64, babySize)
	// j = 0 is the point at infinity; handled in Decrypt directly.
	x, y := new(big.Int), new(big.Int)
	for j := int64(1); j < babySize; j++ {
		if j == 1 {
			x, y = curve.ScalarBaseMult(big.NewInt(1).Bytes())
		} else {
			x, y = curve.Add(x, y, curve.Params().Gx, curve.Params().Gy)
		}
		baby[pointKey(x, y)] = j
	}
	// giant = -(babySize·G)
	gx, gy := curve.ScalarBaseMult(big.NewInt(babySize).Bytes())
	gy = new(big.Int).Neg(gy)
	gy.Mod(gy, curve.Params().P)
	return &Decrypter{sk: sk, babySize: babySize, maxM: maxM, baby: baby, giantX: gx, giantY: gy}, nil
}

// Decrypt recovers m ∈ [0, maxM], or an error if the plaintext is out of
// range (which, in the PM setting, marks a non-matching masked value).
func (d *Decrypter) Decrypt(c *Ciphertext) (int64, error) {
	curve := d.sk.Curve
	// M = C2 - D·C1
	sx, sy := scalarMulPoint(curve, point{c.C1X, c.C1Y}, d.sk.D)
	sy = new(big.Int).Neg(sy)
	sy.Mod(sy, curve.Params().P)
	mx, my := addPoints(curve, point{c.C2X, c.C2Y}, point{sx, sy})
	// BSGS: m = i·babySize + j
	x, y := mx, my
	for i := int64(0); i*d.babySize <= d.maxM; i++ {
		if (point{x, y}).isInfinity() {
			return i * d.babySize, nil
		}
		if j, ok := d.baby[pointKey(x, y)]; ok {
			m := i*d.babySize + j
			if m <= d.maxM {
				return m, nil
			}
			return 0, fmt.Errorf("ecelgamal: plaintext beyond maxM")
		}
		x, y = addPoints(curve, point{x, y}, point{d.giantX, d.giantY})
	}
	return 0, fmt.Errorf("ecelgamal: discrete log not found in [0, %d]", d.maxM)
}

// addPoints adds two affine points, treating (0,0) as infinity (the
// convention crypto/elliptic.Add also follows for its affine interface).
func addPoints(curve elliptic.Curve, a, b point) (*big.Int, *big.Int) {
	if a.isInfinity() {
		return new(big.Int).Set(b.x), new(big.Int).Set(b.y)
	}
	if b.isInfinity() {
		return new(big.Int).Set(a.x), new(big.Int).Set(a.y)
	}
	return curve.Add(a.x, a.y, b.x, b.y)
}

func scalarMulPoint(curve elliptic.Curve, p point, k *big.Int) (*big.Int, *big.Int) {
	if p.isInfinity() || k.Sign() == 0 {
		return new(big.Int), new(big.Int)
	}
	return curve.ScalarMult(p.x, p.y, k.Bytes())
}

func pointKey(x, y *big.Int) string {
	return string(x.Bytes()) + "|" + string(y.Bytes())
}
