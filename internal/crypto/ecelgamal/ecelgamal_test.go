package ecelgamal

import (
	"crypto/rand"
	"sync"
	"testing"
)

var (
	once sync.Once
	sk   *PrivateKey
	dec  *Decrypter
)

func setup(t testing.TB) (*PrivateKey, *Decrypter) {
	t.Helper()
	once.Do(func() {
		var err error
		sk, err = GenerateKey(rand.Reader)
		if err != nil {
			panic(err)
		}
		dec, err = NewDecrypter(sk, 1<<20)
		if err != nil {
			panic(err)
		}
	})
	return sk, dec
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	key, d := setup(t)
	for _, m := range []int64{0, 1, 2, 1000, 65535, 65536, 1 << 20} {
		c, err := key.Encrypt(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Decrypt(c)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", m, err)
		}
		if got != m {
			t.Errorf("roundtrip %d -> %d", m, got)
		}
	}
}

func TestNegativePlaintextRejected(t *testing.T) {
	key, _ := setup(t)
	if _, err := key.Encrypt(rand.Reader, -1); err == nil {
		t.Error("negative plaintext accepted")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	key, d := setup(t)
	ca, _ := key.Encrypt(rand.Reader, 1234)
	cb, _ := key.Encrypt(rand.Reader, 4321)
	got, err := d.Decrypt(key.Add(ca, cb))
	if err != nil || got != 5555 {
		t.Errorf("Add: %d, %v; want 5555", got, err)
	}
	// Adding zero keeps the plaintext.
	cz, _ := key.Encrypt(rand.Reader, 0)
	got0, err := d.Decrypt(key.Add(ca, cz))
	if err != nil || got0 != 1234 {
		t.Errorf("Add zero: %d, %v", got0, err)
	}
}

func TestHomomorphicMulConst(t *testing.T) {
	key, d := setup(t)
	ca, _ := key.Encrypt(rand.Reader, 300)
	got, err := d.Decrypt(key.MulConst(ca, 7))
	if err != nil || got != 2100 {
		t.Errorf("MulConst: %d, %v; want 2100", got, err)
	}
	gz, err := d.Decrypt(key.MulConst(ca, 0))
	if err != nil || gz != 0 {
		t.Errorf("MulConst by 0: %d, %v", gz, err)
	}
}

func TestDecryptOutOfRange(t *testing.T) {
	key, _ := setup(t)
	small, err := NewDecrypter(key, 100)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := key.Encrypt(rand.Reader, 5000)
	if _, err := small.Decrypt(c); err == nil {
		t.Error("out-of-range plaintext decrypted")
	}
}

func TestNewDecrypterValidation(t *testing.T) {
	key, _ := setup(t)
	if _, err := NewDecrypter(key, 0); err == nil {
		t.Error("maxM=0 accepted")
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	key, _ := setup(t)
	c1, _ := key.Encrypt(rand.Reader, 9)
	c2, _ := key.Encrypt(rand.Reader, 9)
	if c1.C1X.Cmp(c2.C1X) == 0 && c1.C2X.Cmp(c2.C2X) == 0 {
		t.Error("two encryptions of 9 are identical")
	}
}

// Polynomial evaluation under EC-ElGamal on small values: the ablation's
// core operation (Horner with Add/MulConst is impossible without
// plaintext-ciphertext multiplication, so we evaluate via coefficient
// scaling E(sum c_k a^k) = sum a^k · E(c_k)).
func TestSmallPolynomialEvaluation(t *testing.T) {
	key, d := setup(t)
	// P(x) = 6 - 5x + x² has roots 2 and 3. Evaluate homomorphically at 2
	// (root) and 4 (non-root), using positive coefficient arithmetic:
	// P(x) = x² + 6 - 5x → compute E(x²·1) + E(6) then compare to E(5x).
	eval := func(a int64) (int64, int64) {
		c0, _ := key.Encrypt(rand.Reader, 6)
		c1, _ := key.Encrypt(rand.Reader, 5)
		c2, _ := key.Encrypt(rand.Reader, 1)
		pos := key.Add(key.MulConst(c2, a*a), c0) // a² + 6
		neg := key.MulConst(c1, a)                // 5a
		p, err := d.Decrypt(pos)
		if err != nil {
			t.Fatal(err)
		}
		n, err := d.Decrypt(neg)
		if err != nil {
			t.Fatal(err)
		}
		return p, n
	}
	p, n := eval(2)
	if p != n {
		t.Errorf("P(2): %d != %d, want root", p, n)
	}
	p, n = eval(4)
	if p == n {
		t.Errorf("P(4): %d == %d, want non-root", p, n)
	}
}
