package hybrid

import (
	"crypto/rand"
	"fmt"
	"testing"
)

// Hybrid-encryption costs: the per-message sealing is cheap AES-GCM; the
// per-partial-result session setup pays one RSA-OAEP wrap.
func BenchmarkSessionSetup(b *testing.B) {
	key, err := GenerateKeyPair(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSession(&key.PublicKey); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeal(b *testing.B) {
	key, err := GenerateKeyPair(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := NewSession(&key.PublicKey)
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("msg=%dB", size), func(b *testing.B) {
			msg := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Seal(msg, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReceiverSetupAndOpen(b *testing.B) {
	key, err := GenerateKeyPair(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	sess, _ := NewSession(&key.PublicKey)
	ct, _ := sess.Seal(make([]byte, 1024), nil)
	b.Run("receiver-setup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NewReceiver(key, sess.WrappedKey()); err != nil {
				b.Fatal(err)
			}
		}
	})
	recv, _ := NewReceiver(key, sess.WrappedKey())
	b.Run("open-1KiB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := recv.Open(ct, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
