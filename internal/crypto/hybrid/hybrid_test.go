package hybrid

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"sync"
	"testing"
	"testing/quick"
)

var (
	keyOnce sync.Once
	testKey *rsa.PrivateKey
)

func clientKey(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	keyOnce.Do(func() {
		var err error
		testKey, err = GenerateKeyPair(rand.Reader)
		if err != nil {
			panic(err)
		}
	})
	return testKey
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	key := clientKey(t)
	msgs := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("tuple-data "), 1000)}
	for _, m := range msgs {
		c, err := Encrypt(&key.PublicKey, m, []byte("aad"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decrypt(key, c, []byte("aad"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, m) {
			t.Errorf("roundtrip mismatch for %d-byte message", len(m))
		}
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	key := clientKey(t)
	c, err := Encrypt(&key.PublicKey, []byte("secret partial result"), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a ciphertext bit: AEAD must reject.
	c.Sealed[0] ^= 1
	if _, err := Decrypt(key, c, nil); err == nil {
		t.Error("tampered ciphertext accepted")
	}
	c.Sealed[0] ^= 1
	// Wrong AAD must reject.
	if _, err := Decrypt(key, c, []byte("other")); err == nil {
		t.Error("wrong AAD accepted")
	}
	// Wrong key must reject.
	other, err := GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(other, c, nil); err == nil {
		t.Error("wrong private key accepted")
	}
}

func TestCiphertextMarshalRoundtrip(t *testing.T) {
	key := clientKey(t)
	c, err := Encrypt(&key.PublicKey, []byte("payload"), nil)
	if err != nil {
		t.Fatal(err)
	}
	b := c.Marshal()
	got, err := UnmarshalCiphertext(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.WrappedKey, c.WrappedKey) || !bytes.Equal(got.Nonce, c.Nonce) || !bytes.Equal(got.Sealed, c.Sealed) {
		t.Error("marshal roundtrip mismatch")
	}
	pt, err := Decrypt(key, got, nil)
	if err != nil || string(pt) != "payload" {
		t.Errorf("decrypt after marshal: %q, %v", pt, err)
	}
}

func TestUnmarshalCiphertextErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{0, 0, 0},                               // truncated header
		{0, 0, 0, 9, 1, 2},                      // body shorter than declared
		append((&Ciphertext{}).Marshal(), 0xFF), // trailing byte
	}
	for _, b := range bad {
		if _, err := UnmarshalCiphertext(b); err == nil {
			t.Errorf("UnmarshalCiphertext(% x) succeeded", b)
		}
	}
}

func TestSessionManyMessages(t *testing.T) {
	key := clientKey(t)
	sess, err := NewSession(&key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewReceiver(key, sess.WrappedKey())
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte, aad []byte) bool {
		c, err := sess.Seal(msg, aad)
		if err != nil {
			return false
		}
		if len(c.WrappedKey) != 0 {
			return false // session ciphertexts carry no wrapped key
		}
		got, err := recv.Open(c, aad)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSessionCiphertextNotOneShotDecryptable(t *testing.T) {
	key := clientKey(t)
	sess, _ := NewSession(&key.PublicKey)
	c, _ := sess.Seal([]byte("m"), nil)
	if _, err := Decrypt(key, c, nil); err == nil {
		t.Error("Decrypt accepted a session ciphertext without wrapped key")
	}
}

func TestNewReceiverWrongKey(t *testing.T) {
	key := clientKey(t)
	other, err := GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := NewSession(&key.PublicKey)
	if _, err := NewReceiver(other, sess.WrappedKey()); err == nil {
		t.Error("NewReceiver unwrapped with the wrong key")
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	key := clientKey(t)
	c1, _ := Encrypt(&key.PublicKey, []byte("m"), nil)
	c2, _ := Encrypt(&key.PublicKey, []byte("m"), nil)
	if bytes.Equal(c1.Sealed, c2.Sealed) && bytes.Equal(c1.Nonce, c2.Nonce) {
		t.Error("two encryptions of the same message are identical")
	}
}

func TestKeyEqual(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	b := []byte{1, 2, 3, 4}
	if !KeyEqual(a, b) {
		t.Error("equal keys reported unequal")
	}
	if KeyEqual(a, []byte{1, 2, 3, 5}) {
		t.Error("unequal keys reported equal")
	}
	if KeyEqual(a, a[:3]) {
		t.Error("length mismatch reported equal")
	}
	if !KeyEqual(nil, nil) {
		t.Error("two empty keys must compare equal")
	}
}

func TestReceiverRejectsShortSessionKey(t *testing.T) {
	key := clientKey(t)
	// A well-formed OAEP blob wrapping an AES-128-length key: accepting
	// it would silently downgrade the advertised AES-256 strength.
	short := make([]byte, 16)
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, &key.PublicKey, short, []byte("secmediation/hybrid"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReceiver(key, wrapped); err == nil {
		t.Error("NewReceiver accepted a 16-byte session key")
	}
	if _, err := Decrypt(key, &Ciphertext{WrappedKey: wrapped, Nonce: make([]byte, 12)}, nil); err == nil {
		t.Error("Decrypt accepted a 16-byte session key")
	}
}
