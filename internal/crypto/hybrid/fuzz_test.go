package hybrid

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalCiphertext: arbitrary blobs must never panic, and accepted
// ciphertexts must re-marshal byte-identically.
func FuzzUnmarshalCiphertext(f *testing.F) {
	good := (&Ciphertext{WrappedKey: []byte{1, 2}, Nonce: make([]byte, 12), Sealed: []byte{9}}).Marshal()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCiphertext(data)
		if err != nil {
			return
		}
		if !bytes.Equal(c.Marshal(), data) {
			t.Fatal("ciphertext re-marshal mismatch")
		}
	})
}
