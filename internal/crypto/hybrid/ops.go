package hybrid

import "github.com/secmediation/secmediation/internal/telemetry"

// Process-wide operation counters (telemetry.OpTotals): RSA session-key
// wraps/unwraps and AES-GCM seals/opens.
var (
	opWrap   = telemetry.CryptoOp("hybrid.wrap")
	opUnwrap = telemetry.CryptoOp("hybrid.unwrap")
	opSeal   = telemetry.CryptoOp("hybrid.seal")
	opOpen   = telemetry.CryptoOp("hybrid.open")
)
