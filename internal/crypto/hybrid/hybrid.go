// Package hybrid implements the paper's hybrid encryption functions
// encrypt(...) and decrypt(...): data is encrypted under a freshly
// generated symmetric session key (AES-256-GCM) and the session key is
// wrapped under the client's public key (RSA-OAEP with SHA-256) taken from
// a credential.
//
// Two granularities are offered, matching the paper's usage:
//
//   - One-shot Encrypt/Decrypt wraps a fresh session key per message
//     (used when a single blob is sent, e.g. an index table).
//   - Session amortizes one wrapped key over many messages (the paper
//     recommends encrypting a partial result and its index table with the
//     same session key).
package hybrid

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"fmt"
	"io"
)

// KeyBits is the default RSA modulus size for client keys.
const KeyBits = 2048

// sessionKeyLen is the AES-256 key length.
const sessionKeyLen = 32

// GenerateKeyPair creates a client key pair for hybrid encryption.
func GenerateKeyPair(rnd io.Reader) (*rsa.PrivateKey, error) {
	key, err := rsa.GenerateKey(rnd, KeyBits)
	if err != nil {
		return nil, fmt.Errorf("hybrid: generate key: %w", err)
	}
	return key, nil
}

// Ciphertext is a hybrid-encrypted message: the RSA-wrapped session key
// (empty when the message belongs to an established Session), the GCM
// nonce, and the AEAD ciphertext.
type Ciphertext struct {
	WrappedKey []byte
	Nonce      []byte
	Sealed     []byte
}

// Marshal serializes the ciphertext into a single length-prefixed blob
// (3 × uint32 length + bytes), suitable for transport message fields.
func (c *Ciphertext) Marshal() []byte {
	out := make([]byte, 0, 12+len(c.WrappedKey)+len(c.Nonce)+len(c.Sealed))
	for _, part := range [][]byte{c.WrappedKey, c.Nonce, c.Sealed} {
		var lb [4]byte
		binary.BigEndian.PutUint32(lb[:], uint32(len(part)))
		out = append(out, lb[:]...)
		out = append(out, part...)
	}
	return out
}

// UnmarshalCiphertext parses a blob produced by Marshal.
func UnmarshalCiphertext(b []byte) (*Ciphertext, error) {
	var parts [3][]byte
	for i := 0; i < 3; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("hybrid: truncated ciphertext header")
		}
		n := int(binary.BigEndian.Uint32(b[:4]))
		b = b[4:]
		if len(b) < n {
			return nil, fmt.Errorf("hybrid: truncated ciphertext body")
		}
		parts[i] = b[:n]
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("hybrid: %d trailing bytes", len(b))
	}
	return &Ciphertext{WrappedKey: parts[0], Nonce: parts[1], Sealed: parts[2]}, nil
}

// Encrypt hybrid-encrypts plaintext for the public key: fresh session key,
// wrapped with RSA-OAEP(SHA-256). The optional associated data is
// authenticated but not encrypted.
// seclint:sanitizer hybrid encrypt boundary
func Encrypt(pub *rsa.PublicKey, plaintext, aad []byte) (*Ciphertext, error) {
	key := make([]byte, sessionKeyLen)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("hybrid: session key: %w", err)
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, key, []byte("secmediation/hybrid"))
	if err != nil {
		return nil, fmt.Errorf("hybrid: wrap session key: %w", err)
	}
	nonce, sealed, err := seal(key, plaintext, aad)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{WrappedKey: wrapped, Nonce: nonce, Sealed: sealed}, nil
}

// Decrypt reverses Encrypt with the client's private key.
// seclint:source hybrid decryption output
func Decrypt(priv *rsa.PrivateKey, c *Ciphertext, aad []byte) ([]byte, error) {
	if len(c.WrappedKey) == 0 {
		return nil, fmt.Errorf("hybrid: ciphertext has no wrapped key (session ciphertext?)")
	}
	key, err := unwrapSessionKey(priv, c.WrappedKey)
	if err != nil {
		return nil, err
	}
	return open(key, c.Nonce, c.Sealed, aad)
}

// KeyEqual compares two keys (or tags) in constant time. Every key
// comparison in the codebase must go through this or
// subtle.ConstantTimeCompare directly — bytes.Equal short-circuits and
// leaks the length of the matching prefix to a timing observer
// (enforced by seclint's subtlecmp analyzer).
func KeyEqual(a, b []byte) bool {
	return subtle.ConstantTimeCompare(a, b) == 1
}

// unwrapSessionKey recovers and validates a session key. OAEP already
// authenticates the padding, but a wrapped blob produced by a different
// (or malicious) sender could still carry a short key; AES would accept
// 16 or 24 bytes silently, downgrading the advertised AES-256 strength.
// seclint:source unwrapped session key
func unwrapSessionKey(priv *rsa.PrivateKey, wrappedKey []byte) ([]byte, error) {
	key, err := rsa.DecryptOAEP(sha256.New(), nil, priv, wrappedKey, []byte("secmediation/hybrid"))
	if err != nil {
		return nil, fmt.Errorf("hybrid: unwrap session key: %w", err)
	}
	if len(key) != sessionKeyLen {
		return nil, fmt.Errorf("hybrid: unwrapped session key has %d bytes, want %d", len(key), sessionKeyLen)
	}
	opUnwrap.Add(1)
	return key, nil
}

// Session is a sender-side hybrid session: one wrapped session key, many
// sealed messages.
type Session struct {
	key     []byte
	wrapped []byte
}

// NewSession generates a session key for the recipient's public key.
func NewSession(pub *rsa.PublicKey) (*Session, error) {
	key := make([]byte, sessionKeyLen)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("hybrid: session key: %w", err)
	}
	wrapped, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, key, []byte("secmediation/hybrid"))
	if err != nil {
		return nil, fmt.Errorf("hybrid: wrap session key: %w", err)
	}
	opWrap.Add(1)
	return &Session{key: key, wrapped: wrapped}, nil
}

// WrappedKey returns the RSA-wrapped session key to ship alongside the
// sealed messages.
func (s *Session) WrappedKey() []byte { return s.wrapped }

// Seal encrypts one message under the session key. The returned ciphertext
// has an empty WrappedKey; the recipient opens it with a Receiver built
// from the session's wrapped key.
// seclint:sanitizer hybrid encrypt boundary
func (s *Session) Seal(plaintext, aad []byte) (*Ciphertext, error) {
	nonce, sealed, err := seal(s.key, plaintext, aad)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{Nonce: nonce, Sealed: sealed}, nil
}

// Receiver is the client side of a Session.
type Receiver struct {
	key []byte
}

// NewReceiver unwraps a session key with the client's private key.
func NewReceiver(priv *rsa.PrivateKey, wrappedKey []byte) (*Receiver, error) {
	key, err := unwrapSessionKey(priv, wrappedKey)
	if err != nil {
		return nil, err
	}
	return &Receiver{key: key}, nil
}

// Open decrypts one session message.
// seclint:source hybrid decryption output
func (r *Receiver) Open(c *Ciphertext, aad []byte) ([]byte, error) {
	return open(r.key, c.Nonce, c.Sealed, aad)
}

func seal(key, plaintext, aad []byte) (nonce, sealed []byte, err error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, nil, fmt.Errorf("hybrid: aes: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, nil, fmt.Errorf("hybrid: gcm: %w", err)
	}
	nonce = make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, nil, fmt.Errorf("hybrid: nonce: %w", err)
	}
	opSeal.Add(1)
	return nonce, gcm.Seal(nil, nonce, plaintext, aad), nil
}

// seclint:source AEAD plaintext
func open(key, nonce, sealed, aad []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("hybrid: aes: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("hybrid: gcm: %w", err)
	}
	if len(nonce) != gcm.NonceSize() {
		return nil, fmt.Errorf("hybrid: bad nonce length %d", len(nonce))
	}
	pt, err := gcm.Open(nil, nonce, sealed, aad)
	if err != nil {
		return nil, fmt.Errorf("hybrid: open: %w", err)
	}
	opOpen.Add(1)
	return pt, nil
}

// NewSessionKey generates a raw symmetric session key for callers that
// manage key transport themselves (the PM protocol's footnote-2 mode packs
// the key inside a homomorphically encrypted polynomial evaluation instead
// of wrapping it with RSA).
func NewSessionKey() ([]byte, error) {
	key := make([]byte, sessionKeyLen)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("hybrid: session key: %w", err)
	}
	return key, nil
}

// SessionKeyLen is the byte length of keys produced by NewSessionKey.
const SessionKeyLen = sessionKeyLen

// SealWithKey seals a message under a caller-provided session key.
// seclint:sanitizer hybrid encrypt boundary
func SealWithKey(key, plaintext, aad []byte) (*Ciphertext, error) {
	nonce, sealed, err := seal(key, plaintext, aad)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{Nonce: nonce, Sealed: sealed}, nil
}

// OpenWithKey opens a message sealed by SealWithKey.
// seclint:source hybrid decryption output
func OpenWithKey(key []byte, c *Ciphertext, aad []byte) ([]byte, error) {
	return open(key, c.Nonce, c.Sealed, aad)
}
