// Package ope implements deterministic order-preserving encryption for
// the related-work comparison of the paper's Section 7: Özsoyoglu, Singer
// and Chung study order-preserving encryption and its query
// transformations as an alternative to DAS bucketization for evaluating
// comparisons directly on ciphertexts.
//
// Construction: a keyed, strictly monotone injection from the plaintext
// interval [0, 2^PlainBits) into a larger ciphertext interval
// [0, 2^CipherBits). The function is defined by recursive interval
// bisection: at every level the plaintext interval is halved and the
// ciphertext interval is split at a pseudorandom pivot (HMAC-SHA256 of the
// interval under the key) chosen so both halves keep enough room. The
// scheme is deterministic — equal plaintexts encrypt equal — and
// comparisons on ciphertexts equal comparisons on plaintexts, which is
// precisely its leakage: an adversary sees the full order relation (and
// approximate magnitude), strictly more than DAS bucketization reveals.
// The ablation in ope_test.go / EXPERIMENTS.md quantifies the trade-off:
// exact server-side range filtering vs. coarse index filtering.
package ope

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"math/big"
)

const (
	// PlainBits bounds plaintexts to [0, 2^PlainBits).
	PlainBits = 32
	// CipherBits is the ciphertext space size; the gap (CipherBits −
	// PlainBits) keeps every recursion level's pivot choice non-degenerate.
	CipherBits = 64
)

// Key is an OPE key: a random 32-byte secret.
type Key struct {
	secret [32]byte
}

// GenerateKey draws a fresh OPE key.
func GenerateKey() (*Key, error) {
	var k Key
	if _, err := rand.Read(k.secret[:]); err != nil {
		return nil, fmt.Errorf("ope: generate key: %w", err)
	}
	return &k, nil
}

// NewKeyFromSecret builds a key from caller-provided secret material
// (tests; key distribution is out of scope here).
func NewKeyFromSecret(secret []byte) *Key {
	var k Key
	sum := sha256.Sum256(secret)
	copy(k.secret[:], sum[:])
	return &k
}

// prf derives a pseudorandom integer in [0, bound) for an interval label.
func (k *Key) prf(level uint, plo uint64, bound *big.Int) *big.Int {
	mac := hmac.New(sha256.New, k.secret[:])
	var buf [12]byte
	buf[0] = byte(level)
	buf[1] = byte(level >> 8)
	for i := 0; i < 8; i++ {
		buf[2+i] = byte(plo >> (8 * i))
	}
	mac.Write(buf[:])
	// 256 PRF bits against a ≤64-bit bound: modulo bias is negligible.
	v := new(big.Int).SetBytes(mac.Sum(nil))
	return v.Mod(v, bound)
}

// Encrypt maps a plaintext in [0, 2^PlainBits) to its order-preserving
// ciphertext in [0, 2^CipherBits).
func (k *Key) Encrypt(x uint64) (uint64, error) {
	if x >= 1<<PlainBits {
		return 0, fmt.Errorf("ope: plaintext %d out of [0, 2^%d)", x, PlainBits)
	}
	plo, phi := uint64(0), uint64(1)<<PlainBits // plaintext interval [plo, phi)
	// Ciphertext interval bounds as big.Int: 2^CipherBits does not fit a
	// uint64, and the pivot arithmetic must not wrap.
	cLo := new(big.Int)
	cHi := new(big.Int).Lsh(big.NewInt(1), CipherBits)
	level := uint(0)
	for phi-plo > 1 {
		pmid := plo + (phi-plo)/2
		leftNeed := new(big.Int).SetUint64(pmid - plo)  // left half must fit
		rightNeed := new(big.Int).SetUint64(phi - pmid) // right half must fit
		span := new(big.Int).Sub(cHi, cLo)
		slack := new(big.Int).Sub(span, leftNeed)
		slack.Sub(slack, rightNeed)
		if slack.Sign() < 0 {
			return 0, fmt.Errorf("ope: ciphertext space exhausted (internal invariant)")
		}
		slack.Add(slack, big.NewInt(1))
		pivotOff := k.prf(level, plo, slack)
		pivot := new(big.Int).Add(cLo, leftNeed)
		pivot.Add(pivot, pivotOff)
		if x < pmid {
			phi = pmid
			cHi = pivot
		} else {
			plo = pmid
			cLo = pivot
		}
		level++
	}
	return cLo.Uint64(), nil
}

// EncryptRangeLow returns the smallest possible ciphertext for plaintexts
// ≥ x — i.e. Encrypt(x). Range query translation for "v ≥ x".
func (k *Key) EncryptRangeLow(x uint64) (uint64, error) { return k.Encrypt(x) }

// EncryptRangeHigh returns an inclusive ciphertext upper bound for
// plaintexts ≤ x. Because the scheme is strictly monotone, Encrypt(x) is
// exact. Range query translation for "v ≤ x".
func (k *Key) EncryptRangeHigh(x uint64) (uint64, error) { return k.Encrypt(x) }

// CompareEncrypted orders two ciphertexts; identical to comparing the
// plaintexts (the defining property, and the leakage).
func CompareEncrypted(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
