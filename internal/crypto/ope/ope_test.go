package ope

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testKey() *Key { return NewKeyFromSecret([]byte("test-key")) }

// The defining property: encryption is strictly order-preserving.
func TestOrderPreservation(t *testing.T) {
	k := testKey()
	f := func(a, b uint32) bool {
		ca, err := k.Encrypt(uint64(a))
		if err != nil {
			return false
		}
		cb, err := k.Encrypt(uint64(b))
		if err != nil {
			return false
		}
		switch {
		case a < b:
			return ca < cb
		case a > b:
			return ca > cb
		default:
			return ca == cb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDeterminismAndKeySeparation(t *testing.T) {
	k1 := testKey()
	k2 := NewKeyFromSecret([]byte("other-key"))
	c1, err := k1.Encrypt(12345)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := k1.Encrypt(12345)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("not deterministic")
	}
	c3, err := k2.Encrypt(12345)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c3 {
		t.Error("two keys agree on a ciphertext (astronomically unlikely)")
	}
}

func TestBoundaries(t *testing.T) {
	k := testKey()
	lo, err := k.Encrypt(0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := k.Encrypt((1 << PlainBits) - 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Errorf("Encrypt(0)=%d not below Encrypt(max)=%d", lo, hi)
	}
	if _, err := k.Encrypt(1 << PlainBits); err == nil {
		t.Error("out-of-range plaintext accepted")
	}
}

func TestGenerateKey(t *testing.T) {
	a, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := a.Encrypt(7)
	cb, _ := b.Encrypt(7)
	if ca == cb {
		t.Error("fresh keys collide")
	}
}

// Range-query translation: server-side filtering on OPE ciphertexts
// returns the EXACT range result — zero false positives — in contrast to
// DAS bucketization, whose index filters admit whole partitions. The
// price: ciphertext order (hence approximate magnitude) is public.
func TestRangeQueryExactness(t *testing.T) {
	k := testKey()
	rng := rand.New(rand.NewSource(42))
	type row struct {
		plain  uint64
		cipher uint64
	}
	var rows []row
	for i := 0; i < 500; i++ {
		p := uint64(rng.Intn(10_000))
		c, err := k.Encrypt(p)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row{p, c})
	}
	lo, hi := uint64(2_500), uint64(7_500)
	cLo, err := k.EncryptRangeLow(lo)
	if err != nil {
		t.Fatal(err)
	}
	cHi, err := k.EncryptRangeHigh(hi)
	if err != nil {
		t.Fatal(err)
	}
	// "Server" filters ciphertexts only.
	got := 0
	for _, r := range rows {
		if r.cipher >= cLo && r.cipher <= cHi {
			if r.plain < lo || r.plain > hi {
				t.Fatalf("false positive: plain %d in ciphertext range", r.plain)
			}
			got++
		} else if r.plain >= lo && r.plain <= hi {
			t.Fatalf("false negative: plain %d outside ciphertext range", r.plain)
		}
	}
	if got == 0 {
		t.Fatal("empty range result (workload bug)")
	}
}

func TestCompareEncrypted(t *testing.T) {
	if CompareEncrypted(1, 2) != -1 || CompareEncrypted(2, 1) != 1 || CompareEncrypted(5, 5) != 0 {
		t.Error("CompareEncrypted ordering wrong")
	}
}

// Sanity: ciphertexts of consecutive plaintexts keep pseudorandom gaps
// (no trivially constant spacing, which would leak exact differences).
func TestGapVariability(t *testing.T) {
	k := testKey()
	gaps := map[uint64]bool{}
	prev, err := k.Encrypt(0)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(1); x < 64; x++ {
		c, err := k.Encrypt(x)
		if err != nil {
			t.Fatal(err)
		}
		gaps[c-prev] = true
		prev = c
	}
	if len(gaps) < 16 {
		t.Errorf("only %d distinct gaps across 63 consecutive plaintexts", len(gaps))
	}
}
