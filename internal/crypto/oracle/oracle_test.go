package oracle

import (
	"math/big"
	"testing"
	"testing/quick"

	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/relation"
)

func smallGroup() *groups.Group {
	// p = 2q+1 with q = 1019 (both prime): big enough to exercise the
	// expansion loop, small enough to enumerate.
	return &groups.Group{P: big.NewInt(2039), Q: big.NewInt(1019)}
}

func TestOutputsAreResidues(t *testing.T) {
	g := smallGroup()
	o := New(g, "t")
	f := func(data []byte) bool {
		return g.IsQuadraticResidue(o.HashBytes(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	o := New(smallGroup(), "t")
	a := o.HashBytes([]byte("value"))
	b := o.HashBytes([]byte("value"))
	if a.Cmp(b) != 0 {
		t.Error("oracle not deterministic")
	}
}

func TestLabelSeparation(t *testing.T) {
	g := smallGroup()
	a := New(g, "run-1").HashBytes([]byte("v"))
	b := New(g, "run-2").HashBytes([]byte("v"))
	// In a 1019-element group a coincidence is possible but the fixed
	// inputs here are known not to collide.
	if a.Cmp(b) == 0 {
		t.Error("labels do not separate oracles")
	}
}

func TestHashValueUsesCanonicalEncoding(t *testing.T) {
	g := groups.MODP1536()
	o := New(g, "t")
	if o.HashValue(relation.Int(7)).Cmp(o.HashValue(relation.Int(7))) != 0 {
		t.Error("equal values hash differently")
	}
	if o.HashValue(relation.Int(7)).Cmp(o.HashValue(relation.String_("7"))) == 0 {
		t.Error("Int(7) and String(\"7\") hash identically")
	}
	if o.Group() != g {
		t.Error("Group accessor")
	}
}

func TestLargeGroupSpread(t *testing.T) {
	o := New(groups.MODP1536(), "spread")
	seen := map[string]bool{}
	for i := 0; i < 256; i++ {
		seen[o.HashValue(relation.Int(int64(i))).String()] = true
	}
	if len(seen) != 256 {
		t.Errorf("collisions in 256 hashes: %d distinct", len(seen))
	}
}
