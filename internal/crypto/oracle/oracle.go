// Package oracle instantiates the paper's "ideal hash function h"
// (assumed to be computed by a random oracle, shared by both datasources):
// it maps attribute values to elements of QR(p) so they can be fed into
// the commutative encryption function.
//
// Construction: the value's canonical byte encoding (relation.Value.Encode)
// is expanded with SHA-256 under a counter until the resulting integer
// lands in [2, p-1]; the result is then squared modulo p, which places it
// in the quadratic-residue subgroup. Identical inputs yield identical
// outputs; distinct inputs collide only with negligible probability
// (a SHA-256 collision or a ±x square collision on hashed values).
package oracle

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"

	"github.com/secmediation/secmediation/internal/crypto/groups"
	"github.com/secmediation/secmediation/internal/relation"
)

// Oracle hashes values into QR(p) for a fixed group. A domain-separation
// label keeps oracles of unrelated protocol runs independent (both sources
// of one run must use the same label, per the paper's shared-h assumption).
type Oracle struct {
	group *groups.Group
	label string
}

// New returns an oracle for the group with the given domain-separation
// label.
func New(g *groups.Group, label string) *Oracle {
	return &Oracle{group: g, label: label}
}

// Group returns the oracle's group.
func (o *Oracle) Group() *groups.Group { return o.group }

// HashBytes maps an arbitrary byte string into QR(p).
func (o *Oracle) HashBytes(data []byte) *big.Int {
	opHash.Add(1)
	pMinus1 := new(big.Int).Sub(o.group.P, big.NewInt(1))
	// Expand enough SHA-256 blocks to cover the modulus size plus a 64-bit
	// slack so the mod bias is negligible, then reduce into [2, p-1].
	need := (o.group.P.BitLen() + 7) / 8
	need += 8
	var stream []byte
	var ctr uint32
	for len(stream) < need {
		h := sha256.New()
		h.Write([]byte("secmediation/oracle:"))
		h.Write([]byte(o.label))
		h.Write([]byte{0})
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], ctr)
		h.Write(cb[:])
		h.Write(data)
		stream = h.Sum(stream)
		ctr++
	}
	x := new(big.Int).SetBytes(stream[:need])
	// x mod (p-2) ∈ [0, p-3]; +2 ∈ [2, p-1]
	x.Mod(x, new(big.Int).Sub(pMinus1, big.NewInt(1)))
	x.Add(x, big.NewInt(2))
	return o.group.Square(x)
}

// HashValue maps an attribute value into QR(p) via its canonical encoding.
// This is the paper's h(a) for a ∈ domactive(R_i.A_join).
func (o *Oracle) HashValue(v relation.Value) *big.Int {
	return o.HashBytes(v.Encode(nil))
}
