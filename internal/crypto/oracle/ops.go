package oracle

import "github.com/secmediation/secmediation/internal/telemetry"

// opHash counts ideal-hash evaluations h(a) — one per value hashed into
// QR(p), regardless of how many SHA-256 blocks the expansion needed.
var opHash = telemetry.CryptoOp("oracle.hash")
