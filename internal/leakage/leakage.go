// Package leakage provides the instrumentation behind the paper's Table 1
// (extra information disclosed to client and mediator) and Table 2
// (applied cryptographic primitives): a thread-safe ledger into which the
// protocol implementations record (a) every quantity a party could derive
// from the messages it sees and (b) every cryptographic primitive a party
// applies. The medbench harness and the security tests read the ledger
// back to regenerate and assert the tables.
package leakage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Standard party names used across the protocols.
const (
	PartyClient   = "client"
	PartyMediator = "mediator"
)

// PartySource names a datasource party.
func PartySource(name string) string { return "source:" + name }

// Ledger accumulates observations and primitive-usage counts. A nil Ledger
// is valid and records nothing, so un-instrumented protocol runs pay no
// cost.
type Ledger struct {
	mu         sync.Mutex
	observed   map[string]map[string]int64 // party -> item -> value
	primitives map[string]map[string]int64 // party -> primitive -> count
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		observed:   make(map[string]map[string]int64),
		primitives: make(map[string]map[string]int64),
	}
}

// Observe records that a party could learn item = value from the protocol
// messages it handles (e.g. mediator observes "|R1|" = 500). Repeated
// observations of the same item overwrite — the quantity, not the count,
// is the leakage.
func (l *Ledger) Observe(party, item string, value int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.observed[party]
	if !ok {
		m = make(map[string]int64)
		l.observed[party] = m
	}
	m[item] = value
}

// UsePrimitive counts n applications of a cryptographic primitive by a
// party (e.g. "commutative-encryption", "hash", "homomorphic-encryption").
func (l *Ledger) UsePrimitive(party, primitive string, n int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	m, ok := l.primitives[party]
	if !ok {
		m = make(map[string]int64)
		l.primitives[party] = m
	}
	m[primitive] += n
}

// Observed returns the value a party observed for an item.
func (l *Ledger) Observed(party, item string) (int64, bool) {
	if l == nil {
		return 0, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.observed[party][item]
	return v, ok
}

// ObservedItems returns a copy of everything a party observed.
func (l *Ledger) ObservedItems(party string) map[string]int64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.observed[party]))
	for k, v := range l.observed[party] {
		out[k] = v
	}
	return out
}

// PrimitiveCount returns how often a party used a primitive.
func (l *Ledger) PrimitiveCount(party, primitive string) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.primitives[party][primitive]
}

// Primitives returns the distinct primitives a party applied, sorted.
func (l *Ledger) Primitives(party string) []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for p := range l.primitives[party] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// AllPrimitives returns the union of primitives applied by any party,
// sorted — the per-protocol row of Table 2.
func (l *Ledger) AllPrimitives() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	set := map[string]bool{}
	for _, m := range l.primitives {
		for p := range m {
			set[p] = true
		}
	}
	var out []string
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// String renders the ledger for debugging and the medbench reports.
func (l *Ledger) String() string {
	if l == nil {
		return "<nil ledger>"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var b strings.Builder
	var parties []string
	for p := range l.observed {
		parties = append(parties, p)
	}
	sort.Strings(parties)
	for _, p := range parties {
		items := l.observed[p]
		var keys []string
		for k := range items {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s observes %s = %d\n", p, k, items[k])
		}
	}
	parties = parties[:0]
	for p := range l.primitives {
		parties = append(parties, p)
	}
	sort.Strings(parties)
	for _, p := range parties {
		prims := l.primitives[p]
		var keys []string
		for k := range prims {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s applies %s ×%d\n", p, k, prims[k])
		}
	}
	return b.String()
}
