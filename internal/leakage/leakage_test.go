package leakage

import (
	"strings"
	"sync"
	"testing"
)

func TestObserveAndRead(t *testing.T) {
	l := NewLedger()
	l.Observe(PartyMediator, "|R1|", 10)
	l.Observe(PartyMediator, "|R1|", 12) // overwrite
	l.Observe(PartyClient, "superset", 40)

	if v, ok := l.Observed(PartyMediator, "|R1|"); !ok || v != 12 {
		t.Errorf("Observed = %d,%v", v, ok)
	}
	if _, ok := l.Observed(PartyMediator, "missing"); ok {
		t.Error("missing item observed")
	}
	items := l.ObservedItems(PartyClient)
	if len(items) != 1 || items["superset"] != 40 {
		t.Errorf("ObservedItems = %v", items)
	}
}

func TestPrimitives(t *testing.T) {
	l := NewLedger()
	l.UsePrimitive(PartySource("S1"), "hash", 5)
	l.UsePrimitive(PartySource("S1"), "hash", 3)
	l.UsePrimitive(PartySource("S2"), "commutative", 1)

	if c := l.PrimitiveCount(PartySource("S1"), "hash"); c != 8 {
		t.Errorf("count = %d, want 8", c)
	}
	if got := l.Primitives(PartySource("S1")); len(got) != 1 || got[0] != "hash" {
		t.Errorf("Primitives = %v", got)
	}
	all := l.AllPrimitives()
	if len(all) != 2 || all[0] != "commutative" || all[1] != "hash" {
		t.Errorf("AllPrimitives = %v", all)
	}
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.Observe("p", "i", 1)
	l.UsePrimitive("p", "x", 1)
	if _, ok := l.Observed("p", "i"); ok {
		t.Error("nil ledger observed something")
	}
	if l.PrimitiveCount("p", "x") != 0 || l.Primitives("p") != nil || l.AllPrimitives() != nil || l.ObservedItems("p") != nil {
		t.Error("nil ledger returned data")
	}
	if l.String() != "<nil ledger>" {
		t.Error("nil ledger String")
	}
}

func TestStringRendering(t *testing.T) {
	l := NewLedger()
	l.Observe(PartyMediator, "|R1|", 3)
	l.UsePrimitive(PartyClient, "hybrid-decryption", 6)
	out := l.String()
	for _, want := range []string{"mediator observes |R1| = 3", "client applies hybrid-decryption ×6"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Observe(PartyMediator, "x", int64(j))
				l.UsePrimitive(PartyClient, "op", 1)
			}
		}(i)
	}
	wg.Wait()
	if c := l.PrimitiveCount(PartyClient, "op"); c != 800 {
		t.Errorf("concurrent count = %d, want 800", c)
	}
}

func TestPartySourceNaming(t *testing.T) {
	if PartySource("S1") != "source:S1" {
		t.Errorf("PartySource = %q", PartySource("S1"))
	}
}
