package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	rel "github.com/secmediation/secmediation/internal/relation"
)

// randRelation builds a small random relation R(id INT, v TEXT).
func randRelation(rng *rand.Rand, name string, rows, domain int) *rel.Relation {
	s := rel.MustSchema(name,
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "v", Kind: rel.KindString})
	r := rel.New(s)
	for i := 0; i < rows; i++ {
		r.MustAppend(rel.Tuple{
			rel.Int(int64(rng.Intn(domain))),
			rel.String_(string(rune('a' + rng.Intn(4)))),
		})
	}
	return r
}

// Law: selection on a left-side predicate commutes with the join —
// σ_p(A ⋈ B) = σ_p(A) ⋈ B. This is the algebraic identity behind the DAS
// selection-pushdown extension.
func TestLawSelectionPushdown(t *testing.T) {
	f := func(seed int64, boundRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRelation(rng, "A", 1+rng.Intn(20), 8)
		b := randRelation(rng, "B", 1+rng.Intn(20), 8)
		bound := int64(boundRaw % 8)
		pred := Compare{Op: OpLe, Left: ColumnRef{"A.id"}, Right: Literal{rel.Int(bound)}}
		predLocal := Compare{Op: OpLe, Left: ColumnRef{"id"}, Right: Literal{rel.Int(bound)}}

		joined, err := EquiJoin(a, b, []string{"id"}, []string{"id"})
		if err != nil {
			return false
		}
		lhs, err := Select(joined, pred)
		if err != nil {
			return false
		}
		aFiltered, err := Select(a, predLocal)
		if err != nil {
			return false
		}
		rhs, err := EquiJoin(aFiltered, b, []string{"id"}, []string{"id"})
		if err != nil {
			return false
		}
		return lhs.EqualMultiset(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Law: |A ⋈ B| equals the sum over shared keys of |Tup_A(a)|·|Tup_B(a)| —
// the cardinality identity the protocols' result assembly relies on.
func TestLawJoinCardinality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRelation(rng, "A", 1+rng.Intn(25), 6)
		b := randRelation(rng, "B", 1+rng.Intn(25), 6)
		joined, err := EquiJoin(a, b, []string{"id"}, []string{"id"})
		if err != nil {
			return false
		}
		ga, err := a.GroupByColumns([]string{"id"})
		if err != nil {
			return false
		}
		counts := map[int64]int{}
		for _, g := range ga {
			counts[g.Key[0].AsInt()] = len(g.Tuples)
		}
		gb, err := b.GroupByColumns([]string{"id"})
		if err != nil {
			return false
		}
		want := 0
		for _, g := range gb {
			want += counts[g.Key[0].AsInt()] * len(g.Tuples)
		}
		return joined.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Law: join is commutative up to column order — |A ⋈ B| = |B ⋈ A| and the
// projections onto either side's columns agree as multisets.
func TestLawJoinCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRelation(rng, "A", 1+rng.Intn(20), 5)
		b := randRelation(rng, "B", 1+rng.Intn(20), 5)
		ab, err := EquiJoin(a, b, []string{"id"}, []string{"id"})
		if err != nil {
			return false
		}
		ba, err := EquiJoin(b, a, []string{"id"}, []string{"id"})
		if err != nil {
			return false
		}
		if ab.Len() != ba.Len() {
			return false
		}
		pab, err := Project(ab, "A.id", "A.v")
		if err != nil {
			return false
		}
		pba, err := Project(ba, "A.id", "A.v")
		if err != nil {
			return false
		}
		return pab.EqualMultiset(pba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Law: Distinct is idempotent, and Intersect(A, A) = Distinct(A).
func TestLawDistinctIntersect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randRelation(rng, "A", 1+rng.Intn(30), 4)
		d := Distinct(a)
		if !Distinct(d).EqualMultiset(d) {
			return false
		}
		self, err := Intersect(a, a)
		if err != nil {
			return false
		}
		return self.EqualMultiset(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnqualifyUnique(t *testing.T) {
	s := rel.MustSchema("J",
		rel.Column{Name: "A.id", Kind: rel.KindInt},
		rel.Column{Name: "B.id", Kind: rel.KindInt},
		rel.Column{Name: "A.name", Kind: rel.KindString})
	r := rel.MustFromTuples(s, rel.Tuple{rel.Int(1), rel.Int(1), rel.String_("x")})
	out, err := UnqualifyUnique(r)
	if err != nil {
		t.Fatal(err)
	}
	// "id" is ambiguous → keeps qualification; "name" is unique → drops it.
	if out.Schema().IndexOf("A.id") < 0 || out.Schema().IndexOf("B.id") < 0 {
		t.Errorf("ambiguous columns were unqualified: %v", out.Schema())
	}
	if i := out.Schema().IndexOf("name"); i < 0 {
		t.Errorf("unique column not unqualified: %v", out.Schema())
	}
}
