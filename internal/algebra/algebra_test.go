package algebra

import (
	"strings"
	"testing"
	"testing/quick"

	rel "github.com/secmediation/secmediation/internal/relation"
)

func sampleR(t testing.TB) *rel.Relation {
	t.Helper()
	s := rel.MustSchema("R",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "name", Kind: rel.KindString},
	)
	return rel.MustFromTuples(s,
		rel.Tuple{rel.Int(1), rel.String_("a")},
		rel.Tuple{rel.Int(2), rel.String_("b")},
		rel.Tuple{rel.Int(3), rel.String_("c")},
		rel.Tuple{rel.Int(3), rel.String_("c2")},
	)
}

func sampleS(t testing.TB) *rel.Relation {
	t.Helper()
	s := rel.MustSchema("S",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "city", Kind: rel.KindString},
	)
	return rel.MustFromTuples(s,
		rel.Tuple{rel.Int(2), rel.String_("berlin")},
		rel.Tuple{rel.Int(3), rel.String_("dortmund")},
		rel.Tuple{rel.Int(4), rel.String_("essen")},
	)
}

func TestSelect(t *testing.T) {
	r := sampleR(t)
	out, err := Select(r, Compare{Op: OpGe, Left: ColumnRef{"id"}, Right: Literal{rel.Int(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("select returned %d tuples, want 3", out.Len())
	}
	// Type errors must be caught before evaluation.
	if _, err := Select(r, Compare{Op: OpEq, Left: ColumnRef{"id"}, Right: Literal{rel.String_("x")}}); err == nil {
		t.Error("kind-mismatched predicate accepted")
	}
	if _, err := Select(r, ColumnRef{"id"}); err == nil {
		t.Error("non-boolean predicate accepted")
	}
	if _, err := Select(r, Compare{Op: OpEq, Left: ColumnRef{"nope"}, Right: Literal{rel.Int(1)}}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestProject(t *testing.T) {
	r := sampleR(t)
	out, err := Project(r, "name")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 || out.Schema().Arity() != 1 {
		t.Errorf("project: len=%d arity=%d", out.Len(), out.Schema().Arity())
	}
	if _, err := Project(r, "ghost"); err == nil {
		t.Error("project on missing column accepted")
	}
}

func TestCrossProduct(t *testing.T) {
	out, err := CrossProduct(sampleR(t), sampleS(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 12 {
		t.Errorf("cross product size = %d, want 12", out.Len())
	}
	if out.Schema().IndexOf("R.id") < 0 || out.Schema().IndexOf("S.id") < 0 {
		t.Errorf("cross product schema lacks qualified ids: %v", out.Schema())
	}
}

func TestEquiJoin(t *testing.T) {
	out, err := EquiJoin(sampleR(t), sampleS(t), []string{"id"}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	// ids 2 (1×1) and 3 (2×1) match → 3 result tuples.
	if out.Len() != 3 {
		t.Errorf("equijoin size = %d, want 3", out.Len())
	}
	for _, tup := range out.Tuples() {
		li := out.Schema().IndexOf("R.id")
		ri := out.Schema().IndexOf("S.id")
		if !tup[li].Equal(tup[ri]) {
			t.Errorf("join produced non-matching tuple %v", tup)
		}
	}
	if _, err := EquiJoin(sampleR(t), sampleS(t), []string{"id"}, []string{}); err == nil {
		t.Error("mismatched column lists accepted")
	}
	if _, err := EquiJoin(sampleR(t), sampleS(t), []string{"name"}, []string{"id"}); err == nil {
		t.Error("kind-mismatched join columns accepted")
	}
	if _, err := EquiJoin(sampleR(t), sampleS(t), []string{"zz"}, []string{"id"}); err == nil {
		t.Error("unknown join column accepted")
	}
}

// Property: equi-join equals cross product followed by selection on key
// equality (the textbook identity the DAS server/client query split relies
// on).
func TestEquiJoinMatchesCrossSelect(t *testing.T) {
	r, s := sampleR(t), sampleS(t)
	join, err := EquiJoin(r, s, []string{"id"}, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	cross, err := CrossProduct(r, s)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(cross, Compare{Op: OpEq, Left: ColumnRef{"R.id"}, Right: ColumnRef{"S.id"}})
	if err != nil {
		t.Fatal(err)
	}
	if !join.EqualMultiset(sel) {
		t.Errorf("join != σ(cross):\n%v\nvs\n%v", join, sel)
	}
}

func TestNaturalJoin(t *testing.T) {
	out, err := NaturalJoin(sampleR(t), sampleS(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("natural join size = %d, want 3", out.Len())
	}
	// The shared id column must appear exactly once.
	ids := 0
	for _, c := range out.Schema().Columns {
		if strings.HasSuffix(c.Name, "id") {
			ids++
		}
	}
	if ids != 1 {
		t.Errorf("natural join kept %d id columns, want 1: %v", ids, out.Schema())
	}
	// Disjoint schemas degrade to a cross product.
	disjoint := rel.MustFromTuples(rel.MustSchema("T", rel.Column{Name: "x", Kind: rel.KindBool}),
		rel.Tuple{rel.Bool(true)})
	cp, err := NaturalJoin(sampleR(t), disjoint)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Len() != sampleR(t).Len() {
		t.Errorf("disjoint natural join size = %d, want %d", cp.Len(), sampleR(t).Len())
	}
}

func TestUnionIntersectDistinct(t *testing.T) {
	s := rel.MustSchema("R", rel.Column{Name: "k", Kind: rel.KindInt})
	a := rel.MustFromTuples(s, rel.Tuple{rel.Int(1)}, rel.Tuple{rel.Int(2)}, rel.Tuple{rel.Int(2)})
	b := rel.MustFromTuples(s, rel.Tuple{rel.Int(2)}, rel.Tuple{rel.Int(3)})
	u, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 5 {
		t.Errorf("union all size = %d, want 5", u.Len())
	}
	d := Distinct(u)
	if d.Len() != 3 {
		t.Errorf("distinct size = %d, want 3", d.Len())
	}
	i, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if i.Len() != 1 || i.Tuple(0)[0].AsInt() != 2 {
		t.Errorf("intersect = %v, want {2}", i)
	}
	other := rel.MustFromTuples(rel.MustSchema("X", rel.Column{Name: "k", Kind: rel.KindString}))
	if _, err := Union(a, other); err == nil {
		t.Error("union of incompatible schemas accepted")
	}
	if _, err := Intersect(a, other); err == nil {
		t.Error("intersect of incompatible schemas accepted")
	}
}

func TestExprStrings(t *testing.T) {
	e := And{
		Left:  Compare{Op: OpEq, Left: ColumnRef{"a"}, Right: Literal{rel.String_("it's")}},
		Right: Not{Inner: Or{Left: TrueExpr, Right: FalseExpr}},
	}
	got := e.String()
	for _, want := range []string{"a = 'it''s'", "NOT", "OR", "AND"} {
		if !strings.Contains(got, want) {
			t.Errorf("expr string %q missing %q", got, want)
		}
	}
	for op, want := range map[CompareOp]string{OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="} {
		if op.String() != want {
			t.Errorf("op %d string = %q, want %q", op, op.String(), want)
		}
	}
}

func TestCompareOpsEval(t *testing.T) {
	s := rel.MustSchema("R", rel.Column{Name: "x", Kind: rel.KindInt})
	tup := rel.Tuple{rel.Int(5)}
	for _, tc := range []struct {
		op   CompareOp
		rhs  int64
		want bool
	}{
		{OpEq, 5, true}, {OpEq, 4, false},
		{OpNe, 4, true}, {OpNe, 5, false},
		{OpLt, 6, true}, {OpLt, 5, false},
		{OpLe, 5, true}, {OpLe, 4, false},
		{OpGt, 4, true}, {OpGt, 5, false},
		{OpGe, 5, true}, {OpGe, 6, false},
	} {
		e := Compare{Op: tc.op, Left: ColumnRef{"x"}, Right: Literal{rel.Int(tc.rhs)}}
		v, err := e.Eval(s, tup)
		if err != nil {
			t.Fatal(err)
		}
		if v.AsBool() != tc.want {
			t.Errorf("5 %s %d = %v, want %v", tc.op, tc.rhs, v.AsBool(), tc.want)
		}
	}
}

// Property: Disjunction/Conjunction folds agree with direct evaluation.
func TestFolds(t *testing.T) {
	s := rel.MustSchema("R", rel.Column{Name: "x", Kind: rel.KindInt})
	f := func(x int64, bounds []int64) bool {
		tup := rel.Tuple{rel.Int(x)}
		var exprs []Expr
		wantAny, wantAll := false, true
		for _, b := range bounds {
			exprs = append(exprs, Compare{Op: OpEq, Left: ColumnRef{"x"}, Right: Literal{rel.Int(b)}})
			wantAny = wantAny || x == b
			wantAll = wantAll && x == b
		}
		if len(bounds) == 0 {
			wantAny, wantAll = false, true
		}
		anyV, err := Disjunction(exprs).Eval(s, tup)
		if err != nil {
			return false
		}
		allV, err := Conjunction(exprs).Eval(s, tup)
		if err != nil {
			return false
		}
		return anyV.AsBool() == wantAny && allV.AsBool() == wantAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTreeEvalAndHelpers(t *testing.T) {
	cat := MapCatalog{"R": sampleR(t), "S": sampleS(t)}
	tree := ProjectNode{
		Cols: []string{"name", "city"},
		Child: SelectNode{
			Pred: Compare{Op: OpNe, Left: ColumnRef{"city"}, Right: Literal{rel.String_("essen")}},
			Child: JoinNode{
				Left: Scan{"R"}, Right: Scan{"S"},
				LeftCols: []string{"id"}, RightCols: []string{"id"},
			},
		},
	}
	out, err := tree.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 || out.Schema().Arity() != 2 {
		t.Errorf("tree eval: len=%d arity=%d, want 3/2", out.Len(), out.Schema().Arity())
	}
	leaves := Leaves(tree)
	if len(leaves) != 2 || leaves[0].Relation != "R" || leaves[1].Relation != "S" {
		t.Errorf("Leaves = %v", leaves)
	}
	join, unary, ok := FindJoin(tree)
	if !ok || len(unary) != 2 || join.LeftCols[0] != "id" {
		t.Errorf("FindJoin: ok=%v unary=%d join=%v", ok, len(unary), join)
	}
	if _, _, ok := FindJoin(Scan{"R"}); ok {
		t.Error("FindJoin on scan-only tree reported a join")
	}
	if _, err := (Scan{"missing"}).Eval(cat); err == nil {
		t.Error("scan of unknown relation succeeded")
	}
	if !strings.Contains(tree.String(), "⋈") {
		t.Errorf("tree string lacks join symbol: %s", tree.String())
	}
}

func TestNaturalJoinNodeEval(t *testing.T) {
	cat := MapCatalog{"R": sampleR(t), "S": sampleS(t)}
	n := JoinNode{Left: Scan{"R"}, Right: Scan{"S"}, Natural: true}
	out, err := n.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("natural join node size = %d, want 3", out.Len())
	}
	if !strings.Contains(n.String(), "⋈") {
		t.Error("natural join node string")
	}
}
