package algebra

import (
	"fmt"
	"strings"

	"github.com/secmediation/secmediation/internal/relation"
)

// Select returns σ_pred(r): the tuples of r satisfying pred. The predicate
// is type-checked against r's schema before evaluation.
func Select(r *relation.Relation, pred Expr) (*relation.Relation, error) {
	k, err := pred.Check(r.Schema())
	if err != nil {
		return nil, err
	}
	if k != relation.KindBool {
		return nil, fmt.Errorf("algebra: select predicate has kind %v, want BOOL", k)
	}
	out := relation.New(r.Schema())
	for _, t := range r.Tuples() {
		v, err := pred.Eval(r.Schema(), t)
		if err != nil {
			return nil, err
		}
		if v.AsBool() {
			if err := out.Append(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Project returns π_cols(r) with bag semantics (duplicates preserved, as in
// SQL's SELECT without DISTINCT).
func Project(r *relation.Relation, cols ...string) (*relation.Relation, error) {
	schema, err := r.Schema().Project(cols...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.Schema().IndexOf(c)
	}
	out := relation.New(schema)
	for _, t := range r.Tuples() {
		nt := make(relation.Tuple, len(idx))
		for i, j := range idx {
			nt[i] = t[j]
		}
		if err := out.Append(nt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CrossProduct returns r × s with colliding column names qualified by
// relation name.
func CrossProduct(r, s *relation.Relation) (*relation.Relation, error) {
	schema, err := r.Schema().Concat(s.Schema())
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	for _, a := range r.Tuples() {
		for _, b := range s.Tuples() {
			t := make(relation.Tuple, 0, len(a)+len(b))
			t = append(t, a...)
			t = append(t, b...)
			if err := out.Append(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// EquiJoin returns r ⋈ s on the given column pairs (leftCols[i] =
// rightCols[i]); both value columns are kept (qualified), matching the
// paper's treatment where R1.Ajoin and R2.Ajoin both appear and the client
// may post-filter on their equality. A hash join is used: the smaller
// relation is built into a hash table on the encoded join key.
// seclint:source plaintext equi-join over tuple values
func EquiJoin(r, s *relation.Relation, leftCols, rightCols []string) (*relation.Relation, error) {
	if len(leftCols) != len(rightCols) || len(leftCols) == 0 {
		return nil, fmt.Errorf("algebra: equijoin needs equal non-empty column lists, got %d/%d", len(leftCols), len(rightCols))
	}
	li := make([]int, len(leftCols))
	ri := make([]int, len(rightCols))
	for i := range leftCols {
		li[i] = r.Schema().IndexOf(leftCols[i])
		if li[i] < 0 {
			return nil, fmt.Errorf("algebra: equijoin: %s has no column %q", r.Schema().Relation, leftCols[i])
		}
		ri[i] = s.Schema().IndexOf(rightCols[i])
		if ri[i] < 0 {
			return nil, fmt.Errorf("algebra: equijoin: %s has no column %q", s.Schema().Relation, rightCols[i])
		}
		lk := r.Schema().Columns[li[i]].Kind
		rk := s.Schema().Columns[ri[i]].Kind
		if lk != rk {
			return nil, fmt.Errorf("algebra: equijoin: column kinds differ (%v vs %v) for %s/%s", lk, rk, leftCols[i], rightCols[i])
		}
	}
	schema, err := r.Schema().Concat(s.Schema())
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)

	key := func(t relation.Tuple, idx []int) string {
		var b []byte
		for _, i := range idx {
			b = t[i].Encode(b)
		}
		return string(b)
	}
	// Build on the smaller side.
	build, probe := s, r
	buildIdx, probeIdx := ri, li
	swapped := false
	if r.Len() < s.Len() {
		build, probe = r, s
		buildIdx, probeIdx = li, ri
		swapped = true
	}
	table := make(map[string][]relation.Tuple, build.Len())
	for _, t := range build.Tuples() {
		k := key(t, buildIdx)
		table[k] = append(table[k], t)
	}
	for _, pt := range probe.Tuples() {
		for _, bt := range table[key(pt, probeIdx)] {
			var a, b relation.Tuple
			if swapped {
				a, b = bt, pt
			} else {
				a, b = pt, bt
			}
			t := make(relation.Tuple, 0, len(a)+len(b))
			t = append(t, a...)
			t = append(t, b...)
			if err := out.Append(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// NaturalJoin joins r and s on all columns that share an unqualified name,
// projecting the shared columns once (classic natural join semantics).
// seclint:source plaintext natural join over tuple values
func NaturalJoin(r, s *relation.Relation) (*relation.Relation, error) {
	var shared []string
	for _, c := range r.Schema().Columns {
		if s.Schema().IndexOf(c.Name) >= 0 {
			shared = append(shared, c.Name)
		}
	}
	if len(shared) == 0 {
		return CrossProduct(r, s)
	}
	joined, err := EquiJoin(r, s, shared, shared)
	if err != nil {
		return nil, err
	}
	// Project away the duplicated right-side join columns.
	var keep []string
	for _, c := range joined.Schema().Columns {
		drop := false
		for _, sc := range shared {
			if c.Name == s.Schema().Relation+"."+sc {
				drop = true
				break
			}
		}
		if !drop {
			keep = append(keep, c.Name)
		}
	}
	projected, err := Project(joined, keep...)
	if err != nil {
		return nil, err
	}
	return UnqualifyUnique(projected)
}

// UnqualifyUnique renames qualified columns ("R.a") back to their base
// names wherever that introduces no ambiguity. Natural joins and the
// mediation client use it so join results compose cleanly into successive
// queries (the mediator-hierarchy scenario).
func UnqualifyUnique(r *relation.Relation) (*relation.Relation, error) {
	cols := append([]relation.Column(nil), r.Schema().Columns...)
	base := func(name string) string {
		if i := strings.IndexByte(name, '.'); i > 0 && i < len(name)-1 {
			return name[i+1:]
		}
		return name
	}
	counts := map[string]int{}
	for _, c := range cols {
		counts[base(c.Name)]++
	}
	for i, c := range cols {
		b := base(c.Name)
		if b != c.Name && counts[b] == 1 {
			cols[i].Name = b
		}
	}
	schema, err := relation.NewSchema(r.Schema().Relation, cols...)
	if err != nil {
		return nil, err
	}
	return relation.FromTuples(schema, r.Tuples()...)
}

// Union returns r ∪ s with bag semantics (UNION ALL); schemas must be
// compatible.
func Union(r, s *relation.Relation) (*relation.Relation, error) {
	if !r.Schema().Equal(s.Schema()) {
		return nil, fmt.Errorf("algebra: union: incompatible schemas %s and %s", r.Schema(), s.Schema())
	}
	out := relation.New(r.Schema())
	for _, t := range r.Tuples() {
		if err := out.Append(t); err != nil {
			return nil, err
		}
	}
	for _, t := range s.Tuples() {
		if err := out.Append(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Distinct removes duplicate tuples (set semantics).
func Distinct(r *relation.Relation) *relation.Relation {
	out := relation.New(r.Schema())
	seen := make(map[string]bool, r.Len())
	for _, t := range r.Tuples() {
		k := string(t.Encode(nil))
		if !seen[k] {
			seen[k] = true
			out.MustAppend(t)
		}
	}
	return out
}

// Intersect returns the set intersection of r and s (distinct tuples that
// appear in both); schemas must be compatible. The commutative protocol's
// intersection operation reduces to this on plaintexts.
func Intersect(r, s *relation.Relation) (*relation.Relation, error) {
	if !r.Schema().Equal(s.Schema()) {
		return nil, fmt.Errorf("algebra: intersect: incompatible schemas %s and %s", r.Schema(), s.Schema())
	}
	in := make(map[string]bool, s.Len())
	for _, t := range s.Tuples() {
		in[string(t.Encode(nil))] = true
	}
	out := relation.New(r.Schema())
	emitted := make(map[string]bool, r.Len())
	for _, t := range r.Tuples() {
		k := string(t.Encode(nil))
		if in[k] && !emitted[k] {
			emitted[k] = true
			out.MustAppend(t)
		}
	}
	return out, nil
}
