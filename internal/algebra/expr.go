// Package algebra implements a small relational algebra engine: predicate
// expressions and operator trees (select, project, join, cross product,
// union, rename) over the relation substrate.
//
// The mediator of the MMM system transforms SQL queries into such "algebra
// trees" (relational operators at inner nodes, partial queries at the
// leaves) via the SQL2Algebra component; see internal/sqlparse for the
// front end and internal/mediation for query decomposition.
package algebra

import (
	"fmt"
	"strings"

	"github.com/secmediation/secmediation/internal/relation"
)

// Expr is a boolean or scalar expression evaluated against one tuple.
type Expr interface {
	// Eval evaluates the expression against t under schema s.
	Eval(s relation.Schema, t relation.Tuple) (relation.Value, error)
	// Check verifies the expression is well-typed under s and returns the
	// result kind.
	Check(s relation.Schema) (relation.Kind, error)
	// String renders the expression in SQL-like syntax.
	String() string
}

// ColumnRef references a column by (possibly qualified) name.
type ColumnRef struct{ Name string }

// Eval implements Expr.
func (c ColumnRef) Eval(s relation.Schema, t relation.Tuple) (relation.Value, error) {
	i := s.IndexOf(c.Name)
	if i < 0 {
		return relation.Value{}, fmt.Errorf("algebra: unknown or ambiguous column %q in %s", c.Name, s)
	}
	return t[i], nil
}

// Check implements Expr.
func (c ColumnRef) Check(s relation.Schema) (relation.Kind, error) {
	return s.KindOf(c.Name)
}

func (c ColumnRef) String() string { return c.Name }

// Literal is a constant value.
type Literal struct{ Value relation.Value }

// Eval implements Expr.
func (l Literal) Eval(relation.Schema, relation.Tuple) (relation.Value, error) {
	return l.Value, nil
}

// Check implements Expr.
func (l Literal) Check(relation.Schema) (relation.Kind, error) {
	if !l.Value.Valid() {
		return relation.KindInvalid, fmt.Errorf("algebra: invalid literal")
	}
	return l.Value.Kind(), nil
}

func (l Literal) String() string {
	if l.Value.Kind() == relation.KindString {
		return "'" + strings.ReplaceAll(l.Value.AsString(), "'", "''") + "'"
	}
	return l.Value.String()
}

// CompareOp enumerates comparison operators.
type CompareOp uint8

// Comparison operators in SQL syntax order.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Compare applies a comparison operator to two sub-expressions of the same
// kind, yielding a boolean.
type Compare struct {
	Op          CompareOp
	Left, Right Expr
}

// Check implements Expr.
func (c Compare) Check(s relation.Schema) (relation.Kind, error) {
	lk, err := c.Left.Check(s)
	if err != nil {
		return relation.KindInvalid, err
	}
	rk, err := c.Right.Check(s)
	if err != nil {
		return relation.KindInvalid, err
	}
	if lk != rk {
		return relation.KindInvalid, fmt.Errorf("algebra: comparing %v with %v in %s", lk, rk, c)
	}
	return relation.KindBool, nil
}

// Eval implements Expr.
func (c Compare) Eval(s relation.Schema, t relation.Tuple) (relation.Value, error) {
	l, err := c.Left.Eval(s, t)
	if err != nil {
		return relation.Value{}, err
	}
	r, err := c.Right.Eval(s, t)
	if err != nil {
		return relation.Value{}, err
	}
	if l.Kind() != r.Kind() {
		return relation.Value{}, fmt.Errorf("algebra: comparing %v with %v", l.Kind(), r.Kind())
	}
	cmp := l.Compare(r)
	var out bool
	switch c.Op {
	case OpEq:
		out = cmp == 0
	case OpNe:
		out = cmp != 0
	case OpLt:
		out = cmp < 0
	case OpLe:
		out = cmp <= 0
	case OpGt:
		out = cmp > 0
	case OpGe:
		out = cmp >= 0
	default:
		return relation.Value{}, fmt.Errorf("algebra: unknown comparison op %d", c.Op)
	}
	return relation.Bool(out), nil
}

func (c Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// And is boolean conjunction.
type And struct{ Left, Right Expr }

// Check implements Expr.
func (a And) Check(s relation.Schema) (relation.Kind, error) {
	return checkBoolPair(s, a.Left, a.Right, "AND")
}

// Eval implements Expr.
func (a And) Eval(s relation.Schema, t relation.Tuple) (relation.Value, error) {
	l, err := evalBool(a.Left, s, t)
	if err != nil {
		return relation.Value{}, err
	}
	if !l {
		return relation.Bool(false), nil
	}
	r, err := evalBool(a.Right, s, t)
	if err != nil {
		return relation.Value{}, err
	}
	return relation.Bool(r), nil
}

func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.Left, a.Right) }

// Or is boolean disjunction.
type Or struct{ Left, Right Expr }

// Check implements Expr.
func (o Or) Check(s relation.Schema) (relation.Kind, error) {
	return checkBoolPair(s, o.Left, o.Right, "OR")
}

// Eval implements Expr.
func (o Or) Eval(s relation.Schema, t relation.Tuple) (relation.Value, error) {
	l, err := evalBool(o.Left, s, t)
	if err != nil {
		return relation.Value{}, err
	}
	if l {
		return relation.Bool(true), nil
	}
	r, err := evalBool(o.Right, s, t)
	if err != nil {
		return relation.Value{}, err
	}
	return relation.Bool(r), nil
}

func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.Left, o.Right) }

// Not is boolean negation.
type Not struct{ Inner Expr }

// Check implements Expr.
func (n Not) Check(s relation.Schema) (relation.Kind, error) {
	k, err := n.Inner.Check(s)
	if err != nil {
		return relation.KindInvalid, err
	}
	if k != relation.KindBool {
		return relation.KindInvalid, fmt.Errorf("algebra: NOT over %v", k)
	}
	return relation.KindBool, nil
}

// Eval implements Expr.
func (n Not) Eval(s relation.Schema, t relation.Tuple) (relation.Value, error) {
	v, err := evalBool(n.Inner, s, t)
	if err != nil {
		return relation.Value{}, err
	}
	return relation.Bool(!v), nil
}

func (n Not) String() string { return fmt.Sprintf("(NOT %s)", n.Inner) }

// TrueExpr is the always-true predicate (useful as a neutral element when
// assembling disjunctions such as the DAS server condition CondS).
var TrueExpr Expr = Literal{Value: relation.Bool(true)}

// FalseExpr is the always-false predicate.
var FalseExpr Expr = Literal{Value: relation.Bool(false)}

// Disjunction folds a list of predicates with OR. An empty list yields
// FalseExpr, matching the empty disjunction.
func Disjunction(exprs []Expr) Expr {
	if len(exprs) == 0 {
		return FalseExpr
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = Or{Left: out, Right: e}
	}
	return out
}

// Conjunction folds a list of predicates with AND. An empty list yields
// TrueExpr, matching the empty conjunction.
func Conjunction(exprs []Expr) Expr {
	if len(exprs) == 0 {
		return TrueExpr
	}
	out := exprs[0]
	for _, e := range exprs[1:] {
		out = And{Left: out, Right: e}
	}
	return out
}

func checkBoolPair(s relation.Schema, l, r Expr, op string) (relation.Kind, error) {
	lk, err := l.Check(s)
	if err != nil {
		return relation.KindInvalid, err
	}
	rk, err := r.Check(s)
	if err != nil {
		return relation.KindInvalid, err
	}
	if lk != relation.KindBool || rk != relation.KindBool {
		return relation.KindInvalid, fmt.Errorf("algebra: %s over %v and %v", op, lk, rk)
	}
	return relation.KindBool, nil
}

func evalBool(e Expr, s relation.Schema, t relation.Tuple) (bool, error) {
	v, err := e.Eval(s, t)
	if err != nil {
		return false, err
	}
	if v.Kind() != relation.KindBool {
		return false, fmt.Errorf("algebra: predicate evaluated to %v, want BOOL", v.Kind())
	}
	return v.AsBool(), nil
}
