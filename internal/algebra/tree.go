package algebra

import (
	"fmt"
	"strings"

	"github.com/secmediation/secmediation/internal/relation"
)

// Catalog resolves base relation names to relations; the mediator and each
// datasource implement it over their own stores.
type Catalog interface {
	// Lookup returns the named base relation.
	Lookup(name string) (*relation.Relation, error)
}

// MapCatalog is a Catalog backed by a map; the common in-memory case.
type MapCatalog map[string]*relation.Relation

// Lookup implements Catalog.
func (m MapCatalog) Lookup(name string) (*relation.Relation, error) {
	r, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("algebra: unknown relation %q", name)
	}
	return r, nil
}

// Node is a relational algebra tree node. The SQL2Algebra front end
// (internal/sqlparse) produces these; the mediator walks them to decompose
// global queries into partial queries (see internal/mediation).
type Node interface {
	// Eval evaluates the subtree against base relations from the catalog.
	Eval(cat Catalog) (*relation.Relation, error)
	// String renders the subtree in a compact algebra notation.
	String() string
}

// Scan is a leaf: a base relation reference. In the mediated setting scans
// become the partial queries "select * from R" shipped to datasources.
type Scan struct{ Relation string }

// Eval implements Node.
func (s Scan) Eval(cat Catalog) (*relation.Relation, error) { return cat.Lookup(s.Relation) }

func (s Scan) String() string { return s.Relation }

// SelectNode is σ_pred(child).
type SelectNode struct {
	Pred  Expr
	Child Node
}

// Eval implements Node.
func (n SelectNode) Eval(cat Catalog) (*relation.Relation, error) {
	r, err := n.Child.Eval(cat)
	if err != nil {
		return nil, err
	}
	return Select(r, n.Pred)
}

func (n SelectNode) String() string { return fmt.Sprintf("σ[%s](%s)", n.Pred, n.Child) }

// ProjectNode is π_cols(child).
type ProjectNode struct {
	Cols  []string
	Child Node
}

// Eval implements Node.
func (n ProjectNode) Eval(cat Catalog) (*relation.Relation, error) {
	r, err := n.Child.Eval(cat)
	if err != nil {
		return nil, err
	}
	return Project(r, n.Cols...)
}

func (n ProjectNode) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(n.Cols, ","), n.Child)
}

// JoinNode is an equi-join (or natural join) of two subtrees. LeftCols and
// RightCols are the join attribute lists; when Natural is set they are
// derived from shared column names at evaluation time and the duplicate
// columns are projected away.
type JoinNode struct {
	Left, Right         Node
	LeftCols, RightCols []string
	Natural             bool
}

// Eval implements Node.
func (n JoinNode) Eval(cat Catalog) (*relation.Relation, error) {
	l, err := n.Left.Eval(cat)
	if err != nil {
		return nil, err
	}
	r, err := n.Right.Eval(cat)
	if err != nil {
		return nil, err
	}
	if n.Natural {
		return NaturalJoin(l, r)
	}
	return EquiJoin(l, r, n.LeftCols, n.RightCols)
}

func (n JoinNode) String() string {
	if n.Natural {
		return fmt.Sprintf("(%s ⋈ %s)", n.Left, n.Right)
	}
	conds := make([]string, len(n.LeftCols))
	for i := range n.LeftCols {
		conds[i] = n.LeftCols[i] + "=" + n.RightCols[i]
	}
	return fmt.Sprintf("(%s ⋈[%s] %s)", n.Left, strings.Join(conds, ","), n.Right)
}

// Leaves returns the Scan leaves of the tree in left-to-right order; the
// mediator uses them to localize datasources (Listing 1, step 2).
func Leaves(n Node) []Scan {
	switch t := n.(type) {
	case Scan:
		return []Scan{t}
	case SelectNode:
		return Leaves(t.Child)
	case ProjectNode:
		return Leaves(t.Child)
	case JoinNode:
		return append(Leaves(t.Left), Leaves(t.Right)...)
	default:
		return nil
	}
}

// FindJoin returns the topmost JoinNode of the tree, if any, together with
// the stack of unary operators above it (outermost first). The mediation
// protocols require exactly one join with scans beneath it; the unary
// operators are re-applied by the client after decryption.
func FindJoin(n Node) (JoinNode, []Node, bool) {
	var unary []Node
	for {
		switch t := n.(type) {
		case JoinNode:
			return t, unary, true
		case SelectNode:
			unary = append(unary, t)
			n = t.Child
		case ProjectNode:
			unary = append(unary, t)
			n = t.Child
		default:
			return JoinNode{}, nil, false
		}
	}
}
