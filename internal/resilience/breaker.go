package resilience

import (
	"fmt"
	"sync"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
)

// State is a circuit breaker's position.
type State int

const (
	// StateClosed passes traffic and tracks outcomes.
	StateClosed State = iota
	// StateOpen fast-fails everything until the open timeout elapses.
	StateOpen
	// StateHalfOpen admits a bounded probe budget; one success
	// re-closes, one failure re-opens.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker (and every Breaker of a BreakerSet).
// The zero value is usable: 20-outcome window, 50% trip rate with at
// least 5 samples, 5s open timeout, 1 half-open probe.
type BreakerConfig struct {
	// Window is the sliding outcome window length. Default 20.
	Window int
	// FailureRate in (0,1]: the window failure fraction that trips the
	// breaker open. Default 0.5.
	FailureRate float64
	// MinSamples is the minimum outcomes in the window before the rate
	// can trip — a single failed first dial must not open the circuit.
	// Default 5.
	MinSamples int
	// OpenTimeout is how long an open breaker fast-fails before
	// admitting a half-open probe. Default 5s.
	OpenTimeout time.Duration
	// ProbeBudget bounds concurrent half-open probes. Default 1.
	ProbeBudget int
	// Now is the clock; nil selects time.Now. Tests pin it.
	Now func() time.Time
	// Telemetry optionally records breaker activity: the
	// breaker_state{peer} gauge (0 closed / 1 open / 2 half-open) and
	// the breaker_opened / breaker_fastfails / breaker_probes
	// counters. Nil records nothing.
	Telemetry *telemetry.Registry
	// OnTransition, when set, observes every state change. Called
	// without the breaker lock held.
	OnTransition func(peer string, from, to State)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 5 * time.Second
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is one peer's circuit breaker. Callers bracket each guarded
// operation with Allow (may refuse with ErrCircuitOpen) and Record
// (feeds the outcome back). All methods are safe for concurrent use.
type Breaker struct {
	cfg  BreakerConfig
	peer string

	mu       sync.Mutex
	state    State
	window   []bool // outcome ring, true = failure
	head     int    // next write position
	count    int    // filled entries
	fails    int    // failures among filled entries
	openedAt time.Time
	probes   int // in-flight half-open probes
}

// NewBreaker builds a breaker for one peer.
func NewBreaker(peer string, cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, peer: peer, window: make([]bool, cfg.Window)}
}

// State returns the breaker's current position. The open → half-open
// advance happens on Allow, not here: an untouched open breaker stays
// open until something asks to pass.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow asks whether a guarded operation may proceed. Closed: yes.
// Open: a typed ErrCircuitOpen fast-fail, until OpenTimeout has elapsed
// — then the breaker goes half-open and this call is the first probe.
// Half-open: yes while probes remain in the budget, fast-fail beyond.
// Every successful Allow must be paired with one Record.
func (b *Breaker) Allow() error {
	// Read the (injectable) clock before taking the lock: cfg.Now is a
	// func value, and holding b.mu across it would put an arbitrary
	// callback inside the critical section.
	now := b.cfg.Now()
	b.mu.Lock()
	var transition func()
	defer func() {
		b.mu.Unlock()
		if transition != nil {
			transition()
		}
	}()
	switch b.state {
	case StateClosed:
		return nil
	case StateOpen:
		if now.Sub(b.openedAt) < b.cfg.OpenTimeout {
			b.countLocked("breaker_fastfails")
			return fmt.Errorf("resilience: peer %s: %w", b.peer, ErrCircuitOpen)
		}
		transition = b.transitionLocked(StateHalfOpen)
		b.probes = 1
		b.countLocked("breaker_probes")
		return nil
	default: // StateHalfOpen
		if b.probes >= b.cfg.ProbeBudget {
			b.countLocked("breaker_fastfails")
			return fmt.Errorf("resilience: peer %s: %w", b.peer, ErrCircuitOpen)
		}
		b.probes++
		b.countLocked("breaker_probes")
		return nil
	}
}

// Record feeds one guarded-operation outcome back (err nil = success).
// In the closed state it slides the outcome window and trips open when
// the failure rate crosses the threshold; in the half-open state a
// success re-closes the breaker (window reset) and a failure re-opens
// it.
func (b *Breaker) Record(err error) {
	failed := err != nil
	b.mu.Lock()
	var transition func()
	defer func() {
		b.mu.Unlock()
		if transition != nil {
			transition()
		}
	}()
	switch b.state {
	case StateClosed:
		b.pushLocked(failed)
		if b.count >= b.cfg.MinSamples &&
			float64(b.fails) >= b.cfg.FailureRate*float64(b.count) {
			transition = b.tripLocked()
		}
	case StateHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if failed {
			transition = b.tripLocked()
		} else {
			transition = b.transitionLocked(StateClosed)
			b.resetLocked()
		}
	case StateOpen:
		// A straggler from before the trip; the window is already
		// condemned, nothing to learn.
	}
}

// pushLocked slides one outcome into the window ring.
func (b *Breaker) pushLocked(failed bool) {
	if b.count == len(b.window) {
		// Evict the oldest outcome (the slot head points at).
		if b.window[b.head] {
			b.fails--
		}
	} else {
		b.count++
	}
	b.window[b.head] = failed
	if failed {
		b.fails++
	}
	b.head = (b.head + 1) % len(b.window)
}

// tripLocked opens the breaker and stamps the open timer.
func (b *Breaker) tripLocked() func() {
	t := b.transitionLocked(StateOpen)
	b.openedAt = b.cfg.Now()
	b.probes = 0
	b.countLocked("breaker_opened")
	return t
}

// resetLocked clears the outcome window (breaker re-closed).
func (b *Breaker) resetLocked() {
	b.head, b.count, b.fails, b.probes = 0, 0, 0, 0
}

// transitionLocked moves the state machine, exports the gauge, and
// returns the deferred OnTransition callback (run unlocked).
func (b *Breaker) transitionLocked(to State) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	if b.cfg.Telemetry.Enabled() {
		b.cfg.Telemetry.Gauge("breaker_state", "peer", b.peer).Set(int64(to))
	}
	if b.cfg.OnTransition == nil {
		return nil
	}
	cb, peer := b.cfg.OnTransition, b.peer
	return func() { cb(peer, from, to) }
}

func (b *Breaker) countLocked(name string) {
	if b.cfg.Telemetry.Enabled() {
		b.cfg.Telemetry.Counter(name, "peer", b.peer).Add(1)
	}
}

// BreakerSet keys breakers by peer address and satisfies
// session.DialGovernor, so it installs directly as a session.Pool's
// Governor: Allow gates each dial, Record feeds the outcome back. A
// nil *BreakerSet allows everything.
type BreakerSet struct {
	cfg   BreakerConfig
	mu    sync.Mutex
	peers map[string]*Breaker
}

// NewBreakerSet builds a set sharing one config across peers.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, peers: make(map[string]*Breaker)}
}

// For returns (creating on first use) the breaker for peer.
func (s *BreakerSet) For(peer string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.peers[peer]
	if b == nil {
		b = NewBreaker(peer, s.cfg)
		s.peers[peer] = b
	}
	return b
}

// Allow implements session.DialGovernor.
func (s *BreakerSet) Allow(addr string) error {
	if s == nil {
		return nil
	}
	return s.For(addr).Allow()
}

// Record implements session.DialGovernor.
func (s *BreakerSet) Record(addr string, err error) {
	if s == nil {
		return
	}
	s.For(addr).Record(err)
}
