package resilience

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/transport"
)

type timeoutNetError struct{}

func (timeoutNetError) Error() string   { return "i/o timeout" }
func (timeoutNetError) Timeout() bool   { return true }
func (timeoutNetError) Temporary() bool { return true }

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassTerminal},
		{"timeout", fmt.Errorf("recv: %w", transport.ErrTimeout), ClassRetryable},
		{"overloaded", fmt.Errorf("open: %w", session.ErrOverloaded), ClassRetryable},
		{"draining", fmt.Errorf("open: %w", session.ErrDraining), ClassRetryable},
		{"mux closed", session.ErrMuxClosed, ClassRetryable},
		{"circuit open", fmt.Errorf("dial: %w", ErrCircuitOpen), ClassRetryable},
		{"eof", io.EOF, ClassRetryable},
		{"unexpected eof", io.ErrUnexpectedEOF, ClassRetryable},
		{"conn refused", fmt.Errorf("dial: %w", syscall.ECONNREFUSED), ClassRetryable},
		{"conn reset", syscall.ECONNRESET, ClassRetryable},
		{"net closed", net.ErrClosed, ClassRetryable},
		{"net error", &net.OpError{Op: "read", Err: timeoutNetError{}}, ClassRetryable},
		{"marked transient", MarkTransient(errors.New("peer says: timeout")), ClassRetryable},
		{"wrapped transient", fmt.Errorf("query: %w", MarkTransient(errors.New("x"))), ClassRetryable},
		{"too large", fmt.Errorf("recv: %w", transport.ErrTooLarge), ClassTerminal},
		{"protocol violation", errors.New("expected message ack, got junk"), ClassTerminal},
		{"policy denial", errors.New("query denied: insufficient credentials"), ClassTerminal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMarkTransientPreservesChain(t *testing.T) {
	base := errors.New("boom")
	err := MarkTransient(fmt.Errorf("wrap: %w", base))
	if !errors.Is(err, base) {
		t.Fatal("MarkTransient broke the error chain")
	}
	if err.Error() != "wrap: boom" {
		t.Fatalf("Error() = %q, want pass-through", err.Error())
	}
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
}

type hinted struct{ d time.Duration }

func (h hinted) Error() string             { return "overloaded" }
func (h hinted) RetryAfter() time.Duration { return h.d }

func TestRetryAfter(t *testing.T) {
	if d, ok := RetryAfter(fmt.Errorf("open: %w", hinted{250 * time.Millisecond})); !ok || d != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v, %v; want 250ms, true", d, ok)
	}
	if _, ok := RetryAfter(errors.New("plain")); ok {
		t.Fatal("RetryAfter on a plain error reported a hint")
	}
	if _, ok := RetryAfter(hinted{0}); ok {
		t.Fatal("RetryAfter reported a non-positive hint")
	}
}

func TestNewQueryID(t *testing.T) {
	a, b := NewQueryID(), NewQueryID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("query ID lengths = %d, %d; want 16", len(a), len(b))
	}
	if a == b {
		t.Fatal("two query IDs collided")
	}
}
