package resilience

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
)

// Policy tunes one Do invocation. The zero value is usable: 4 attempts,
// 50ms base backoff doubling to a 2s cap, half-jittered, no elapsed
// budget.
type Policy struct {
	// MaxAttempts bounds total attempts (first try included).
	// Default 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth. Default 2s.
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry. Default 2.
	Multiplier float64
	// Jitter in [0,1] randomizes each delay down to [1-Jitter, 1] of
	// its nominal value, de-synchronizing client fleets. Default 0.5.
	Jitter float64
	// Budget, when positive, bounds the total elapsed time across
	// attempts: a retry whose backoff would overrun it is not taken.
	Budget time.Duration
	// Seed feeds the jitter PRNG; 0 derives a stable seed from the
	// query ID, so a run is reproducible given its IDs.
	Seed uint64
	// Retryable classifies errors; nil selects the package Retryable.
	Retryable func(error) bool
	// Sleep is the backoff clock; nil selects time.Sleep. Tests stub
	// it.
	Sleep func(time.Duration)
	// Now is the budget clock; nil selects time.Now.
	Now func() time.Time
	// Telemetry optionally counts retries_attempted,
	// queries_recovered and queries_exhausted. Nil records nothing.
	Telemetry *telemetry.Registry
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.5
	}
	if p.Retryable == nil {
		p.Retryable = Retryable
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// Attempt identifies one try of one logical query: the client-generated
// QueryID is stable across the query's attempts, N counts them from 1.
// Mediation code copies both into Params so sources can discard stale
// partial state from attempts the client has abandoned.
type Attempt struct {
	QueryID string
	N       int
}

// Result summarizes a finished Do.
type Result struct {
	// QueryID is the client-generated identifier all attempts carried.
	QueryID string
	// Attempts is how many times op ran.
	Attempts int
	// Recovered reports a success that needed more than one attempt —
	// a transient fault converted into a served query.
	Recovered bool
}

// Do runs op under the policy: attempts repeat while the error
// classifies retryable, separated by capped seeded-jitter backoff
// (raised to the server's retry-after hint when the error carries one),
// until success, a terminal error (returned unchanged), or attempts/
// budget run out — then the error wraps both ErrRetriesExhausted and
// the last attempt's failure.
func Do(pol Policy, op func(Attempt) error) (Result, error) {
	pol = pol.withDefaults()
	qid := NewQueryID()
	seed := pol.Seed
	if seed == 0 {
		h := fnv.New64a()
		if _, err := h.Write([]byte(qid)); err != nil {
			// hash.Hash.Write never fails; keep errdrop honest.
			panic("resilience: fnv write: " + err.Error())
		}
		seed = h.Sum64()
	}
	rng := seqRand(seed)
	start := pol.Now()
	var lastErr error
	attempts := 0
	for n := 1; n <= pol.MaxAttempts; n++ {
		attempts = n
		err := op(Attempt{QueryID: qid, N: n})
		if err == nil {
			res := Result{QueryID: qid, Attempts: n, Recovered: n > 1}
			if res.Recovered && pol.Telemetry.Enabled() {
				pol.Telemetry.Counter("queries_recovered").Add(1)
			}
			return res, nil
		}
		lastErr = err
		if !pol.Retryable(err) {
			return Result{QueryID: qid, Attempts: n}, err
		}
		if n == pol.MaxAttempts {
			break
		}
		delay := pol.backoff(n, rng.next)
		if hint, ok := RetryAfter(err); ok && hint > delay {
			delay = hint
		}
		if pol.Budget > 0 && pol.Now().Sub(start)+delay > pol.Budget {
			break
		}
		if pol.Telemetry.Enabled() {
			pol.Telemetry.Counter("retries_attempted").Add(1)
		}
		pol.Sleep(delay)
	}
	if pol.Telemetry.Enabled() {
		pol.Telemetry.Counter("queries_exhausted").Add(1)
	}
	return Result{QueryID: qid, Attempts: attempts},
		fmt.Errorf("%w: %d attempts, last: %w", ErrRetriesExhausted, attempts, lastErr)
}

// backoff computes the jittered delay before attempt n+1 (n completed
// attempts so far).
func (p Policy) backoff(n int, next func() uint64) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		// Uniform draw in [1-Jitter, 1], 53-bit precision.
		u := float64(next()>>11) / float64(1<<53)
		d *= 1 - p.Jitter*u
	}
	return time.Duration(d)
}

// seqRand is a splitmix64 stream: deterministic jitter without
// math/rand (banned by seclint's weakrand), matching the transport
// dial-retry PRNG.
type seqRand uint64

func (s *seqRand) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
