// Package resilience is the query-lifecycle fault-recovery layer of the
// mediation system. It decides, for every failure a query can hit, one
// question — is this worth another attempt? — and acts on the answer:
//
//   - Classification (Retryable): dial failures, timeouts, overload and
//     drain rejects, and link death mid-phase are transient — a fresh
//     attempt against a recovered (or different) peer can succeed.
//     Corrupt frames, protocol violations and oversized messages are
//     terminal — retrying replays the same deterministic failure.
//
//   - The retry orchestrator (Do) runs an operation under a Policy:
//     capped seeded-jitter backoff between attempts, a server-supplied
//     retry-after hint honored on overload rejects, an optional elapsed
//     budget, and a client-generated query ID + attempt number handed to
//     every attempt so sources can discard stale partial state from
//     abandoned attempts.
//
//   - Per-peer circuit breakers (Breaker, BreakerSet) sit in front of
//     redials: enough failures trip the peer open and further attempts
//     fast-fail with a typed ErrCircuitOpen (itself retryable — the
//     orchestrator backs off without burning a dial timeout) until the
//     open timeout admits a half-open probe. BreakerSet satisfies
//     session.DialGovernor, so it plugs straight into session.Pool.
//
// The package handles only errors and timing — no payloads, keys or
// relation data flow through it.
package resilience

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"io"
	"net"
	"syscall"
	"time"

	"github.com/secmediation/secmediation/internal/session"
	"github.com/secmediation/secmediation/internal/transport"
)

// ErrCircuitOpen reports a fast-fail: the peer's circuit breaker is
// open, so the attempt was refused without touching the network. Match
// with errors.Is. It classifies as retryable — the orchestrator's
// backoff naturally spaces attempts across the breaker's open window.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// ErrRetriesExhausted reports that Do ran out of attempts (or budget)
// with every failure retryable; the last attempt's error stays on the
// chain. Match with errors.Is.
var ErrRetriesExhausted = errors.New("resilience: retries exhausted")

// Class is the retry classification of an error.
type Class int

const (
	// ClassTerminal errors replay deterministically; retrying wastes
	// attempts and hides the real failure.
	ClassTerminal Class = iota
	// ClassRetryable errors are transient: a fresh attempt can succeed.
	ClassRetryable
)

func (c Class) String() string {
	if c == ClassRetryable {
		return "retryable"
	}
	return "terminal"
}

// Classify maps an error to its retry class. See Retryable for the
// rules.
func Classify(err error) Class {
	if Retryable(err) {
		return ClassRetryable
	}
	return ClassTerminal
}

// Retryable reports whether a fresh attempt at the failed operation can
// plausibly succeed. Retryable: circuit-open fast-fails, timeouts,
// overload and drain rejects, closed/killed links (EOF, reset, refused
// dial), mux teardown, and anything marked transient at its origin
// (a Transient() bool method on the chain — the mediation layer uses
// this to keep retryability across party boundaries, where error
// chains flatten to strings). Terminal: oversized frames
// (transport.ErrTooLarge — deterministic, a retry resends the same
// bytes), and everything unrecognized — corrupt frames, protocol
// violations, policy denials. Unknown errors default to terminal so a
// genuine protocol bug is surfaced, not hammered.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	// ErrTooLarge wins over the net.Error check below: the TCP
	// transport's oversized-frame error is typed on the same chain a
	// net path could otherwise claim.
	if errors.Is(err, transport.ErrTooLarge) {
		return false
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) && tr.Transient() {
		return true
	}
	switch {
	case errors.Is(err, ErrCircuitOpen),
		errors.Is(err, transport.ErrTimeout),
		errors.Is(err, transport.ErrIntegrity),
		errors.Is(err, session.ErrOverloaded),
		errors.Is(err, session.ErrDraining),
		errors.Is(err, session.ErrMuxClosed),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, net.ErrClosed):
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// MarkTransient wraps err so Retryable reports true for it (and for
// anything wrapping the result). The mediation layer applies it when
// reconstructing a peer's error from a wire notification whose origin
// flagged the failure transient. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// RetryAfter extracts a server-supplied backoff hint from an error
// chain (a RetryAfter() time.Duration method — overload rejects from a
// draining-aware session.Server carry one). ok is false when no
// positive hint is present.
func RetryAfter(err error) (hint time.Duration, ok bool) {
	var h interface{ RetryAfter() time.Duration }
	if errors.As(err, &h) {
		if d := h.RetryAfter(); d > 0 {
			return d, true
		}
	}
	return 0, false
}

// NewQueryID returns a fresh client-generated query identifier: 16 hex
// characters of OS randomness. It tags every attempt of one logical
// query so sources recognize — and discard partial state from — stale
// attempts the client has already abandoned.
func NewQueryID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does,
		// queries must not silently share IDs.
		panic("resilience: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
