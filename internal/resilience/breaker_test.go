package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
)

// clock is a settable test clock.
type clock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testBreaker(t *testing.T, cfg BreakerConfig) (*Breaker, *clock, *[]string) {
	t.Helper()
	ck := &clock{now: time.Unix(1000, 0)}
	transitions := &[]string{}
	var mu sync.Mutex
	cfg.Now = ck.Now
	cfg.OnTransition = func(peer string, from, to State) {
		mu.Lock()
		*transitions = append(*transitions, from.String()+">"+to.String())
		mu.Unlock()
	}
	return NewBreaker("src1:7000", cfg), ck, transitions
}

func TestBreakerLifecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	b, ck, transitions := testBreaker(t, BreakerConfig{
		Window:      8,
		FailureRate: 0.5,
		MinSamples:  4,
		OpenTimeout: time.Second,
		Telemetry:   reg,
	})
	boom := errors.New("dial refused")

	// Closed: failures below MinSamples never trip.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow %d: %v", i, err)
		}
		b.Record(boom)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 3 failures = %v, want closed (MinSamples=4)", got)
	}

	// The fourth failure reaches MinSamples at 100% failure rate: trip.
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow before trip: %v", err)
	}
	b.Record(boom)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after trip = %v, want open", got)
	}

	// Open: fast-fail with the typed error, no network touched.
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open Allow = %v, want ErrCircuitOpen", err)
	}

	// Open timeout elapses: the next Allow is the half-open probe, and
	// the probe budget (1) fast-fails a second concurrent caller.
	ck.Advance(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second probe Allow = %v, want ErrCircuitOpen (budget 1)", err)
	}

	// Probe fails: re-open, timer restarted.
	b.Record(boom)
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Allow right after re-open = %v, want ErrCircuitOpen", err)
	}

	// Second probe succeeds: re-close with a clean window.
	ck.Advance(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe Allow: %v", err)
	}
	b.Record(nil)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	// The reset window means one fresh failure cannot re-trip.
	if err := b.Allow(); err != nil {
		t.Fatalf("closed Allow after re-close: %v", err)
	}
	b.Record(boom)
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after 1 post-reset failure = %v, want closed", got)
	}

	want := []string{"closed>open", "open>half-open", "half-open>open", "open>half-open", "half-open>closed"}
	if len(*transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", *transitions, want)
	}
	for i, w := range want {
		if (*transitions)[i] != w {
			t.Fatalf("transition %d = %q, want %q (full %v)", i, (*transitions)[i], w, *transitions)
		}
	}
	if got := reg.Counter("breaker_opened", "peer", "src1:7000").Value(); got != 2 {
		t.Errorf("breaker_opened = %d, want 2", got)
	}
	if got := reg.Counter("breaker_fastfails", "peer", "src1:7000").Value(); got != 3 {
		t.Errorf("breaker_fastfails = %d, want 3", got)
	}
	if got := reg.Counter("breaker_probes", "peer", "src1:7000").Value(); got != 2 {
		t.Errorf("breaker_probes = %d, want 2", got)
	}
	if got := reg.Gauge("breaker_state", "peer", "src1:7000").Value(); got != int64(StateClosed) {
		t.Errorf("breaker_state gauge = %d, want %d", got, StateClosed)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b, _, _ := testBreaker(t, BreakerConfig{Window: 4, FailureRate: 0.6, MinSamples: 4})
	boom := errors.New("x")
	// Two failures then many successes: the failures slide out of the
	// 4-outcome window (peaking at 2/4 = 0.5, below the 0.6 rate) and
	// the breaker never trips.
	outcomes := []error{boom, boom, nil, nil, nil, nil, boom}
	for i, out := range outcomes {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow %d: %v", i, err)
		}
		b.Record(out)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state = %v, want closed (window slid the early failures out)", got)
	}
}

func TestBreakerSetGovernor(t *testing.T) {
	set := NewBreakerSet(BreakerConfig{Window: 4, FailureRate: 0.5, MinSamples: 2, OpenTimeout: time.Hour})
	boom := errors.New("refused")
	// Trip src1 only; src2 stays closed — per-peer isolation.
	for i := 0; i < 2; i++ {
		if err := set.Allow("src1:7000"); err != nil {
			t.Fatalf("allow src1 %d: %v", i, err)
		}
		set.Record("src1:7000", boom)
	}
	if err := set.Allow("src1:7000"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("src1 after trip: %v, want ErrCircuitOpen", err)
	}
	if err := set.Allow("src2:7000"); err != nil {
		t.Fatalf("src2 (healthy peer): %v", err)
	}
	set.Record("src2:7000", nil)

	var nilSet *BreakerSet
	if err := nilSet.Allow("anything"); err != nil {
		t.Fatalf("nil set Allow: %v", err)
	}
	nilSet.Record("anything", boom)
}
