package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
	"github.com/secmediation/secmediation/internal/transport"
)

// recordingPolicy returns a deterministic policy that captures sleeps.
func recordingPolicy(sleeps *[]time.Duration) Policy {
	return Policy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    400 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0, // exact delays
		Seed:        1,
		Sleep:       func(d time.Duration) { *sleeps = append(*sleeps, d) },
	}
}

func TestDoRecovers(t *testing.T) {
	reg := telemetry.NewRegistry()
	var sleeps []time.Duration
	pol := recordingPolicy(&sleeps)
	pol.Telemetry = reg
	var ids []string
	var ns []int
	res, err := Do(pol, func(a Attempt) error {
		ids = append(ids, a.QueryID)
		ns = append(ns, a.N)
		if a.N < 3 {
			return fmt.Errorf("recv: %w", transport.ErrTimeout)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !res.Recovered || res.Attempts != 3 {
		t.Fatalf("result = %+v, want recovered in 3 attempts", res)
	}
	if len(ids) != 3 || ids[0] != ids[1] || ids[1] != ids[2] || ids[0] != res.QueryID {
		t.Fatalf("query IDs %v not stable across attempts (result %q)", ids, res.QueryID)
	}
	if ns[0] != 1 || ns[1] != 2 || ns[2] != 3 {
		t.Fatalf("attempt numbers = %v, want 1,2,3", ns)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}
	if len(sleeps) != 2 || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Fatalf("backoffs = %v, want %v", sleeps, want)
	}
	if got := reg.Counter("retries_attempted").Value(); got != 2 {
		t.Errorf("retries_attempted = %d, want 2", got)
	}
	if got := reg.Counter("queries_recovered").Value(); got != 1 {
		t.Errorf("queries_recovered = %d, want 1", got)
	}
}

func TestDoTerminalStopsImmediately(t *testing.T) {
	var sleeps []time.Duration
	terminal := errors.New("expected message ack, got junk")
	calls := 0
	res, err := Do(recordingPolicy(&sleeps), func(Attempt) error {
		calls++
		return terminal
	})
	if !errors.Is(err, terminal) {
		t.Fatalf("Do = %v, want the terminal error unchanged", err)
	}
	if errors.Is(err, ErrRetriesExhausted) {
		t.Fatal("terminal error wrongly wrapped as retries-exhausted")
	}
	if calls != 1 || res.Attempts != 1 || len(sleeps) != 0 {
		t.Fatalf("calls=%d attempts=%d sleeps=%v, want exactly one attempt", calls, res.Attempts, sleeps)
	}
}

func TestDoExhausts(t *testing.T) {
	reg := telemetry.NewRegistry()
	var sleeps []time.Duration
	pol := recordingPolicy(&sleeps)
	pol.Telemetry = reg
	cause := fmt.Errorf("dial: %w", transport.ErrTimeout)
	res, err := Do(pol, func(Attempt) error { return cause })
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("Do = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("Do = %v, want the last cause on the chain", err)
	}
	if res.Attempts != 4 || res.Recovered {
		t.Fatalf("result = %+v, want 4 unrecovered attempts", res)
	}
	// 100, 200, 400 (capped).
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("backoffs = %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v", i, sleeps[i], want[i])
		}
	}
	if got := reg.Counter("queries_exhausted").Value(); got != 1 {
		t.Errorf("queries_exhausted = %d, want 1", got)
	}
}

func TestDoHonorsRetryAfterHint(t *testing.T) {
	var sleeps []time.Duration
	pol := recordingPolicy(&sleeps)
	hintErr := fmt.Errorf("open: %w", hinted{900 * time.Millisecond})
	pol.Retryable = func(error) bool { return true }
	_, err := Do(pol, func(a Attempt) error {
		if a.N == 1 {
			return hintErr
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	// The 900ms hint beats the 100ms nominal backoff.
	if len(sleeps) != 1 || sleeps[0] != 900*time.Millisecond {
		t.Fatalf("backoffs = %v, want the server hint 900ms", sleeps)
	}
}

func TestDoBudgetBoundsRetries(t *testing.T) {
	var sleeps []time.Duration
	pol := recordingPolicy(&sleeps)
	now := time.Unix(0, 0)
	pol.Now = func() time.Time { return now }
	pol.Sleep = func(d time.Duration) {
		sleeps = append(sleeps, d)
		now = now.Add(d)
	}
	pol.Budget = 150 * time.Millisecond
	cause := fmt.Errorf("dial: %w", transport.ErrTimeout)
	res, err := Do(pol, func(Attempt) error { return cause })
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("Do = %v, want ErrRetriesExhausted", err)
	}
	// First backoff (100ms) fits the 150ms budget; the second (200ms)
	// would overrun, so only two attempts run.
	if res.Attempts != 2 || len(sleeps) != 1 {
		t.Fatalf("attempts=%d sleeps=%v, want budget to stop after 2 attempts", res.Attempts, sleeps)
	}
}

func TestDoJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var sleeps []time.Duration
		pol := recordingPolicy(&sleeps)
		pol.Jitter = 0.5
		pol.Seed = 42
		_, err := Do(pol, func(Attempt) error { return fmt.Errorf("x: %w", transport.ErrTimeout) })
		if !errors.Is(err, ErrRetriesExhausted) {
			t.Fatalf("Do = %v", err)
		}
		return sleeps
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("sleep schedules %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter not reproducible: %v vs %v", a, b)
		}
		nominal := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}[i]
		if a[i] > nominal || a[i] < nominal/2 {
			t.Fatalf("jittered delay %v outside [%v, %v]", a[i], nominal/2, nominal)
		}
	}
}
