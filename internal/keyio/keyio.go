// Package keyio provides PEM serialization for the RSA keys used by the
// deployment binaries (cmd/mmmca, cmd/medclient, cmd/datasource): private
// keys in PKCS#8, public keys in PKIX form.
package keyio

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"os"
)

const (
	privateBlock = "PRIVATE KEY"
	publicBlock  = "PUBLIC KEY"
)

// MarshalPrivateKey encodes an RSA private key as PKCS#8 PEM.
func MarshalPrivateKey(key *rsa.PrivateKey) ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("keyio: marshal private key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: privateBlock, Bytes: der}), nil
}

// ParsePrivateKey decodes a PKCS#8 PEM RSA private key.
func ParsePrivateKey(data []byte) (*rsa.PrivateKey, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != privateBlock {
		return nil, fmt.Errorf("keyio: no %s PEM block", privateBlock)
	}
	key, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("keyio: parse private key: %w", err)
	}
	rsaKey, ok := key.(*rsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("keyio: private key is %T, want RSA", key)
	}
	return rsaKey, nil
}

// MarshalPublicKey encodes an RSA public key as PKIX PEM.
func MarshalPublicKey(key *rsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(key)
	if err != nil {
		return nil, fmt.Errorf("keyio: marshal public key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: publicBlock, Bytes: der}), nil
}

// ParsePublicKey decodes a PKIX PEM RSA public key.
func ParsePublicKey(data []byte) (*rsa.PublicKey, error) {
	block, _ := pem.Decode(data)
	if block == nil || block.Type != publicBlock {
		return nil, fmt.Errorf("keyio: no %s PEM block", publicBlock)
	}
	key, err := x509.ParsePKIXPublicKey(block.Bytes)
	if err != nil {
		return nil, fmt.Errorf("keyio: parse public key: %w", err)
	}
	rsaKey, ok := key.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("keyio: public key is %T, want RSA", key)
	}
	return rsaKey, nil
}

// WritePrivateKeyFile writes a private key PEM with owner-only permissions.
func WritePrivateKeyFile(path string, key *rsa.PrivateKey) error {
	data, err := MarshalPrivateKey(key)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

// ReadPrivateKeyFile loads a private key PEM file.
func ReadPrivateKeyFile(path string) (*rsa.PrivateKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keyio: %w", err)
	}
	return ParsePrivateKey(data)
}

// WritePublicKeyFile writes a public key PEM.
func WritePublicKeyFile(path string, key *rsa.PublicKey) error {
	data, err := MarshalPublicKey(key)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadPublicKeyFile loads a public key PEM file.
func ReadPublicKeyFile(path string) (*rsa.PublicKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("keyio: %w", err)
	}
	return ParsePublicKey(data)
}
