package keyio

import (
	"crypto/rand"
	"crypto/rsa"
	"path/filepath"
	"testing"
)

func TestKeyRoundtrips(t *testing.T) {
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	priv, err := MarshalPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	gotPriv, err := ParsePrivateKey(priv)
	if err != nil {
		t.Fatal(err)
	}
	if gotPriv.N.Cmp(key.N) != 0 {
		t.Error("private key roundtrip mismatch")
	}
	pub, err := MarshalPublicKey(&key.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	gotPub, err := ParsePublicKey(pub)
	if err != nil {
		t.Fatal(err)
	}
	if gotPub.N.Cmp(key.N) != 0 {
		t.Error("public key roundtrip mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParsePrivateKey([]byte("garbage")); err == nil {
		t.Error("garbage private key parsed")
	}
	if _, err := ParsePublicKey([]byte("garbage")); err == nil {
		t.Error("garbage public key parsed")
	}
	// Wrong block type.
	key, _ := rsa.GenerateKey(rand.Reader, 1024)
	pub, _ := MarshalPublicKey(&key.PublicKey)
	if _, err := ParsePrivateKey(pub); err == nil {
		t.Error("public PEM parsed as private key")
	}
}

func TestFileRoundtrips(t *testing.T) {
	dir := t.TempDir()
	key, _ := rsa.GenerateKey(rand.Reader, 1024)
	privPath := filepath.Join(dir, "key.pem")
	pubPath := filepath.Join(dir, "key.pub.pem")
	if err := WritePrivateKeyFile(privPath, key); err != nil {
		t.Fatal(err)
	}
	if err := WritePublicKeyFile(pubPath, &key.PublicKey); err != nil {
		t.Fatal(err)
	}
	gotPriv, err := ReadPrivateKeyFile(privPath)
	if err != nil || gotPriv.N.Cmp(key.N) != 0 {
		t.Errorf("private file roundtrip: %v", err)
	}
	gotPub, err := ReadPublicKeyFile(pubPath)
	if err != nil || gotPub.N.Cmp(key.N) != 0 {
		t.Errorf("public file roundtrip: %v", err)
	}
	if _, err := ReadPrivateKeyFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file read")
	}
	if _, err := ReadPublicKeyFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file read")
	}
}
