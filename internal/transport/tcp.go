package transport

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// countingWriter counts every byte that actually leaves for the wire —
// including gob's type descriptors and frame headers, which
// Message.size() knows nothing about.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// countingReader counts every byte consumed from the wire. The gob
// decoder reads whole frames, so after a message is fully decoded the
// count covers everything the peer sent for it.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// tcpConn adapts a net.Conn to the Conn interface with gob framing. The
// gob streams run through counting wrappers, so Stats reports true wire
// bytes (framing, type descriptors and all) rather than the payload
// approximation the in-memory transport uses.
type tcpConn struct {
	nc        net.Conn
	enc       *gob.Encoder
	dec       *gob.Decoder
	sendMu    sync.Mutex
	recvMu    sync.Mutex
	stats     Stats
	closeOnce sync.Once
	closeErr  error
}

// Dial connects to a listening party at addr ("host:port").
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return WrapNetConn(nc), nil
}

// WrapNetConn turns any net.Conn into a transport Conn (gob-framed).
func WrapNetConn(nc net.Conn) Conn {
	c := &tcpConn{nc: nc}
	c.enc = gob.NewEncoder(countingWriter{w: nc, n: &c.stats.bytesSent})
	c.dec = gob.NewDecoder(countingReader{r: nc, n: &c.stats.bytesRecv})
	return c
}

// Listener accepts party connections.
type Listener struct {
	l net.Listener
}

// Listen starts a TCP listener at addr; use addr ":0" for an ephemeral
// port (see Addr).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for one inbound connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return WrapNetConn(nc), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// Send implements Conn. Byte accounting happens in the counting writer
// under the gob encoder; only the message count is bumped here.
func (c *tcpConn) Send(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("transport: tcp send: %w", err)
	}
	c.stats.msgsSent.Add(1)
	return nil
}

// Recv implements Conn. Byte accounting happens in the counting reader
// under the gob decoder; only the message count is bumped here.
func (c *tcpConn) Recv() (Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		return Message{}, err
	}
	c.stats.msgsRecv.Add(1)
	return m, nil
}

// Expect implements Conn.
func (c *tcpConn) Expect(typ string) (Message, error) { return expect(c, typ) }

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// Stats implements Conn.
func (c *tcpConn) Stats() *Stats { return &c.stats }
