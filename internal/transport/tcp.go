package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxMessage is the inbound gob frame size limit applied by Dial,
// Accept and WrapNetConn. Generous: the largest legitimate payloads (full
// encrypted relations in the PM and commutative protocols) stay well
// under it, while a hostile length prefix claiming gigabytes is rejected
// before any allocation.
const DefaultMaxMessage = 256 << 20 // 256 MiB

// countingWriter counts every byte that actually leaves for the wire —
// including gob's type descriptors and frame headers, which
// Message.size() knows nothing about.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

// countingReader counts every byte consumed from the wire. Frames are
// read exactly (no read-ahead, see frameLimitReader), so after a message
// is fully decoded the count covers everything the peer sent for it.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// frameLimitReader sits between the wire and the gob decoder. It parses
// gob's own framing — an unsigned varint byte count followed by that many
// bytes — and rejects frames whose declared size exceeds max BEFORE
// reading or allocating the body, so a hostile length prefix cannot OOM
// the receiving party (gob itself allocates up to 1 GiB on trust).
//
// It implements io.ByteReader so the gob decoder uses it directly instead
// of wrapping it in a read-ahead bufio.Reader; reads therefore consume
// the underlying stream exactly frame by frame, which keeps the counting
// reader's wire-byte accounting exact.
type frameLimitReader struct {
	r   io.Reader
	max int64
	buf []byte // unread remainder of the current frame
	err error  // sticky: set once the stream position is unrecoverable
}

// noEOF converts a clean-EOF mid-structure into ErrUnexpectedEOF so it is
// never mistaken for an orderly peer shutdown.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// fill reads the next frame header and body into buf. An error before the
// first header byte (clean close, recv timeout with nothing consumed) is
// returned as-is and is NOT sticky: the stream is still aligned and a
// later Recv may proceed. Any failure after the first byte poisons the
// reader — the position inside the stream is lost.
func (f *frameLimitReader) fill() error {
	var hdr [9]byte
	if _, err := io.ReadFull(f.r, hdr[:1]); err != nil {
		return err
	}
	hlen, size := 1, int64(hdr[0])
	if hdr[0] > 0x7f {
		// gob encodes uints >= 128 as (256 - byteCount) followed by the
		// value in big-endian bytes.
		n := 256 - int(hdr[0])
		if n < 1 || n > 8 {
			f.err = fmt.Errorf("transport: corrupt gob frame header byte 0x%02x", hdr[0])
			return f.err
		}
		if _, err := io.ReadFull(f.r, hdr[1:1+n]); err != nil {
			f.err = fmt.Errorf("transport: truncated gob frame header: %w", noEOF(err))
			return f.err
		}
		hlen += n
		size = 0
		for _, b := range hdr[1:hlen] {
			if size > math.MaxInt64>>8 {
				size = math.MaxInt64
				break
			}
			size = size<<8 | int64(b)
		}
	}
	if size > f.max {
		f.err = fmt.Errorf("%w: frame declares %d bytes, limit %d", ErrTooLarge, size, f.max)
		return f.err
	}
	// Buffer the header back in front of the body: the gob decoder parses
	// the length prefix itself, so the stream it sees must be byte-exact.
	frame := make([]byte, hlen+int(size))
	copy(frame, hdr[:hlen])
	if _, err := io.ReadFull(f.r, frame[hlen:]); err != nil {
		f.err = fmt.Errorf("transport: truncated gob frame: %w", noEOF(err))
		return f.err
	}
	f.buf = frame
	return nil
}

func (f *frameLimitReader) Read(p []byte) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	for len(f.buf) == 0 {
		if err := f.fill(); err != nil {
			return 0, err
		}
	}
	n := copy(p, f.buf)
	f.buf = f.buf[n:]
	return n, nil
}

func (f *frameLimitReader) ReadByte() (byte, error) {
	if f.err != nil {
		return 0, f.err
	}
	for len(f.buf) == 0 {
		if err := f.fill(); err != nil {
			return 0, err
		}
	}
	b := f.buf[0]
	f.buf = f.buf[1:]
	return b, nil
}

// tcpConn adapts a net.Conn to the Conn interface with gob framing. The
// gob streams run through counting wrappers, so Stats reports true wire
// bytes (framing, type descriptors and all) rather than the payload
// approximation the in-memory transport uses.
type tcpConn struct {
	nc        net.Conn
	enc       *gob.Encoder
	dec       *gob.Decoder
	sendMu    sync.Mutex
	recvMu    sync.Mutex
	timeout   atomic.Int64 // nanoseconds; 0 disables
	stats     Stats
	closeOnce sync.Once
	closeErr  error
}

// Dial connects to a listening party at addr ("host:port").
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return WrapNetConn(nc), nil
}

// WrapNetConn turns any net.Conn into a transport Conn (gob-framed) with
// the DefaultMaxMessage inbound frame limit.
func WrapNetConn(nc net.Conn) Conn {
	return WrapNetConnLimit(nc, DefaultMaxMessage)
}

// WrapNetConnLimit is WrapNetConn with an explicit inbound frame size
// limit in bytes; maxMessage <= 0 selects DefaultMaxMessage.
func WrapNetConnLimit(nc net.Conn, maxMessage int64) Conn {
	if maxMessage <= 0 {
		maxMessage = DefaultMaxMessage
	}
	c := &tcpConn{nc: nc}
	c.enc = gob.NewEncoder(countingWriter{w: nc, n: &c.stats.bytesSent})
	c.dec = gob.NewDecoder(&frameLimitReader{
		r:   countingReader{r: nc, n: &c.stats.bytesRecv},
		max: maxMessage,
	})
	return c
}

// Listener accepts party connections.
type Listener struct {
	l net.Listener
	// MaxMessage bounds inbound frames on accepted connections;
	// 0 selects DefaultMaxMessage.
	MaxMessage int64
}

// Listen starts a TCP listener at addr; use addr ":0" for an ephemeral
// port (see Addr).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for one inbound connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return WrapNetConnLimit(nc, l.MaxMessage), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }

// armDeadline applies the configured timeout (or clears a previous one)
// through set, which is one of SetReadDeadline/SetWriteDeadline. Deadline
// errors on a closed socket are ignored; the pending I/O reports the
// close itself.
func (c *tcpConn) armDeadline(set func(time.Time) error) {
	if d := time.Duration(c.timeout.Load()); d > 0 {
		_ = set(time.Now().Add(d))
	} else {
		_ = set(time.Time{})
	}
}

// Send implements Conn. Byte accounting happens in the counting writer
// under the gob encoder; only the message count is bumped here.
func (c *tcpConn) Send(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.armDeadline(c.nc.SetWriteDeadline)
	if err := c.enc.Encode(m); err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			return fmt.Errorf("transport: tcp send: %w", ErrTimeout)
		}
		return fmt.Errorf("transport: tcp send: %w", err)
	}
	c.stats.msgsSent.Add(1)
	return nil
}

// Recv implements Conn. Byte accounting happens in the counting reader
// under the gob decoder; only the message count is bumped here.
//
// Error mapping mirrors the in-memory transport: an orderly peer shutdown
// between messages surfaces as bare io.EOF; a timeout surfaces as an
// error matching ErrTimeout; everything else is wrapped with recv
// context.
func (c *tcpConn) Recv() (Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	c.armDeadline(c.nc.SetReadDeadline)
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		switch {
		case err == io.EOF:
			// Clean close at a message boundary — parity with chanConn.
			return Message{}, io.EOF
		case errors.Is(err, os.ErrDeadlineExceeded):
			return Message{}, fmt.Errorf("transport: tcp recv: %w", ErrTimeout)
		default:
			return Message{}, fmt.Errorf("transport: tcp recv: %w", err)
		}
	}
	c.stats.msgsRecv.Add(1)
	return m, nil
}

// Expect implements Conn.
func (c *tcpConn) Expect(typ string) (Message, error) { return expect(c, typ) }

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// SetTimeout implements Conn. It arms per-operation net.Conn deadlines;
// an in-flight Recv is not interrupted, the bound applies from the next
// Send/Recv on.
func (c *tcpConn) SetTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.timeout.Store(int64(d))
}

// Stats implements Conn.
func (c *tcpConn) Stats() *Stats { return &c.stats }
