package transport

import (
	"io"
	"sync"
	"testing"
)

// tcpPair connects a TCP client/server conn pair over the loopback.
func tcpPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	errs := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errs <- err
			return
		}
		accepted <- c
	}()
	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case server := <-accepted:
		t.Cleanup(func() { client.Close(); server.Close() })
		return client, server
	case err := <-errs:
		t.Fatal(err)
		return nil, nil
	}
}

// The TCP transport must account the bytes that actually cross the wire:
// gob framing, type descriptors and all — strictly more than the
// in-memory transport's len(Type)+len(Body) approximation, and identical
// on both ends of the link.
func TestTCPWireBytesExceedPayloadBytes(t *testing.T) {
	client, server := tcpPair(t)

	memA, memB := Pair()
	defer memA.Close()
	defer memB.Close()

	const rounds = 5
	for i := 0; i < rounds; i++ {
		m := Message{Type: "bulk", Body: make([]byte, 1000+i)}
		if err := client.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			t.Fatal(err)
		}
		if err := memA.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, err := memB.Recv(); err != nil {
			t.Fatal(err)
		}
	}

	tcpSent := client.Stats().BytesSent()
	memSent := memA.Stats().BytesSent()
	if tcpSent <= memSent {
		t.Errorf("tcp wire bytes (%d) not greater than payload bytes (%d): framing overhead vanished", tcpSent, memSent)
	}
	// Both ends of the TCP link have seen the same stream, so the
	// sender's wire-byte count and the receiver's must agree exactly.
	if got := server.Stats().BytesRecv(); got != tcpSent {
		t.Errorf("receiver counted %d wire bytes, sender %d", got, tcpSent)
	}
	// Replies flow the other way with the same properties.
	if err := server.Send(Message{Type: "reply", Body: make([]byte, 64)}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); err != nil {
		t.Fatal(err)
	}
	if client.Stats().BytesRecv() != server.Stats().BytesSent() {
		t.Errorf("reply direction disagrees: client recv %d, server sent %d",
			client.Stats().BytesRecv(), server.Stats().BytesSent())
	}
}

// Stats accessors must be safe to read while Send/Recv are live on the
// same endpoint — the telemetry exporters poll them mid-protocol. Run
// with -race.
func TestStatsConcurrentReads(t *testing.T) {
	for name, mk := range map[string]func(t *testing.T) (Conn, Conn){
		"chan": func(t *testing.T) (Conn, Conn) {
			a, b := Pair()
			t.Cleanup(func() { a.Close(); b.Close() })
			return a, b
		},
		"tcp": tcpPair,
	} {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			const n = 200
			var wg sync.WaitGroup
			wg.Add(3)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if err := a.Send(Message{Type: "m", Body: make([]byte, 32)}); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if _, err := b.Recv(); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				var last int64
				for i := 0; i < 1000; i++ {
					v := a.Stats().BytesSent() + b.Stats().BytesRecv() +
						a.Stats().MsgsSent() + b.Stats().MsgsRecv()
					if v < last {
						t.Errorf("stats went backwards: %d -> %d", last, v)
						return
					}
					last = v
				}
			}()
			wg.Wait()
		})
	}
}

// Every message queued before the peer closed must be drainable, in
// order, before Recv reports EOF — not just the first one.
func TestPairDrainsAllQueuedAfterPeerClose(t *testing.T) {
	a, b := Pair()
	defer b.Close()
	const queued = 7
	for i := 0; i < queued; i++ {
		if err := a.Send(Message{Type: "pre", Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	for i := 0; i < queued; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		if m.Type != "pre" || int(m.Body[0]) != i {
			t.Fatalf("drain %d: got %q/%v", i, m.Type, m.Body)
		}
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Errorf("after full drain: %v, want EOF", err)
	}
	if got := b.Stats().MsgsRecv(); got != queued {
		t.Errorf("drained msgs counted = %d, want %d", got, queued)
	}
}
