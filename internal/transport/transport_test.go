package transport

import (
	"errors"
	"io"
	"math/big"
	"sync"
	"testing"
)

type payload struct {
	N    *big.Int
	Name string
	Data []byte
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	in := payload{N: big.NewInt(123456789), Name: "x", Data: []byte{1, 2, 3}}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.N.Cmp(in.N) != 0 || out.Name != in.Name || len(out.Data) != 3 {
		t.Errorf("roundtrip mismatch: %+v", out)
	}
}

func TestDecodeError(t *testing.T) {
	var out payload
	if err := Decode([]byte{0xFF, 0x01}, &out); err == nil {
		t.Error("garbage decoded")
	}
}

func TestPairSendRecv(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	msg, err := NewMessage("greet", payload{Name: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Expect("greet")
	if err != nil {
		t.Fatal(err)
	}
	body, err := Payload(got)
	if err != nil {
		t.Fatal(err)
	}
	var p payload
	if err := Decode(body, &p); err != nil || p.Name != "hello" {
		t.Errorf("recv payload: %+v, %v", p, err)
	}
}

func TestPayloadIntegrity(t *testing.T) {
	msg, err := NewMessage("greet", payload{Name: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	// A flipped payload byte — even one that keeps the gob decodable —
	// must surface as a typed integrity failure, not a wrong decode.
	flipped := msg
	flipped.Body = append([]byte(nil), msg.Body...)
	flipped.Body[len(flipped.Body)-1] ^= 0x01
	if _, err := Payload(flipped); !errors.Is(err, ErrIntegrity) {
		t.Errorf("corrupted body: %v, want ErrIntegrity", err)
	}
	truncated := msg
	truncated.Body = msg.Body[:len(msg.Body)/2]
	if _, err := Payload(truncated); !errors.Is(err, ErrIntegrity) {
		t.Errorf("truncated body: %v, want ErrIntegrity", err)
	}
	if _, err := Payload(Message{Type: "empty"}); !errors.Is(err, ErrIntegrity) {
		t.Errorf("empty body: %v, want ErrIntegrity", err)
	}
}

func TestExpectTypeMismatch(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	_ = a.Send(Message{Type: "wrong"})
	if _, err := b.Expect("right"); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	m := Message{Type: "t", Body: make([]byte, 100)}
	for i := 0; i < 3; i++ {
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if a.Stats().MsgsSent() != 3 || a.Stats().BytesSent() != 3*101 {
		t.Errorf("sender stats: %d msgs %d bytes", a.Stats().MsgsSent(), a.Stats().BytesSent())
	}
	if b.Stats().MsgsRecv() != 3 || b.Stats().BytesRecv() != 3*101 {
		t.Errorf("receiver stats: %d msgs %d bytes", b.Stats().MsgsRecv(), b.Stats().BytesRecv())
	}
}

func TestClosedPairBehaviour(t *testing.T) {
	a, b := Pair()
	// Messages sent before close are still drainable.
	_ = a.Send(Message{Type: "pre"})
	a.Close()
	if m, err := b.Recv(); err != nil || m.Type != "pre" {
		t.Errorf("drain after close: %v %v", m, err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Errorf("recv after peer close = %v, want EOF", err)
	}
	if err := a.Send(Message{Type: "post"}); err == nil {
		t.Error("send on closed conn succeeded")
	}
	if _, err := a.Recv(); err == nil {
		t.Error("recv on closed conn succeeded")
	}
	b.Close()
	if err := b.Close(); err != nil { // idempotent
		t.Errorf("double close: %v", err)
	}
}

func TestPairConcurrent(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send(Message{Type: "m"}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	got := 0
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, err := b.Recv(); err != nil {
				t.Error(err)
				return
			}
			got++
		}
	}()
	wg.Wait()
	if got != n {
		t.Errorf("received %d of %d", got, n)
	}
}

func TestTCPRoundtrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		m, err := c.Expect("ping")
		if err != nil {
			done <- err
			return
		}
		done <- c.Send(Message{Type: "pong", Body: m.Body})
	}()

	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(Message{Type: "ping", Body: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Expect("pong")
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Body) != "abc" {
		t.Errorf("pong body = %q", m.Body)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if c.Stats().MsgsSent() != 1 || c.Stats().MsgsRecv() != 1 {
		t.Error("tcp stats not counted")
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestTCPRecvAfterClose(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Recv(); err == nil {
		t.Error("recv on closed tcp conn succeeded")
	}
}
