package transport

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Deadlines: in-memory pair.

func TestChanConnRecvTimeout(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	b.SetTimeout(30 * time.Millisecond)
	start := time.Now()
	if _, err := b.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv on silent pair = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout fired far too late")
	}
	// A timeout is not sticky: the link still works once traffic arrives.
	if err := a.Send(Message{Type: "late"}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil || m.Type != "late" {
		t.Errorf("recv after timeout = %v, %v; want the late message", m, err)
	}
}

func TestChanConnSendTimeout(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	a.SetTimeout(30 * time.Millisecond)
	// Fill the buffered channel so the next send blocks.
	var err error
	for i := 0; i < 2000; i++ {
		if err = a.Send(Message{Type: "fill"}); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("send into full pair = %v, want ErrTimeout", err)
	}
}

func TestSetTimeoutDisable(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	b.SetTimeout(20 * time.Millisecond)
	b.SetTimeout(0) // disable again
	go func() {
		time.Sleep(60 * time.Millisecond) // longer than the cancelled timeout
		a.Send(Message{Type: "slow"})
	}()
	if m, err := b.Recv(); err != nil || m.Type != "slow" {
		t.Errorf("recv with disabled timeout = %v, %v", m, err)
	}
}

// ---------------------------------------------------------------------------
// Deadlines: TCP.

func TestTCPRecvTimeout(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	speak := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		<-speak // stay silent until told
		done <- c.Send(Message{Type: "late"})
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(50 * time.Millisecond)
	if _, err := c.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv from silent tcp peer = %v, want ErrTimeout", err)
	}
	// A first-byte timeout must not poison the stream: the decoder has
	// consumed nothing, so the next Recv sees a whole frame.
	close(speak)
	c.SetTimeout(2 * time.Second)
	m, err := c.Recv()
	if err != nil || m.Type != "late" {
		t.Errorf("recv after timeout = %v, %v; want the late message", m, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTCPCleanCloseEOF(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			c.Close() // clean shutdown, no message
		}
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Recv(); err != io.EOF {
		t.Errorf("recv after clean peer close = %v, want io.EOF (same as the in-memory pair)", err)
	}
}

func TestTCPRecvErrorWrapped(t *testing.T) {
	p1, p2 := net.Pipe()
	c := WrapNetConn(p2)
	defer c.Close()
	go func() {
		// A plausible frame header followed by garbage: the decoder fails
		// mid-frame, which must surface as a wrapped transport error.
		p1.Write([]byte{0x04, 0xff, 0xff, 0xff, 0xff})
		p1.Close()
	}()
	_, err := c.Recv()
	if err == nil || err == io.EOF {
		t.Fatalf("garbage stream decoded: %v", err)
	}
	if !strings.Contains(err.Error(), "transport: tcp recv:") {
		t.Errorf("decode error not wrapped: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Message size limit.

// TestTCPOversizedHeader feeds a hand-built gob length prefix declaring a
// terabyte-scale frame: Recv must reject it from the 7-byte header alone,
// before any allocation, and the connection stays poisoned.
func TestTCPOversizedHeader(t *testing.T) {
	p1, p2 := net.Pipe()
	c := WrapNetConnLimit(p2, 1<<20)
	defer c.Close()
	go func() {
		// Unsigned varint per gob: 0xfa = 256-6 → six big-endian bytes
		// follow; value 1<<40.
		p1.Write([]byte{0xfa, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00})
	}()
	_, err := c.Recv()
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("recv of declared 1 TiB frame = %v, want ErrTooLarge", err)
	}
	if !strings.Contains(err.Error(), "transport: tcp recv:") {
		t.Errorf("size error not wrapped: %v", err)
	}
	// Poisoned: the stream position inside the giant frame is lost.
	if _, err := c.Recv(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("second recv = %v, want sticky ErrTooLarge", err)
	}
}

// TestTCPOversizedMessage sends a real message past a small receive limit.
func TestTCPOversizedMessage(t *testing.T) {
	p1, p2 := net.Pipe()
	sender := WrapNetConn(p1)
	receiver := WrapNetConnLimit(p2, 4096)
	defer sender.Close()
	defer receiver.Close()
	go func() {
		// net.Pipe is synchronous: this send blocks once the receiver
		// stops reading, and fails when the test closes the pipe. Both
		// outcomes are fine; the assertion lives on the receive side.
		sender.Send(Message{Type: "big", Body: make([]byte, 64<<10)})
	}()
	if _, err := receiver.Recv(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("recv of 64 KiB frame with 4 KiB limit = %v, want ErrTooLarge", err)
	}
}

// TestTCPLimitAllowsNormalTraffic pins that the default limit does not get
// in the way of ordinary messages.
func TestTCPLimitAllowsNormalTraffic(t *testing.T) {
	p1, p2 := net.Pipe()
	sender := WrapNetConn(p1)
	receiver := WrapNetConnLimit(p2, 1<<20)
	defer sender.Close()
	defer receiver.Close()
	go sender.Send(Message{Type: "ok", Body: make([]byte, 32<<10)})
	m, err := receiver.Recv()
	if err != nil || m.Type != "ok" || len(m.Body) != 32<<10 {
		t.Fatalf("recv under limit = %v, %v", m.Type, err)
	}
}

// ---------------------------------------------------------------------------
// DialRetry.

type flakyDialer struct {
	failures int
	calls    int
}

func (f *flakyDialer) dial(addr string) (Conn, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, errors.New("connection refused")
	}
	a, b := Pair()
	_ = b // the far end is irrelevant here
	return a, nil
}

func TestDialRetryEventualSuccess(t *testing.T) {
	reg := telemetry.NewRegistry()
	d := &flakyDialer{failures: 2}
	var slept []time.Duration
	pol := RetryPolicy{
		Attempts:  5,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  3 * time.Second,
		Seed:      42,
		Sleep:     func(d time.Duration) { slept = append(slept, d) },
		Dial:      d.dial,
		Telemetry: reg,
	}
	conn, err := DialRetry("db1:9000", pol)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if d.calls != 3 {
		t.Errorf("dial calls = %d, want 3", d.calls)
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v, want 2 backoffs", slept)
	}
	// Jittered exponential backoff: each delay lands in [base·mult^i/2,
	// base·mult^i] with the default 0.5 jitter.
	for i, s := range slept {
		ideal := 100 * time.Millisecond << i
		if s < ideal/2 || s > ideal {
			t.Errorf("backoff %d = %v, want within [%v, %v]", i, s, ideal/2, ideal)
		}
	}
	if got := reg.Counter("transport_dial_attempts", "addr", "db1:9000").Value(); got != 3 {
		t.Errorf("attempts counter = %d, want 3", got)
	}
	if got := reg.Counter("transport_dial_retries", "addr", "db1:9000").Value(); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
	if got := reg.Counter("transport_dial_failures", "addr", "db1:9000").Value(); got != 0 {
		t.Errorf("failures counter = %d, want 0", got)
	}
}

func TestDialRetryDeterministicSchedule(t *testing.T) {
	schedule := func() []time.Duration {
		var slept []time.Duration
		pol := RetryPolicy{
			Attempts: 4,
			Seed:     7,
			Sleep:    func(d time.Duration) { slept = append(slept, d) },
			Dial:     func(string) (Conn, error) { return nil, errors.New("down") },
		}
		DialRetry("db2:9000", pol)
		return slept
	}
	first, second := schedule(), schedule()
	if len(first) != 3 {
		t.Fatalf("backoffs = %v, want 3", first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("schedule not deterministic at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestDialRetryExhaustion(t *testing.T) {
	reg := telemetry.NewRegistry()
	sentinel := errors.New("network unreachable")
	pol := RetryPolicy{
		Attempts:  3,
		Sleep:     func(time.Duration) {},
		Dial:      func(string) (Conn, error) { return nil, sentinel },
		Telemetry: reg,
	}
	_, err := DialRetry("db3:9000", pol)
	if !errors.Is(err, sentinel) {
		t.Fatalf("exhaustion error = %v, want to wrap the last dial error", err)
	}
	if !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Errorf("error missing attempt count: %v", err)
	}
	if got := reg.Counter("transport_dial_failures", "addr", "db3:9000").Value(); got != 1 {
		t.Errorf("failures counter = %d, want 1", got)
	}
}

func TestBackoffCappedAtMaxDelay(t *testing.T) {
	pol := RetryPolicy{}.withDefaults("x")
	rng := seqRand{state: 1}
	for i := 0; i < 12; i++ {
		if d := pol.backoff(&rng, i); d > pol.MaxDelay {
			t.Errorf("backoff(%d) = %v exceeds cap %v", i, d, pol.MaxDelay)
		}
	}
}

// ---------------------------------------------------------------------------
// Fault injection.

func TestFaultDropSend(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	reg := telemetry.NewRegistry()
	fa := WrapFault(a, &FaultPlan{Class: FaultDrop, SendOp: 0, RecvOp: -1, Telemetry: reg})
	if err := fa.Send(Message{Type: "lost"}); err != nil {
		t.Fatal(err)
	}
	if err := fa.Send(Message{Type: "kept"}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil || m.Type != "kept" {
		t.Errorf("first delivered message = %v, %v; want the second send", m, err)
	}
	if got := reg.Counter("transport_faults_injected", "class", "drop", "dir", "send").Value(); got != 1 {
		t.Errorf("injection counter = %d, want 1", got)
	}
}

func TestFaultDropRecv(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	fb := WrapFault(b, &FaultPlan{Class: FaultDrop, SendOp: -1, RecvOp: 0})
	a.Send(Message{Type: "eaten"})
	a.Send(Message{Type: "kept"})
	m, err := fb.Recv()
	if err != nil || m.Type != "kept" {
		t.Errorf("recv past dropped message = %v, %v", m, err)
	}
}

func TestFaultDuplicate(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	fa := WrapFault(a, &FaultPlan{Class: FaultDuplicate, SendOp: 0, RecvOp: -1})
	fa.Send(Message{Type: "twin", Body: []byte{1}})
	for i := 0; i < 2; i++ {
		m, err := b.Recv()
		if err != nil || m.Type != "twin" {
			t.Fatalf("copy %d = %v, %v", i, m, err)
		}
	}
}

func TestFaultDuplicateRecv(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	fb := WrapFault(b, &FaultPlan{Class: FaultDuplicate, SendOp: -1, RecvOp: 0})
	a.Send(Message{Type: "twin"})
	for i := 0; i < 2; i++ {
		m, err := fb.Recv()
		if err != nil || m.Type != "twin" {
			t.Fatalf("copy %d = %v, %v", i, m, err)
		}
	}
}

func TestFaultCorruptDeterministic(t *testing.T) {
	flip := func() int {
		a, b := Pair()
		defer a.Close()
		defer b.Close()
		fa := WrapFault(a, &FaultPlan{Class: FaultCorrupt, SendOp: 0, RecvOp: -1, Seed: 99})
		orig := []byte{10, 20, 30, 40, 50}
		fa.Send(Message{Type: "c", Body: append([]byte(nil), orig...)})
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		pos := -1
		for i := range orig {
			if m.Body[i] != orig[i] {
				if pos >= 0 {
					t.Fatalf("more than one byte flipped: %v", m.Body)
				}
				pos = i
			}
		}
		if pos < 0 {
			t.Fatal("no byte flipped")
		}
		return pos
	}
	if p1, p2 := flip(), flip(); p1 != p2 {
		t.Errorf("corrupt position not deterministic: %d vs %d", p1, p2)
	}
}

func TestFaultCorruptCopiesBody(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	fa := WrapFault(a, &FaultPlan{Class: FaultCorrupt, SendOp: 0, RecvOp: -1})
	body := []byte{1, 2, 3, 4}
	fa.Send(Message{Type: "c", Body: body})
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	// The sender's slice must be untouched — on the in-memory transport
	// the message body is shared, and a fault wrapper that scribbles on
	// the caller's buffer would corrupt protocol state, not the wire.
	for i, v := range []byte{1, 2, 3, 4} {
		if body[i] != v {
			t.Fatalf("sender's body mutated: %v", body)
		}
	}
}

func TestFaultTruncate(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	fa := WrapFault(a, &FaultPlan{Class: FaultTruncate, SendOp: 0, RecvOp: -1})
	fa.Send(Message{Type: "t", Body: make([]byte, 10)})
	m, err := b.Recv()
	if err != nil || len(m.Body) != 5 {
		t.Errorf("truncated body = %d bytes, %v; want 5", len(m.Body), err)
	}
}

func TestFaultDelay(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	fa := WrapFault(a, &FaultPlan{Class: FaultDelay, SendOp: 0, RecvOp: -1, Delay: 40 * time.Millisecond})
	start := time.Now()
	fa.Send(Message{Type: "slow"})
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("delayed send returned after %v, want >= 40ms", d)
	}
	if m, err := b.Recv(); err != nil || m.Type != "slow" {
		t.Errorf("delayed message = %v, %v", m, err)
	}
}

func TestFaultCloseSend(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	fa := WrapFault(a, &FaultPlan{Class: FaultClose, SendOp: 1, RecvOp: -1})
	if err := fa.Send(Message{Type: "first"}); err != nil {
		t.Fatal(err)
	}
	if err := fa.Send(Message{Type: "second"}); err == nil {
		t.Error("send after injected close succeeded")
	}
	// The peer sees the close as EOF once the first message is drained.
	if m, err := b.Recv(); err != nil || m.Type != "first" {
		t.Fatalf("drain = %v, %v", m, err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Errorf("peer recv after injected close = %v, want io.EOF", err)
	}
}

func TestFaultCloseRecv(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	fb := WrapFault(b, &FaultPlan{Class: FaultClose, SendOp: -1, RecvOp: 0})
	a.Send(Message{Type: "never-seen"})
	if _, err := fb.Recv(); err == nil {
		t.Error("recv with injected close succeeded")
	}
}

func TestFaultExpectGoesThroughFaults(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	fb := WrapFault(b, &FaultPlan{Class: FaultDrop, SendOp: -1, RecvOp: 0})
	a.Send(Message{Type: "dropped"})
	a.Send(Message{Type: "wanted"})
	m, err := fb.Expect("wanted")
	if err != nil || m.Type != "wanted" {
		t.Errorf("expect through fault wrapper = %v, %v", m, err)
	}
}

func TestFaultNoneTransparent(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	fa := WrapFault(a, &FaultPlan{Class: FaultNone, SendOp: 0, RecvOp: 0})
	for i := 0; i < 3; i++ {
		if err := fa.Send(Message{Type: "m"}); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFaultOverTCP(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		fc := WrapFault(c, &FaultPlan{Class: FaultTruncate, SendOp: 0, RecvOp: -1})
		done <- fc.Send(Message{Type: "t", Body: make([]byte, 8)})
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.Recv()
	if err != nil || len(m.Body) != 4 {
		t.Errorf("truncate over tcp: %d bytes, %v; want 4", len(m.Body), err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFaultClassString(t *testing.T) {
	want := map[FaultClass]string{
		FaultNone: "none", FaultDrop: "drop", FaultDelay: "delay",
		FaultDuplicate: "duplicate", FaultCorrupt: "corrupt",
		FaultTruncate: "truncate", FaultClose: "close",
	}
	for class, name := range want {
		if class.String() != name {
			t.Errorf("%d.String() = %q, want %q", class, class.String(), name)
		}
	}
}
