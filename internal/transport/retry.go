package transport

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
)

// RetryPolicy configures DialRetry: capped exponential backoff with
// deterministic, seeded jitter. The zero value is usable; every field
// falls back to a sane default (see withDefaults).
type RetryPolicy struct {
	// Attempts is the total number of dial attempts (first try included).
	// Default 5.
	Attempts int
	// BaseDelay is the wait after the first failure. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 3s.
	MaxDelay time.Duration
	// Multiplier grows the delay between attempts. Default 2.
	Multiplier float64
	// Jitter is the fraction of each delay randomized away: delay is
	// scaled by a seeded uniform draw from [1-Jitter, 1]. Default 0.5;
	// negative disables jitter.
	Jitter float64
	// Seed drives the jitter sequence. 0 derives a stable seed from the
	// address, so backoff timing is deterministic for a given target —
	// tests can assert exact schedules.
	Seed uint64
	// Sleep is the wait function; tests replace it to capture the
	// schedule without waiting. Default time.Sleep.
	Sleep func(time.Duration)
	// Dial performs one connection attempt; tests replace it to inject
	// failures. Default Dial (TCP).
	Dial func(addr string) (Conn, error)
	// Telemetry, when set, receives transport_dial_attempts,
	// transport_dial_retries and transport_dial_failures counters
	// labeled by address.
	Telemetry *telemetry.Registry
}

func (p RetryPolicy) withDefaults(addr string) RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 3 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	} else if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.Seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(addr))
		p.Seed = h.Sum64()
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Dial == nil {
		p.Dial = Dial
	}
	return p
}

// backoff returns the wait before attempt i+1 (i counts failures so far,
// starting at 0): min(MaxDelay, BaseDelay·Multiplier^i) scaled into
// [1-Jitter, 1] by the seeded PRNG.
func (p RetryPolicy) backoff(rng *seqRand, i int) time.Duration {
	d := float64(p.BaseDelay)
	for k := 0; k < i; k++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter*rng.float()
	}
	return time.Duration(d)
}

// DialRetry connects to addr, retrying refused or failed dials with
// capped jittered exponential backoff per pol. It returns the first
// successful connection, or the last dial error wrapped with the attempt
// count once the policy's attempts are exhausted.
func DialRetry(addr string, pol RetryPolicy) (Conn, error) {
	pol = pol.withDefaults(addr)
	attempts := pol.Telemetry.Counter("transport_dial_attempts", "addr", addr)
	retries := pol.Telemetry.Counter("transport_dial_retries", "addr", addr)
	failures := pol.Telemetry.Counter("transport_dial_failures", "addr", addr)
	rng := seqRand{state: pol.Seed}
	var lastErr error
	for i := 0; i < pol.Attempts; i++ {
		if i > 0 {
			retries.Add(1)
			pol.Sleep(pol.backoff(&rng, i-1))
		}
		attempts.Add(1)
		conn, err := pol.Dial(addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	failures.Add(1)
	return nil, fmt.Errorf("transport: dial %s: gave up after %d attempts: %w", addr, pol.Attempts, lastErr)
}
