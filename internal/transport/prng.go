package transport

// seqRand is a tiny deterministic PRNG (splitmix64). It exists because
// transport is a protocol-adjacent package where math/rand is lint-banned
// (seclint weakrand) and crypto/rand would make retry jitter and fault
// schedules unreproducible. It is used ONLY for backoff jitter and fault
// injection schedules — never for key material, nonces or anything a
// protocol peer observes as a security value.
type seqRand struct{ state uint64 }

// next returns the next 64-bit value of the sequence.
func (r *seqRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *seqRand) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// mix64 hashes a pair of values into a single splitmix64 output; used to
// derive independent per-operation decisions from one seed without shared
// mutable PRNG state.
func mix64(a, b uint64) uint64 {
	r := seqRand{state: a ^ (b * 0x9e3779b97f4a7c15)}
	return r.next()
}
