package transport

import (
	"fmt"
	"sync"
	"time"

	"github.com/secmediation/secmediation/internal/telemetry"
)

// FaultClass enumerates the injectable link faults. Each models a failure
// the mediated protocols must survive (correct result or clean typed
// error — never a hang): lost, slow, replayed, flipped, cut-short and
// mid-round-closed messages.
type FaultClass uint8

const (
	// FaultNone injects nothing; the wrapper is transparent.
	FaultNone FaultClass = iota
	// FaultDrop silently discards the selected message (a send never
	// reaches the wire; a recv is consumed and thrown away).
	FaultDrop
	// FaultDelay holds the selected message for Plan.Delay before
	// passing it on.
	FaultDelay
	// FaultDuplicate delivers the selected message twice.
	FaultDuplicate
	// FaultCorrupt flips one seeded byte of the message body.
	FaultCorrupt
	// FaultTruncate cuts the message body to half its length.
	FaultTruncate
	// FaultClose closes the underlying connection at the selected
	// operation (close-mid-round).
	FaultClose
)

// String implements fmt.Stringer.
func (f FaultClass) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultCorrupt:
		return "corrupt"
	case FaultTruncate:
		return "truncate"
	case FaultClose:
		return "close"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// FaultPlan is a deterministic injection schedule for one wrapped
// endpoint. Operations are counted per direction from 0 (the first Send
// is send op 0, the first Recv is recv op 0); the plan selects ops by
// index, so a given (plan, protocol) pair always faults the same round.
type FaultPlan struct {
	// Class is the fault to inject.
	Class FaultClass
	// SendOp selects the 0-based Send operation to fault; negative
	// disables send-side injection.
	SendOp int
	// RecvOp selects the 0-based Recv operation to fault; negative
	// disables recv-side injection.
	RecvOp int
	// Repeat extends the fault to every operation at or after the
	// selected index, not just the one.
	Repeat bool
	// Delay is the hold time for FaultDelay. Default 50ms.
	Delay time.Duration
	// Seed drives the deterministic choices within a faulted message
	// (e.g. which body byte FaultCorrupt flips).
	Seed uint64
	// Telemetry, when set, counts injections in
	// transport_faults_injected labeled by class and direction.
	Telemetry *telemetry.Registry
}

// hits reports whether op index i is selected.
func (p *FaultPlan) hits(sel, i int) bool {
	if p.Class == FaultNone || sel < 0 {
		return false
	}
	if p.Repeat {
		return i >= sel
	}
	return i == sel
}

func (p *FaultPlan) delay() time.Duration {
	if p.Delay > 0 {
		return p.Delay
	}
	return 50 * time.Millisecond
}

// WrapFault composes a fault-injecting wrapper over any Conn (in-memory
// or TCP). The wrapper is transparent except at the operations the plan
// selects. It is safe for the same one-sender/one-receiver concurrency
// the underlying transports support.
func WrapFault(c Conn, plan *FaultPlan) Conn {
	return &faultConn{inner: c, plan: plan}
}

// faultConn implements Conn by delegating to inner and perturbing the
// operations its plan selects.
type faultConn struct {
	inner Conn
	plan  *FaultPlan

	mu      sync.Mutex
	sendOps int
	recvOps int
	pending []Message // recv-side duplicates awaiting delivery
}

func (c *faultConn) count(dir string) {
	reg := c.plan.Telemetry
	if reg.Enabled() {
		reg.Counter("transport_faults_injected",
			"class", c.plan.Class.String(), "dir", dir).Add(1)
	}
}

// corruptBody returns a copy of body with one seeded byte flipped. The
// copy matters: on the in-memory transport the slice is shared with the
// sender.
func (c *faultConn) corruptBody(body []byte, op int) []byte {
	if len(body) == 0 {
		return body
	}
	out := make([]byte, len(body))
	copy(out, body)
	pos := mix64(c.plan.Seed, uint64(op)) % uint64(len(out))
	out[pos] ^= 0xff
	return out
}

// Send implements Conn.
func (c *faultConn) Send(m Message) error {
	c.mu.Lock()
	op := c.sendOps
	c.sendOps++
	faulted := c.plan.hits(c.plan.SendOp, op)
	c.mu.Unlock()
	if !faulted {
		return c.inner.Send(m)
	}
	c.count("send")
	switch c.plan.Class {
	case FaultDrop:
		return nil
	case FaultDelay:
		time.Sleep(c.plan.delay())
		return c.inner.Send(m)
	case FaultDuplicate:
		if err := c.inner.Send(m); err != nil {
			return err
		}
		return c.inner.Send(m)
	case FaultCorrupt:
		m.Body = c.corruptBody(m.Body, op)
		return c.inner.Send(m)
	case FaultTruncate:
		m.Body = append([]byte(nil), m.Body[:len(m.Body)/2]...)
		return c.inner.Send(m)
	case FaultClose:
		if err := c.inner.Close(); err != nil {
			return err
		}
		return c.inner.Send(m)
	default:
		return c.inner.Send(m)
	}
}

// Recv implements Conn.
func (c *faultConn) Recv() (Message, error) {
	for {
		c.mu.Lock()
		if len(c.pending) > 0 {
			m := c.pending[0]
			c.pending = c.pending[1:]
			c.mu.Unlock()
			return m, nil
		}
		op := c.recvOps
		c.recvOps++
		faulted := c.plan.hits(c.plan.RecvOp, op)
		c.mu.Unlock()
		if !faulted {
			return c.inner.Recv()
		}
		c.count("recv")
		switch c.plan.Class {
		case FaultDrop:
			// Consume and discard, then keep receiving; the deadline
			// bounds the wait for a message that will never come.
			if _, err := c.inner.Recv(); err != nil {
				return Message{}, err
			}
			continue
		case FaultDelay:
			m, err := c.inner.Recv()
			if err != nil {
				return Message{}, err
			}
			time.Sleep(c.plan.delay())
			return m, nil
		case FaultDuplicate:
			m, err := c.inner.Recv()
			if err != nil {
				return Message{}, err
			}
			c.mu.Lock()
			c.pending = append(c.pending, m)
			c.mu.Unlock()
			return m, nil
		case FaultCorrupt:
			m, err := c.inner.Recv()
			if err != nil {
				return Message{}, err
			}
			m.Body = c.corruptBody(m.Body, op)
			return m, nil
		case FaultTruncate:
			m, err := c.inner.Recv()
			if err != nil {
				return Message{}, err
			}
			m.Body = append([]byte(nil), m.Body[:len(m.Body)/2]...)
			return m, nil
		case FaultClose:
			if err := c.inner.Close(); err != nil {
				return Message{}, err
			}
			return c.inner.Recv()
		default:
			return c.inner.Recv()
		}
	}
}

// Expect implements Conn in terms of the wrapper's own Recv so faults
// apply to expected messages too.
func (c *faultConn) Expect(typ string) (Message, error) { return expect(c, typ) }

// Close implements Conn.
func (c *faultConn) Close() error { return c.inner.Close() }

// SetTimeout implements Conn.
func (c *faultConn) SetTimeout(d time.Duration) { c.inner.SetTimeout(d) }

// Stats implements Conn.
func (c *faultConn) Stats() *Stats { return c.inner.Stats() }
