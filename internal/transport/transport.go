// Package transport provides the message-passing fabric between the
// mediation parties (client, mediator, datasources): typed message
// envelopes, an in-memory duplex channel pair for single-process runs and
// tests, a TCP/gob transport for multi-process deployment, and per-link
// traffic accounting used by the Section 6 cost experiments.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTimeout reports that a Send or Recv exceeded the timeout configured
// with Conn.SetTimeout. Match it with errors.Is; protocols treat it as a
// dead peer and abort.
var ErrTimeout = errors.New("transport: i/o timeout")

// ErrTooLarge reports an inbound message whose declared size exceeds the
// receiver's limit (see WrapNetConnLimit). The connection is poisoned:
// subsequent Recv calls keep failing, because the stream position inside
// the oversized frame is lost.
var ErrTooLarge = errors.New("transport: message exceeds size limit")

// ErrIntegrity reports a message body whose digest no longer matches its
// payload: the message was corrupted or truncated in flight. Without the
// check, a flipped byte that keeps the payload decodable silently changes
// the protocol's inputs — a DAS server query with a flipped partition
// index returns a wrong (smaller) join instead of an error. The error is
// a link fault, so retry orchestration treats it as transient.
var ErrIntegrity = errors.New("transport: integrity: message digest mismatch")

// Message is the unit of exchange between parties: a protocol-defined type
// tag and a gob-encoded body.
type Message struct {
	// Type tags the message for dispatching (e.g. "das.partial-result").
	Type string
	// Body is the gob-encoded payload.
	Body []byte
}

// size returns the accounted wire size of the message.
func (m Message) size() int { return len(m.Type) + len(m.Body) }

// Size returns the accounted wire size of the message (type tag plus
// body bytes) — the unit the in-memory transport counts in. Exported for
// Conn wrappers outside this package (the session mux) that maintain
// their own per-endpoint Stats.
func (m Message) Size() int { return m.size() }

// Encode gob-encodes a payload struct into a message body.
// seclint:wire gob-encodes the payload for a link
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes a message body into a payload struct.
func Decode(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}

// sumLen is the length of the integrity digest prefixed to every
// message body by NewMessage and verified by Payload.
const sumLen = 8

// seal prefixes a payload with its FNV-1a digest. The digest detects
// accidental in-flight corruption and truncation (so protocols fail
// typed instead of computing on mangled inputs); it is NOT a MAC —
// tamper resistance comes from the hybrid-encryption layer above, per
// the paper's trust model.
func seal(payload []byte) []byte {
	h := fnv.New64a()
	if _, err := h.Write(payload); err != nil {
		panic("transport: fnv write: " + err.Error())
	}
	out := make([]byte, sumLen+len(payload))
	binary.BigEndian.PutUint64(out, h.Sum64())
	copy(out[sumLen:], payload)
	return out
}

// Payload verifies a received message's integrity digest and returns
// the encoded payload, or an ErrIntegrity-wrapped error when the body
// was corrupted or truncated in flight.
func Payload(m Message) ([]byte, error) {
	if len(m.Body) < sumLen {
		return nil, fmt.Errorf("message %q: %d-byte body: %w", m.Type, len(m.Body), ErrIntegrity)
	}
	h := fnv.New64a()
	if _, err := h.Write(m.Body[sumLen:]); err != nil {
		panic("transport: fnv write: " + err.Error())
	}
	if binary.BigEndian.Uint64(m.Body) != h.Sum64() {
		return nil, fmt.Errorf("message %q: %w", m.Type, ErrIntegrity)
	}
	return m.Body[sumLen:], nil
}

// NewMessage builds a message with an encoded, integrity-sealed body.
// seclint:wire gob-encodes the payload for a link
func NewMessage(typ string, v any) (Message, error) {
	b, err := Encode(v)
	if err != nil {
		return Message{}, err
	}
	return Message{Type: typ, Body: seal(b)}, nil
}

// Conn is one endpoint of a duplex party-to-party link.
type Conn interface {
	// Send transmits a message to the peer.
	Send(Message) error
	// Recv blocks for the next message from the peer.
	Recv() (Message, error)
	// Expect receives the next message and verifies its type tag; a
	// mismatch is a protocol error.
	Expect(typ string) (Message, error)
	// Close releases the link. Pending Recv calls fail.
	Close() error
	// SetTimeout bounds every subsequent Send and Recv to d. Zero or
	// negative disables the bound. A timed-out operation fails with an
	// error matching ErrTimeout (via errors.Is).
	SetTimeout(d time.Duration)
	// Stats returns this endpoint's traffic counters.
	Stats() *Stats
}

// Stats counts traffic through one endpoint. All fields are managed
// atomically; read them only through the accessor methods while the link
// is live.
type Stats struct {
	msgsSent, msgsRecv   atomic.Int64
	bytesSent, bytesRecv atomic.Int64
}

// MsgsSent returns the number of messages sent.
func (s *Stats) MsgsSent() int64 { return s.msgsSent.Load() }

// MsgsRecv returns the number of messages received.
func (s *Stats) MsgsRecv() int64 { return s.msgsRecv.Load() }

// BytesSent returns the accounted bytes sent.
func (s *Stats) BytesSent() int64 { return s.bytesSent.Load() }

// BytesRecv returns the accounted bytes received.
func (s *Stats) BytesRecv() int64 { return s.bytesRecv.Load() }

// CountSend records one sent message of the given accounted size.
// Exported for Conn wrappers outside this package (the session mux) that
// attribute a shared link's traffic to per-session counters.
func (s *Stats) CountSend(bytes int64) {
	s.msgsSent.Add(1)
	s.bytesSent.Add(bytes)
}

// CountRecv records one received message of the given accounted size.
func (s *Stats) CountRecv(bytes int64) {
	s.msgsRecv.Add(1)
	s.bytesRecv.Add(bytes)
}

// chanConn is an in-memory Conn over buffered channels.
type chanConn struct {
	out, in   chan Message
	closeOnce sync.Once
	closed    chan struct{}
	peerDone  chan struct{}
	timeout   atomic.Int64 // nanoseconds; 0 disables
	stats     Stats
}

// Pair creates a connected in-memory duplex link and returns its two
// endpoints. The buffer is generous so that strictly alternating protocols
// never deadlock even when one side sends several messages per round.
func Pair() (Conn, Conn) {
	ab := make(chan Message, 1024)
	ba := make(chan Message, 1024)
	a := &chanConn{out: ab, in: ba, closed: make(chan struct{})}
	b := &chanConn{out: ba, in: ab, closed: make(chan struct{})}
	a.peerDone = b.closed
	b.peerDone = a.closed
	return a, b
}

// Send implements Conn.
func (c *chanConn) Send(m Message) error {
	// Closure checks must win over a ready buffer slot, so probe them
	// before the (possibly non-blocking) send.
	select {
	case <-c.closed:
		return fmt.Errorf("transport: send on closed connection")
	default:
	}
	select {
	case <-c.peerDone:
		return fmt.Errorf("transport: peer closed")
	default:
	}
	deadline, stop := c.deadline()
	defer stop()
	select {
	case <-c.closed:
		return fmt.Errorf("transport: send on closed connection")
	case <-c.peerDone:
		return fmt.Errorf("transport: peer closed")
	case c.out <- m:
		c.stats.msgsSent.Add(1)
		c.stats.bytesSent.Add(int64(m.size()))
		return nil
	case <-deadline:
		return fmt.Errorf("transport: send: %w", ErrTimeout)
	}
}

// deadline returns a channel that fires when the configured timeout
// elapses (nil — never — when timeouts are disabled) and a stop function
// releasing the backing timer.
func (c *chanConn) deadline() (<-chan time.Time, func()) {
	d := time.Duration(c.timeout.Load())
	if d <= 0 {
		return nil, func() {}
	}
	t := time.NewTimer(d)
	return t.C, func() { t.Stop() }
}

// Recv implements Conn.
func (c *chanConn) Recv() (Message, error) {
	select {
	case <-c.closed:
		return Message{}, fmt.Errorf("transport: recv on closed connection")
	default:
	}
	deadline, stop := c.deadline()
	defer stop()
	select {
	case <-c.closed:
		return Message{}, fmt.Errorf("transport: recv on closed connection")
	case m := <-c.in:
		c.stats.msgsRecv.Add(1)
		c.stats.bytesRecv.Add(int64(m.size()))
		return m, nil
	case <-deadline:
		return Message{}, fmt.Errorf("transport: recv: %w", ErrTimeout)
	case <-c.peerDone:
		// Drain messages the peer sent before closing.
		select {
		case m := <-c.in:
			c.stats.msgsRecv.Add(1)
			c.stats.bytesRecv.Add(int64(m.size()))
			return m, nil
		default:
			return Message{}, io.EOF
		}
	}
}

// Expect implements Conn.
func (c *chanConn) Expect(typ string) (Message, error) {
	return expect(c, typ)
}

// Close implements Conn.
func (c *chanConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// SetTimeout implements Conn.
func (c *chanConn) SetTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.timeout.Store(int64(d))
}

// Stats implements Conn.
func (c *chanConn) Stats() *Stats { return &c.stats }

func expect(c Conn, typ string) (Message, error) {
	m, err := c.Recv()
	if err != nil {
		return Message{}, err
	}
	if m.Type != typ {
		return Message{}, fmt.Errorf("transport: expected message %q, got %q", typ, m.Type)
	}
	return m, nil
}
