package credential

import (
	"crypto/rsa"
	"fmt"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	"github.com/secmediation/secmediation/internal/relation"
)

// Requirement is one clause of an access policy: the client must present a
// verifiable credential attesting Property.
type Requirement struct {
	Property Property
}

// RowFilter optionally narrows the granted rows: when the client's
// credentials satisfy a policy only via the filter's requirement, the
// partial result is restricted to rows matching Predicate — the paper's
// "partial results might be filtered in order to return only those records
// for which access permissions exist".
type RowFilter struct {
	// IfProperty selects this filter when the granting credential carries
	// the property.
	IfProperty Property
	// Predicate keeps only matching rows (evaluated against the source's
	// relation schema).
	Predicate algebra.Expr
}

// Policy is a datasource's access policy for one relation: the client must
// satisfy all Require clauses; the narrowest applicable RowFilter (first
// match wins) is applied to the partial result.
type Policy struct {
	// Relation names the protected relation.
	Relation string
	// Require lists properties that must all be attested.
	Require []Requirement
	// Filters lists optional row-level restrictions.
	Filters []RowFilter
}

// Decision is the outcome of an access check.
type Decision struct {
	// Granted reports whether the query may run at all.
	Granted bool
	// ClientKey is the encryption key extracted from the first credential
	// that satisfied a requirement; the delivery phase encrypts under it.
	ClientKey *rsa.PublicKey
	// Filter is the row-level predicate to apply, or nil for full access.
	Filter algebra.Expr
	// Reason explains denials.
	Reason string
}

// Check evaluates the policy against a credential set, verifying every
// used credential against the trusted CA keys. Credentials that do not
// verify are ignored (semi-honest mediators may forward stale ones).
func (p *Policy) Check(creds Set, trusted []*rsa.PublicKey, now time.Time) Decision {
	verified := make(Set, 0, len(creds))
	for _, c := range creds {
		for _, ca := range trusted {
			if err := c.Verify(ca, now); err == nil {
				verified = append(verified, c)
				break
			}
		}
	}
	if len(verified) == 0 {
		return Decision{Reason: "no verifiable credentials presented"}
	}
	var keySource *Credential
	for _, req := range p.Require {
		found := false
		for _, c := range verified {
			if c.HasProperty(req.Property.Name, req.Property.Value) {
				found = true
				if keySource == nil {
					keySource = c
				}
				break
			}
		}
		if !found {
			return Decision{Reason: fmt.Sprintf("missing property %s=%s", req.Property.Name, req.Property.Value)}
		}
	}
	if keySource == nil { // policy with no requirements: any verified credential supplies the key
		keySource = verified[0]
	}
	key, err := keySource.ClientKey()
	if err != nil {
		return Decision{Reason: err.Error()}
	}
	d := Decision{Granted: true, ClientKey: key}
	for _, f := range p.Filters {
		applies := false
		for _, c := range verified {
			if c.HasProperty(f.IfProperty.Name, f.IfProperty.Value) {
				applies = true
				break
			}
		}
		if applies {
			d.Filter = f.Predicate
			break
		}
	}
	return d
}

// ApplyFilter applies a decision's row filter to a partial result (no-op
// when the decision grants full access).
func (d Decision) ApplyFilter(r *relation.Relation) (*relation.Relation, error) {
	if d.Filter == nil {
		return r, nil
	}
	return algebra.Select(r, d.Filter)
}
