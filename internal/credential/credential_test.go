package credential

import (
	"crypto/rand"
	"crypto/rsa"
	"testing"
	"time"

	"github.com/secmediation/secmediation/internal/algebra"
	rel "github.com/secmediation/secmediation/internal/relation"
)

func newClientKey(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	k, err := rsa.GenerateKey(rand.Reader, 1024) // small key: test-only
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestIssueAndVerify(t *testing.T) {
	ca, err := NewAuthority("TestCA")
	if err != nil {
		t.Fatal(err)
	}
	ck := newClientKey(t)
	cred, err := ca.Issue(&ck.PublicKey, []Property{{"role", "physician"}, {"org", "hospital-a"}}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := cred.Verify(ca.PublicKey(), time.Now()); err != nil {
		t.Errorf("fresh credential does not verify: %v", err)
	}
	if !cred.HasProperty("role", "physician") || cred.HasProperty("role", "nurse") {
		t.Error("HasProperty wrong")
	}
	got, err := cred.ClientKey()
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(ck.PublicKey.N) != 0 {
		t.Error("embedded client key mismatch")
	}
	if ca.Name() != "TestCA" {
		t.Error("authority name")
	}
}

func TestVerifyRejectsTamperingAndExpiry(t *testing.T) {
	ca, _ := NewAuthority("TestCA")
	other, _ := NewAuthority("OtherCA")
	ck := newClientKey(t)
	cred, err := ca.Issue(&ck.PublicKey, []Property{{"role", "physician"}}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong CA key.
	if err := cred.Verify(other.PublicKey(), time.Now()); err == nil {
		t.Error("credential verified against wrong CA")
	}
	// Expired.
	if err := cred.Verify(ca.PublicKey(), time.Now().Add(2*time.Hour)); err == nil {
		t.Error("expired credential verified")
	}
	// Property tampering.
	cred.Properties[0].Value = "admin"
	if err := cred.Verify(ca.PublicKey(), time.Now()); err == nil {
		t.Error("tampered credential verified")
	}
}

func TestPropertyOrderCanonical(t *testing.T) {
	ca, _ := NewAuthority("TestCA")
	ck := newClientKey(t)
	a, _ := ca.Issue(&ck.PublicKey, []Property{{"b", "2"}, {"a", "1"}}, time.Hour)
	if a.Properties[0].Name != "a" {
		t.Errorf("properties not sorted: %v", a.Properties)
	}
}

func TestIdentityCertificate(t *testing.T) {
	ca, _ := NewAuthority("TestCA")
	ck := newClientKey(t)
	ic, err := ca.IssueIdentity("alice@example.org", &ck.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Identity != "alice@example.org" || len(ic.Signature) == 0 {
		t.Error("identity certificate incomplete")
	}
}

func TestSetWithProperty(t *testing.T) {
	ca, _ := NewAuthority("TestCA")
	ck := newClientKey(t)
	c1, _ := ca.Issue(&ck.PublicKey, []Property{{"role", "physician"}}, time.Hour)
	c2, _ := ca.Issue(&ck.PublicKey, []Property{{"org", "hospital-a"}}, time.Hour)
	s := Set{c1, c2}
	if got := s.WithProperty("role"); len(got) != 1 || got[0] != c1 {
		t.Errorf("WithProperty(role) = %v", got)
	}
	if got := s.WithProperty("nothing"); len(got) != 0 {
		t.Errorf("WithProperty(nothing) = %v", got)
	}
}

func TestPolicyCheck(t *testing.T) {
	ca, _ := NewAuthority("TestCA")
	ck := newClientKey(t)
	physCred, _ := ca.Issue(&ck.PublicKey, []Property{{"role", "physician"}}, time.Hour)
	internCred, _ := ca.Issue(&ck.PublicKey, []Property{{"role", "intern"}}, time.Hour)
	trusted := []*rsa.PublicKey{ca.PublicKey()}

	pol := &Policy{
		Relation: "Patients",
		Require:  []Requirement{{Property{"role", "physician"}}},
	}
	d := pol.Check(Set{physCred}, trusted, time.Now())
	if !d.Granted || d.ClientKey == nil || d.Filter != nil {
		t.Errorf("physician denied: %+v", d)
	}
	d = pol.Check(Set{internCred}, trusted, time.Now())
	if d.Granted {
		t.Error("intern granted")
	}
	d = pol.Check(Set{}, trusted, time.Now())
	if d.Granted || d.Reason == "" {
		t.Error("empty credential set granted or lacks reason")
	}
	// Unverifiable credential (wrong CA) must be ignored.
	rogue, _ := NewAuthority("Rogue")
	rogueCred, _ := rogue.Issue(&ck.PublicKey, []Property{{"role", "physician"}}, time.Hour)
	d = pol.Check(Set{rogueCred}, trusted, time.Now())
	if d.Granted {
		t.Error("rogue credential granted access")
	}
}

func TestPolicyRowFilter(t *testing.T) {
	ca, _ := NewAuthority("TestCA")
	ck := newClientKey(t)
	internCred, _ := ca.Issue(&ck.PublicKey, []Property{{"role", "intern"}}, time.Hour)
	trusted := []*rsa.PublicKey{ca.PublicKey()}

	schema := rel.MustSchema("Patients",
		rel.Column{Name: "id", Kind: rel.KindInt},
		rel.Column{Name: "sensitive", Kind: rel.KindBool})
	data := rel.MustFromTuples(schema,
		rel.Tuple{rel.Int(1), rel.Bool(false)},
		rel.Tuple{rel.Int(2), rel.Bool(true)},
		rel.Tuple{rel.Int(3), rel.Bool(false)},
	)
	pol := &Policy{
		Relation: "Patients",
		Require:  []Requirement{{Property{"role", "intern"}}},
		Filters: []RowFilter{{
			IfProperty: Property{"role", "intern"},
			Predicate:  algebra.Compare{Op: algebra.OpEq, Left: algebra.ColumnRef{Name: "sensitive"}, Right: algebra.Literal{Value: rel.Bool(false)}},
		}},
	}
	d := pol.Check(Set{internCred}, trusted, time.Now())
	if !d.Granted || d.Filter == nil {
		t.Fatalf("intern not granted filtered access: %+v", d)
	}
	filtered, err := d.ApplyFilter(data)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Len() != 2 {
		t.Errorf("filtered rows = %d, want 2", filtered.Len())
	}
	// Full access leaves data untouched.
	full := Decision{Granted: true}
	out, err := full.ApplyFilter(data)
	if err != nil || out.Len() != 3 {
		t.Errorf("no-filter ApplyFilter: %d rows, %v", out.Len(), err)
	}
}

func TestPolicyNoRequirements(t *testing.T) {
	ca, _ := NewAuthority("TestCA")
	ck := newClientKey(t)
	cred, _ := ca.Issue(&ck.PublicKey, []Property{{"member", "yes"}}, time.Hour)
	pol := &Policy{Relation: "Public"}
	d := pol.Check(Set{cred}, []*rsa.PublicKey{ca.PublicKey()}, time.Now())
	if !d.Granted || d.ClientKey == nil {
		t.Errorf("open policy denied: %+v", d)
	}
}
