// Package credential implements the MMM system's credential-based access
// control (paper Section 2): a trusted certification authority issues
// credentials that bind *properties* of a client to one of the client's
// public encryption keys — without revealing the client's identity.
// Datasources base access decisions solely on the properties shown; the
// public key inside an accepted credential is what the delivery-phase
// protocols encrypt partial results under.
//
// Signatures are RSA-PSS over a canonical serialization of the credential
// body. Identity certificates (linking identity to a key, kept by the
// client "in a safe place" for legal disputes) are modeled too, but never
// travel with queries.
package credential

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"fmt"
	"sort"
	"time"
)

// Property is a single attested client attribute, e.g. {"role",
// "physician"} or {"clearance", "secret"}.
type Property struct {
	Name  string
	Value string
}

// Credential binds a set of properties to a client public encryption key.
// It deliberately carries no client identity.
type Credential struct {
	// Properties are the attested attributes, kept sorted by (Name, Value).
	Properties []Property
	// ClientKeyDER is the client's public encryption key (PKIX DER). The
	// datasources use it for hybrid encryption of partial results.
	ClientKeyDER []byte
	// NotAfter bounds the credential's validity.
	NotAfter time.Time
	// Issuer names the certification authority.
	Issuer string
	// Signature is the CA's RSA-PSS signature over the canonical body.
	Signature []byte
}

// IdentityCertificate links a client identity to a public key; kept by the
// client, used only out-of-band (e.g. in a legal dispute), never attached
// to queries.
type IdentityCertificate struct {
	Identity     string
	ClientKeyDER []byte
	Issuer       string
	Signature    []byte
}

// Authority is the trusted certification authority of the preparatory
// phase.
type Authority struct {
	name string
	key  *rsa.PrivateKey
}

// NewAuthority creates a CA with a fresh signing key.
func NewAuthority(name string) (*Authority, error) {
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		return nil, fmt.Errorf("credential: authority key: %w", err)
	}
	return &Authority{name: name, key: key}, nil
}

// NewAuthorityWithKey creates a CA from an existing signing key (the
// deployment binaries persist CA keys with internal/keyio).
func NewAuthorityWithKey(name string, key *rsa.PrivateKey) *Authority {
	return &Authority{name: name, key: key}
}

// Name returns the CA's name.
func (a *Authority) Name() string { return a.name }

// PublicKey returns the CA's verification key; datasources are configured
// with the keys of the authorities they trust.
func (a *Authority) PublicKey() *rsa.PublicKey { return &a.key.PublicKey }

// Issue creates a signed credential binding the properties to the client's
// public key, valid for the given duration.
func (a *Authority) Issue(clientKey *rsa.PublicKey, props []Property, validity time.Duration) (*Credential, error) {
	der, err := x509.MarshalPKIXPublicKey(clientKey)
	if err != nil {
		return nil, fmt.Errorf("credential: marshal client key: %w", err)
	}
	sorted := append([]Property(nil), props...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return sorted[i].Value < sorted[j].Value
	})
	c := &Credential{
		Properties:   sorted,
		ClientKeyDER: der,
		NotAfter:     time.Now().Add(validity).UTC().Truncate(time.Second),
		Issuer:       a.name,
	}
	digest := c.digest()
	sig, err := rsa.SignPSS(rand.Reader, a.key, crypto.SHA256, digest, nil)
	if err != nil {
		return nil, fmt.Errorf("credential: sign: %w", err)
	}
	c.Signature = sig
	return c, nil
}

// IssueIdentity creates the identity certificate the client keeps private.
func (a *Authority) IssueIdentity(identity string, clientKey *rsa.PublicKey) (*IdentityCertificate, error) {
	der, err := x509.MarshalPKIXPublicKey(clientKey)
	if err != nil {
		return nil, fmt.Errorf("credential: marshal client key: %w", err)
	}
	ic := &IdentityCertificate{Identity: identity, ClientKeyDER: der, Issuer: a.name}
	h := sha256.New()
	h.Write([]byte("secmediation/identity\x00"))
	writeLV(h, []byte(ic.Identity))
	writeLV(h, ic.ClientKeyDER)
	writeLV(h, []byte(ic.Issuer))
	sig, err := rsa.SignPSS(rand.Reader, a.key, crypto.SHA256, h.Sum(nil), nil)
	if err != nil {
		return nil, fmt.Errorf("credential: sign identity: %w", err)
	}
	ic.Signature = sig
	return ic, nil
}

// digest hashes the canonical credential body (everything but the
// signature) with domain separation and length framing.
func (c *Credential) digest() []byte {
	h := sha256.New()
	h.Write([]byte("secmediation/credential\x00"))
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], uint64(len(c.Properties)))
	h.Write(nb[:])
	for _, p := range c.Properties {
		writeLV(h, []byte(p.Name))
		writeLV(h, []byte(p.Value))
	}
	writeLV(h, c.ClientKeyDER)
	binary.BigEndian.PutUint64(nb[:], uint64(c.NotAfter.Unix()))
	h.Write(nb[:])
	writeLV(h, []byte(c.Issuer))
	return h.Sum(nil)
}

func writeLV(h interface{ Write([]byte) (int, error) }, b []byte) {
	var lb [4]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(b)))
	h.Write(lb[:])
	h.Write(b)
}

// Verify checks the credential's signature against a trusted CA key and
// its validity period against now.
func (c *Credential) Verify(caKey *rsa.PublicKey, now time.Time) error {
	if now.After(c.NotAfter) {
		return fmt.Errorf("credential: expired at %v", c.NotAfter)
	}
	if err := rsa.VerifyPSS(caKey, crypto.SHA256, c.digest(), c.Signature, nil); err != nil {
		return fmt.Errorf("credential: bad signature: %w", err)
	}
	return nil
}

// ClientKey parses the embedded client public key.
func (c *Credential) ClientKey() (*rsa.PublicKey, error) {
	pub, err := x509.ParsePKIXPublicKey(c.ClientKeyDER)
	if err != nil {
		return nil, fmt.Errorf("credential: parse client key: %w", err)
	}
	rsaPub, ok := pub.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("credential: client key is %T, want RSA", pub)
	}
	return rsaPub, nil
}

// HasProperty reports whether the credential attests the given property.
func (c *Credential) HasProperty(name, value string) bool {
	for _, p := range c.Properties {
		if p.Name == name && p.Value == value {
			return true
		}
	}
	return false
}

// Set is the client's credential set CR; the mediator selects subsets CRi
// for each datasource.
type Set []*Credential

// WithProperty returns the subset of credentials attesting the named
// property (any value). This is the mediator's credential-selection
// primitive (Listing 1, step 2).
func (s Set) WithProperty(name string) Set {
	var out Set
	for _, c := range s {
		for _, p := range c.Properties {
			if p.Name == name {
				out = append(out, c)
				break
			}
		}
	}
	return out
}
