// Package seclint is a stdlib-only static-analysis suite for the
// crypto-invariants this codebase's security argument rests on. The Go
// compiler cannot see that join matching must operate on ciphertexts
// only, that protocol randomness must come from crypto/rand, or that
// key/tag equality must not leak timing — seclint can, and `make lint`
// runs it as a tier-1 gate so every future performance PR stays honest.
//
// The suite is built on go/ast, go/parser and go/types exclusively (no
// module dependencies, works offline). Each analyzer lives in its own
// file with testdata fixtures carrying `// want "..."` expectation
// comments; audited exceptions go into the module-root seclint.allow
// file, one justified entry per finding. See docs/STATIC_ANALYSIS.md
// for the paper-level rationale of every invariant.
package seclint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic: an invariant violation at a position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	// File is the module-relative, slash-separated path.
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: [analyzer] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one named invariant check. Package-mode analyzers set
// Run and are invoked once per type-checked package; program-mode
// analyzers set RunProgram and are invoked once over the whole-module
// call graph (see program.go). Exactly one of the two is set.
type Analyzer struct {
	// Name identifies the analyzer in findings and allowlist entries.
	Name string
	// Doc is a one-line description shown by the driver.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunProgram inspects the whole-program call graph.
	RunProgram func(*ProgramPass)
}

// All lists every analyzer in the suite, in reporting order.
var All = []*Analyzer{Weakrand, Subtlecmp, Secretfmt, Errdrop, Rawexp, Rawrecv, Plaintaint, Keyscope, Cttaint, Conccheck}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test files.
	Files []*ast.File
	// Pkg is the loaded package (type info may be partial if
	// type-checking reported errors; analyzers must tolerate nil types).
	Pkg  *Package
	Info *types.Info

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		File:     p.Pkg.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramPass carries one (analyzer, whole-program) unit of work.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Program  *Program

	report func(Finding)
}

// Reportf records a finding at pos; pkg re-homes the filename into
// module-relative form (findings outside any package keep the raw path).
func (p *ProgramPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := filepath.ToSlash(position.Filename)
	if pkg != nil {
		file = pkg.relFile(position.Filename)
	}
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InDir reports whether the package lives in the module-relative
// directory prefix (e.g. "internal/crypto" matches internal/crypto and
// internal/crypto/paillier).
func (p *Pass) InDir(prefix string) bool {
	return p.Pkg.RelDir == prefix || strings.HasPrefix(p.Pkg.RelDir, prefix+"/")
}

// TypeOf returns the static type of e, or nil when type information is
// unavailable (analyzers degrade gracefully on type-check errors).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// Package is one loaded, type-checked module package.
type Package struct {
	// ImportPath is the full import path.
	ImportPath string
	// RelDir is the module-relative directory, slash-separated; "" for
	// the module root package.
	RelDir string
	// Dir is the absolute directory.
	Dir string
	// Files holds the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package (possibly incomplete).
	Types *types.Package
	// Info holds the type-checker's expression/object maps.
	Info *types.Info
	// TypeErrors collects non-fatal type-check diagnostics.
	TypeErrors []error

	rootDir string
}

// relFile maps an absolute filename into module-relative slash form.
func (p *Package) relFile(filename string) string {
	if rel, err := filepath.Rel(p.rootDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// Loader parses and type-checks module packages. Intra-module imports
// resolve recursively from source; standard-library imports go through
// the go/importer "source" importer, so the loader needs no compiled
// export data and works fully offline.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	RootDir    string

	std     types.Importer
	pkgs    map[string]*Package // keyed by cleaned absolute dir
	loading map[string]bool
}

// NewLoader builds a loader rooted at the module directory containing
// go.mod.
func NewLoader(rootDir string) (*Loader, error) {
	abs, err := filepath.Abs(rootDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks dependencies from GOROOT sources;
	// with cgo disabled it picks the pure-Go fallbacks (e.g. netgo), so
	// no cgo toolchain invocation is ever needed.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		RootDir:    abs,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("seclint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("seclint: no module directive in %s", gomod)
}

// LoadDir parses and type-checks the package in dir (non-test files
// only). Results are memoized; type-check errors are collected on the
// package rather than failing the load, so analyzers always run.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	abs = filepath.Clean(abs)
	if pkg, ok := l.pkgs[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("seclint: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		filenames = append(filenames, name)
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		return nil, fmt.Errorf("seclint: no non-test Go files in %s", abs)
	}
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("seclint: %w", err)
		}
		files = append(files, f)
	}

	rel, err := filepath.Rel(l.RootDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("seclint: %s is outside module root %s", abs, l.RootDir)
	}
	relDir := filepath.ToSlash(rel)
	importPath := l.ModulePath
	if relDir != "." {
		importPath = l.ModulePath + "/" + relDir
	} else {
		relDir = ""
	}

	pkg := &Package{
		ImportPath: importPath,
		RelDir:     relDir,
		Dir:        abs,
		Files:      files,
		rootDir:    l.RootDir,
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns a usable (if incomplete) *types.Package even when
	// it reports errors; analyzers tolerate missing type info. Errors
	// normally arrive through conf.Error above, but keep the returned
	// one too in case Check bails before reporting.
	typesPkg, checkErr := conf.Check(importPath, l.Fset, files, pkg.Info)
	pkg.Types = typesPkg
	if checkErr != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, checkErr)
	}
	l.pkgs[abs] = pkg
	return pkg, nil
}

// Packages returns every package loaded so far, sorted by import path.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// loaderImporter routes intra-module imports back into the loader and
// everything else to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.RootDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// WalkPackageDirs returns every package directory (≥1 non-test .go
// file) under root, skipping testdata, vendor and hidden directories.
func WalkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits files in order, so duplicates are already adjacent.
	out := dirs[:0]
	for _, d := range dirs {
		if len(out) == 0 || out[len(out)-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// Runner drives analyzers over packages and applies the allowlist.
type Runner struct {
	Loader    *Loader
	Analyzers []*Analyzer
	// Allow is the optional audited-exception list.
	Allow *Allowlist
}

// RunPackage runs every package-mode analyzer over one loaded package.
func (r *Runner) RunPackage(pkg *Package) []Finding {
	var out []Finding
	for _, a := range r.Analyzers {
		if a.Run == nil {
			continue // program-mode analyzers run via RunProgram
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     r.Loader.Fset,
			Files:    pkg.Files,
			Pkg:      pkg,
			Info:     pkg.Info,
			report:   func(f Finding) { out = append(out, f) },
		}
		a.Run(pass)
	}
	return out
}

// RunProgram builds the whole-module call graph from every package the
// loader has seen (requested directories plus their transitive
// intra-module imports) and runs the program-mode analyzers over it.
func (r *Runner) RunProgram() []Finding {
	var programMode []*Analyzer
	for _, a := range r.Analyzers {
		if a.RunProgram != nil {
			programMode = append(programMode, a)
		}
	}
	if len(programMode) == 0 {
		return nil
	}
	prog := BuildProgram(r.Loader.Fset, r.Loader.Packages())
	var out []Finding
	for _, a := range programMode {
		pass := &ProgramPass{
			Analyzer: a,
			Fset:     r.Loader.Fset,
			Program:  prog,
			report:   func(f Finding) { out = append(out, f) },
		}
		a.RunProgram(pass)
	}
	return out
}

// RunDirs loads and analyzes each directory (package mode per package,
// then program mode over the combined call graph), filters findings
// through the allowlist, appends unused-allowlist-entry findings, and
// returns the result sorted by position.
func (r *Runner) RunDirs(dirs []string) ([]Finding, error) {
	var out []Finding
	for _, dir := range dirs {
		pkg, err := r.Loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, r.RunPackage(pkg)...)
	}
	out = append(out, r.RunProgram()...)
	if r.Allow != nil {
		out = r.Allow.Filter(out)
		out = append(out, r.Allow.Unused()...)
	}
	SortFindings(out)
	return out, nil
}

// SortFindings orders findings by file, line, column, analyzer.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
