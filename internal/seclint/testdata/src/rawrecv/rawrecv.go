// Package rawrecv exercises the rawrecv analyzer: direct Recv/Expect on
// a transport.Conn must go through the abort-aware recvExpect helper.
// The unit test loads this fixture with RelDir overridden to
// internal/mediation, which arms the rule.
package rawrecv

import (
	"github.com/secmediation/secmediation/internal/transport"
)

// drain bypasses the helper on both receive entry points.
func drain(conn transport.Conn) error {
	if _, err := conn.Recv(); err != nil { // want "direct transport.Conn.Recv bypasses recvExpect"
		return err
	}
	_, err := conn.Expect("mmm.partial-ack") // want "direct transport.Conn.Expect bypasses recvExpect"
	return err
}

// viaHelper models the sanctioned path: the helper owns the raw Recv
// (allowlisted in the real tree), callers stay clean.
func viaHelper(conn transport.Conn) error {
	_, err := recvExpectLike(conn, "mmm.partial-ack")
	return err
}

func recvExpectLike(conn transport.Conn, typ string) (transport.Message, error) {
	m, err := conn.Recv() // want "direct transport.Conn.Recv bypasses recvExpect"
	if err != nil {
		return transport.Message{}, err
	}
	_ = typ
	return m, nil
}

// mailbox has its own Recv; non-Conn receivers are out of scope.
type mailbox struct{ msgs []string }

func (m *mailbox) Recv() (string, error) { return m.msgs[0], nil }

func local(m *mailbox) {
	m.Recv() // no finding: not a transport.Conn
}

// send-side calls are out of scope too.
func send(conn transport.Conn, m transport.Message) error {
	return conn.Send(m)
}
