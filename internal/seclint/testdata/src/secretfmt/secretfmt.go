// Package secretfmt exercises the secretfmt analyzer: secret material
// flowing into fmt/log rendering verbs or String().
package secretfmt

import (
	"fmt"
	"io"
	"log"
)

// WrappedKey is an opaque wrapped session key.
type WrappedKey []byte

// String renders a placeholder, never the key bytes.
func (WrappedKey) String() string { return "WrappedKey(opaque)" }

// Errors builds diagnostics around a session key.
func Errors(sessionKey []byte, rows int) error {
	err := fmt.Errorf("unwrap failed for key %x", sessionKey) // want "formatted with %x"
	log.Printf("bad mac: %v", sessionKey)                     // want "formatted with %v"
	fmt.Printf("key type is %T\n", sessionKey)                // %T renders the type only
	_ = fmt.Sprintf("matched %d rows", rows)                  // no secret argument
	_ = fmt.Sprintf("key is %d bytes", len(sessionKey))       // len of a secret is public
	return err
}

// Fprint exercises writer-first variants.
func Fprint(w io.Writer, macTag []byte) {
	fmt.Fprintf(w, "tag=%x\n", macTag) // want "formatted with %x"
	fmt.Fprint(w, "done")              // no secret argument
}

// Print exercises Print-style variadic rendering.
func Print(hmacKey []byte) {
	fmt.Println("derived", hmacKey) // want "passed to fmt.Println"
}

// Render calls String() on a secret-named value.
func Render(sessionKey WrappedKey) string {
	return sessionKey.String() // want "called on secret material"
}

// RenderRow calls String() on a non-secret value; fine.
func RenderRow(row WrappedKey) string {
	return row.String()
}

// Span mimics a telemetry span: labels set via Annotate are exported
// verbatim on the observability endpoints.
type Span struct{}

// Annotate attaches a label to the span.
func (*Span) Annotate(key, value string) {}

// AnnotateSpans exercises the span-label rule: ciphertexts and keys
// must never become labels, while protocol metadata may.
func AnnotateSpans(sp *Span, ciphertext []byte, sessionKey []byte, protoName string) {
	sp.Annotate("payload", string(ciphertext)) // want "annotated onto a telemetry span"
	sp.Annotate("session", string(sessionKey)) // want "annotated onto a telemetry span"
	sp.Annotate("protocol", protoName)         // public metadata; fine
	cipherName := "pohlig-hellman"
	sp.Annotate("scheme", cipherName) // neutral word overrides; fine
}
