// Package perimeter exercises the bounded-queue rule: the tests re-home
// this package to internal/session, where every data channel must carry
// an explicit capacity and only struct{} signal channels may be
// unbuffered.
package perimeter

func queues() (chan int, chan struct{}, chan int) {
	data := make(chan int) // want "make.chan int. without a capacity inside the bounded-queue perimeter .internal/session.; declare an explicit bound, or use chan struct.. for pure signals"
	sig := make(chan struct{})
	bounded := make(chan int, 8)
	return data, sig, bounded
}
