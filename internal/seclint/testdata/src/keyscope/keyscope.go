// Package keyscope exercises the keyscope analyzer: private-key
// material must not be gob-encoded onto a link (wire rule, any party)
// and must not be held by mediator-reachable code (mediator rule).
package keyscope

// PrivKey is the fixture's decryption key.
//
// seclint:private fixture decryption key
type PrivKey struct{ D int }

// PubKey is public material and may go anywhere.
type PubKey struct{ N int }

// keyring nests the key two levels deep: the structural check must see
// through the struct, the slice and the pointer.
type keyring struct {
	Label string
	Keys  []*PrivKey
}

// send models the transport gob-encode point.
//
// seclint:wire gob-encodes v onto the link
func send(v any) error { _ = v; return nil }

// shipKey puts a bare private key on the wire (any party: forbidden).
func shipKey(k *PrivKey) error {
	return send(k) // want "private-key material keyscope.PrivKey"
}

// shipRing leaks the key through the nested struct.
func shipRing(r keyring) error {
	return send(r) // want "private-key material keyscope.PrivKey"
}

// shipPub sends public material: clean.
func shipPub(p *PubKey) error {
	return send(p)
}

// Mediator is the fixture's untrusted mediator.
type Mediator struct{}

// HandleSession is the protocol entry point seeding reachability; its
// own public-key parameter is fine.
//
// seclint:entry mediator
func (m *Mediator) HandleSession(pub *PubKey) {
	holdKey()
	mixKeys(nil)
	_ = pub
}

// holdKey declares a key-bearing local in mediator-reachable code.
func holdKey() {
	var k PrivKey // want "holds private-key material keyscope.PrivKey"
	_ = k
}

// mixKeys takes key-bearing parameters in mediator-reachable code; the
// signature itself is the finding, anchored at the declaration.
func mixKeys(ks []*PrivKey) { // want "holds private-key material keyscope.PrivKey"
	for range ks {
	}
}

// clientDecrypt holds the key but is never mediator-reachable: the
// owning party decrypting its own data is the normal case.
func clientDecrypt(k *PrivKey) int { return k.D }
