// Package weakrand exercises the weakrand analyzer: math/rand imports
// are forbidden module-wide in non-test code.
package weakrand

import (
	"crypto/rand"
	mrand "math/rand" // want "math/rand imported in non-test code"
)

// Shuffle mixes a predictable permutation with a proper CSPRNG read so
// both import paths are exercised.
func Shuffle(n int) []int {
	out := mrand.Perm(n)
	buf := make([]byte, 16)
	if _, err := rand.Read(buf); err != nil {
		panic(err)
	}
	return out
}
