// Package subtlecmp exercises the subtlecmp analyzer: variable-time
// equality on secret-named material.
package subtlecmp

import (
	"bytes"
	"crypto/subtle"
	"math/big"
)

// CheckTag short-circuits on the first differing byte of a MAC tag.
func CheckTag(tag, expect []byte) bool {
	return bytes.Equal(tag, expect) // want "bytes.Equal on secret material"
}

// CheckRows compares non-secret data; bytes.Equal is fine here.
func CheckRows(a, b []byte) bool {
	return bytes.Equal(a, b)
}

// KeyArrayEqual compares fixed-size key arrays with ==.
func KeyArrayEqual(key, other [16]byte) bool {
	return key == other // want "== on byte-array secret"
}

// RowArrayEqual compares non-secret arrays; == is fine.
func RowArrayEqual(row, other [16]byte) bool {
	return row == other
}

// SecretExpEqual uses big.Int.Cmp as equality on a secret exponent.
func SecretExpEqual(secretExp, x *big.Int) bool {
	return secretExp.Cmp(x) == 0 // want "big.Int.Cmp equality on secret material"
}

// CountEqual uses Cmp on public counters; fine.
func CountEqual(count, x *big.Int) bool {
	return count.Cmp(x) == 0
}

// OrderCheck uses Cmp for ordering, not equality; fine even on secrets.
func OrderCheck(secretExp, x *big.Int) bool {
	return secretExp.Cmp(x) < 0
}

// GoodTag is the required constant-time form.
func GoodTag(tag, expect []byte) bool {
	return subtle.ConstantTimeCompare(tag, expect) == 1
}
