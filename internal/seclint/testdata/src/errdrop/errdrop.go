// Package errdrop exercises the errdrop analyzer: discarded error
// results in internal/ code. This fixture lives under internal/ (via
// internal/seclint/testdata), so the directory scope fires naturally.
package errdrop

import (
	"bytes"
	"crypto/sha256"
	"os"
)

// Conn mimics the transport surface whose errors must not vanish.
type Conn struct{}

// Send delivers a message.
func (Conn) Send(string) error { return nil }

// Close tears the connection down.
func (Conn) Close() error { return nil }

// Drops loses errors three different ways.
func Drops(c Conn) {
	c.Send("abort")      // want "error result of c.Send dropped"
	_ = c.Close()        // want "error result of c.Close discarded with _"
	f, _ := os.Open("x") // want "error result of os.Open discarded with _"
	if f != nil {
		defer f.Close()
	}
}

// Clean handles every error or uses an exempt sink.
func Clean(c Conn) error {
	if err := c.Send("ok"); err != nil {
		return err
	}
	defer c.Close() // deferred teardown is exempt by design
	h := sha256.New()
	h.Write([]byte("x")) // hash.Hash writes never fail
	var buf bytes.Buffer
	buf.WriteString("y") // in-memory sink
	_ = buf.Len()        // non-error result; blank assign is fine
	return c.Close()
}
