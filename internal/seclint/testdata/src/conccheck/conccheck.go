// Package conccheck is the fixture for the concurrency-discipline
// analyzer: goroutine lifecycle with detached annotations, lock
// discipline with guards annotations, lock-order cycles, and channel
// close hygiene. The bounded-queue perimeter rule lives in the sibling
// conccheck_perimeter fixture, which the tests re-home into
// internal/session.
package conccheck

import (
	"sync"
	"time"
)

// Conn mirrors the transport wire interface; the blocking axiom keys on
// the interface name and method shape, not on the defining package.
type Conn interface {
	Send(v any) error
	Recv() (any, error)
}

// ---------------------------------------------------------------------
// Rule 1: goroutine lifecycle

// spin loops forever with no exit of any kind.
func spin() {
	for {
	}
}

// spinForever never returns because spin never does (divergence
// propagates through plain calls).
func spinForever() {
	spin()
}

// hang parks forever on an empty select.
func hang() {
	select {}
}

// pump has a termination path: the done receive returns.
func pump(done chan struct{}, ch chan int) {
	for {
		select {
		case <-done:
			return
		case v := <-ch:
			_ = v
		}
	}
}

// metricsPump runs for the process lifetime by design.
//
// seclint:detached process-lifetime pump, exits with the process
func metricsPump() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// orphanPump is detached but forgot to say why.
//
// seclint:detached
func orphanPump() { // want "seclint:detached needs a justification: say why the conccheck.orphanPump goroutine may outlive its spawner"
	for {
	}
}

// politePump terminates on its own, so its detached annotation excuses
// nothing.
//
// seclint:detached never actually needed
func politePump(done chan struct{}) { // want "seclint:detached on conccheck.politePump excuses no goroutine spawn; drop the annotation"
	<-done
}

// Serve is the party entry point the lifecycle rule keys on: spawns
// reachable from here must provably terminate or be detached.
//
// seclint:entry mediator
func Serve(done chan struct{}) {
	go spin()        // want "goroutine conccheck.spin has no termination path: conccheck.spin loops forever at line [0-9]+; give it an exit or annotate the spawned function seclint:detached .path conccheck.Serve."
	go spinForever() // want "goroutine conccheck.spinForever has no termination path: conccheck.spin loops forever at line [0-9]+"
	go hang()        // want "goroutine conccheck.hang has no termination path: conccheck.hang blocks forever on an empty select at line [0-9]+"
	go func() { // want "goroutine conccheck.Serve.func@[0-9]+ has no termination path"
		for {
		}
	}()
	ch := make(chan int, 1)
	go pump(done, ch)   // terminates via done: no finding
	go metricsPump()    // justified seclint:detached: no finding
	go orphanPump()     // detached (reported at its declaration for the missing why)
	go politePump(done) // terminates anyway; the annotation is flagged unused
}

// ---------------------------------------------------------------------
// Rule 2: lock discipline

type box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	a, b sync.Mutex
	c    Conn
	ch   chan int
}

// sendUnderLock holds mu across a channel send.
func (x *box) sendUnderLock(v int) {
	x.mu.Lock()
	x.ch <- v // want "mutex x.mu held across a channel send .acquired at line [0-9]+.; shrink the critical section or annotate the function seclint:guards"
	x.mu.Unlock()
}

// wireUnderLock holds mu across the Conn wire axiom.
func (x *box) wireUnderLock() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.c.Send(1) // want "mutex x.mu held across conccheck.Conn.Send"
}

// sleepUnderRead holds a read lock across time.Sleep.
func (x *box) sleepUnderRead() {
	x.rw.RLock()
	time.Sleep(time.Millisecond) // want "read lock x.rw held across time.Sleep"
	x.rw.RUnlock()
}

// waitOne blocks on a receive; harmless on its own.
func (x *box) waitOne() {
	<-x.ch
}

// blockViaHelper reaches the receive through a call, so the summary
// fixpoint must carry the root cause back to this critical section.
func (x *box) blockViaHelper() {
	x.mu.Lock()
	x.waitOne() // want "mutex x.mu held across a call to conccheck...box..waitOne, which reaches a channel receive"
	x.mu.Unlock()
}

// funcValueUnderLock calls through a func value while holding mu; the
// analysis cannot see through it, so it is assumed blocking.
func (x *box) funcValueUnderLock(dial func() error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	dial() // want "mutex x.mu held across a call through the func value dial .assumed blocking."
}

// waitExternal stands for a waiting primitive behind an opaque boundary.
//
// seclint:blocking parks until the peer responds
func waitExternal() {
}

// annotatedUnderLock calls a declared-blocking function under mu.
func (x *box) annotatedUnderLock() {
	x.mu.Lock()
	waitExternal() // want "mutex x.mu held across a call to conccheck.waitExternal .seclint:blocking."
	x.mu.Unlock()
}

// sendFrame is an audited serialization point: the lock exists to make
// the wire call exclusive, so guards suppresses the rule here.
//
// seclint:guards exactly one frame at a time on the shared conn
func (x *box) sendFrame() {
	x.mu.Lock()
	x.c.Send(2)
	x.mu.Unlock()
}

// sendFrameBare claims guards without saying why.
//
// seclint:guards
func (x *box) sendFrameBare() { // want "seclint:guards needs a justification: say why conccheck...box..sendFrameBare must hold a lock across a blocking operation"
	x.mu.Lock()
	x.c.Send(3)
	x.mu.Unlock()
}

// quickPath never blocks, so its guards annotation is dead weight.
//
// seclint:guards nothing here blocks
func (x *box) quickPath() { // want "seclint:guards on conccheck...box..quickPath suppresses nothing .no lock is held across a blocking operation.; drop the annotation"
	x.mu.Lock()
	x.mu.Unlock()
}

// reacquire takes the same mutex twice.
func (x *box) reacquire() {
	x.mu.Lock()
	x.mu.Lock() // want "acquiring x.mu while already holding it .acquired at line [0-9]+.; Go mutexes are not reentrant"
	x.mu.Unlock()
}

// lockedHelper takes mu itself.
func (x *box) lockedHelper() {
	x.mu.Lock()
	x.mu.Unlock()
}

// callReacquire calls a helper that acquires the lock it already holds.
func (x *box) callReacquire() {
	x.mu.Lock()
	x.lockedHelper() // want "calling conccheck...box..lockedHelper while holding x.mu, which it also acquires; the re-acquire deadlocks"
	x.mu.Unlock()
}

// abOrder and baOrder acquire a and b in opposite orders: a cycle in
// the module-wide acquired-before graph.
func (x *box) abOrder() {
	x.a.Lock()
	x.b.Lock() // want "lock-order cycle among x.a, x.b; acquire these locks in one module-wide order"
	x.b.Unlock()
	x.a.Unlock()
}

func (x *box) baOrder() {
	x.b.Lock()
	x.a.Lock()
	x.a.Unlock()
	x.b.Unlock()
}

// Handle makes relay entry-reachable so its finding carries a path.
//
// seclint:entry mediator
func Handle(x *box) {
	x.relay()
}

// relay blocks on a receive inside the critical section.
func (x *box) relay() {
	x.mu.Lock()
	<-x.ch // want "mutex x.mu held across a channel receive .acquired at line [0-9]+.; shrink the critical section or annotate the function seclint:guards .path conccheck.Handle -> conccheck...box..relay."
	x.mu.Unlock()
}

// ---------------------------------------------------------------------
// Rule 3: channel discipline

type hub struct {
	mu      sync.Mutex
	once    sync.Once
	signal  chan int
	twice   chan int
	guarded chan int
	routed  chan int
}

// closeTwice closes the same channel from two sites with no Once.
func (h *hub) closeTwice(a bool) {
	if a {
		close(h.twice)
		return
	}
	close(h.twice) // want "channel h.twice is closed at more than one site .also at line [0-9]+.; close from a single owner or under one sync.Once"
}

// closeOnceA and closeOnceB both close signal, but under one sync.Once:
// at most one close can ever run.
func (h *hub) closeOnceA() {
	h.once.Do(func() { close(h.signal) })
}

func (h *hub) closeOnceB() {
	h.once.Do(func() { close(h.signal) })
}

// sendRace sends on a channel that closeRace closes with no shared
// lock: the send can race the close and panic.
func (h *hub) sendRace(v int) {
	h.routed <- v // want "send on channel h.routed, which is closed at line [0-9]+; a send racing that close panics"
}

func (h *hub) closeRace() {
	close(h.routed)
}

// sendGuarded and closeGuarded serialize on the same mutex, so the
// non-blocking send can never observe a concurrent close.
func (h *hub) sendGuarded(v int) {
	h.mu.Lock()
	select {
	case h.guarded <- v:
	default:
	}
	h.mu.Unlock()
}

func (h *hub) closeGuarded() {
	h.mu.Lock()
	close(h.guarded)
	h.mu.Unlock()
}
