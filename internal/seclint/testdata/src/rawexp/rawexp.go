// Package rawexp exercises the rawexp analyzer: unreduced big.Int
// arithmetic. The unit test loads this fixture with RelDir overridden
// to internal/crypto, the analyzer's scope.
package rawexp

import "math/big"

// Bad computes a full-width power and an unreduced product chain.
func Bad(x, y, n *big.Int) *big.Int {
	r := new(big.Int).Exp(x, y, nil) // want "Exp with nil modulus"
	acc := new(big.Int).Mul(x, y)
	acc.Mul(acc, x) // want "second big.Int.Mul on acc"
	return r.Add(r, acc)
}

// Good reduces between multiplications and passes the modulus to Exp.
func Good(x, y, n *big.Int) *big.Int {
	r := new(big.Int).Exp(x, y, n)
	acc := new(big.Int).Mul(x, y)
	acc.Mod(acc, n)
	acc.Mul(acc, x)
	acc.Mod(acc, n)
	return r.Add(r, acc)
}

// Keygen multiplies two primes exactly once — legitimately unreduced.
func Keygen(p, q *big.Int) *big.Int {
	n := new(big.Int).Mul(p, q)
	nsq := new(big.Int).Mul(n, n)
	return nsq
}
