// Package plaintaint exercises the plaintaint analyzer with a
// deliberately leaky fake mediator: every way a plaintext source can be
// reached from a mediator entry point — directly, through a closure, a
// method value, a goroutine, a defer, and interface dispatch — must be
// flagged, while sanitizer-guarded and unreachable calls stay clean.
package plaintaint

// decryptTuple stands for a decryption primitive: its result is
// plaintext by declaration.
//
// seclint:source decrypted tuple bytes
func decryptTuple(ct []byte) []byte { return ct }

// reseal is an audited encrypt boundary: the decryption inside it is
// the declared re-encryption pattern, so traversal must not descend.
//
// seclint:sanitizer fixture encrypt boundary
func reseal(ct []byte) []byte { return decryptTuple(ct) }

// Mediator is the fixture's untrusted mediator.
type Mediator struct{}

// HandleSession is the protocol entry point seeding reachability.
//
// seclint:entry mediator
func (m *Mediator) HandleSession() {
	direct()
	viaClosure()
	viaMethodValue()
	viaGoroutine()
	viaDefer()
	viaInterface(leakyOpener{})
	viaInterface(safeOpener{})
	_ = reseal(nil) // sanitizer: traversal stops here, no finding
	callDialer(nil)
	callRoute(nil)
}

// direct reaches the source through a plain static call.
func direct() {
	_ = decryptTuple(nil) // want "plaintext source plaintaint.decryptTuple"
}

// viaClosure reaches the source inside a function literal; the closure
// belongs to its creator, so the path must run through viaClosure.
func viaClosure() {
	f := func() {
		_ = decryptTuple(nil) // want "plaintext source plaintaint.decryptTuple"
	}
	f()
}

// opener carries the method taken as a method value below.
type opener struct{}

func (opener) open() { _ = decryptTuple(nil) } // want "plaintext source plaintaint.decryptTuple"

// viaMethodValue reaches the source through a method value: the `ref`
// edge, not a direct call.
func viaMethodValue() {
	f := opener{}.open
	f()
}

// viaGoroutine reaches the source in a spawned goroutine.
func viaGoroutine() {
	go leakAsync()
}

func leakAsync() { _ = decryptTuple(nil) } // want "plaintext source plaintaint.decryptTuple"

// viaDefer reaches the source in a deferred call.
func viaDefer() {
	defer leakLater()
}

func leakLater() { _ = decryptTuple(nil) } // want "plaintext source plaintaint.decryptTuple"

// tupleOpener is dispatched dynamically; both implementations below are
// resolved, and only the leaky one may be flagged.
type tupleOpener interface{ openTuple() []byte }

func viaInterface(o tupleOpener) { _ = o.openTuple() }

// leakyOpener decrypts at the mediator — the deliberate leak.
type leakyOpener struct{}

func (leakyOpener) openTuple() []byte { return decryptTuple(nil) } // want "plaintext source plaintaint.decryptTuple"

// safeOpener passes the ciphertext through untouched.
type safeOpener struct{}

func (safeOpener) openTuple() []byte { return nil }

// dialer is a named func type with no boundary annotation: calling
// through it hides the callee, which is itself a finding.
type dialer func()

func callDialer(d dialer) {
	if d != nil {
		d() // want "indirect call through func type plaintaint.dialer"
	}
}

// route is the audited link boundary: the call crosses to another
// party, so hiding the callee is the honest model.
//
// seclint:boundary source
type route func()

func callRoute(r route) {
	if r != nil {
		r()
	}
}

// clientOnly holds plaintext but is never reachable from a mediator
// entry point: client-side decryption is the paper's normal case.
func clientOnly() []byte { return decryptTuple(nil) }

// oddball carries a typo'd annotation, which must be reported rather
// than silently ignored.
//
// seclint:sanitiser typo
func oddball() {} // want "unknown seclint annotation"

// misplaced puts a type annotation on a function.
//
// seclint:boundary source
func misplaced() {} // want "seclint:boundary belongs on a type declaration"
