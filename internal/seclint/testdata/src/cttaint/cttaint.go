// Package cttaint exercises the cttaint analyzer: every sink kind
// (branch, loop bound, slice subscript, allocation size, variable-time
// math/big call), every seclint:secret annotation form (struct field,
// var, function results, named parameters) plus the structural
// private-type rule, interprocedural propagation through summaries and
// closures, and the precision cuts (nil compares, errors, len, public
// sibling fields) that must stay clean.
package cttaint

import "math/big"

// Key models a commutative key: one secret field next to a public one.
type Key struct {
	// seclint:secret encryption exponent
	E *big.Int
	// P is the public modulus; selecting it must stay clean even
	// though the struct also holds a secret.
	P *big.Int
}

// seclint:secret fixture master exponent
var masterE = big.NewInt(7)

var table = []int{1, 2, 3, 4}

// randomSecret models drawing key material: its results are secret.
//
// seclint:secret drawn exponent
func randomSecret() *big.Int { return big.NewInt(3) }

// ladder has one secret parameter, named by the annotation.
//
// seclint:secret e
func ladder(x, e, m *big.Int) *big.Int {
	return new(big.Int).Exp(x, e, m) // want "variable-time .math/big.Int..Exp: exponent derives from secret param e of cttaint.ladder"
}

// useMaster feeds the annotated var into a variable-time exponent.
func useMaster() *big.Int {
	return new(big.Int).Exp(big.NewInt(2), masterE, nil) // want "variable-time .math/big.Int..Exp: exponent derives from secret var cttaint.masterE"
}

// branchOnSecret steers control flow with secret field bits.
func branchOnSecret(k *Key) int {
	if k.E.Sign() > 0 { // want "secret-dependent branch: condition derives from secret field cttaint.Key.E"
		return 1
	}
	return 0
}

// loops bounds a loop by a secret-derived count (and the BitLen call
// itself is variable-time in its receiver).
func loops() int {
	n := randomSecret().BitLen() // want "variable-time .math/big.Int..BitLen: length source derives from secret result of cttaint.randomSecret"
	total := 0
	for i := 0; i < n; i++ { // want "secret-dependent loop: bound derives from secret result of cttaint.randomSecret"
		total += i
	}
	return total
}

// indexOnSecret keys a table lookup on secret bits (cache channel).
func indexOnSecret(k *Key) int {
	w := int(k.E.Int64())
	return table[w&3] // want "secret-dependent index: slice subscript derives from secret field cttaint.Key.E"
}

// allocSecret sizes an allocation by a secret parameter.
//
// seclint:secret bits
func allocSecret(bits int) []byte {
	return make([]byte, bits) // want "secret-dependent allocation: size derives from secret param bits of cttaint.allocSecret"
}

// derive launders the secret through stdlib arithmetic; the taint must
// survive Set/Add pass-through and the return.
func derive(k *Key) *big.Int {
	d := new(big.Int).Set(k.E)
	d.Add(d, big.NewInt(1))
	return d
}

// useDerived hits two sinks on one line: the Cmp call is variable-time
// in its secret receiver, and its result steers a branch.
func useDerived(k *Key, m *big.Int) int {
	if derive(k).Cmp(m) > 0 { // want "variable-time .math/big.Int..Cmp: compared value derives from secret field cttaint.Key.E" "secret-dependent branch: condition derives from secret field cttaint.Key.E"
		return 1
	}
	return 0
}

// mayFail forwards secret material through a (value, error) pair; the
// error position must stay clean.
func mayFail() (*big.Int, error) { return randomSecret(), nil }

func multi() {
	v, err := mayFail()
	if err != nil { // error values are public: clean
		return
	}
	if v.Sign() < 0 { // want "secret-dependent branch: condition derives from secret result of cttaint.randomSecret"
		return
	}
}

// closureCapture shares the secret with a closure through a captured
// object; the branch inside the literal is still a finding.
func closureCapture(k *Key) func() int {
	e := new(big.Int).Set(k.E)
	return func() int {
		if e.Sign() == 0 { // want "secret-dependent branch: condition derives from secret field cttaint.Key.E"
			return 0
		}
		return 1
	}
}

// sched is private-key material by type: every value of it is secret
// without any per-field annotation.
//
// seclint:private fixture window schedule
type sched []int

// play ranges over a secret schedule: the element values are secret
// (the bound is the public length), so the lookup they key is flagged.
func play(s sched, tab []int) int {
	acc := 0
	for _, op := range s {
		acc += tab[op] // want "secret-dependent index: slice subscript derives from s .value of private type cttaint.sched"
	}
	return acc
}

// holder receives the secret through a composite literal, tainting the
// field for every later selection.
type holder struct{ v *big.Int }

func fill(k *Key) holder {
	return holder{v: k.E}
}

func readHolder(h holder) int {
	return h.v.BitLen() // want "variable-time .math/big.Int..BitLen: length source derives from secret field cttaint.Key.E"
}

// pick switches on a secret parameter.
//
// seclint:secret w
func pick(w int) int {
	switch w { // want "secret-dependent branch: switch tag derives from secret param w of cttaint.pick"
	case 0:
		return 1
	}
	return 0
}

// steer is only ever handed secret arguments; the interprocedural
// summary must carry the call-site taint into its body.
func steer(n int) int {
	if n > 0 { // want "secret-dependent branch: condition derives from secret field cttaint.Key.E"
		return 1
	}
	return 0
}

func caller(k *Key) int {
	return steer(int(k.E.Int64()))
}

// normalize is a pass-through converter with both secret and public
// callers — the wordsOf shape. Call-site-sensitive result derivation
// must taint only the secret caller's copy; without it, one secret
// call site smears the summary over every public caller.
func normalize(x *big.Int) *big.Int {
	return new(big.Int).Set(x)
}

func normalizeSecret(k *Key) int {
	w := normalize(k.E)
	if w.Sign() > 0 { // want "secret-dependent branch: condition derives from secret field cttaint.Key.E"
		return 1
	}
	return 0
}

func normalizePublic(m *big.Int) int {
	w := normalize(m) // public actual: the result must stay clean here
	if w.Sign() > 0 {
		return 1
	}
	return 0
}

// Pub carries a misplaced annotation kind on a field.
type Pub struct {
	// seclint:private not a field annotation
	N *big.Int // want "seclint:private is not a field annotation"
}

// seclint:secret constants are compile-time public
const limit = 10 // want "seclint:secret belongs on a var, struct field, or function, not a const"

// clean exercises every exemption: nil compares, public sibling
// fields, len of a secret-valued container, error steering.
func clean(k *Key, xs []*big.Int) int {
	if k == nil {
		return 0
	}
	if k.P.Sign() < 0 {
		return 0
	}
	n := 0
	for i := 0; i < len(xs); i++ {
		n += i
	}
	v, err := mayFail()
	if err != nil {
		return n
	}
	_ = v
	return n
}
