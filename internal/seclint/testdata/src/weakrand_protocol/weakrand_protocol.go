// Package weakrandprotocol exercises weakrand rule 2: the quarantined
// insecurerand package must be unreachable from protocol directories.
// The unit test loads this fixture with RelDir overridden to a
// protocol directory (internal/mediation), which arms the rule.
package weakrandprotocol

import (
	"github.com/secmediation/secmediation/internal/workload/insecurerand" // want "insecure deterministic RNG"
)

// Pick draws from the deterministic generator — fine for workload
// synthesis, fatal inside a protocol package.
func Pick(seed int64, n int) int {
	return insecurerand.New(seed).Intn(n)
}
