package seclint

import (
	"encoding/json"
	"io"
)

// sarif.go renders findings as SARIF 2.1.0 (OASIS Static Analysis
// Results Interchange Format), the ingestion format of code-scanning
// dashboards. One run per invocation: the tool's rules are the
// analyzers (so rule metadata travels with the results), every finding
// is an error-level result, and file paths stay module-relative under
// the SRCROOT base so the log is machine-portable across checkouts.

// sarifLog is the document root (§3.13).
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool                `json:"tool"`
	Results            []sarifResult            `json:"results"`
	OriginalURIBaseIDs map[string]sarifArtifact `json:"originalUriBaseIds,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits one SARIF 2.1.0 run for the findings. analyzers
// supplies the rule table; findings from rules outside it (the
// synthetic "allowlist" analyzer that reports stale allow entries) get
// rules appended on first use so every result resolves a ruleIndex.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := make(map[string]int, len(analyzers)+1)
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		ri, ok := index[f.Analyzer]
		if !ok {
			ri = len(rules)
			index[f.Analyzer] = ri
			rules = append(rules, sarifRule{ID: f.Analyzer,
				ShortDescription: sarifMessage{Text: "finding outside the analyzer table"}})
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ri,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "SRCROOT"},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "seclint", Rules: rules}},
			Results: results,
			OriginalURIBaseIDs: map[string]sarifArtifact{
				"SRCROOT": {URI: "file:///./"},
			},
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
