package seclint

// Plaintaint machine-checks the paper's central security claim: the
// untrusted mediator computes the join by processing ciphertexts, so no
// plaintext-bearing value may be reachable from its protocol entry
// points. Sources are declared with seclint:source (decryption outputs
// in crypto/hybrid, paillier and commutative private-key operations,
// relation tuple materialization, DAS plaintext bucket domains) plus a
// built-in table of stdlib decryption APIs; sanitizers are the audited
// encrypt boundaries (seclint:sanitizer); the sink is the mediator role
// itself — every function reachable from a seclint:entry mediator
// function over the whole-program call graph, following closures,
// method values, goroutine spawns, defers and interface dispatch.
//
// Because the graph cannot follow a call through a func-typed value,
// such calls in mediator-reachable code are findings too unless they go
// through a named func type annotated seclint:boundary <party> — which
// is exactly the honest statement that the call crosses a link to
// another party (e.g. mediation.Dialer reaching a source).
var Plaintaint = &Analyzer{
	Name:       "plaintaint",
	Doc:        "no plaintext source reachable from the mediator's protocol entry points",
	RunProgram: runPlaintaint,
}

func runPlaintaint(pass *ProgramPass) {
	p := pass.Program
	for _, bad := range p.Bad {
		pass.Reportf(bad.Pkg, bad.Pos, "%s", bad.Msg)
	}
	reachable := make(map[*Fn]bool)
	for _, fn := range p.MediatorReachable() {
		reachable[fn] = true
	}
	for _, fn := range p.MediatorReachable() {
		for _, e := range fn.Edges {
			if !e.Callee.Source {
				continue
			}
			pass.Reportf(fn.Pkg, e.Pos,
				"mediator-reachable code calls plaintext source %s (%s): the mediator must process ciphertexts only [path %s -> %s]",
				e.Callee.Name, e.Callee.SourceWhy, p.Trace(fn), e.Callee.Name)
		}
	}
	for _, ic := range p.Indirect {
		if !reachable[ic.Fn] || ic.TypeName == nil {
			continue
		}
		if _, declared := p.Boundary[ic.TypeName]; declared {
			continue
		}
		pass.Reportf(ic.Fn.Pkg, ic.Pos,
			"indirect call through func type %s in mediator-reachable code hides the callee from the taint analysis: audit it and annotate the type with // seclint:boundary <party>, or call the function directly [path %s]",
			shortTypeName(ic.TypeName), p.Trace(ic.Fn))
	}
}
