package seclint

import (
	"go/ast"
	"go/token"
)

// Subtlecmp flags equality checks on secret material — keys, wrapped
// keys, MACs/tags, digests — that short-circuit on the first differing
// byte: bytes.Equal, == / != on fixed-size byte arrays, and
// big.Int.Cmp used as equality. A mediator (or any network observer)
// timing such comparisons learns prefix lengths of the secret; the
// paper's model explicitly denies the mediator any plaintext- or
// key-dependent signal, so these comparisons must go through
// crypto/subtle.ConstantTimeCompare (see hybrid.KeyEqual).
var Subtlecmp = &Analyzer{
	Name: "subtlecmp",
	Doc:  "variable-time equality (bytes.Equal, ==, big.Int.Cmp) on secret material",
	Run:  runSubtlecmp,
}

func runSubtlecmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if p.pkgFunc(e, "bytes", "Equal") && len(e.Args) == 2 {
					for _, arg := range e.Args {
						if name, ok := secretIn(arg); ok {
							p.Reportf(e.Pos(), "bytes.Equal on secret material %q is not constant time; use crypto/subtle.ConstantTimeCompare", name)
							break
						}
					}
				}
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				// [N]byte == [N]byte on secret-named operands.
				if isByteArray(p.TypeOf(e.X)) || isByteArray(p.TypeOf(e.Y)) {
					if name, ok := secretIn(e.X); ok {
						p.Reportf(e.Pos(), "%s on byte-array secret %q is not constant time; use crypto/subtle.ConstantTimeCompare over slices", e.Op, name)
					} else if name, ok := secretIn(e.Y); ok {
						p.Reportf(e.Pos(), "%s on byte-array secret %q is not constant time; use crypto/subtle.ConstantTimeCompare over slices", e.Op, name)
					}
					return true
				}
				// x.Cmp(y) ==/!= 0 used as equality on secrets.
				if call, lit := cmpAgainstZero(e); call != nil && lit {
					sel := call.Fun.(*ast.SelectorExpr)
					if !isBigIntPtr(p.TypeOf(sel.X), true) {
						return true
					}
					if name, ok := secretIn(sel.X); ok {
						p.Reportf(e.Pos(), "big.Int.Cmp equality on secret material %q is not constant time; compare fixed-width encodings with crypto/subtle.ConstantTimeCompare", name)
					} else if name, ok := secretIn(call.Args[0]); ok {
						p.Reportf(e.Pos(), "big.Int.Cmp equality on secret material %q is not constant time; compare fixed-width encodings with crypto/subtle.ConstantTimeCompare", name)
					}
				}
			}
			return true
		})
	}
}

// cmpAgainstZero matches `recv.Cmp(arg) <op> 0` (either operand order)
// and returns the Cmp call when the other operand is the literal 0.
func cmpAgainstZero(e *ast.BinaryExpr) (*ast.CallExpr, bool) {
	match := func(callSide, litSide ast.Expr) (*ast.CallExpr, bool) {
		call, ok := callSide.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return nil, false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Cmp" {
			return nil, false
		}
		lit, ok := litSide.(*ast.BasicLit)
		if !ok || lit.Value != "0" {
			return nil, false
		}
		return call, true
	}
	if call, ok := match(e.X, e.Y); ok {
		return call, true
	}
	if call, ok := match(e.Y, e.X); ok {
		return call, true
	}
	return nil, false
}
