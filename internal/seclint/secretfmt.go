package seclint

import (
	"go/ast"
	"strconv"
	"strings"
)

// Secretfmt flags secret-named identifiers flowing into fmt/log
// formatting under content-rendering verbs (%x, %v, %s, ...), into
// String() calls, and into telemetry span labels (Annotate). Keys and
// wrapped keys must never land in error strings or logs: protocol
// errors travel to the mediator verbatim (mediation.sendError), and
// the mediator is the adversary. Span labels are stricter still — they
// are exported verbatim on the operator-facing /metrics and /trace
// endpoints, so even ciphertexts (which the protocols deliberately
// show the mediator) must stay out of them.
var Secretfmt = &Analyzer{
	Name: "secretfmt",
	Doc:  "secret material formatted into errors, logs, String() or span labels",
	Run:  runSecretfmt,
}

// spanLabelWords extends the secret vocabulary for the Annotate rule:
// ciphertext-named values are not "secret" in the fmt/log sense (the
// mediator processes them by design) but they do not belong on an
// observability endpoint.
var spanLabelWords = map[string]bool{
	"ciphertext": true,
	"cipher":     true,
	"encrypted":  true,
}

// formatFuncs maps formatting functions to the index of their format
// string argument; -1 means every argument is rendered (Print-style).
var formatFuncs = map[string]int{
	"fmt.Errorf":  0,
	"fmt.Sprintf": 0,
	"fmt.Printf":  0,
	"fmt.Fprintf": 1,
	"fmt.Print":   -1,
	"fmt.Println": -1,
	"fmt.Sprint":  -1,
	"fmt.Fprint":  -2, // first arg is the writer
	"log.Printf":  0,
	"log.Fatalf":  0,
	"log.Panicf":  0,
	"log.Print":   -1,
	"log.Println": -1,
	"log.Fatal":   -1,
	"log.Panic":   -1,
}

// leakyVerbs render argument content. %T (type only) and %p (address)
// are deliberately absent, as is %w (wrapped errors are re-checked at
// their own construction site).
const leakyVerbs = "vxXsqdbocU"

func runSecretfmt(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// secret.String() — rendering a secret-named receiver.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "String" && len(call.Args) == 0 {
				if name, ok := secretIn(sel.X); ok {
					p.Reportf(call.Pos(), "String() called on secret material %q; secrets must not be rendered", name)
				}
				return true
			}
			// span.Annotate(key, value) — labels are exported verbatim.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Annotate" {
				for _, arg := range call.Args {
					if lenOfSecret(arg) {
						continue
					}
					if name, ok := labelSecretIn(arg); ok {
						p.Reportf(arg.Pos(), "secret material %q annotated onto a telemetry span by %s; span labels are exported verbatim on /metrics and /trace", name, callLabel(call))
					}
				}
				return true
			}
			for fn, fmtIdx := range formatFuncs {
				pkg, name, _ := strings.Cut(fn, ".")
				if !p.pkgFunc(call, pkg, name) {
					continue
				}
				checkFormatCall(p, call, fmtIdx)
				return true
			}
			return true
		})
	}
}

func checkFormatCall(p *Pass, call *ast.CallExpr, fmtIdx int) {
	if fmtIdx < 0 {
		// Print-style: every rendered argument counts (-2 skips a
		// leading writer argument).
		start := 0
		if fmtIdx == -2 {
			start = 1
		}
		for _, arg := range call.Args[min(start, len(call.Args)):] {
			if lenOfSecret(arg) {
				continue
			}
			if name, ok := secretIn(arg); ok {
				p.Reportf(arg.Pos(), "secret material %q passed to %s; secrets must not reach errors or logs", name, callLabel(call))
			}
		}
		return
	}
	if fmtIdx >= len(call.Args) {
		return
	}
	lit, ok := call.Args[fmtIdx].(*ast.BasicLit)
	if !ok {
		return // non-literal format string: out of scope
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	args := call.Args[fmtIdx+1:]
	for _, v := range parseVerbs(format) {
		if v.arg >= len(args) {
			break
		}
		if !strings.ContainsRune(leakyVerbs, v.verb) {
			continue
		}
		if lenOfSecret(args[v.arg]) {
			continue
		}
		if name, ok := secretIn(args[v.arg]); ok {
			p.Reportf(args[v.arg].Pos(), "secret material %q formatted with %%%c by %s; secrets must not reach errors or logs", name, v.verb, callLabel(call))
		}
	}
}

// labelSecretIn is secretIn with the span-label vocabulary added: it
// returns the first identifier in e that names either secret material
// or ciphertext-shaped payload. Neutral words (keyLen, cipherName, ...)
// override, exactly as in isSecretName.
func labelSecretIn(e ast.Expr) (string, bool) {
	if name, ok := secretIn(e); ok {
		return name, true
	}
	var found string
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		hit := false
		for _, w := range identWords(id.Name) {
			if neutralWords[w] {
				return true
			}
			if spanLabelWords[w] {
				hit = true
			}
		}
		if hit {
			found = id.Name
			return false
		}
		return true
	})
	return found, found != ""
}

// lenOfSecret reports whether arg is len(...) — lengths of key and tag
// material are public protocol constants, so rendering them leaks
// nothing.
func lenOfSecret(arg ast.Expr) bool {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "len"
}

// verbUse is one conversion in a format string and the argument index
// it consumes.
type verbUse struct {
	verb rune
	arg  int
}

// parseVerbs maps each conversion verb to its argument position,
// accounting for flags, *-widths (which consume an argument) and
// explicit [n] argument indexes.
func parseVerbs(format string) []verbUse {
	var out []verbUse
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// Flags, width, precision; '*' consumes an int argument.
		for i < len(runes) && strings.ContainsRune("+-# 0123456789.*", runes[i]) {
			if runes[i] == '*' {
				arg++
			}
			i++
		}
		// Explicit argument index [n].
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			num := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				num = num*10 + int(runes[j]-'0')
				j++
			}
			if j < len(runes) && runes[j] == ']' && num > 0 {
				arg = num - 1
				i = j + 1
			}
		}
		if i >= len(runes) {
			break
		}
		out = append(out, verbUse{verb: runes[i], arg: arg})
		arg++
	}
	return out
}
