package seclint

import (
	"go/ast"
	"go/types"
)

// Rawexp flags unreduced big.Int arithmetic in internal/crypto:
// Exp(x, y, nil) — a full-width exponentiation whose result leaks the
// exponent magnitude and costs superpolynomial memory — and chains of
// two or more Mul calls on the same value with no intervening modular
// reduction, which in Paillier/commutative-group code almost always
// means a missing `Mod n²` and values that grow without bound.
var Rawexp = &Analyzer{
	Name: "rawexp",
	Doc:  "big.Int Exp with nil modulus, or repeated Mul without reduction, in internal/crypto",
	Run:  runRawexp,
}

// reducers are big.Int methods that bound or replace the receiver's
// value, resetting the "pending unreduced Mul" state for it.
var reducers = map[string]bool{
	"Mod":        true,
	"Div":        true,
	"Rem":        true,
	"Exp":        true,
	"ModInverse": true,
	"ModSqrt":    true,
	"DivMod":     true,
	"QuoRem":     true,
	"Set":        true,
	"SetInt64":   true,
	"SetUint64":  true,
	"SetBytes":   true,
	"SetString":  true,
	"Rsh":        true,
}

func runRawexp(p *Pass) {
	if !p.InDir("internal/crypto") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncRawexp(p, fd.Body)
		}
	}
}

// checkFuncRawexp walks one function body in source order, flagging
// Exp-with-nil-modulus anywhere and the second Mul on the same object
// without an intervening reducer.
func checkFuncRawexp(p *Pass, body *ast.BlockStmt) {
	// pendingMul maps a *big.Int variable to true once it has received
	// an unreduced Mul result; a second Mul while pending is flagged.
	pendingMul := map[types.Object]bool{}

	objOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || p.Info == nil {
			return nil
		}
		if obj, ok := p.Info.Uses[id]; ok {
			return obj
		}
		return p.Info.Defs[id]
	}

	ast.Inspect(body, func(n ast.Node) bool {
		// x := new(big.Int).Mul(a, b) — the receiver is a fresh
		// constructor, so the unreduced product lives in x.
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Mul" && len(call.Args) == 2 {
					if _, isIdent := sel.X.(*ast.Ident); !isIdent && isBigIntPtr(p.TypeOf(sel.X), true) {
						if lhs := objOf(as.Lhs[0]); lhs != nil {
							pendingMul[lhs] = true
						}
						return true
					}
				}
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := objOf(sel.X)
		switch {
		case sel.Sel.Name == "Exp" && len(call.Args) == 3:
			if !isBigIntPtr(p.TypeOf(sel.X), true) {
				return true
			}
			if id, ok := call.Args[2].(*ast.Ident); ok && id.Name == "nil" {
				p.Reportf(call.Pos(), "big.Int.Exp with nil modulus computes a full-width power; pass the group modulus")
			}
			if recv != nil {
				delete(pendingMul, recv)
			}
		case sel.Sel.Name == "Mul" && len(call.Args) == 2:
			if !isBigIntPtr(p.TypeOf(sel.X), true) {
				return true
			}
			if recv == nil {
				return true
			}
			if pendingMul[recv] {
				p.Reportf(call.Pos(), "second big.Int.Mul on %s without an intervening modular reduction; reduce with Mod between multiplications", identName(sel.X))
			}
			pendingMul[recv] = true
		case reducers[sel.Sel.Name]:
			if recv != nil {
				delete(pendingMul, recv)
			}
		}
		return true
	})
}

func identName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "value"
}
