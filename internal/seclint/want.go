package seclint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// Expectation is one `// want "regexp"` annotation parsed from a test
// fixture: a finding is expected on the annotated line whose message
// matches the pattern.
type Expectation struct {
	File    string
	Line    int
	Pattern *regexp.Regexp
}

// ParseWants extracts `// want "re1" "re2"` expectation comments from
// the package's files, one Expectation per quoted pattern. The format
// mirrors the go/analysis analysistest convention.
func ParseWants(fset *token.FileSet, files []*ast.File) ([]Expectation, error) {
	var wants []Expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := parseWantPatterns(strings.TrimSpace(text[idx+len("want "):]))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, Expectation{File: pos.Filename, Line: pos.Line, Pattern: re})
				}
			}
		}
	}
	return wants, nil
}

// parseWantPatterns splits a want payload into its quoted patterns.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		if s[0] != '"' {
			return nil, fmt.Errorf("want pattern must be a quoted string, got %q", s)
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %q: %v", s[:end+1], err)
		}
		out = append(out, pat)
		s = s[end+1:]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}

// CheckWants compares findings against expectations, returning one
// message per unmatched expectation and per unexpected finding. A
// finding satisfies an expectation when file and line agree and the
// pattern matches the message; each expectation consumes one finding.
func CheckWants(findings []Finding, wants []Expectation) []string {
	var problems []string
	used := make([]bool, len(findings))
	for _, w := range wants {
		matched := false
		for i, f := range findings {
			if used[i] || f.File != w.File || f.Line != w.Line {
				continue
			}
			if w.Pattern.MatchString(f.Message) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no finding matching %q", w.File, w.Line, w.Pattern))
		}
	}
	for i, f := range findings {
		if !used[i] {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", f))
		}
	}
	return problems
}
