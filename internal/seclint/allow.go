package seclint

import (
	"fmt"
	"os"
	"path"
	"strings"
)

// AllowEntry is one suppression rule: findings from Analyzer whose file
// matches Pattern are dropped. Every entry must carry a justification;
// entries that match nothing are themselves reported, so the allowlist
// cannot silently rot.
type AllowEntry struct {
	Analyzer      string
	Pattern       string // path glob, or prefix when ending in /...
	Justification string
	Line          int
	used          bool
}

// Allowlist is a parsed seclint.allow file. Format, one rule per line:
//
//	analyzer path/glob -- justification text
//
// '#' starts a comment; blank lines are ignored. A pattern ending in
// "/..." matches the directory prefix; otherwise it is a path.Match
// glob against the slash-separated file path relative to the module
// root.
type Allowlist struct {
	Path    string
	Entries []*AllowEntry
}

// ParseAllowlist reads and parses an allowlist file.
func ParseAllowlist(file string) (*Allowlist, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	al := &Allowlist{Path: file}
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		rule, just, ok := strings.Cut(line, "--")
		just = strings.TrimSpace(just)
		if !ok || just == "" {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs a justification after \"--\"", file, i+1)
		}
		fields := strings.Fields(rule)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: allowlist entry must be \"analyzer path-glob -- justification\"", file, i+1)
		}
		known := false
		for _, a := range All {
			if a.Name == fields[0] {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("%s:%d: unknown analyzer %q", file, i+1, fields[0])
		}
		if _, err := path.Match(fields[1], "probe"); err != nil {
			return nil, fmt.Errorf("%s:%d: bad pattern %q: %v", file, i+1, fields[1], err)
		}
		al.Entries = append(al.Entries, &AllowEntry{
			Analyzer:      fields[0],
			Pattern:       fields[1],
			Justification: just,
			Line:          i + 1,
		})
	}
	return al, nil
}

// matches reports whether the entry suppresses a finding from analyzer
// in file (a slash path relative to the module root).
func (e *AllowEntry) matches(analyzer, file string) bool {
	if e.Analyzer != analyzer {
		return false
	}
	if prefix, ok := strings.CutSuffix(e.Pattern, "/..."); ok {
		return file == prefix || strings.HasPrefix(file, prefix+"/")
	}
	ok, err := path.Match(e.Pattern, file)
	return err == nil && ok
}

// Filter drops findings suppressed by the allowlist, marking the
// entries that fired.
func (al *Allowlist) Filter(findings []Finding) []Finding {
	if al == nil {
		return findings
	}
	var kept []Finding
	for _, f := range findings {
		suppressed := false
		for _, e := range al.Entries {
			if e.matches(f.Analyzer, f.File) {
				e.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

// Prune rewrites the allowlist file in place, dropping every entry
// that suppressed nothing during the preceding Filter pass. Comments
// and blank lines are preserved. It returns the dropped entries; an
// empty result means the file was left untouched.
func (al *Allowlist) Prune() ([]*AllowEntry, error) {
	var stale []*AllowEntry
	drop := map[int]bool{}
	for _, e := range al.Entries {
		if !e.used {
			stale = append(stale, e)
			drop[e.Line] = true
		}
	}
	if len(stale) == 0 {
		return nil, nil
	}
	data, err := os.ReadFile(al.Path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	kept := lines[:0]
	for i, line := range lines {
		if !drop[i+1] {
			kept = append(kept, line)
		}
	}
	out := strings.Join(kept, "\n")
	if err := os.WriteFile(al.Path, []byte(out), 0o644); err != nil {
		return nil, err
	}
	return stale, nil
}

// Unused returns one finding per allowlist entry that suppressed
// nothing during Filter; stale entries must be pruned, not accumulated.
func (al *Allowlist) Unused() []Finding {
	if al == nil {
		return nil
	}
	var out []Finding
	for _, e := range al.Entries {
		if !e.used {
			out = append(out, Finding{
				Analyzer: "allowlist",
				File:     al.Path,
				Line:     e.Line,
				Col:      1,
				Message:  fmt.Sprintf("unused allowlist entry %q %q: no finding suppressed; remove it", e.Analyzer, e.Pattern),
			})
		}
	}
	return out
}
