package seclint

import (
	"strings"
)

// protocolDirs are the module directories that implement the paper's
// protocols or handle key material: any randomness consumed there must
// come from crypto/rand (the mediator-as-adversary model collapses if a
// protocol nonce, shuffle or key is predictable), and the quarantined
// deterministic generator must be unreachable from them.
var protocolDirs = []string{
	"internal/crypto",
	"internal/mediation",
	"internal/pm",
	"internal/das",
	"internal/keyio",
	"internal/transport",
	"internal/credential",
}

// insecureRandSuffix identifies the module's quarantined deterministic
// RNG package (internal/workload/insecurerand).
const insecureRandSuffix = "internal/workload/insecurerand"

// Weakrand flags math/rand imports in non-test code anywhere in the
// module, and imports of the quarantined insecurerand package from
// protocol-facing directories. The paper's security argument assumes
// every protocol random value (DAS session keys, commutative exponents,
// PM masking factors, shuffle permutations) is drawn from a CSPRNG.
var Weakrand = &Analyzer{
	Name: "weakrand",
	Doc:  "math/rand (or the quarantined insecurerand package) reachable from non-test protocol code",
	Run:  runWeakrand,
}

func runWeakrand(p *Pass) {
	inProtocol := false
	for _, d := range protocolDirs {
		if p.InDir(d) {
			inProtocol = true
			break
		}
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			switch path := importPathOf(imp); {
			case path == "math/rand" || path == "math/rand/v2":
				p.Reportf(imp.Pos(), "%s imported in non-test code: protocol randomness must come from crypto/rand; deterministic generators belong behind %s", path, insecureRandSuffix)
			case strings.HasSuffix(path, insecureRandSuffix) && inProtocol:
				p.Reportf(imp.Pos(), "insecure deterministic RNG %s imported from protocol package %s: nothing protocol-facing may reach it", path, p.Pkg.RelDir)
			}
		}
	}
}
