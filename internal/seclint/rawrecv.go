package seclint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Rawrecv flags direct transport.Conn.Recv and Conn.Expect calls inside
// internal/mediation. Protocol code must receive through the recvExpect /
// recvInto helpers: they are the single place where peer msgError
// payloads become typed *ProtocolError aborts and where link failures
// (including deadline expiry) get attributed to the party behind the
// link. A raw Recv bypasses all of that — a peer's abort notification
// would surface as a bogus type-mismatch or, worse, be treated as data.
var Rawrecv = &Analyzer{
	Name: "rawrecv",
	Doc:  "direct Conn.Recv/Expect in internal/mediation bypassing the abort-aware recvExpect helper",
	Run:  runRawrecv,
}

func runRawrecv(p *Pass) {
	if !p.InDir("internal/mediation") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Recv" && sel.Sel.Name != "Expect") {
				return true
			}
			if !isTransportConn(p.TypeOf(sel.X), true) {
				return true
			}
			p.Reportf(call.Pos(), "direct transport.Conn.%s bypasses recvExpect (msgError handling, abort attribution); receive through recvExpect/recvInto", sel.Sel.Name)
			return true
		})
	}
}

// isTransportConn reports whether t is the transport.Conn interface (or a
// pointer to it). A nil type (missing info) returns defaultTo — in
// internal/mediation only transport conns carry Recv/Expect, so failing
// closed is the safe degradation.
func isTransportConn(t types.Type, defaultTo bool) bool {
	if t == nil {
		return defaultTo
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Conn" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/transport" || strings.HasSuffix(path, "/internal/transport")
}
