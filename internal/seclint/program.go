package seclint

// program.go is the whole-program half of seclint. BuildProgram
// stitches every package the loader has type-checked into one call
// graph — static calls, method values and other function references,
// closures (a closure belongs to the function that creates it, which is
// what makes `go`/`defer`/callback spawns attributable), and interface
// dispatch resolved against every named type in the module — and then
// answers reachability questions for the role-based analyzers
// (plaintaint, keyscope). The graph is deliberately context-insensitive
// and conservative in one direction: an indirect call through a *named*
// func type is not resolved but recorded, so plaintaint can demand a
// seclint:boundary annotation instead of silently losing the callee.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// externalSources lists functions outside the module whose results are
// plaintext by construction. Keys are "pkgpath.Func" for package
// functions and "(pkgpath.Recv).Method" for methods (interface methods
// included, which is how cipher.AEAD.Open is caught at the call site
// even though its implementation lives in the stdlib).
var externalSources = map[string]string{
	"crypto/rsa.DecryptOAEP":          "RSA decryption output",
	"crypto/rsa.DecryptPKCS1v15":      "RSA decryption output",
	"(crypto/rsa.PrivateKey).Decrypt": "RSA decryption output",
	"(crypto/cipher.AEAD).Open":       "AEAD decryption output",
	"(crypto/cipher.Block).Decrypt":   "block-cipher decryption output",
}

// externalPrivate lists types outside the module that hold private-key
// material, keyed by "pkgpath.Name".
var externalPrivate = map[string]bool{
	"crypto/rsa.PrivateKey":     true,
	"crypto/ecdsa.PrivateKey":   true,
	"crypto/ed25519.PrivateKey": true,
	"crypto/dsa.PrivateKey":     true,
}

// Fn is one node of the whole-program call graph: a declared function
// or method, a function literal, or a synthetic node standing for a
// known plaintext source outside the module.
type Fn struct {
	// Obj is the function object; nil for function literals.
	Obj *types.Func
	// Lit is the closure body; nil for declared functions.
	Lit *ast.FuncLit
	// Decl is the declaration; nil for literals and external nodes.
	Decl *ast.FuncDecl
	// Pkg is the defining package; nil for external nodes.
	Pkg *Package
	// Parent is the creating function for literals.
	Parent *Fn
	// Name is the short human-readable name used in taint traces,
	// e.g. "mediation.(*Mediator).HandleSession" or "hybrid.Decrypt".
	Name string
	Pos  token.Pos

	// Source marks a plaintext source; SourceWhy says what plaintext it
	// yields. Traversal reports the call and does not descend.
	Source    bool
	SourceWhy string
	// Sanitizer marks an audited encrypt boundary; traversal does not
	// descend.
	Sanitizer bool
	// EntryRole is the declared protocol role ("mediator", …) whose
	// reachability this function seeds.
	EntryRole string
	// Wire marks functions that gob-encode their arguments onto a link.
	Wire bool
	// SecretResults marks a function whose results are secret key
	// material (seclint:secret on the func); cttaint taints every call
	// result. SecretParams instead names parameters declared secret.
	SecretResults bool
	SecretWhy     string
	SecretParams  []string
	// Guards marks a function audited to hold a lock across a blocking
	// operation deliberately (an intended serialization point); conccheck
	// suppresses its lock-across-blocking rule inside. GuardsWhy carries
	// the justification (empty means the annotation is malformed).
	Guards    bool
	GuardsWhy string
	// Detached marks a function whose goroutine intentionally outlives
	// supervision (a process-lifetime pump); conccheck accepts spawning
	// it, or any spawn made inside it, without a termination proof.
	Detached    bool
	DetachedWhy string
	// Blocking declares that calling this function may block (a waiting
	// primitive the analysis cannot see through, e.g. behind an
	// interface); conccheck adds it to the blocking table.
	Blocking    bool
	BlockingWhy string

	Edges []Edge
}

// Body returns the function body, or nil for external nodes and
// body-less declarations.
func (fn *Fn) Body() *ast.BlockStmt {
	switch {
	case fn.Decl != nil:
		return fn.Decl.Body
	case fn.Lit != nil:
		return fn.Lit.Body
	}
	return nil
}

// Edge is one call-graph edge, positioned at the call or reference.
type Edge struct {
	Callee *Fn
	Pos    token.Pos
	// Kind is one of call, go, defer, closure, ref, iface.
	Kind string
}

// IndirectCall records a call through a func-typed value the static
// graph cannot follow. Plaintaint requires such calls in
// mediator-reachable code to go through a seclint:boundary-annotated
// named type; calls through unnamed func types are covered by the
// closure creator edges instead.
type IndirectCall struct {
	Fn  *Fn
	Pos token.Pos
	// TypeName is the named func type, nil when the type is unnamed.
	TypeName *types.TypeName
}

// WireCall is one call to a seclint:wire function, kept with its AST so
// keyscope can type-check every argument that crosses the link.
type WireCall struct {
	Fn   *Fn
	Pkg  *Package
	Call *ast.CallExpr
}

// badAnn is a misused seclint: annotation, reported by plaintaint so
// the convention cannot drift.
type badAnn struct {
	Pkg *Package
	Pos token.Pos
	Msg string
}

// ifaceCall is an unresolved interface-method call, resolved against
// the module's named types after all packages are walked.
type ifaceCall struct {
	from *Fn
	m    *types.Func
	pos  token.Pos
}

// traceEdge records how reachability first arrived at a function.
type traceEdge struct {
	from *Fn
	pos  token.Pos
}

// Program is the whole-module call graph plus the annotation facts.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// All lists every node in deterministic build order.
	All []*Fn
	// Private maps seclint:private type names to their justification.
	Private map[*types.TypeName]string
	// Boundary maps seclint:boundary func type names to their party.
	Boundary map[*types.TypeName]string
	// Indirect records calls through func-typed values.
	Indirect []IndirectCall
	// WireCalls records calls to seclint:wire functions.
	WireCalls []WireCall
	// Bad records misused annotations.
	Bad []badAnn

	fns        map[*types.Func]*Fn
	ext        map[*types.Func]*Fn
	ifaceCalls []ifaceCall
	named      []*types.TypeName

	reachDone   bool
	reach       []*Fn
	reachParent map[*Fn]traceEdge

	reachAllDone   bool
	reachAllParent map[*Fn]traceEdge
}

// BuildProgram assembles the call graph from every loaded package. The
// package list is sorted and files are walked in order, so node and
// edge order — and therefore finding order — is deterministic.
func BuildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	p := &Program{
		Fset:     fset,
		Pkgs:     sorted,
		Private:  make(map[*types.TypeName]string),
		Boundary: make(map[*types.TypeName]string),
		fns:      make(map[*types.Func]*Fn),
		ext:      make(map[*types.Func]*Fn),
	}
	for _, pkg := range sorted {
		p.declare(pkg)
	}
	for _, pkg := range sorted {
		p.walkBodies(pkg)
	}
	for _, ic := range p.ifaceCalls {
		p.resolveIface(ic)
	}
	return p
}

// declare registers every function declaration and every annotated type
// of one package (pass 1: nodes and facts, no edges yet).
func (p *Program) declare(pkg *Package) {
	if pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				p.declareFunc(pkg, d)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = d.Doc
					}
					p.declareType(pkg, ts, doc)
				}
			}
		}
	}
}

func (p *Program) declareFunc(pkg *Package, d *ast.FuncDecl) {
	obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
	if obj == nil {
		return // tolerate type-check failures
	}
	fn := &Fn{Obj: obj, Decl: d, Pkg: pkg, Name: shortFuncName(obj), Pos: d.Name.Pos()}
	for _, ann := range parseAnnotations(d.Doc) {
		switch ann.Kind {
		case annSource:
			fn.Source = true
			fn.SourceWhy = textOr(ann.Text, "declared plaintext source")
		case annSanitizer:
			fn.Sanitizer = true
		case annEntry:
			if role := firstField(ann.Text); role != "" {
				fn.EntryRole = role
			} else {
				p.bad(pkg, fn.Pos, "seclint:entry needs a role, e.g. \"seclint:entry mediator\"")
			}
		case annWire:
			fn.Wire = true
		case annSecret:
			// "seclint:secret e d" marks the named parameters; any text
			// that is not exactly a list of parameter names documents why
			// the results are secret instead.
			if names := paramNameSubset(d, ann.Text); names != nil {
				fn.SecretParams = names
			} else {
				fn.SecretResults = true
				fn.SecretWhy = textOr(ann.Text, "declared secret result")
			}
		case annGuards:
			// Justification checked by conccheck, which owns the rule the
			// annotation suppresses.
			fn.Guards = true
			fn.GuardsWhy = ann.Text
		case annDetached:
			fn.Detached = true
			fn.DetachedWhy = ann.Text
		case annBlocking:
			fn.Blocking = true
			fn.BlockingWhy = textOr(ann.Text, "declared blocking")
		case annPrivate, annBoundary:
			p.bad(pkg, fn.Pos, fmt.Sprintf("seclint:%s belongs on a type declaration, not a function", ann.Kind))
		default:
			p.bad(pkg, fn.Pos, fmt.Sprintf("unknown seclint annotation %q", ann.Kind))
		}
	}
	// Exported Mediator methods are protocol entry points by
	// construction; the annotation is only needed for everything else.
	if fn.EntryRole == "" && d.Recv != nil && d.Name.IsExported() &&
		pkg.RelDir == "internal/mediation" && recvTypeName(d) == "Mediator" {
		fn.EntryRole = "mediator"
	}
	p.fns[obj] = fn
	p.All = append(p.All, fn)
}

func (p *Program) declareType(pkg *Package, ts *ast.TypeSpec, doc *ast.CommentGroup) {
	anns := parseAnnotations(doc)
	if len(anns) == 0 {
		return
	}
	obj, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if obj == nil {
		return
	}
	for _, ann := range anns {
		switch ann.Kind {
		case annPrivate:
			p.Private[obj] = textOr(ann.Text, "declared private-key material")
		case annBoundary:
			if _, isFunc := obj.Type().Underlying().(*types.Signature); !isFunc {
				p.bad(pkg, ts.Name.Pos(), "seclint:boundary belongs on a named func type")
				continue
			}
			if party := firstField(ann.Text); party != "" {
				p.Boundary[obj] = party
			} else {
				p.bad(pkg, ts.Name.Pos(), "seclint:boundary needs a party, e.g. \"seclint:boundary source\"")
			}
		default:
			p.bad(pkg, ts.Name.Pos(), fmt.Sprintf("seclint:%s is not a type annotation", ann.Kind))
		}
	}
}

func (p *Program) bad(pkg *Package, pos token.Pos, msg string) {
	p.Bad = append(p.Bad, badAnn{Pkg: pkg, Pos: pos, Msg: msg})
}

// walkBodies adds the edges of one package (pass 2). It also collects
// every named type for interface-dispatch resolution.
func (p *Program) walkBodies(pkg *Package) {
	if pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
			if obj == nil {
				continue
			}
			w := &walker{p: p, pkg: pkg, cur: p.fns[obj]}
			w.scan(d.Body)
		}
		// Every named type participates in interface dispatch.
		for _, decl := range file.Decls {
			g, ok := decl.(*ast.GenDecl)
			if !ok || g.Tok != token.TYPE {
				continue
			}
			for _, spec := range g.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if obj, _ := pkg.Info.Defs[ts.Name].(*types.TypeName); obj != nil {
					p.named = append(p.named, obj)
				}
			}
		}
	}
}

func (p *Program) edge(from, to *Fn, pos token.Pos, kind string) {
	from.Edges = append(from.Edges, Edge{Callee: to, Pos: pos, Kind: kind})
}

func (p *Program) newLit(lit *ast.FuncLit, parent *Fn, pkg *Package) *Fn {
	line := p.Fset.Position(lit.Pos()).Line
	fn := &Fn{
		Lit: lit, Pkg: pkg, Parent: parent,
		Name: fmt.Sprintf("%s.func@%d", parent.Name, line),
		Pos:  lit.Pos(),
	}
	p.All = append(p.All, fn)
	return fn
}

// externalSource returns (creating on first use) the synthetic node for
// a known plaintext source outside the module.
func (p *Program) externalSource(obj *types.Func, why string) *Fn {
	if fn, ok := p.ext[obj]; ok {
		return fn
	}
	fn := &Fn{Obj: obj, Name: shortFuncName(obj), Pos: token.NoPos, Source: true, SourceWhy: why}
	p.ext[obj] = fn
	p.All = append(p.All, fn)
	return fn
}

// walker adds the edges of one function body. cur is the node edges
// come from; function literals switch to a child walker, which is what
// attributes a closure to its creator rather than to its caller.
type walker struct {
	p   *Program
	pkg *Package
	cur *Fn
}

func (w *walker) scan(root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			child := w.p.newLit(n, w.cur, w.pkg)
			w.p.edge(w.cur, child, n.Pos(), "closure")
			(&walker{p: w.p, pkg: w.pkg, cur: child}).scan(n.Body)
			return false
		case *ast.GoStmt:
			w.call(n.Call, "go")
			return false
		case *ast.DeferStmt:
			w.call(n.Call, "defer")
			return false
		case *ast.CallExpr:
			w.call(n, "call")
			return false
		case *ast.SelectorExpr:
			// A selector outside call position may be a method value
			// or a reference to a package function.
			w.ref(n.Sel)
			w.scan(n.X)
			return false
		case *ast.Ident:
			w.ref(n)
			return false
		}
		return true
	})
}

// call resolves one call expression (plain, go, or defer).
func (w *walker) call(call *ast.CallExpr, kind string) {
	for _, a := range call.Args {
		w.scan(a)
	}
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		w.callee(call, f, kind)
	case *ast.SelectorExpr:
		w.scan(f.X)
		w.callee(call, f.Sel, kind)
	case *ast.FuncLit:
		// A directly-invoked literal — most importantly `go func(){…}()`.
		// The edge keeps the invocation kind so conccheck sees the spawn;
		// falling through to the generic scan would file it under
		// "closure" and lose that the literal starts a goroutine.
		child := w.p.newLit(f, w.cur, w.pkg)
		w.p.edge(w.cur, child, f.Pos(), kind)
		(&walker{p: w.p, pkg: w.pkg, cur: child}).scan(f.Body)
	default:
		// Computed callee: a func-typed expression (index, call
		// result, generic instantiation, …). Scan it for function
		// references, and record the indirection.
		w.scan(fun)
		w.indirect(call)
	}
}

// callee handles a call whose callee is the identifier id.
func (w *walker) callee(call *ast.CallExpr, id *ast.Ident, kind string) {
	switch obj := w.pkg.Info.Uses[id].(type) {
	case *types.Func:
		w.funcEdge(obj, id.Pos(), kind)
		if fn, ok := w.p.fns[obj.Origin()]; ok && fn.Wire {
			w.p.WireCalls = append(w.p.WireCalls, WireCall{Fn: w.cur, Pkg: w.pkg, Call: call})
		}
	case *types.Var:
		// A call through a func-typed variable, parameter, or field.
		w.indirect(call)
	}
	// *types.TypeName (a conversion) and *types.Builtin need no edge.
}

// funcEdge adds the edge for a resolved function object: a module
// function, a known external source, or an interface method queued for
// dispatch resolution.
func (w *walker) funcEdge(obj *types.Func, pos token.Pos, kind string) {
	obj = obj.Origin()
	if fn, ok := w.p.fns[obj]; ok {
		w.p.edge(w.cur, fn, pos, kind)
		return
	}
	if why, ok := externalSources[externalKey(obj)]; ok {
		w.p.edge(w.cur, w.p.externalSource(obj, why), pos, kind)
		return
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		w.p.ifaceCalls = append(w.p.ifaceCalls, ifaceCall{from: w.cur, m: obj, pos: pos})
	}
}

// ref records a reference to a function outside call position (a method
// value, a function assigned to a variable, a callback argument).
func (w *walker) ref(id *ast.Ident) {
	if obj, ok := w.pkg.Info.Uses[id].(*types.Func); ok {
		w.funcEdge(obj, id.Pos(), "ref")
	}
}

// indirect records a call the graph cannot follow statically.
func (w *walker) indirect(call *ast.CallExpr) {
	t := w.pkg.Info.TypeOf(call.Fun)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Signature); !ok {
		return // a conversion or a type error, not a func value
	}
	ic := IndirectCall{Fn: w.cur, Pos: call.Fun.Pos()}
	if named, ok := t.(*types.Named); ok {
		ic.TypeName = named.Obj()
	}
	w.p.Indirect = append(w.p.Indirect, ic)
}

// resolveIface connects an interface-method call to every module type
// implementing the interface.
func (p *Program) resolveIface(ic ifaceCall) {
	sig, ok := ic.m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, tn := range p.named {
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) || named.TypeParams().Len() > 0 {
			continue
		}
		var impl types.Type
		switch {
		case types.Implements(named, iface):
			impl = named
		case types.Implements(types.NewPointer(named), iface):
			impl = types.NewPointer(named)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, ic.m.Pkg(), ic.m.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if fn, ok := p.fns[m.Origin()]; ok {
			p.edge(ic.from, fn, ic.pos, "iface")
		}
	}
}

// MediatorReachable returns every function reachable from a mediator
// entry point, in BFS order. Sources and sanitizers terminate the
// traversal: a source edge is a finding (reported by plaintaint at the
// call site), a sanitizer edge is declared trust.
func (p *Program) MediatorReachable() []*Fn {
	p.ensureReach()
	return p.reach
}

func (p *Program) ensureReach() {
	if p.reachDone {
		return
	}
	p.reachDone = true
	p.reachParent = make(map[*Fn]traceEdge)
	seen := make(map[*Fn]bool)
	var queue []*Fn
	for _, fn := range p.All {
		if fn.EntryRole == "mediator" && !fn.Source && !fn.Sanitizer {
			seen[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		p.reach = append(p.reach, fn)
		for _, e := range fn.Edges {
			c := e.Callee
			if seen[c] || c.Source || c.Sanitizer {
				continue
			}
			seen[c] = true
			p.reachParent[c] = traceEdge{from: fn, pos: e.Pos}
			queue = append(queue, c)
		}
	}
}

// Trace renders the entry→fn call path reachability followed, e.g.
// "mediation.(*Mediator).HandleSession -> mediation.(*Mediator).handleSession".
func (p *Program) Trace(fn *Fn) string {
	p.ensureReach()
	names := []string{fn.Name}
	for seen := map[*Fn]bool{fn: true}; ; {
		te, ok := p.reachParent[fn]
		if !ok || seen[te.from] {
			break
		}
		fn = te.from
		seen[fn] = true
		names = append(names, fn.Name)
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// ensureReachAll runs the reachability BFS seeded from *every* declared
// entry point regardless of role — the traversal conccheck renders its
// spawn-site→entry paths from. It is kept separate from ensureReach so
// the mediator-only analyses (plaintaint, keyscope) are unaffected, and
// unlike them it descends through sources and sanitizers: a goroutine
// leak inside an encrypt boundary is still a leak.
func (p *Program) ensureReachAll() {
	if p.reachAllDone {
		return
	}
	p.reachAllDone = true
	p.reachAllParent = make(map[*Fn]traceEdge)
	seen := make(map[*Fn]bool)
	var queue []*Fn
	for _, fn := range p.All {
		if fn.EntryRole != "" {
			seen[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range fn.Edges {
			c := e.Callee
			if seen[c] {
				continue
			}
			seen[c] = true
			p.reachAllParent[c] = traceEdge{from: fn, pos: e.Pos}
			queue = append(queue, c)
		}
	}
}

// EntryTrace renders the entry→fn call path of the all-roles
// reachability, and whether fn is reachable from any entry point at all.
func (p *Program) EntryTrace(fn *Fn) (string, bool) {
	p.ensureReachAll()
	if _, ok := p.reachAllParent[fn]; !ok && fn.EntryRole == "" {
		return "", false
	}
	names := []string{fn.Name}
	for seen := map[*Fn]bool{fn: true}; ; {
		te, ok := p.reachAllParent[fn]
		if !ok || seen[te.from] {
			break
		}
		fn = te.from
		seen[fn] = true
		names = append(names, fn.Name)
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> "), true
}

// containsPrivate reports whether a value of type t can hold
// private-key material, naming the offending type.
func (p *Program) containsPrivate(t types.Type) (string, bool) {
	return p.containsPrivateRec(t, make(map[types.Type]bool))
}

func (p *Program) containsPrivateRec(t types.Type, seen map[types.Type]bool) (string, bool) {
	if t == nil || seen[t] {
		return "", false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		if why, ok := p.Private[obj]; ok {
			return fmt.Sprintf("%s (%s)", shortTypeName(obj), why), true
		}
		if obj.Pkg() != nil && externalPrivate[obj.Pkg().Path()+"."+obj.Name()] {
			return shortTypeName(obj), true
		}
		if targs := t.TypeArgs(); targs != nil {
			for i := 0; i < targs.Len(); i++ {
				if name, ok := p.containsPrivateRec(targs.At(i), seen); ok {
					return name, true
				}
			}
		}
		return p.containsPrivateRec(t.Underlying(), seen)
	case *types.Pointer:
		return p.containsPrivateRec(t.Elem(), seen)
	case *types.Slice:
		return p.containsPrivateRec(t.Elem(), seen)
	case *types.Array:
		return p.containsPrivateRec(t.Elem(), seen)
	case *types.Chan:
		return p.containsPrivateRec(t.Elem(), seen)
	case *types.Map:
		if name, ok := p.containsPrivateRec(t.Key(), seen); ok {
			return name, true
		}
		return p.containsPrivateRec(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name, ok := p.containsPrivateRec(t.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	}
	return "", false
}

// shortFuncName renders "pkg.Func" or "pkg.(*Recv).Method".
func shortFuncName(obj *types.Func) string {
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if pt, ok := recv.(*types.Pointer); ok {
			recv = pt.Elem()
			ptr = "*"
		}
		rname := types.TypeString(recv, func(*types.Package) string { return "" })
		rname = strings.TrimPrefix(rname, ".")
		name = "(" + ptr + rname + ")." + name
	}
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	return name
}

// shortTypeName renders "pkg.Name".
func shortTypeName(obj *types.TypeName) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// externalKey renders the externalSources/externalPrivate lookup key
// for a function object.
func externalKey(obj *types.Func) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	path := obj.Pkg().Path()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if pt, ok := recv.(*types.Pointer); ok {
			recv = pt.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return "(" + path + "." + named.Obj().Name() + ")." + obj.Name()
		}
		return ""
	}
	return path + "." + obj.Name()
}

// recvTypeName extracts the receiver's base type name from a method
// declaration ("Mediator" for func (m *Mediator) …).
func recvTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// paramNameSubset returns the fields of s when every one of them names
// a parameter (or the receiver) of d, and nil otherwise — the rule that
// distinguishes "seclint:secret e d" (marks params) from
// "seclint:secret the drawn exponent" (marks results).
func paramNameSubset(d *ast.FuncDecl, s string) []string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil
	}
	params := make(map[string]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				params[name.Name] = true
			}
		}
	}
	collect(d.Recv)
	collect(d.Type.Params)
	for _, f := range fields {
		if !params[f] {
			return nil
		}
	}
	return fields
}

// firstField returns the first whitespace-separated field of s.
func firstField(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}
