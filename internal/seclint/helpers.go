package seclint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
	"unicode"
)

// secretWords are the identifier words that mark an expression as secret
// material for the subtlecmp and secretfmt analyzers. Matching is per
// camelCase/snake_case word, so "WrappedKey" and "tagOf" match while
// "macro" and "message" do not.
var secretWords = map[string]bool{
	"key":      true,
	"secret":   true,
	"mac":      true,
	"hmac":     true,
	"tag":      true,
	"wrapped":  true,
	"digest":   true,
	"password": true,
	"passwd":   true,
	"token":    true,
}

// identWords splits an identifier into lower-cased words at case
// transitions, underscores and digits.
func identWords(name string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || unicode.IsDigit(r):
			flush()
		case unicode.IsUpper(r):
			// Split at lower→Upper and at the last Upper of an
			// ALLCAPS run followed by lower (e.g. "HMACKey" → hmac, key).
			if i > 0 && (unicode.IsLower(runes[i-1]) ||
				(i+1 < len(runes) && unicode.IsLower(runes[i+1]))) {
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return words
}

// neutralWords mark identifiers that speak about a secret without
// carrying it: keyPath and keyFile are locations, sessionKeyLen and
// keyCount are public protocol constants. Any neutral word in the
// identifier overrides the secret words.
var neutralWords = map[string]bool{
	"path":   true,
	"file":   true,
	"dir":    true,
	"name":   true,
	"len":    true,
	"length": true,
	"size":   true,
	"count":  true,
	"num":    true,
	"id":     true,
	"bits":   true,
}

// isSecretName reports whether an identifier names secret material.
func isSecretName(name string) bool {
	secret := false
	for _, w := range identWords(name) {
		if neutralWords[w] {
			return false
		}
		if secretWords[w] {
			secret = true
		}
	}
	return secret
}

// secretIn walks an expression and returns the first identifier that
// names secret material (e.g. the tagBytes in buf[n:n+tagBytes], or the
// callee tagOf in tagOf(root)).
func secretIn(e ast.Expr) (string, bool) {
	var found string
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch id := n.(type) {
		case *ast.Ident:
			if isSecretName(id.Name) {
				found = id.Name
				return false
			}
		}
		return true
	})
	return found, found != ""
}

// pkgFunc reports whether call invokes the package-level function
// pkgPath.fn (e.g. "bytes", "Equal"). It resolves the qualifier through
// type info when available and falls back to the file's imports.
func (p *Pass) pkgFunc(call *ast.CallExpr, pkgPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	qual, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if p.Info != nil {
		if obj, ok := p.Info.Uses[qual]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path() == pkgPath
			}
			return false
		}
	}
	// No type info: accept when the qualifier matches an import of
	// pkgPath in any of the package's files.
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil || ip != pkgPath {
				continue
			}
			name := ip[strings.LastIndex(ip, "/")+1:]
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name == qual.Name {
				return true
			}
		}
	}
	return false
}

// isBigIntPtr reports whether t is *math/big.Int (or big.Int). A nil
// type (missing info) returns defaultTo, letting analyzers choose how
// to degrade.
func isBigIntPtr(t types.Type, defaultTo bool) bool {
	if t == nil {
		return defaultTo
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Int" && obj.Pkg() != nil && obj.Pkg().Path() == "math/big"
}

// isByteArray reports whether t is a fixed-size byte array [N]byte.
func isByteArray(t types.Type) bool {
	if t == nil {
		return false
	}
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		return false
	}
	basic, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Uint8
}

// isErrorType reports whether t is the built-in error type.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// callResultErrors returns the indices of error-typed results of call,
// and the total result count. Missing type info yields (nil, 0).
func (p *Pass) callResultErrors(call *ast.CallExpr) (errIdx []int, n int) {
	t := p.TypeOf(call)
	if t == nil {
		return nil, 0
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				errIdx = append(errIdx, i)
			}
		}
		return errIdx, tuple.Len()
	}
	if isErrorType(t) {
		return []int{0}, 1
	}
	return nil, 1
}

// callLabel renders a short human-readable name for a call expression.
func callLabel(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			return id.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	}
	return "call"
}

// importPathOf unquotes an import spec path, returning "" on error.
func importPathOf(spec *ast.ImportSpec) string {
	p, err := strconv.Unquote(spec.Path.Value)
	if err != nil {
		return ""
	}
	return p
}
