package seclint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot is the repository root relative to this package directory.
const moduleRoot = "../.."

// loadFixture parses and type-checks one testdata fixture with a fresh
// loader (fresh because some cases override the package's RelDir to
// re-home it into an analyzer's scope).
func loadFixture(t *testing.T, fixture string) (*Loader, *Package) {
	t.Helper()
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(fixture)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", fixture, err)
	}
	return loader, pkg
}

// TestAnalyzersOnFixtures runs each analyzer over its fixture and
// checks the findings against the fixture's `// want "..."` comments:
// every expectation must be matched on its exact file and line, and no
// finding may appear without one.
func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *Analyzer
		fixture  string
		// relDir re-homes the fixture into the analyzer's directory
		// scope (e.g. rawexp only runs under internal/crypto).
		relDir string
	}{
		{"weakrand", Weakrand, "testdata/src/weakrand", ""},
		{"weakrand_protocol", Weakrand, "testdata/src/weakrand_protocol", "internal/mediation"},
		{"subtlecmp", Subtlecmp, "testdata/src/subtlecmp", ""},
		{"secretfmt", Secretfmt, "testdata/src/secretfmt", ""},
		{"errdrop", Errdrop, "testdata/src/errdrop", ""},
		{"rawexp", Rawexp, "testdata/src/rawexp", "internal/crypto/fixture"},
		{"rawrecv", Rawrecv, "testdata/src/rawrecv", "internal/mediation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loader, pkg := loadFixture(t, tc.fixture)
			if tc.relDir != "" {
				pkg.RelDir = tc.relDir
			}
			runner := &Runner{Loader: loader, Analyzers: []*Analyzer{tc.analyzer}}
			findings := runner.RunPackage(pkg)
			wants, err := ParseWants(loader.Fset, pkg.Files)
			if err != nil {
				t.Fatalf("ParseWants: %v", err)
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s carries no want comments", tc.fixture)
			}
			// Wants carry absolute filenames; findings are
			// module-relative. Compare in relative space.
			for i := range wants {
				wants[i].File = pkg.relFile(wants[i].File)
			}
			for _, problem := range CheckWants(findings, wants) {
				t.Error(problem)
			}
		})
	}
}

// TestProgramAnalyzersOnFixtures runs each whole-program analyzer over
// its fixture package and checks the findings against the `// want`
// expectations, exactly like the package-mode test above. The
// plaintaint fixture is a deliberately leaky fake mediator covering
// every edge kind the call graph follows (direct call, closure, method
// value, goroutine, defer, interface dispatch) plus the sanitizer cut,
// the boundary rule and the annotation-misuse reports.
func TestProgramAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *Analyzer
		fixture  string
		// relDir re-homes the fixture, as in the package-mode test; it
		// must be set before RunProgram so directory-scoped rules (the
		// conccheck bounded-queue perimeter) see the re-homed path.
		relDir string
	}{
		{"plaintaint", Plaintaint, "testdata/src/plaintaint", ""},
		{"keyscope", Keyscope, "testdata/src/keyscope", ""},
		{"cttaint", Cttaint, "testdata/src/cttaint", ""},
		{"conccheck", Conccheck, "testdata/src/conccheck", ""},
		{"conccheck_perimeter", Conccheck, "testdata/src/conccheck_perimeter", "internal/session"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			loader, pkg := loadFixture(t, tc.fixture)
			if tc.relDir != "" {
				pkg.RelDir = tc.relDir
			}
			runner := &Runner{Loader: loader, Analyzers: []*Analyzer{tc.analyzer}}
			findings := runner.RunProgram()
			wants, err := ParseWants(loader.Fset, pkg.Files)
			if err != nil {
				t.Fatalf("ParseWants: %v", err)
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s carries no want comments", tc.fixture)
			}
			for i := range wants {
				wants[i].File = pkg.relFile(wants[i].File)
			}
			for _, problem := range CheckWants(findings, wants) {
				t.Error(problem)
			}
		})
	}
}

// TestTaintTraceMessage pins the shape of a taint trace: the finding
// message must carry the full entry→source call path, including the
// creator-attributed name of a closure along the way.
func TestTaintTraceMessage(t *testing.T) {
	loader, _ := loadFixture(t, "testdata/src/plaintaint")
	runner := &Runner{Loader: loader, Analyzers: []*Analyzer{Plaintaint}}
	findings := runner.RunProgram()
	for _, path := range []string{
		"plaintaint.(*Mediator).HandleSession -> plaintaint.direct -> plaintaint.decryptTuple",
		"plaintaint.viaClosure -> plaintaint.viaClosure.func@",
	} {
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, path) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding carries the call path %q; findings:\n%v", path, findings)
		}
	}
}

// TestPlaintaintRealTree is the satellite regression test for the real
// module: without the allowlist, the only plaintext sources reachable
// from a mediator entry point must be the ones in the declared
// plaintext-baseline file, every finding must carry a full call path,
// and keyscope must be silent (no key material at the mediator or on a
// link anywhere in the tree).
func TestPlaintaintRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := WalkPackageDirs(loader.RootDir)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Loader: loader, Analyzers: []*Analyzer{Plaintaint, Keyscope}}
	findings, err := runner.RunDirs(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("expected plaintaint findings for the plaintext baseline; the allowlisted leak must stay visible without the allowlist")
	}
	for _, f := range findings {
		if f.Analyzer != "plaintaint" {
			t.Errorf("unexpected %s finding on the real tree: %s", f.Analyzer, f)
			continue
		}
		if f.File != "internal/mediation/baselines.go" {
			t.Errorf("plaintext reachable outside the declared baseline: %s", f)
		}
		if !strings.Contains(f.Message, "[path ") || !strings.Contains(f.Message, " -> ") {
			t.Errorf("finding lacks a full call path: %s", f)
		}
	}
}

// TestFindingPositions pins one exact position per analyzer, so a
// traversal change that shifts report anchors fails loudly rather than
// only through regex matching.
func TestFindingPositions(t *testing.T) {
	loader, pkg := loadFixture(t, "testdata/src/subtlecmp")
	runner := &Runner{Loader: loader, Analyzers: []*Analyzer{Subtlecmp}}
	findings := runner.RunPackage(pkg)
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(findings), findings)
	}
	SortFindings(findings)
	first := findings[0]
	if first.File != "internal/seclint/testdata/src/subtlecmp/subtlecmp.go" {
		t.Errorf("File = %q", first.File)
	}
	if first.Line != 13 || first.Col != 9 {
		t.Errorf("position = %d:%d, want 13:9", first.Line, first.Col)
	}
	if first.Analyzer != "subtlecmp" {
		t.Errorf("Analyzer = %q", first.Analyzer)
	}
	if want := `bytes.Equal on secret material "tag"`; !strings.Contains(first.Message, want) {
		t.Errorf("Message = %q, want substring %q", first.Message, want)
	}
}

func writeAllow(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seclint.allow")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAllowlistSuppression checks the full Filter/Unused cycle: a
// matching entry silences its finding, a stale entry surfaces as an
// "allowlist" finding pointing at its own line.
func TestAllowlistSuppression(t *testing.T) {
	path := writeAllow(t, `# audited exceptions
weakrand internal/seclint/testdata/src/weakrand/... -- fixture exercises the analyzer
subtlecmp cmd/nowhere/*.go -- stale entry that matches nothing
`)
	al, err := ParseAllowlist(path)
	if err != nil {
		t.Fatalf("ParseAllowlist: %v", err)
	}
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	runner := &Runner{Loader: loader, Analyzers: []*Analyzer{Weakrand}, Allow: al}
	findings, err := runner.RunDirs([]string{"testdata/src/weakrand"})
	if err != nil {
		t.Fatalf("RunDirs: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the unused-entry one: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "allowlist" {
		t.Errorf("Analyzer = %q, want allowlist", f.Analyzer)
	}
	if f.Line != 3 {
		t.Errorf("Line = %d, want 3 (the stale entry)", f.Line)
	}
	if !strings.Contains(f.Message, "unused allowlist entry") {
		t.Errorf("Message = %q", f.Message)
	}
}

// TestAllowlistGlobForms covers both pattern styles.
func TestAllowlistGlobForms(t *testing.T) {
	e := &AllowEntry{Analyzer: "errdrop", Pattern: "internal/mediation/..."}
	if !e.matches("errdrop", "internal/mediation/local.go") {
		t.Error("prefix pattern missed subtree file")
	}
	if e.matches("errdrop", "internal/mediationx/local.go") {
		t.Error("prefix pattern must not match sibling directory")
	}
	if e.matches("weakrand", "internal/mediation/local.go") {
		t.Error("entry must be analyzer-scoped")
	}
	g := &AllowEntry{Analyzer: "errdrop", Pattern: "internal/*/local.go"}
	if !g.matches("errdrop", "internal/mediation/local.go") {
		t.Error("glob pattern missed")
	}
	if g.matches("errdrop", "internal/a/b/local.go") {
		t.Error("single * must not cross separators")
	}
}

// TestAllowlistRejectsMalformed checks that entries without a
// justification, with bad shape, or naming unknown analyzers are load
// errors — an unauditable allowlist must not silently parse.
func TestAllowlistRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"weakrand internal/foo.go\n",                   // no justification
		"weakrand internal/foo.go --\n",                // empty justification
		"weakrand -- missing pattern\n",                // wrong field count
		"nosuch internal/foo.go -- justification\n",    // unknown analyzer
		"weakrand internal/[foo.go -- justification\n", // malformed glob
	} {
		path := writeAllow(t, bad)
		if _, err := ParseAllowlist(path); err == nil {
			t.Errorf("ParseAllowlist accepted %q", bad)
		}
	}
}

func TestIdentWords(t *testing.T) {
	cases := []struct {
		name   string
		secret bool
	}{
		{"sessionKey", true},
		{"WrappedKey", true},
		{"HMACKey", true},
		{"mac_tag", true},
		{"tagOf", true},
		{"macro", false}, // "mac" must match as a word, not a prefix
		{"message", false},
		{"keyPath", false},       // neutral word: a location, not material
		{"sessionKeyLen", false}, // neutral word: a public constant
		{"keyCount", false},
		{"row", false},
	}
	for _, tc := range cases {
		if got := isSecretName(tc.name); got != tc.secret {
			t.Errorf("isSecretName(%q) = %v, want %v (words %v)", tc.name, got, tc.secret, identWords(tc.name))
		}
	}
}

func TestParseVerbs(t *testing.T) {
	got := parseVerbs("a %d b %*x c %% %[1]v %s")
	// %d → arg0; %*x consumes the width arg1 and formats arg2; %% none;
	// %[1]v resets to arg0; %s continues at arg1.
	want := []verbUse{{'d', 0}, {'x', 2}, {'v', 0}, {'s', 1}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("verb %d: got %v, want %v", i, got[i], want[i])
		}
	}
}
